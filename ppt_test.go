package ppt

import (
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	sum, err := Run(Config{Flows: 60})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Flows != 60 {
		t.Fatalf("completed %d/60", sum.Flows)
	}
	if sum.OverallAvg <= 0 {
		t.Fatalf("avg FCT = %v", sum.OverallAvg)
	}
}

func TestRunEveryTransport(t *testing.T) {
	for _, tr := range Transports() {
		tr := tr
		t.Run(tr, func(t *testing.T) {
			t.Parallel()
			sum, err := Run(Config{Transport: tr, Flows: 40})
			if err != nil {
				t.Fatal(err)
			}
			if sum.Flows != 40 {
				t.Fatalf("completed %d/40", sum.Flows)
			}
		})
	}
}

func TestRunEveryTopology(t *testing.T) {
	for _, topo := range []string{
		TopologyTestbed, TopologySim, TopologyFast, TopologyNonOversubscribed,
	} {
		topo := topo
		t.Run(topo, func(t *testing.T) {
			t.Parallel()
			sum, err := Run(Config{Topology: topo, Flows: 30})
			if err != nil {
				t.Fatal(err)
			}
			if sum.Flows != 30 {
				t.Fatalf("completed %d/30", sum.Flows)
			}
		})
	}
}

func TestRunEveryWorkload(t *testing.T) {
	for _, wl := range Workloads() {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			t.Parallel()
			sum, err := Run(Config{Workload: wl, Flows: 40})
			if err != nil {
				t.Fatal(err)
			}
			if sum.Flows != 40 {
				t.Fatalf("completed %d/40", sum.Flows)
			}
		})
	}
}

func TestRunIncast(t *testing.T) {
	sum, err := Run(Config{Incast: 8, Flows: 50, Load: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Flows != 50 {
		t.Fatalf("completed %d/50", sum.Flows)
	}
}

func TestRunRejectsUnknownNames(t *testing.T) {
	if _, err := Run(Config{Transport: "carrier-pigeon"}); err == nil {
		t.Fatal("unknown transport accepted")
	}
	if _, err := Run(Config{Topology: "torus"}); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if _, err := Run(Config{Workload: "bitcoin"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestPPTBeatsDCTCPOnSmallFlows(t *testing.T) {
	// The headline property, at smoke scale: equal workload, PPT's
	// small-flow FCTs beat plain DCTCP's.
	cfg := Config{Topology: TopologyTestbed, Flows: 200, Seed: 3}
	cfg.Transport = TransportDCTCP
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Transport = TransportPPT
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.SmallAvg >= base.SmallAvg {
		t.Fatalf("PPT small avg %v not better than DCTCP %v", got.SmallAvg, base.SmallAvg)
	}
	if got.SmallP99 >= base.SmallP99 {
		t.Fatalf("PPT small p99 %v not better than DCTCP %v", got.SmallP99, base.SmallP99)
	}
	if float64(got.OverallAvg) > 1.1*float64(base.OverallAvg) {
		t.Fatalf("PPT overall %v much worse than DCTCP %v", got.OverallAvg, base.OverallAvg)
	}
}

func TestListExperimentsCoversEveryFigure(t *testing.T) {
	got := map[string]bool{}
	for _, e := range ListExperiments() {
		got[e.ID] = true
		if e.Title == "" {
			t.Errorf("experiment %s has no title", e.ID)
		}
	}
	want := []string{
		"fig1", "fig2", "fig3", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"fig20", "fig21", "fig22", "fig23", "fig24", "fig25", "fig26",
		"fig27", "fig28", "fig29", "table1", "table2", "table3", "ident",
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
}

func TestRunExperimentRendering(t *testing.T) {
	res, err := RunExperiment("table3", Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"table3", "base-rtt-us", "hcp-ecn-KB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("fig99", Options{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestIdentificationAccuracyAPI(t *testing.T) {
	recall, err := IdentificationAccuracy("memcached-etc", 1_000, 16_384, 20_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if recall < 0.8 || recall > 0.95 {
		t.Fatalf("recall = %v, want near the paper's 0.867", recall)
	}
}
