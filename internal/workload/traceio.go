package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"ppt/internal/sim"
)

// Trace I/O: flows can be exported for external tooling and imported so
// users can replay their own datacenter traces instead of the synthetic
// generators.

// formatArriveUS renders an arrival instant as microseconds with six
// decimals — i.e. the integer picosecond count with a decimal point six
// digits from the right. The digits are produced by integer arithmetic,
// never a float, so the encoding is lossless for the full int64
// picosecond clock (an earlier 'f',3 float formatting rounded arrivals
// to nanoseconds, silently perturbing replayed simulations).
func formatArriveUS(t sim.Time) string {
	return fmt.Sprintf("%d.%06d", int64(t)/int64(sim.Microsecond), int64(t)%int64(sim.Microsecond))
}

// parseArriveUS parses an arrive_us column value back to picoseconds.
// Plain decimals (the only thing WriteFlows ever emitted, at 3 or 6
// decimals) take an exact integer path, so a write→read round trip is
// bit-identical at any clock value. Hand-authored traces may use any
// float syntax; those fall back to ParseFloat with round-to-nearest
// (the old conversion truncated, so "122.999999" could lose a
// picosecond to float error).
func parseArriveUS(s string) (sim.Time, error) {
	if dot := strings.IndexByte(s, '.'); dot >= 0 && !strings.ContainsAny(s, "eEpPxX") {
		whole, err1 := strconv.ParseInt(s[:dot], 10, 64)
		frac := s[dot+1:]
		if err1 == nil && len(frac) >= 1 && len(frac) <= 6 && s[0] != '-' {
			if f, err2 := strconv.ParseInt(frac, 10, 64); err2 == nil {
				for i := len(frac); i < 6; i++ {
					f *= 10
				}
				return sim.Time(whole)*sim.Microsecond + sim.Time(f), nil
			}
		}
	} else if dot < 0 {
		if whole, err := strconv.ParseInt(s, 10, 64); err == nil && whole >= 0 {
			return sim.Time(whole) * sim.Microsecond, nil
		}
	}
	us, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if us < 0 {
		return 0, fmt.Errorf("negative arrival %v", us)
	}
	return sim.Time(math.Round(us * float64(sim.Microsecond))), nil
}

// WriteFlows dumps flows as CSV: id, src, dst, size_bytes, arrive_us.
// Arrivals carry six decimals (exact picoseconds); ReadFlows recovers
// them bit-identically.
func WriteFlows(w io.Writer, flows []Flow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "src", "dst", "size_bytes", "arrive_us"}); err != nil {
		return err
	}
	for _, f := range flows {
		rec := []string{
			strconv.FormatUint(uint64(f.ID), 10),
			strconv.Itoa(f.Src),
			strconv.Itoa(f.Dst),
			strconv.FormatInt(f.Size, 10),
			formatArriveUS(f.Arrive),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// idBitset tracks seen flow ids for duplicate detection. Memory is one
// bit per id up to the largest id seen — 128KB per million densely
// numbered flows — where the map[uint32]bool it replaced cost ~9 bytes
// per flow and defeated the streaming reader's memory bound.
type idBitset struct{ words []uint64 }

// testAndSet reports whether id was already present, inserting it.
func (b *idBitset) testAndSet(id uint32) bool {
	w := int(id >> 6)
	if w >= len(b.words) {
		grown := make([]uint64, max(w+1, 2*len(b.words)))
		copy(grown, b.words)
		b.words = grown
	}
	mask := uint64(1) << (id & 63)
	if b.words[w]&mask != 0 {
		return true
	}
	b.words[w] |= mask
	return false
}

// TraceReader streams a CSV trace written by WriteFlows (or
// hand-authored in the same five-column format) one flow at a time — a
// FlowSource over the file, so a million-flow trace can feed a run
// without ever being materialized. Flows must be valid: positive sizes,
// src != dst, unique ids (tracked by a bitset sized to the largest id
// seen). After Next returns ok == false, Err distinguishes end-of-trace
// (nil) from a parse or validation failure.
//
// Arrival order is NOT validated here; transport.RunSource rejects
// out-of-order arrivals when the trace is streamed into a run.
type TraceReader struct {
	cr     *csv.Reader
	seen   idBitset
	line   int
	err    error
	header bool
	done   bool
}

// NewTraceReader returns a streaming reader over r.
func NewTraceReader(r io.Reader) *TraceReader {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	return &TraceReader{cr: cr, line: 1}
}

// Err returns the first error encountered, or nil after a clean
// end-of-trace.
func (t *TraceReader) Err() error { return t.err }

func (t *TraceReader) fail(format string, args ...any) (Flow, bool) {
	t.done = true
	t.err = fmt.Errorf("workload: trace line %d "+format, append([]any{t.line}, args...)...)
	return Flow{}, false
}

// Next implements FlowSource.
func (t *TraceReader) Next() (Flow, bool) {
	if t.done {
		return Flow{}, false
	}
	if !t.header {
		t.header = true
		if _, err := t.cr.Read(); err != nil {
			t.done = true
			if err != io.EOF {
				t.err = err
			}
			return Flow{}, false
		}
	}
	t.line++
	row, err := t.cr.Read()
	if err != nil {
		t.done = true
		if err != io.EOF {
			t.err = err
		}
		return Flow{}, false
	}
	if len(row) < 5 {
		return t.fail("has %d fields, want 5", len(row))
	}
	id, err := strconv.ParseUint(row[0], 10, 32)
	if err != nil {
		return t.fail("id: %w", err)
	}
	src, err := strconv.Atoi(row[1])
	if err != nil {
		return t.fail("src: %w", err)
	}
	dst, err := strconv.Atoi(row[2])
	if err != nil {
		return t.fail("dst: %w", err)
	}
	size, err := strconv.ParseInt(row[3], 10, 64)
	if err != nil {
		return t.fail("size: %w", err)
	}
	arrive, err := parseArriveUS(row[4])
	if err != nil {
		return t.fail("arrive: %w", err)
	}
	if size <= 0 {
		return t.fail("non-positive size %d", size)
	}
	if src == dst {
		return t.fail("src == dst == %d", src)
	}
	if t.seen.testAndSet(uint32(id)) {
		return t.fail("duplicate flow id %d", id)
	}
	return Flow{ID: uint32(id), Src: src, Dst: dst, Size: size, Arrive: arrive}, true
}

// ReadFlows parses a whole CSV trace into memory — the materialized view
// of NewTraceReader, kept for callers that need random access. Streaming
// consumers (million-flow replays) should pull from a TraceReader
// directly.
func ReadFlows(r io.Reader) ([]Flow, error) {
	tr := NewTraceReader(r)
	var flows []Flow
	for {
		f, ok := tr.Next()
		if !ok {
			return flows, tr.Err()
		}
		flows = append(flows, f)
	}
}
