package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"ppt/internal/sim"
)

// Trace I/O: flows can be exported for external tooling and imported so
// users can replay their own datacenter traces instead of the synthetic
// generators.

// WriteFlows dumps flows as CSV: id, src, dst, size_bytes, arrive_us.
func WriteFlows(w io.Writer, flows []Flow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "src", "dst", "size_bytes", "arrive_us"}); err != nil {
		return err
	}
	for _, f := range flows {
		rec := []string{
			strconv.FormatUint(uint64(f.ID), 10),
			strconv.Itoa(f.Src),
			strconv.Itoa(f.Dst),
			strconv.FormatInt(f.Size, 10),
			strconv.FormatFloat(f.Arrive.Micros(), 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadFlows parses a CSV trace written by WriteFlows (or hand-authored
// in the same five-column format). Flows must be valid: positive sizes,
// src != dst, nondecreasing ids not required but uniqueness is enforced.
//
// The reader streams: records are parsed one at a time into a reused
// buffer, so peak memory is the returned []Flow plus one CSV record —
// not a second materialized [][]string copy of the whole trace. That
// matters at datacenter-trace sizes (hundreds of thousands of flows).
func ReadFlows(r io.Reader) ([]Flow, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	if _, err := cr.Read(); err != nil {
		if err == io.EOF {
			return nil, nil // empty trace
		}
		return nil, err
	}
	seen := make(map[uint32]bool)
	var flows []Flow
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(row) < 5 {
			return nil, fmt.Errorf("workload: trace line %d has %d fields, want 5", line, len(row))
		}
		id, err := strconv.ParseUint(row[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d id: %w", line, err)
		}
		src, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d src: %w", line, err)
		}
		dst, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d dst: %w", line, err)
		}
		size, err := strconv.ParseInt(row[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d size: %w", line, err)
		}
		arriveUS, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d arrive: %w", line, err)
		}
		if size <= 0 {
			return nil, fmt.Errorf("workload: trace line %d: non-positive size %d", line, size)
		}
		if src == dst {
			return nil, fmt.Errorf("workload: trace line %d: src == dst == %d", line, src)
		}
		if arriveUS < 0 {
			return nil, fmt.Errorf("workload: trace line %d: negative arrival", line)
		}
		if seen[uint32(id)] {
			return nil, fmt.Errorf("workload: trace line %d: duplicate flow id %d", line, id)
		}
		seen[uint32(id)] = true
		flows = append(flows, Flow{
			ID: uint32(id), Src: src, Dst: dst, Size: size,
			Arrive: sim.Time(arriveUS * float64(sim.Microsecond)),
		})
	}
	return flows, nil
}
