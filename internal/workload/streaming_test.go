package workload

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"ppt/internal/netsim"
	"ppt/internal/sim"
)

// TestGeneratorMatchesGenerate pins the streaming contract: NewGenerator
// draws from the same seeded RNG in the same order as Generate, so the
// i-th flow from Next is bit-identical to Generate(cfg)[i].
func TestGeneratorMatchesGenerate(t *testing.T) {
	cfgs := []GenConfig{
		{Dist: WebSearch, Pattern: AllToAll{N: 8}, Load: 0.5,
			HostRate: 10 * netsim.Gbps, NumFlows: 500, Seed: 3},
		{Dist: DataMining, Pattern: Incast{N: 15, Target: 0}, Load: 0.8,
			HostRate: 40 * netsim.Gbps, NumFlows: 300, Seed: 11, StartID: 900},
		{Dist: MemcachedW1, Pattern: AllToAll{N: 24}, Load: 0.25,
			HostRate: 100 * netsim.Gbps, NumFlows: 1000, Seed: 42},
	}
	for ci, cfg := range cfgs {
		want := Generate(cfg)
		g := NewGenerator(cfg)
		if g.Remaining() != cfg.NumFlows {
			t.Fatalf("cfg %d: Remaining = %d before first Next", ci, g.Remaining())
		}
		for i, w := range want {
			f, ok := g.Next()
			if !ok {
				t.Fatalf("cfg %d: source dried up at flow %d", ci, i)
			}
			if f != w {
				t.Fatalf("cfg %d flow %d: streamed %+v != materialized %+v", ci, i, f, w)
			}
		}
		if g.Remaining() != 0 {
			t.Fatalf("cfg %d: Remaining = %d after drain", ci, g.Remaining())
		}
		for j := 0; j < 3; j++ {
			if _, ok := g.Next(); ok {
				t.Fatalf("cfg %d: Next returned a flow after exhaustion", ci)
			}
		}
	}
}

// TestTraceRoundTripExactPs pins the lossless encoding over arrivals
// chosen to defeat float formatting: odd picosecond counts far beyond
// 2^52 ps, where the old 'f',3 (and even an 'f',6 float) path rounds.
func TestTraceRoundTripExactPs(t *testing.T) {
	arrivals := []sim.Time{
		0,
		1,                       // single picosecond
		999_999,                 // just under 1 µs
		1_000_001,               // 1 µs + 1 ps
		123_456_789_012_345_677, // odd, > 2^52: float64 can't hold it
		1<<62 + 3,
		sim.Time(math.MaxInt64), // max int64
	}
	orig := make([]Flow, len(arrivals))
	for i, a := range arrivals {
		orig[i] = Flow{ID: uint32(i + 1), Src: i % 3, Dst: i%3 + 1, Size: int64(i + 100), Arrive: a}
	}
	var buf bytes.Buffer
	if err := WriteFlows(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlows(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if got[i] != orig[i] {
			t.Fatalf("flow %d: %+v != %+v (trace:\n%s)", i, got[i], orig[i], buf.String())
		}
	}
}

// TestReadFlowsOldPrecision keeps compatibility with traces written by
// the earlier 3-decimal formatter: they parse exactly at their stated
// (nanosecond) granularity.
func TestReadFlowsOldPrecision(t *testing.T) {
	trace := "id,src,dst,size_bytes,arrive_us\n" +
		"1,0,1,100,0.000\n" +
		"2,0,1,100,12.500\n" +
		"3,0,1,100,122.999\n" +
		"4,0,1,100,1e3\n" // scientific notation via the float fallback
	flows, err := ReadFlows(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	want := []sim.Time{0, 12_500_000, 122_999_000, 1_000_000_000}
	for i, w := range want {
		if flows[i].Arrive != w {
			t.Fatalf("flow %d arrive = %d, want %d", i, flows[i].Arrive, w)
		}
	}
}

// TestParseArriveRounds pins round-to-nearest on the float fallback —
// the old conversion truncated, so a value a hair under an integer
// picosecond count lost a picosecond.
func TestParseArriveRounds(t *testing.T) {
	got, err := parseArriveUS("122.9999999999")
	if err != nil {
		t.Fatal(err)
	}
	if got != 123_000_000 {
		t.Fatalf("parsed %d, want 123000000", got)
	}
}

// TestTraceReaderStreams drives the streaming reader directly: flows
// arrive one at a time, Err is nil at clean EOF, and validation errors
// carry line numbers.
func TestTraceReaderStreams(t *testing.T) {
	orig := Generate(GenConfig{
		Dist: WebSearch, Pattern: AllToAll{N: 8}, Load: 0.5,
		HostRate: 10 * netsim.Gbps, NumFlows: 50, Seed: 7,
	})
	var buf bytes.Buffer
	if err := WriteFlows(&buf, orig); err != nil {
		t.Fatal(err)
	}
	tr := NewTraceReader(&buf)
	for i, w := range orig {
		f, ok := tr.Next()
		if !ok {
			t.Fatalf("reader dried up at %d: %v", i, tr.Err())
		}
		if f != w {
			t.Fatalf("flow %d: %+v != %+v", i, f, w)
		}
	}
	if _, ok := tr.Next(); ok {
		t.Fatal("reader yielded past end of trace")
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("clean EOF returned error %v", err)
	}

	bad := "id,src,dst,size_bytes,arrive_us\n1,0,1,100,0\n2,3,3,100,1\n"
	tr = NewTraceReader(strings.NewReader(bad))
	if _, ok := tr.Next(); !ok {
		t.Fatal("valid first row rejected")
	}
	if _, ok := tr.Next(); ok {
		t.Fatal("src==dst row accepted")
	}
	if err := tr.Err(); err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %v does not name line 3", err)
	}
	// Errors latch: further calls stay exhausted with the same error.
	if _, ok := tr.Next(); ok {
		t.Fatal("reader resumed after error")
	}
}

// TestTraceReaderDupBitset exercises the bitset dedup across word
// boundaries and growth, including sparse high ids.
func TestTraceReaderDupBitset(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("id,src,dst,size_bytes,arrive_us\n")
	ids := []uint32{1, 63, 64, 65, 1000, 4_000_000_000}
	for i, id := range ids {
		fmt.Fprintf(&sb, "%d,0,1,100,%d\n", id, i)
	}
	fmt.Fprintf(&sb, "%d,0,1,100,99\n", 64) // duplicate, far behind the max id
	tr := NewTraceReader(strings.NewReader(sb.String()))
	for i := range ids {
		if _, ok := tr.Next(); !ok {
			t.Fatalf("unique id %d rejected: %v", ids[i], tr.Err())
		}
	}
	if _, ok := tr.Next(); ok {
		t.Fatal("duplicate id 64 accepted")
	}
	if err := tr.Err(); err == nil || !strings.Contains(err.Error(), "duplicate flow id 64") {
		t.Fatalf("error = %v", err)
	}
}
