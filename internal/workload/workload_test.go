package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ppt/internal/netsim"
	"ppt/internal/sim"
)

func TestWebSearchMatchesTable2(t *testing.T) {
	// Table 2: 62% short (0-100KB), mean 1.6MB.
	if got := WebSearch.FractionBelow(100_000); math.Abs(got-0.62) > 0.02 {
		t.Fatalf("P(<=100KB) = %v, want ~0.62", got)
	}
	if m := WebSearch.Mean(); m < 1.4e6 || m > 1.8e6 {
		t.Fatalf("mean = %v, want ~1.6MB", m)
	}
}

func TestDataMiningMatchesTable2(t *testing.T) {
	// Table 2: 83% short, mean 7.41MB.
	if got := DataMining.FractionBelow(100_000); math.Abs(got-0.83) > 0.02 {
		t.Fatalf("P(<=100KB) = %v, want ~0.83", got)
	}
	if m := DataMining.Mean(); m < 6.5e6 || m > 8.3e6 {
		t.Fatalf("mean = %v, want ~7.41MB", m)
	}
}

func TestMemcachedW1Shape(t *testing.T) {
	// Homa W1: >70% of flows < 1000B, all < 100KB.
	if got := MemcachedW1.FractionBelow(1_000); got < 0.70 {
		t.Fatalf("P(<1KB) = %v, want >= 0.70", got)
	}
	if MemcachedW1.MaxBytes() > 100_000 {
		t.Fatalf("max = %d, want <= 100KB", MemcachedW1.MaxBytes())
	}
}

func TestSampleMatchesMean(t *testing.T) {
	for _, d := range []*Dist{WebSearch, DataMining, MemcachedW1} {
		rng := rand.New(rand.NewSource(42))
		var sum float64
		const n = 200_000
		for i := 0; i < n; i++ {
			sum += float64(d.Sample(rng))
		}
		got := sum / n
		if math.Abs(got-d.Mean())/d.Mean() > 0.05 {
			t.Errorf("%s: empirical mean %v vs analytic %v", d.Name, got, d.Mean())
		}
	}
}

func TestSampleMatchesCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 100_000
	var below int
	for i := 0; i < n; i++ {
		if WebSearch.Sample(rng) <= 100_000 {
			below++
		}
	}
	got := float64(below) / n
	if math.Abs(got-0.62) > 0.01 {
		t.Fatalf("empirical P(<=100KB) = %v", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"websearch", "datamining", "memcached-w1", "memcached-etc", "youtube-http"} {
		d, err := ByName(name)
		if err != nil || d.Name != name {
			t.Fatalf("ByName(%q) = %v, %v", name, d, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestNewDistValidation(t *testing.T) {
	for _, bad := range [][]Point{
		{{0, 0}},                                // too few
		{{0, 0.1}, {10, 1}},                     // does not start at 0
		{{0, 0}, {10, 0.5}},                     // does not end at 1
		{{0, 0}, {10, 0.5}, {5, 1}},             // bytes not increasing
		{{0, 0}, {10, 0.8}, {20, 0.5}, {30, 1}}, // CDF decreasing
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad CDF %v accepted", bad)
				}
			}()
			NewDist("bad", bad)
		}()
	}
}

func TestPropertySampleWithinSupport(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, d := range []*Dist{WebSearch, DataMining, MemcachedW1, MemcachedETC, YoutubeHTTP} {
			for i := 0; i < 100; i++ {
				s := d.Sample(rng)
				if s < 1 || s > d.MaxBytes() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllPicksDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := AllToAll{N: 8}
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		s, d := p.Pick(rng)
		if s == d {
			t.Fatal("src == dst")
		}
		if s < 0 || s >= 8 || d < 0 || d >= 8 {
			t.Fatalf("out of range: %d %d", s, d)
		}
		seen[s*8+d] = true
	}
	if len(seen) != 56 {
		t.Fatalf("only %d of 56 pairs seen", len(seen))
	}
}

func TestIncastPicks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Incast{N: 15, Target: 0}
	srcs := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		s, d := p.Pick(rng)
		if d != 0 || s == 0 {
			t.Fatalf("bad pair %d->%d", s, d)
		}
		srcs[s] = true
	}
	if len(srcs) != 14 {
		t.Fatalf("senders = %d, want 14", len(srcs))
	}
}

func TestIncastRestrictedSenders(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Incast{N: 100, Target: 5, Senders: 8}
	srcs := make(map[int]bool)
	for i := 0; i < 2000; i++ {
		s, d := p.Pick(rng)
		if d != 5 || s == 5 {
			t.Fatalf("bad pair %d->%d", s, d)
		}
		srcs[s] = true
	}
	if len(srcs) != 8 {
		t.Fatalf("senders = %d, want 8", len(srcs))
	}
}

func TestGenerateLoad(t *testing.T) {
	// At load 0.5 on 10G with one receiver, offered bytes/sec should be
	// ~625MB/s.
	cfg := GenConfig{
		Dist:     WebSearch,
		Pattern:  Incast{N: 15, Target: 0},
		Load:     0.5,
		HostRate: 10 * netsim.Gbps,
		NumFlows: 20_000,
		Seed:     3,
	}
	flows := Generate(cfg)
	if len(flows) != 20_000 {
		t.Fatalf("generated %d", len(flows))
	}
	var bytes float64
	for _, f := range flows {
		bytes += float64(f.Size)
	}
	dur := flows[len(flows)-1].Arrive.Seconds()
	got := bytes / dur
	want := 0.5 * 10e9 / 8
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("offered %v B/s, want ~%v", got, want)
	}
}

func TestGenerateArrivalsMonotonic(t *testing.T) {
	flows := Generate(GenConfig{
		Dist: DataMining, Pattern: AllToAll{N: 16}, Load: 0.6,
		HostRate: 40 * netsim.Gbps, NumFlows: 5000, Seed: 11,
	})
	var prev sim.Time
	ids := make(map[uint32]bool)
	for _, f := range flows {
		if f.Arrive < prev {
			t.Fatal("arrivals not monotonic")
		}
		prev = f.Arrive
		if ids[f.ID] {
			t.Fatalf("duplicate id %d", f.ID)
		}
		ids[f.ID] = true
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Dist: WebSearch, Pattern: AllToAll{N: 8}, Load: 0.4,
		HostRate: 10 * netsim.Gbps, NumFlows: 100, Seed: 9}
	a := Generate(cfg)
	b := Generate(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different flows")
		}
	}
	cfg.Seed = 10
	c := Generate(cfg)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical flows")
	}
}

func TestGenerateStartID(t *testing.T) {
	cfg := GenConfig{Dist: WebSearch, Pattern: AllToAll{N: 4}, Load: 0.4,
		HostRate: 10 * netsim.Gbps, NumFlows: 10, Seed: 1, StartID: 500}
	for i, f := range Generate(cfg) {
		if f.ID != uint32(501+i) {
			t.Fatalf("flow %d has id %d", i, f.ID)
		}
	}
}
