// Package workload generates the traffic the paper evaluates on: flow
// sizes drawn from published datacenter distributions (Web Search [34],
// Data Mining [13], Facebook Memcached W1 [32], Memcached ETC [8],
// YouTube HTTP [18]), arriving as a Poisson process tuned to a target
// network load, over all-to-all or N-to-1 patterns.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// Point is one knot of an empirical flow-size CDF.
type Point struct {
	Bytes float64
	CDF   float64
}

// Dist is a piecewise-linear empirical distribution of flow sizes.
type Dist struct {
	Name string
	pts  []Point
	mean float64
}

// NewDist validates the CDF points (strictly increasing in both
// coordinates, ending at probability 1) and precomputes the mean.
func NewDist(name string, pts []Point) *Dist {
	if len(pts) < 2 {
		panic("workload: need at least two CDF points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Bytes <= pts[i-1].Bytes || pts[i].CDF < pts[i-1].CDF {
			panic(fmt.Sprintf("workload %s: CDF not monotonic at %d", name, i))
		}
	}
	if pts[0].CDF != 0 || pts[len(pts)-1].CDF != 1 {
		panic(fmt.Sprintf("workload %s: CDF must span [0,1]", name))
	}
	d := &Dist{Name: name, pts: pts}
	for i := 1; i < len(pts); i++ {
		mid := (pts[i].Bytes + pts[i-1].Bytes) / 2
		d.mean += mid * (pts[i].CDF - pts[i-1].CDF)
	}
	return d
}

// Mean returns the expected flow size in bytes.
func (d *Dist) Mean() float64 { return d.mean }

// Sample draws one flow size (>= 1 byte).
func (d *Dist) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	i := sort.Search(len(d.pts), func(i int) bool { return d.pts[i].CDF >= u })
	if i == 0 {
		i = 1
	}
	lo, hi := d.pts[i-1], d.pts[i]
	frac := 0.0
	if hi.CDF > lo.CDF {
		frac = (u - lo.CDF) / (hi.CDF - lo.CDF)
	}
	sz := int64(lo.Bytes + frac*(hi.Bytes-lo.Bytes))
	if sz < 1 {
		sz = 1
	}
	return sz
}

// FractionBelow returns P(size <= bytes).
func (d *Dist) FractionBelow(bytes float64) float64 {
	if bytes <= d.pts[0].Bytes {
		return d.pts[0].CDF
	}
	for i := 1; i < len(d.pts); i++ {
		if bytes <= d.pts[i].Bytes {
			lo, hi := d.pts[i-1], d.pts[i]
			return lo.CDF + (bytes-lo.Bytes)/(hi.Bytes-lo.Bytes)*(hi.CDF-lo.CDF)
		}
	}
	return 1
}

// MaxBytes returns the largest possible flow size.
func (d *Dist) MaxBytes() int64 { return int64(d.pts[len(d.pts)-1].Bytes) }

// WebSearch is the DCTCP-paper web search workload [34]: heavy-tailed,
// 62% of flows <= 100KB, mean ~1.6MB (Table 2).
var WebSearch = NewDist("websearch", []Point{
	{0, 0},
	{6_000, 0.15},
	{13_000, 0.28},
	{19_000, 0.39},
	{33_000, 0.49},
	{53_000, 0.55},
	{100_000, 0.62},
	{133_000, 0.65},
	{667_000, 0.72},
	{1_460_000, 0.80},
	{5_300_000, 0.92},
	{10_000_000, 0.96},
	{30_000_000, 1.0},
})

// DataMining is the VL2 data mining workload [13]: polarized sizes, 83%
// of flows <= 100KB yet mean ~7.4MB (Table 2).
var DataMining = NewDist("datamining", []Point{
	{0, 0},
	{300, 0.30},
	{1_000, 0.50},
	{2_000, 0.60},
	{10_000, 0.70},
	{60_000, 0.80},
	{100_000, 0.83},
	{1_000_000, 0.90},
	{10_000_000, 0.95},
	{100_000_000, 0.99},
	{900_000_000, 1.0},
})

// MemcachedW1 is Facebook's memcached workload (Homa's W1): >70% of
// flows under 1000 bytes and every flow under 100KB.
var MemcachedW1 = NewDist("memcached-w1", []Point{
	{0, 0},
	{100, 0.30},
	{300, 0.50},
	{575, 0.70},
	{1_000, 0.75},
	{5_000, 0.85},
	{20_000, 0.95},
	{100_000, 1.0},
})

// MemcachedETC models the ETC key-value trace of [8], used by the §4.1
// buffer-aware identification experiment with a 1KB threshold.
var MemcachedETC = NewDist("memcached-etc", []Point{
	{0, 0},
	{64, 0.20},
	{256, 0.50},
	{1_024, 0.80},
	{4_096, 0.92},
	{16_384, 0.98},
	{65_536, 1.0},
})

// YoutubeHTTP models the YouTube HTTP trace of [18], used by §4.1 with a
// 10KB threshold.
var YoutubeHTTP = NewDist("youtube-http", []Point{
	{0, 0},
	{2_000, 0.20},
	{10_000, 0.45},
	{50_000, 0.70},
	{200_000, 0.85},
	{1_000_000, 0.95},
	{10_000_000, 1.0},
})

// ByName returns a registered distribution.
func ByName(name string) (*Dist, error) {
	for _, d := range []*Dist{WebSearch, DataMining, MemcachedW1, MemcachedETC, YoutubeHTTP} {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown distribution %q", name)
}
