package workload

import (
	"math/rand"

	"ppt/internal/netsim"
	"ppt/internal/sim"
)

// Flow is one transfer request: Size bytes from Src to Dst, arriving at
// Arrive.
type Flow struct {
	ID     uint32
	Src    int
	Dst    int
	Size   int64
	Arrive sim.Time
}

// Pattern chooses (src, dst) pairs for successive flows.
type Pattern interface {
	// Pick returns the endpoints of the next flow.
	Pick(rng *rand.Rand) (src, dst int)
	// Receivers is the number of distinct destination downlinks the
	// offered load is spread across (used to convert a target load into
	// an aggregate arrival rate).
	Receivers() int
}

// AllToAll picks uniform random distinct (src, dst) pairs among n hosts —
// the paper's large-scale and 15-to-15 patterns.
type AllToAll struct{ N int }

// Pick implements Pattern.
func (a AllToAll) Pick(rng *rand.Rand) (int, int) {
	src := rng.Intn(a.N)
	dst := rng.Intn(a.N - 1)
	if dst >= src {
		dst++
	}
	return src, dst
}

// Receivers implements Pattern.
func (a AllToAll) Receivers() int { return a.N }

// Incast sends every flow toward a single Target from senders chosen
// uniformly among the other hosts — the 14-to-1 and N-to-1 patterns.
type Incast struct {
	N      int // total hosts
	Target int
	// Senders, when non-zero, restricts sources to hosts [1..Senders]
	// shifted around Target; zero means every other host may send.
	Senders int
}

// Pick implements Pattern.
func (ic Incast) Pick(rng *rand.Rand) (int, int) {
	pool := ic.N - 1
	if ic.Senders > 0 && ic.Senders < pool {
		pool = ic.Senders
	}
	src := rng.Intn(pool)
	// Skip the target when mapping the pool index to a host id.
	if src >= ic.Target {
		src++
	}
	return src, ic.Target
}

// Receivers implements Pattern.
func (ic Incast) Receivers() int { return 1 }

// GenConfig parameterizes flow generation.
type GenConfig struct {
	Dist     *Dist
	Pattern  Pattern
	Load     float64     // fraction of receiver downlink bandwidth
	HostRate netsim.Rate // edge link speed
	NumFlows int
	Seed     int64
	// StartID offsets flow IDs so multiple generators stay disjoint.
	StartID uint32
}

// FlowSource yields flows lazily, one at a time, in nondecreasing
// arrival order. It is the streaming counterpart of a materialized
// []Flow: a million-flow workload pulled through a FlowSource costs one
// Flow of memory instead of the whole trace.
type FlowSource interface {
	// Next returns the next flow. ok is false once the source is
	// exhausted; after that every call keeps returning ok == false.
	Next() (Flow, bool)
}

// Generator streams the exact flow sequence Generate materializes: it
// owns the same seeded RNG and draws gap, endpoints, and size in the
// same order, so the i-th flow from Next is bit-identical to
// Generate(cfg)[i] (pinned by TestGeneratorMatchesGenerate).
type Generator struct {
	rng       *rand.Rand
	cfg       GenConfig
	meanGapPs float64
	now       float64
	next      int
}

// NewGenerator returns a FlowSource over cfg's flow sequence.
func NewGenerator(cfg GenConfig) *Generator {
	// Aggregate bytes/sec offered across the fabric.
	bytesPerSec := cfg.Load * float64(cfg.HostRate) / 8 * float64(cfg.Pattern.Receivers())
	flowsPerSec := bytesPerSec / cfg.Dist.Mean()
	return &Generator{
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		cfg:       cfg,
		meanGapPs: 1e12 / flowsPerSec,
	}
}

// Next implements FlowSource.
func (g *Generator) Next() (Flow, bool) {
	if g.next >= g.cfg.NumFlows {
		return Flow{}, false
	}
	g.now += g.rng.ExpFloat64() * g.meanGapPs
	src, dst := g.cfg.Pattern.Pick(g.rng)
	f := Flow{
		ID:     g.cfg.StartID + uint32(g.next) + 1,
		Src:    src,
		Dst:    dst,
		Size:   g.cfg.Dist.Sample(g.rng),
		Arrive: sim.Time(g.now),
	}
	g.next++
	return f, true
}

// Remaining reports how many flows Next has yet to produce.
func (g *Generator) Remaining() int { return g.cfg.NumFlows - g.next }

// Generate produces NumFlows flows with Poisson arrivals whose aggregate
// rate offers Load × HostRate per receiver downlink. It is the
// materialized view of NewGenerator's stream.
func Generate(cfg GenConfig) []Flow {
	g := NewGenerator(cfg)
	flows := make([]Flow, 0, cfg.NumFlows)
	for {
		f, ok := g.Next()
		if !ok {
			return flows
		}
		flows = append(flows, f)
	}
}
