package workload

import (
	"bytes"
	"strings"
	"testing"

	"ppt/internal/netsim"
	"ppt/internal/sim"
)

func TestTraceRoundTrip(t *testing.T) {
	orig := Generate(GenConfig{
		Dist: WebSearch, Pattern: AllToAll{N: 8}, Load: 0.5,
		HostRate: 10 * netsim.Gbps, NumFlows: 200, Seed: 3,
	})
	var buf bytes.Buffer
	if err := WriteFlows(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip %d != %d", len(got), len(orig))
	}
	for i := range got {
		// Round trip is lossless, arrivals included.
		if got[i] != orig[i] {
			t.Fatalf("flow %d mismatch: %+v vs %+v", i, got[i], orig[i])
		}
	}
}

func TestReadFlowsHandAuthored(t *testing.T) {
	trace := `id,src,dst,size_bytes,arrive_us
1,0,3,50000,0
2,1,3,2000000,12.5
3,2,3,100,40
`
	flows, err := ReadFlows(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 3 {
		t.Fatalf("parsed %d flows", len(flows))
	}
	if flows[1].Arrive != sim.Time(12.5*float64(sim.Microsecond)) {
		t.Fatalf("arrive = %v", flows[1].Arrive)
	}
	if flows[2].Size != 100 || flows[2].Src != 2 {
		t.Fatalf("flow 3 = %+v", flows[2])
	}
}

func TestReadFlowsValidation(t *testing.T) {
	header := "id,src,dst,size_bytes,arrive_us\n"
	cases := map[string]string{
		"zero size":    header + "1,0,1,0,0\n",
		"src==dst":     header + "1,2,2,100,0\n",
		"negative t":   header + "1,0,1,100,-5\n",
		"duplicate id": header + "1,0,1,100,0\n1,0,2,100,1\n",
		"bad int":      header + "x,0,1,100,0\n",
		"short row":    header + "1,0,1\n",
	}
	for name, trace := range cases {
		if _, err := ReadFlows(strings.NewReader(trace)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReadFlowsEmpty(t *testing.T) {
	flows, err := ReadFlows(strings.NewReader(""))
	if err != nil || flows != nil {
		t.Fatalf("empty = %v, %v", flows, err)
	}
}

// TestTraceRoundTripLarge round-trips a datacenter-scale trace (120k
// flows) and pins the reader's streaming behaviour: parsing must stay
// at ~1 allocation per CSV record (the record's backing string; the
// field slice is reused). An eager reader that materializes the whole
// trace as [][]string before converting — as ReadFlows once did via
// csv.ReadAll — costs >= 2 allocations per record and fails the bound.
func TestTraceRoundTripLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("writes and parses a 120k-flow trace")
	}
	const n = 120_000
	orig := Generate(GenConfig{
		Dist: WebSearch, Pattern: AllToAll{N: 64}, Load: 0.5,
		HostRate: 10 * netsim.Gbps, NumFlows: n, Seed: 3,
	})
	if len(orig) != n {
		t.Fatalf("generated %d flows, want %d", len(orig), n)
	}
	var buf bytes.Buffer
	if err := WriteFlows(&buf, orig); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	got, err := ReadFlows(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("round trip %d != %d", len(got), n)
	}
	for i := range got {
		if got[i] != orig[i] {
			t.Fatalf("flow %d mismatch: %+v vs %+v", i, got[i], orig[i])
		}
	}

	allocs := testing.AllocsPerRun(1, func() {
		if _, err := ReadFlows(bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	})
	if perRow := allocs / n; perRow > 1.5 {
		t.Fatalf("ReadFlows allocated %.2f times per record (total %.0f for %d records); the reader is materializing the trace eagerly",
			perRow, allocs, n)
	}
}
