package sim

// 4-ary indexed min-heap over slot ids, ordered by (at, seq). The heap
// holds indices into s.events; each resident slot's where field mirrors
// its heap position so Stop can remove it in O(log n) without a search.
// A 4-ary layout halves tree depth versus binary and keeps the four
// children in one cache line, which measures faster than binary for the
// sift-down-heavy pop workload of a simulation.

// less orders slots by firing time, then by scheduling order. The seq
// tie-break is what makes same-time events FIFO — protocol code relies
// on it (e.g. an ACK enqueued before a timeout at the same instant must
// be processed first).
func (s *Scheduler) less(a, b int32) bool {
	ea, eb := &s.events[a], &s.events[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// heapInsert appends slot and restores the heap invariant.
func (s *Scheduler) heapInsert(slot int32) {
	s.events[slot].where = int32(len(s.heap))
	s.heap = append(s.heap, slot)
	s.siftUp(len(s.heap) - 1)
}

// heapNext pops the minimum (time, seq) slot if it is due by deadline.
// The popped slot is out of the heap but not yet released.
func (s *Scheduler) heapNext(deadline Time) (int32, bool) {
	if len(s.heap) == 0 {
		return 0, false
	}
	slot := s.heap[0]
	if s.events[slot].at > deadline {
		return 0, false
	}
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.events[s.heap[0]].where = 0
	s.heap = s.heap[:last]
	if last > 0 {
		s.siftDown(0)
	}
	return slot, true
}

// heapRemoveAt deletes the element at heap index i (for Stop). The
// replacement may need to move either direction, so try both sifts.
func (s *Scheduler) heapRemoveAt(i int) {
	last := len(s.heap) - 1
	if i != last {
		s.heap[i] = s.heap[last]
		s.events[s.heap[i]].where = int32(i)
	}
	s.heap = s.heap[:last]
	if i < last {
		s.siftDown(i)
		s.siftUp(i)
	}
}

func (s *Scheduler) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !s.less(s.heap[i], s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		s.events[s.heap[i]].where = int32(i)
		s.events[s.heap[parent]].where = int32(parent)
		i = parent
	}
}

func (s *Scheduler) siftDown(i int) {
	n := len(s.heap)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if s.less(s.heap[c], s.heap[min]) {
				min = c
			}
		}
		if !s.less(s.heap[min], s.heap[i]) {
			return
		}
		s.heap[i], s.heap[min] = s.heap[min], s.heap[i]
		s.events[s.heap[i]].where = int32(i)
		s.events[s.heap[min]].where = int32(min)
		i = min
	}
}
