// Package sim implements the discrete-event engine that every other
// subsystem in this repository is built on. Time is modelled as int64
// picoseconds so that a single byte at 400Gbps (20ps) is exactly
// representable; at this resolution the clock can still run for roughly
// 106 days of simulated time before overflow.
//
// The engine is deliberately single-threaded: a simulation is a pure
// function of its inputs, which makes experiments reproducible and lets
// tests assert on exact event orderings.
//
// The hot path is allocation-free in steady state. Events live inline in
// a slot array owned by the scheduler; fired or cancelled slots are
// recycled through a freelist, and Timers are generation-stamped value
// handles, so a stale handle to a reused slot can never cancel someone
// else's event. Two interchangeable queue implementations order the
// pending events — a hierarchical timing wheel (the default; amortized
// O(1) schedule and pop, see wheel.go) and a 4-ary indexed min-heap
// (O(log n), see heap.go) — selected per scheduler at construction.
// Pop order is fully determined by the strict (time, seq) total order,
// so the queue's internal shape never affects simulated outcomes; the
// two implementations are asserted pop-for-pop identical by a
// randomized differential test.
package sim

import (
	"fmt"
	"math"
)

// Time is a simulated instant, in picoseconds since the start of the run.
type Time int64

// Duration unit constants. Durations share the Time type: all arithmetic
// is plain int64 addition, which keeps the hot path allocation-free.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable instant.
const MaxTime = Time(math.MaxInt64)

// Seconds converts t to floating-point seconds, for reporting only.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds, for reporting only.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts t to floating-point milliseconds, for reporting only.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t)/int64(Nanosecond))
	}
}

// Impl selects the pending-event queue implementation of a Scheduler.
type Impl uint8

const (
	// Wheel is the hierarchical timing wheel: 8 levels of 256
	// power-of-two buckets over the picosecond clock, amortized-O(1)
	// schedule/stop/pop with batched same-tick dispatch. The default.
	Wheel Impl = iota
	// Heap is the 4-ary indexed min-heap: O(log n) schedule and pop.
	// Kept selectable so goldens and benches can A/B both engines.
	Heap
)

func (i Impl) String() string {
	switch i {
	case Wheel:
		return "wheel"
	case Heap:
		return "heap"
	}
	return fmt.Sprintf("Impl(%d)", uint8(i))
}

// ParseImpl maps a -sched flag value to an Impl. The empty string means
// the default (wheel).
func ParseImpl(s string) (Impl, error) {
	switch s {
	case "", "wheel":
		return Wheel, nil
	case "heap":
		return Heap, nil
	}
	return Wheel, fmt.Errorf("sim: unknown scheduler %q (want heap or wheel)", s)
}

// event is a scheduled callback, stored inline in the scheduler's slot
// array. seq breaks ties so that events scheduled earlier run earlier
// when their firing times are equal (FIFO semantics), which downstream
// protocol code depends on for determinism. gen distinguishes the slot's
// current occupant from stale Timer handles.
//
// where is the slot's position in the queue implementation — the heap
// index for Heap, the bucket id for Wheel — or -1 while the slot is
// free. prev/next thread the wheel's intrusive bucket lists through the
// slot array and are unused by the heap.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	gen   uint32
	where int32
	prev  int32
	next  int32
}

// Scheduler owns the simulated clock and the pending-event queue.
// The zero value is not usable; construct with NewScheduler.
type Scheduler struct {
	now     Time
	seq     uint64
	events  []event // slot storage; index = Timer.slot
	free    []int32 // LIFO freelist of vacant slot ids
	stopped bool
	impl    Impl

	heap  []int32     // Heap: 4-ary min-heap of occupied slot ids
	wheel *wheelState // Wheel: hierarchical timing wheel

	// Executed counts events run so far; useful as a cheap progress and
	// runaway-simulation guard in experiments.
	Executed uint64
	// Limit, when non-zero, aborts Run after that many events.
	Limit uint64
}

// NewScheduler returns an empty scheduler with the clock at zero,
// using the default (timing wheel) queue.
func NewScheduler() *Scheduler {
	return NewSchedulerImpl(Wheel)
}

// NewSchedulerImpl returns an empty scheduler using the given queue
// implementation.
func NewSchedulerImpl(impl Impl) *Scheduler {
	s := &Scheduler{impl: impl}
	if impl == Wheel {
		s.wheel = newWheelState()
	}
	return s
}

// Impl reports which queue implementation this scheduler uses.
func (s *Scheduler) Impl() Impl { return s.impl }

// Now reports the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// release retires a fired or cancelled slot: the generation bump
// invalidates every outstanding Timer handle, and dropping fn releases
// the closure and its captures immediately rather than pinning them
// until the slot is reused.
func (s *Scheduler) release(slot int32) {
	e := &s.events[slot]
	e.fn = nil
	e.gen++
	e.where = -1
	s.free = append(s.free, slot)
}

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: silently reordering time would corrupt
// every protocol invariant built above the engine. A negative t is the
// signature of int64 overflow past MaxTime and panics with a message
// saying so.
func (s *Scheduler) At(t Time, fn func()) Timer {
	if t < s.now {
		if t < 0 {
			panic(fmt.Sprintf("sim: scheduling at negative time %dps — int64 overflow past MaxTime?", int64(t)))
		}
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	var slot int32
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		// Generations start at 1 so a zero Timer never matches a slot.
		s.events = append(s.events, event{gen: 1})
		slot = int32(len(s.events) - 1)
	}
	e := &s.events[slot]
	e.at = t
	e.seq = s.seq
	e.fn = fn
	s.seq++
	if s.impl == Heap {
		s.heapInsert(slot)
	} else {
		s.wheelInsert(slot, t)
	}
	return Timer{s: s, slot: slot, gen: e.gen}
}

// After schedules fn to run d from now. A negative duration is a
// programming error and panics, exactly like At with a past time: the
// engine refuses to reorder time on the caller's behalf. A duration
// that would carry the clock past MaxTime panics instead of silently
// wrapping the int64 picosecond clock.
func (s *Scheduler) After(d Time, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling %v in the past (negative duration)", d))
	}
	t := s.now + d
	if t < s.now {
		panic(fmt.Sprintf("sim: now %v + %dps overflows MaxTime (the clock is int64 picoseconds); cap the duration before scheduling", s.now, int64(d)))
	}
	return s.At(t, fn)
}

// Timer is a generation-stamped handle to a scheduled event. It is a
// value type: copy it freely, compare to the zero Timer for "never
// scheduled". A handle goes dead the moment its event fires or is
// stopped, and stays dead even after the underlying slot is reused.
type Timer struct {
	s    *Scheduler
	slot int32
	gen  uint32
}

// Stop cancels the timer if it has not fired. It reports whether the
// timer was still pending. Stopping a zero, fired, or already-stopped
// timer is a safe no-op.
func (t Timer) Stop() bool {
	if t.s == nil {
		return false
	}
	e := &t.s.events[t.slot]
	if e.gen != t.gen || e.where < 0 {
		return false
	}
	if t.s.impl == Heap {
		t.s.heapRemoveAt(int(e.where))
	} else {
		t.s.wheelUnlink(t.slot)
	}
	t.s.release(t.slot)
	return true
}

// Pending reports whether the timer is still scheduled.
func (t Timer) Pending() bool {
	if t.s == nil {
		return false
	}
	e := &t.s.events[t.slot]
	return e.gen == t.gen && e.where >= 0
}

// Stop halts Run after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// NextAtBound returns the firing time of the earliest pending event,
// and whether any event is pending. The value is exact for both
// implementations: the heap reads its root, the wheel descends its
// occupancy bitmaps to the first occupied bucket and takes that
// bucket's minimum (see wheelNextBound). Exactness lets the sharded
// run driver's idle-window skip jump straight to the next occupied
// window instead of waking at the start of a coarse higher-level
// window and re-skipping; a randomized heap/wheel differential pins
// the equality.
func (s *Scheduler) NextAtBound() (Time, bool) {
	if s.impl == Heap {
		if len(s.heap) == 0 {
			return 0, false
		}
		return s.events[s.heap[0]].at, true
	}
	return s.wheelNextBound()
}

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int {
	if s.impl == Heap {
		return len(s.heap)
	}
	return s.wheel.count
}

// Run executes events in timestamp order until the queue drains, Stop is
// called, or the event Limit is hit. It reports the number of events run.
func (s *Scheduler) Run() uint64 {
	return s.RunUntil(MaxTime)
}

// RunUntil executes events with timestamps <= deadline. The clock is left
// at the last executed event's time (or at the deadline if that is later
// and no events remain).
func (s *Scheduler) RunUntil(deadline Time) uint64 {
	start := s.Executed
	s.stopped = false
	for !s.stopped {
		// next pops the earliest (time, seq) event not after the
		// deadline, or reports that none qualifies. The slot is already
		// out of the queue but not yet released.
		var slot int32
		var ok bool
		if s.impl == Heap {
			slot, ok = s.heapNext(deadline)
		} else {
			slot, ok = s.wheelNext(deadline)
		}
		if !ok {
			break
		}
		e := &s.events[slot]
		fn := e.fn
		s.now = e.at
		// Retire the slot before running fn so the callback observes its
		// own timer as no longer pending and the slot is free for reuse
		// by whatever fn schedules.
		s.release(slot)
		s.Executed++
		fn()
		if s.Limit != 0 && s.Executed >= s.Limit {
			break
		}
	}
	if deadline != MaxTime && s.now < deadline && s.Pending() == 0 {
		s.now = deadline
	}
	return s.Executed - start
}
