// Package sim implements the discrete-event engine that every other
// subsystem in this repository is built on. Time is modelled as int64
// picoseconds so that a single byte at 400Gbps (20ps) is exactly
// representable; at this resolution the clock can still run for roughly
// 106 days of simulated time before overflow.
//
// The engine is deliberately single-threaded: a simulation is a pure
// function of its inputs, which makes experiments reproducible and lets
// tests assert on exact event orderings.
//
// The hot path is allocation-free in steady state. Events live inline in
// a slot array owned by the scheduler, ordered by a hand-rolled 4-ary
// indexed min-heap of slot ids, and fired or cancelled slots are recycled
// through a freelist. Timers are generation-stamped value handles, so a
// stale handle to a reused slot can never cancel someone else's event.
// Pop order is fully determined by the strict (time, seq) total order, so
// the heap's internal shape never affects simulated outcomes.
package sim

import (
	"fmt"
	"math"
)

// Time is a simulated instant, in picoseconds since the start of the run.
type Time int64

// Duration unit constants. Durations share the Time type: all arithmetic
// is plain int64 addition, which keeps the hot path allocation-free.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable instant.
const MaxTime = Time(math.MaxInt64)

// Seconds converts t to floating-point seconds, for reporting only.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds, for reporting only.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts t to floating-point milliseconds, for reporting only.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t)/int64(Nanosecond))
	}
}

// event is a scheduled callback, stored inline in the scheduler's slot
// array. seq breaks ties so that events scheduled earlier run earlier
// when their firing times are equal (FIFO semantics), which downstream
// protocol code depends on for determinism. gen distinguishes the slot's
// current occupant from stale Timer handles; heapIdx is the slot's
// position in the heap, or -1 while the slot is free.
type event struct {
	at      Time
	seq     uint64
	fn      func()
	gen     uint32
	heapIdx int32
}

// Scheduler owns the simulated clock and the pending-event queue.
// The zero value is not usable; construct with NewScheduler.
type Scheduler struct {
	now     Time
	seq     uint64
	events  []event // slot storage; index = Timer.slot
	heap    []int32 // 4-ary min-heap of occupied slot ids
	free    []int32 // LIFO freelist of vacant slot ids
	stopped bool
	// Executed counts events run so far; useful as a cheap progress and
	// runaway-simulation guard in experiments.
	Executed uint64
	// Limit, when non-zero, aborts Run after that many events.
	Limit uint64
}

// NewScheduler returns an empty scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now reports the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// less orders slots by (time, seq); a strict total order, so pop order is
// independent of heap shape.
func (s *Scheduler) less(a, b int32) bool {
	ea, eb := &s.events[a], &s.events[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// siftUp restores the heap property upward from position i.
func (s *Scheduler) siftUp(i int) {
	slot := s.heap[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !s.less(slot, s.heap[parent]) {
			break
		}
		s.heap[i] = s.heap[parent]
		s.events[s.heap[i]].heapIdx = int32(i)
		i = parent
	}
	s.heap[i] = slot
	s.events[slot].heapIdx = int32(i)
}

// siftDown restores the heap property downward from position i.
func (s *Scheduler) siftDown(i int) {
	n := len(s.heap)
	slot := s.heap[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if s.less(s.heap[c], s.heap[best]) {
				best = c
			}
		}
		if !s.less(s.heap[best], slot) {
			break
		}
		s.heap[i] = s.heap[best]
		s.events[s.heap[i]].heapIdx = int32(i)
		i = best
	}
	s.heap[i] = slot
	s.events[slot].heapIdx = int32(i)
}

// removeAt takes the heap entry at position i out of the heap.
func (s *Scheduler) removeAt(i int) {
	n := len(s.heap) - 1
	last := s.heap[n]
	s.heap = s.heap[:n]
	if i < n {
		s.heap[i] = last
		s.events[last].heapIdx = int32(i)
		// The replacement may need to move either way; each call is a
		// no-op when the property already holds in that direction.
		s.siftDown(i)
		s.siftUp(i)
	}
}

// release retires a fired or cancelled slot: the generation bump
// invalidates every outstanding Timer handle, and dropping fn releases
// the closure and its captures immediately rather than pinning them
// until the slot is reused.
func (s *Scheduler) release(slot int32) {
	e := &s.events[slot]
	e.fn = nil
	e.gen++
	e.heapIdx = -1
	s.free = append(s.free, slot)
}

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: silently reordering time would corrupt
// every protocol invariant built above the engine.
func (s *Scheduler) At(t Time, fn func()) Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	var slot int32
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		// Generations start at 1 so a zero Timer never matches a slot.
		s.events = append(s.events, event{gen: 1})
		slot = int32(len(s.events) - 1)
	}
	e := &s.events[slot]
	e.at = t
	e.seq = s.seq
	e.fn = fn
	s.seq++
	s.heap = append(s.heap, slot)
	s.siftUp(len(s.heap) - 1)
	return Timer{s: s, slot: slot, gen: e.gen}
}

// After schedules fn to run d from now. A negative duration is a
// programming error and panics, exactly like At with a past time: the
// engine refuses to reorder time on the caller's behalf.
func (s *Scheduler) After(d Time, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling %v in the past (negative duration)", d))
	}
	return s.At(s.now+d, fn)
}

// Timer is a generation-stamped handle to a scheduled event. It is a
// value type: copy it freely, compare to the zero Timer for "never
// scheduled". A handle goes dead the moment its event fires or is
// stopped, and stays dead even after the underlying slot is reused.
type Timer struct {
	s    *Scheduler
	slot int32
	gen  uint32
}

// Stop cancels the timer if it has not fired. It reports whether the
// timer was still pending. Stopping a zero, fired, or already-stopped
// timer is a safe no-op.
func (t Timer) Stop() bool {
	if t.s == nil {
		return false
	}
	e := &t.s.events[t.slot]
	if e.gen != t.gen || e.heapIdx < 0 {
		return false
	}
	t.s.removeAt(int(e.heapIdx))
	t.s.release(t.slot)
	return true
}

// Pending reports whether the timer is still scheduled.
func (t Timer) Pending() bool {
	if t.s == nil {
		return false
	}
	e := &t.s.events[t.slot]
	return e.gen == t.gen && e.heapIdx >= 0
}

// Stop halts Run after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return len(s.heap) }

// Run executes events in timestamp order until the queue drains, Stop is
// called, or the event Limit is hit. It reports the number of events run.
func (s *Scheduler) Run() uint64 {
	return s.RunUntil(MaxTime)
}

// RunUntil executes events with timestamps <= deadline. The clock is left
// at the last executed event's time (or at the deadline if that is later
// and events remain).
func (s *Scheduler) RunUntil(deadline Time) uint64 {
	start := s.Executed
	s.stopped = false
	for len(s.heap) > 0 && !s.stopped {
		slot := s.heap[0]
		e := &s.events[slot]
		if e.at > deadline {
			break
		}
		fn := e.fn
		s.now = e.at
		// Retire the slot before running fn so the callback observes its
		// own timer as no longer pending and the slot is free for reuse
		// by whatever fn schedules.
		n := len(s.heap) - 1
		last := s.heap[n]
		s.heap = s.heap[:n]
		if n > 0 {
			s.heap[0] = last
			s.siftDown(0)
		}
		s.release(slot)
		s.Executed++
		fn()
		if s.Limit != 0 && s.Executed >= s.Limit {
			break
		}
	}
	if deadline != MaxTime && s.now < deadline && len(s.heap) == 0 {
		s.now = deadline
	}
	return s.Executed - start
}
