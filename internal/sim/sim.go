// Package sim implements the discrete-event engine that every other
// subsystem in this repository is built on. Time is modelled as int64
// picoseconds so that a single byte at 400Gbps (20ps) is exactly
// representable; at this resolution the clock can still run for roughly
// 106 days of simulated time before overflow.
//
// The engine is deliberately single-threaded: a simulation is a pure
// function of its inputs, which makes experiments reproducible and lets
// tests assert on exact event orderings.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a simulated instant, in picoseconds since the start of the run.
type Time int64

// Duration unit constants. Durations share the Time type: all arithmetic
// is plain int64 addition, which keeps the hot path allocation-free.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable instant.
const MaxTime = Time(math.MaxInt64)

// Seconds converts t to floating-point seconds, for reporting only.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds, for reporting only.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts t to floating-point milliseconds, for reporting only.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t)/int64(Nanosecond))
	}
}

// event is a scheduled callback. seq breaks ties so that events scheduled
// earlier run earlier when their firing times are equal (FIFO semantics),
// which downstream protocol code depends on for determinism.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	index int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Scheduler owns the simulated clock and the pending-event queue.
// The zero value is not usable; construct with NewScheduler.
type Scheduler struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	// Executed counts events run so far; useful as a cheap progress and
	// runaway-simulation guard in experiments.
	Executed uint64
	// Limit, when non-zero, aborts Run after that many events.
	Limit uint64
}

// NewScheduler returns an empty scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now reports the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: silently reordering time would corrupt
// every protocol invariant built above the engine.
func (s *Scheduler) At(t Time, fn func()) *Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	e := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return &Timer{s: s, e: e}
}

// After schedules fn to run d from now.
func (s *Scheduler) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	s *Scheduler
	e *event
}

// Stop cancels the timer if it has not fired. It reports whether the
// timer was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.e == nil || t.e.index < 0 {
		return false
	}
	heap.Remove(&t.s.events, t.e.index)
	t.e = nil
	return true
}

// Pending reports whether the timer is still scheduled.
func (t *Timer) Pending() bool { return t != nil && t.e != nil && t.e.index >= 0 }

// Stop halts Run after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return len(s.events) }

// Run executes events in timestamp order until the queue drains, Stop is
// called, or the event Limit is hit. It reports the number of events run.
func (s *Scheduler) Run() uint64 {
	return s.RunUntil(MaxTime)
}

// RunUntil executes events with timestamps <= deadline. The clock is left
// at the last executed event's time (or at the deadline if that is later
// and events remain).
func (s *Scheduler) RunUntil(deadline Time) uint64 {
	start := s.Executed
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		next := s.events[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&s.events)
		s.now = next.at
		s.Executed++
		next.fn()
		if s.Limit != 0 && s.Executed >= s.Limit {
			break
		}
	}
	if deadline != MaxTime && s.now < deadline && len(s.events) == 0 {
		s.now = deadline
	}
	return s.Executed - start
}
