package sim

import "math/bits"

// Hierarchical timing wheel (Varghese–Lauck) over the int64 picosecond
// clock: 8 levels of 256 buckets, where level l, slot v holds every
// pending event whose time t satisfies
//
//	digits of t above byte l  ==  the same digits of the wheel cursor, and
//	byte l of t               ==  v
//
// i.e. events are filed by the most-significant byte in which their time
// differs from the cursor `cur`. Near events land in level 0 (one exact
// timestamp per bucket), far events in high levels (coarse 2^(8l)-ps
// windows) that cascade lazily down as the cursor advances. Buckets are
// intrusive doubly-linked lists threaded through the scheduler's inline
// slot array, so schedule/stop/pop are pointer splices — amortized O(1),
// allocation-free, with O(1) Stop by construction.
//
// Determinism. Pop order must be exactly the (time, seq) total order the
// heap produces. The wheel gets this from three structural facts:
//
//  1. Level separation: a level-l event (l >= 1) has byte l strictly
//     above the cursor's, with all higher bytes equal, so every event in
//     a nonzero level fires strictly after every level-0 event. The
//     earliest pending event is therefore always in the lowest occupied
//     level's lowest occupied slot.
//  2. Empty cascade targets: the cursor only advances into the lowest
//     occupied level, so when a bucket cascades, every level below it is
//     empty. An order-preserving drain (head to tail, append) therefore
//     cannot interleave cascaded events with earlier residents.
//  3. Same-time events stay in seq order within any bucket: direct
//     inserts append in global seq order, and for a fixed time the
//     filing bucket is a pure function of the current cursor, so a
//     later same-time insert lands behind the earlier one — either in
//     the same bucket directly, or after the earlier event has already
//     cascaded into exactly the bucket the later insert computes.
//
// A level-0 bucket holds one exact timestamp, which enables batched
// dispatch: after a pop, the bucket is remembered as "hot" and drained
// head-first on subsequent pops without re-scanning the index. New
// same-instant inserts append to the hot bucket (preserving FIFO); any
// later-time insert files elsewhere and cannot overtake the hot bucket.
//
// The spill list handles the one case where an insert can land behind
// the cursor: RunUntil may abort a descent at its deadline after the
// cursor has already advanced past `now` (cursor moves are committed
// window-by-window). A subsequent insert between now and the cursor
// would have no valid bucket, so it goes to a small list kept sorted by
// (time, seq); spill times are all below the cursor, hence below every
// wheel-resident event, so the spill drains first and ordering is
// preserved. In steady state the spill is empty and costs one nil check.
const (
	wheelBits     = 8
	wheelSlots    = 1 << wheelBits // 256 slots per level
	wheelLevels   = 8              // 8 levels x 8 bits span the full clock
	wheelBuckets  = wheelLevels * wheelSlots
	wheelSlotMask = wheelSlots - 1
	spillBucket   = int32(wheelBuckets) // pseudo bucket id of the spill list
	noSlot        = int32(-1)
)

// bucketList is an intrusive doubly-linked list of slot ids; links live
// in the slot array's prev/next fields.
type bucketList struct{ head, tail int32 }

type wheelState struct {
	// Hot metadata first so cursor, counts and the occupancy index
	// share a handful of cache lines; the 16KB bucket array goes last.
	cur      uint64                               // cursor: <= every wheel-resident event time
	count    int                                  // pending events, spill included
	hot      int32                                // level-0 bucket being batch-drained, or noSlot
	lvlCount [wheelLevels]int32                   // events resident per level
	occ      [wheelLevels][wheelSlots / 64]uint64 // per-level occupancy bitmaps
	spill    bucketList
	buckets  [wheelBuckets]bucketList
}

func newWheelState() *wheelState {
	w := &wheelState{hot: noSlot, spill: bucketList{noSlot, noSlot}}
	for i := range w.buckets {
		w.buckets[i] = bucketList{noSlot, noSlot}
	}
	return w
}

// wheelInsert files a freshly allocated slot. Times behind the cursor
// (possible only after an aborted deadline descent) go to the spill.
func (s *Scheduler) wheelInsert(id int32, t Time) {
	w := s.wheel
	if uint64(t) < w.cur {
		s.spillInsert(id, t)
	} else {
		s.wheelFile(id, uint64(t))
	}
	w.count++
}

// wheelFile appends id to the bucket its time selects against the
// current cursor: level = most-significant differing byte, slot = that
// byte of t.
func (s *Scheduler) wheelFile(id int32, t uint64) {
	w := s.wheel
	lvl := uint(0)
	if d := t ^ w.cur; d != 0 {
		lvl = uint(63-bits.LeadingZeros64(d)) >> 3
	}
	lvl &= wheelLevels - 1 // free; lets the compiler drop bounds checks
	v := uint(t>>(lvl*wheelBits)) & wheelSlotMask
	b := int32(lvl)<<wheelBits | int32(v)
	w.lvlCount[lvl]++
	l := &w.buckets[(lvl<<wheelBits|v)&(wheelBuckets-1)]
	e := &s.events[id]
	e.where = b
	e.next = noSlot
	e.prev = l.tail
	if l.tail != noSlot {
		s.events[l.tail].next = id
	} else {
		l.head = id
		w.occ[lvl][v>>6] |= 1 << (v & 63)
	}
	l.tail = id
}

// spillInsert places id into the sorted spill list. Walking from the
// tail is right for the common pattern of roughly increasing times, and
// the list only ever holds the handful of events scheduled between an
// aborted descent and the next pop.
func (s *Scheduler) spillInsert(id int32, t Time) {
	w := s.wheel
	e := &s.events[id]
	e.where = spillBucket
	// Among equal times the new event has the largest seq, so it goes
	// after every existing event with at <= t.
	prev := w.spill.tail
	for prev != noSlot && s.events[prev].at > t {
		prev = s.events[prev].prev
	}
	if prev == noSlot {
		e.prev = noSlot
		e.next = w.spill.head
		if w.spill.head != noSlot {
			s.events[w.spill.head].prev = id
		} else {
			w.spill.tail = id
		}
		w.spill.head = id
	} else {
		e.prev = prev
		e.next = s.events[prev].next
		s.events[prev].next = id
		if e.next != noSlot {
			s.events[e.next].prev = id
		} else {
			w.spill.tail = id
		}
	}
}

// wheelUnlink splices id out of whichever list holds it (bucket or
// spill) and maintains the occupancy bitmap. O(1); used by both pop and
// Stop.
func (s *Scheduler) wheelUnlink(id int32) {
	w := s.wheel
	e := &s.events[id]
	b := e.where
	var l *bucketList
	if b == spillBucket {
		l = &w.spill
	} else {
		l = &w.buckets[b]
	}
	if e.prev != noSlot {
		s.events[e.prev].next = e.next
	} else {
		l.head = e.next
	}
	if e.next != noSlot {
		s.events[e.next].prev = e.prev
	} else {
		l.tail = e.prev
	}
	if b != spillBucket {
		lvl := int(b) >> wheelBits
		w.lvlCount[lvl]--
		if l.head == noSlot {
			v := int(b) & wheelSlotMask
			w.occ[lvl][v>>6] &^= 1 << (uint(v) & 63)
		}
	}
	w.count--
}

// scan finds the first occupied slot >= from at the given level.
func (w *wheelState) scan(lvl, from int) (int, bool) {
	if from >= wheelSlots {
		return 0, false
	}
	wi := from >> 6
	mask := ^uint64(0) << (uint(from) & 63)
	for ; wi < wheelSlots/64; wi++ {
		if bm := w.occ[lvl][wi] & mask; bm != 0 {
			return wi<<6 | bits.TrailingZeros64(bm), true
		}
		mask = ^uint64(0)
	}
	return 0, false
}

// wheelCascade re-files every event of bucket b against the advanced
// cursor. All levels below b's are empty when this runs (the cursor
// only advances into the lowest occupied level), so the head-to-tail
// append drain preserves relative order exactly.
func (s *Scheduler) wheelCascade(b int32) {
	w := s.wheel
	l := &w.buckets[b]
	id := l.head
	l.head, l.tail = noSlot, noSlot
	lvl, v := int(b)>>wheelBits, int(b)&wheelSlotMask
	w.occ[lvl][v>>6] &^= 1 << (uint(v) & 63)
	for id != noSlot {
		next := s.events[id].next
		w.lvlCount[lvl]--
		s.wheelFile(id, uint64(s.events[id].at))
		id = next
	}
}

// popBucketHead unlinks the head event e of level-0 bucket l (slot v),
// maintaining the occupancy bit and counts. A head has no prev link, so
// this is the general wheelUnlink with the dead branches stripped; it
// exists because pop is the single hottest operation in the engine.
func (s *Scheduler) popBucketHead(l *bucketList, e *event, v int) {
	w := s.wheel
	if e.next != noSlot {
		s.events[e.next].prev = noSlot
		l.head = e.next
	} else {
		l.head, l.tail = noSlot, noSlot
		w.occ[0][v>>6] &^= 1 << (uint(v) & 63)
	}
	w.lvlCount[0]--
	w.count--
}

// wheelNextBound is the read-only twin of wheelNext's descent: it
// reports the exact earliest pending event time without popping,
// cascading, or moving the cursor. Exactness at level >= 1 rests on the
// same structural facts as pop order: the lowest occupied level holds
// the global minimum (level separation), within that level the first
// occupied slot at or above the cursor's digit holds the smallest
// byte-l prefix, and that bucket's residents differ only in bytes below
// l — so the minimum `at` over one bucket list IS the global minimum.
// The walk costs O(bucket residents); sparse high-level buckets hold a
// handful of events, and the sharded engine calls this once per
// window, not per event.
func (s *Scheduler) wheelNextBound() (Time, bool) {
	w := s.wheel
	if w.count == 0 {
		return 0, false
	}
	if id := w.spill.head; id != noSlot {
		return s.events[id].at, true
	}
	if h := w.hot; h != noSlot {
		if id := w.buckets[h].head; id != noSlot {
			return s.events[id].at, true
		}
	}
	if w.lvlCount[0] > 0 {
		v, ok := w.scan(0, int(w.cur)&wheelSlotMask)
		if !ok {
			panic("sim: timing wheel level-0 count/bitmap mismatch")
		}
		return s.events[w.buckets[int32(v)].head].at, true
	}
	for lvl := 1; lvl < wheelLevels; lvl++ {
		if w.lvlCount[lvl] == 0 {
			continue
		}
		shift := uint(lvl) * wheelBits
		from := (int(w.cur>>shift) & wheelSlotMask) + 1
		v, ok := w.scan(lvl, from)
		if !ok {
			panic("sim: timing wheel level count/bitmap mismatch")
		}
		l := &w.buckets[int32(lvl)<<wheelBits|int32(v)]
		min := s.events[l.head].at
		for id := s.events[l.head].next; id != noSlot; id = s.events[id].next {
			if at := s.events[id].at; at < min {
				min = at
			}
		}
		return min, true
	}
	panic("sim: timing wheel lost an event")
}

// wheelNext pops the earliest (time, seq) event not after deadline, or
// reports that none qualifies. The popped slot is out of the wheel but
// not yet released.
func (s *Scheduler) wheelNext(deadline Time) (int32, bool) {
	w := s.wheel
	// Spill events (if any) precede everything in the wheel proper.
	if id := w.spill.head; id != noSlot {
		if s.events[id].at > deadline {
			return 0, false
		}
		s.wheelUnlink(id)
		return id, true
	}
	// Batched dispatch: drain the hot level-0 bucket without touching
	// the index. Everything else in the wheel fires strictly later, and
	// same-instant inserts append behind the head in seq order.
	if h := w.hot; h != noSlot {
		if id := w.buckets[h].head; id != noSlot {
			e := &s.events[id]
			if e.at > deadline {
				return 0, false
			}
			w.cur = uint64(e.at)
			s.popBucketHead(&w.buckets[h], e, int(h))
			return id, true
		}
		w.hot = noSlot
	}
	for w.count > 0 {
		// Lowest occupied level-0 slot at or above the cursor's low
		// byte holds the global minimum (level separation). The
		// per-level counts skip the bitmap scans entirely on empty
		// levels; on occupied ones the scan always hits, because every
		// resident of level l files at a slot strictly above the
		// cursor's digit l (equal high digits and t >= cur force
		// digit l of t above the cursor's).
		if w.lvlCount[0] > 0 {
			v, ok := w.scan(0, int(w.cur)&wheelSlotMask)
			if !ok {
				panic("sim: timing wheel level-0 count/bitmap mismatch")
			}
			b := int32(v)
			id := w.buckets[b].head
			e := &s.events[id]
			if e.at > deadline {
				return 0, false
			}
			w.hot = b
			// Rebase the cursor onto the popped time so subsequent
			// filings see the tightest window. Same level-0 block, so
			// no resident event falls behind the cursor.
			w.cur = uint64(e.at)
			s.popBucketHead(&w.buckets[b], e, v)
			return id, true
		}
		// Advance: find the lowest occupied level, enter its first
		// occupied window at or above the cursor, cascade it, rescan.
		cascaded := false
		for lvl := 1; lvl < wheelLevels; lvl++ {
			if w.lvlCount[lvl] == 0 {
				continue
			}
			shift := uint(lvl) * wheelBits
			from := (int(w.cur>>shift) & wheelSlotMask) + 1
			v, ok := w.scan(lvl, from)
			if !ok {
				panic("sim: timing wheel level count/bitmap mismatch")
			}
			// Keep digits above lvl, set digit lvl to v, zero the rest.
			// (lvl==7 makes the keep-mask shift count 64, which Go
			// defines as 0, i.e. keep nothing — exactly right.)
			windowStart := w.cur&^(uint64(1)<<(shift+wheelBits)-1) | uint64(v)<<shift
			if windowStart > uint64(deadline) {
				// Nothing due by the deadline. The cursor may already
				// sit past `now` from committed windows; inserts behind
				// it go to the spill.
				return 0, false
			}
			b := int32(lvl)<<wheelBits | int32(v)
			if l := &w.buckets[b]; l.head == l.tail {
				// Single resident. Every level below is empty and
				// every other slot fires strictly later, so this is
				// the global minimum: pop it directly instead of
				// cascading it down level by level. This is the
				// common case whenever event spacing exceeds the
				// 256-ps level-0 window, i.e. almost always. (A
				// same-instant re-arm from its callback files at
				// level 0 against the rebased cursor and is found by
				// the level-0 count check on the next pop, so the hot
				// bucket is left alone here.)
				id := l.head
				if s.events[id].at > deadline {
					return 0, false
				}
				w.cur = uint64(s.events[id].at)
				// Sole occupant: unlink is just emptying the bucket.
				l.head, l.tail = noSlot, noSlot
				w.occ[lvl][v>>6] &^= 1 << (uint(v) & 63)
				w.lvlCount[lvl]--
				w.count--
				return id, true
			}
			w.cur = windowStart
			s.wheelCascade(b)
			cascaded = true
			break
		}
		if !cascaded {
			panic("sim: timing wheel lost an event")
		}
	}
	return 0, false
}
