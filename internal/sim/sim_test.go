package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1_000_000_000_000*Picosecond {
		t.Fatalf("second = %d ps", int64(Second))
	}
	if got := (2500 * Microsecond).Millis(); got != 2.5 {
		t.Fatalf("Millis = %v", got)
	}
	if got := (3 * Microsecond).Micros(); got != 3 {
		t.Fatalf("Micros = %v", got)
	}
	if got := (Second / 2).Seconds(); got != 0.5 {
		t.Fatalf("Seconds = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{2 * Second, "2s"},
		{3 * Millisecond, "3ms"},
		{7 * Microsecond, "7us"},
		{500 * Nanosecond, "500ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestRunOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30*Nanosecond, func() { got = append(got, 3) })
	s.At(10*Nanosecond, func() { got = append(got, 1) })
	s.At(20*Nanosecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*Nanosecond {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*Nanosecond, func() { got = append(got, i) })
	}
	s.Run()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-time events ran out of order: %v", got)
	}
}

func TestAfterFromWithinEvent(t *testing.T) {
	s := NewScheduler()
	var fired Time
	s.At(10*Nanosecond, func() {
		s.After(5*Nanosecond, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 15*Nanosecond {
		t.Fatalf("nested After fired at %v", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5*Nanosecond, func() {})
	})
	s.Run()
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	s := NewScheduler()
	ran := false
	s.After(-5*Nanosecond, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("negative After never ran")
	}
	if s.Now() != 0 {
		t.Fatalf("now = %v, want 0", s.Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler()
	ran := false
	tm := s.After(10*Nanosecond, func() { ran = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Stop() {
		t.Fatal("Stop returned false for pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	s.Run()
	if ran {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := NewScheduler()
	tm := s.After(1*Nanosecond, func() {})
	s.Run()
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	if tm.Stop() {
		t.Fatal("Stop on fired timer returned true")
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := NewScheduler()
	var count int
	for i := 1; i <= 10; i++ {
		s.At(Time(i)*Nanosecond, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
	if s.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", s.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	var count int
	for i := 1; i <= 10; i++ {
		s.At(Time(i)*Microsecond, func() { count++ })
	}
	n := s.RunUntil(5 * Microsecond)
	if n != 5 || count != 5 {
		t.Fatalf("ran %d/%d events, want 5", n, count)
	}
	if s.Now() != 5*Microsecond {
		t.Fatalf("now = %v", s.Now())
	}
	s.Run()
	if count != 10 {
		t.Fatalf("total = %d, want 10", count)
	}
}

func TestRunUntilAdvancesClockWhenIdle(t *testing.T) {
	s := NewScheduler()
	s.RunUntil(3 * Millisecond)
	if s.Now() != 3*Millisecond {
		t.Fatalf("idle RunUntil left clock at %v", s.Now())
	}
}

func TestEventLimit(t *testing.T) {
	s := NewScheduler()
	s.Limit = 4
	var count int
	for i := 1; i <= 10; i++ {
		s.At(Time(i)*Nanosecond, func() { count++ })
	}
	s.Run()
	if count != 4 {
		t.Fatalf("limit ignored: ran %d", count)
	}
}

// Property: for any set of delays, events execute in nondecreasing time
// order and the executed count matches the scheduled count.
func TestPropertyOrdering(t *testing.T) {
	prop := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		s := NewScheduler()
		var times []Time
		for _, d := range delays {
			s.After(Time(d)*Nanosecond, func() { times = append(times, s.Now()) })
		}
		s.Run()
		if len(times) != len(delays) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset of timers fires exactly the others.
func TestPropertyCancellation(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler()
		total := int(n%64) + 1
		fired := make([]bool, total)
		timers := make([]*Timer, total)
		for i := 0; i < total; i++ {
			i := i
			timers[i] = s.After(Time(rng.Intn(1000))*Nanosecond, func() { fired[i] = true })
		}
		cancelled := make([]bool, total)
		for i := 0; i < total; i++ {
			if rng.Intn(2) == 0 {
				cancelled[i] = timers[i].Stop()
			}
		}
		s.Run()
		for i := 0; i < total; i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduler(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	var fn func()
	remaining := b.N
	fn = func() {
		remaining--
		if remaining > 0 {
			s.After(Nanosecond, fn)
		}
	}
	s.After(Nanosecond, fn)
	b.ResetTimer()
	s.Run()
}
