package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// forEachImpl runs a scheduler-behavior test under both queue
// implementations. The engine contract is identical for heap and wheel,
// so every behavioral test in this file asserts on both.
func forEachImpl(t *testing.T, f func(t *testing.T, newSched func() *Scheduler)) {
	for _, impl := range []Impl{Heap, Wheel} {
		impl := impl
		t.Run(impl.String(), func(t *testing.T) {
			f(t, func() *Scheduler { return NewSchedulerImpl(impl) })
		})
	}
}

func TestTimeUnits(t *testing.T) {
	if Second != 1_000_000_000_000*Picosecond {
		t.Fatalf("second = %d ps", int64(Second))
	}
	if got := (2500 * Microsecond).Millis(); got != 2.5 {
		t.Fatalf("Millis = %v", got)
	}
	if got := (3 * Microsecond).Micros(); got != 3 {
		t.Fatalf("Micros = %v", got)
	}
	if got := (Second / 2).Seconds(); got != 0.5 {
		t.Fatalf("Seconds = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{2 * Second, "2s"},
		{3 * Millisecond, "3ms"},
		{7 * Microsecond, "7us"},
		{500 * Nanosecond, "500ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestParseImpl(t *testing.T) {
	cases := []struct {
		in   string
		want Impl
		ok   bool
	}{
		{"", Wheel, true},
		{"wheel", Wheel, true},
		{"heap", Heap, true},
		{"btree", Wheel, false},
	}
	for _, c := range cases {
		got, err := ParseImpl(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseImpl(%q) = %v, %v", c.in, got, err)
		}
	}
	if NewScheduler().Impl() != Wheel {
		t.Error("NewScheduler default is not the wheel")
	}
}

func TestRunOrdering(t *testing.T) {
	forEachImpl(t, func(t *testing.T, newSched func() *Scheduler) {
		s := newSched()
		var got []int
		s.At(30*Nanosecond, func() { got = append(got, 3) })
		s.At(10*Nanosecond, func() { got = append(got, 1) })
		s.At(20*Nanosecond, func() { got = append(got, 2) })
		s.Run()
		want := []int{1, 2, 3}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("order = %v, want %v", got, want)
			}
		}
		if s.Now() != 30*Nanosecond {
			t.Fatalf("now = %v", s.Now())
		}
	})
}

func TestFIFOTieBreak(t *testing.T) {
	forEachImpl(t, func(t *testing.T, newSched func() *Scheduler) {
		s := newSched()
		var got []int
		for i := 0; i < 10; i++ {
			i := i
			s.At(5*Nanosecond, func() { got = append(got, i) })
		}
		s.Run()
		if !sort.IntsAreSorted(got) {
			t.Fatalf("same-time events ran out of order: %v", got)
		}
	})
}

func TestAfterFromWithinEvent(t *testing.T) {
	forEachImpl(t, func(t *testing.T, newSched func() *Scheduler) {
		s := newSched()
		var fired Time
		s.At(10*Nanosecond, func() {
			s.After(5*Nanosecond, func() { fired = s.Now() })
		})
		s.Run()
		if fired != 15*Nanosecond {
			t.Fatalf("nested After fired at %v", fired)
		}
	})
}

func TestSchedulePastPanics(t *testing.T) {
	forEachImpl(t, func(t *testing.T, newSched func() *Scheduler) {
		s := newSched()
		s.At(10*Nanosecond, func() {
			defer func() {
				if recover() == nil {
					t.Error("scheduling in the past did not panic")
				}
			}()
			s.At(5*Nanosecond, func() {})
		})
		s.Run()
	})
}

func TestNegativeAfterPanics(t *testing.T) {
	forEachImpl(t, func(t *testing.T, newSched func() *Scheduler) {
		s := newSched()
		defer func() {
			if recover() == nil {
				t.Error("negative After did not panic")
			}
		}()
		s.After(-5*Nanosecond, func() {})
	})
}

// After past MaxTime must panic loudly rather than wrap the int64 clock
// into the past and corrupt event order.
func TestAfterOverflowPanics(t *testing.T) {
	forEachImpl(t, func(t *testing.T, newSched func() *Scheduler) {
		s := newSched()
		s.At(Second, func() {
			defer func() {
				if recover() == nil {
					t.Error("After past MaxTime did not panic")
				}
			}()
			s.After(MaxTime, func() {})
		})
		s.Run()
		// The boundary itself is schedulable.
		fired := false
		tm := s.At(MaxTime, func() { fired = true })
		if !tm.Pending() {
			t.Fatal("MaxTime timer not pending")
		}
		s.Run()
		if !fired {
			t.Fatal("MaxTime timer never fired")
		}
	})
}

func TestTimerStop(t *testing.T) {
	forEachImpl(t, func(t *testing.T, newSched func() *Scheduler) {
		s := newSched()
		ran := false
		tm := s.After(10*Nanosecond, func() { ran = true })
		if !tm.Pending() {
			t.Fatal("timer should be pending")
		}
		if !tm.Stop() {
			t.Fatal("Stop returned false for pending timer")
		}
		if tm.Stop() {
			t.Fatal("second Stop returned true")
		}
		s.Run()
		if ran {
			t.Fatal("stopped timer fired")
		}
	})
}

func TestTimerStopAfterFire(t *testing.T) {
	forEachImpl(t, func(t *testing.T, newSched func() *Scheduler) {
		s := newSched()
		tm := s.After(1*Nanosecond, func() {})
		s.Run()
		if tm.Pending() {
			t.Fatal("fired timer still pending")
		}
		if tm.Stop() {
			t.Fatal("Stop on fired timer returned true")
		}
	})
}

func TestStopHaltsRun(t *testing.T) {
	forEachImpl(t, func(t *testing.T, newSched func() *Scheduler) {
		s := newSched()
		var count int
		for i := 1; i <= 10; i++ {
			s.At(Time(i)*Nanosecond, func() {
				count++
				if count == 3 {
					s.Stop()
				}
			})
		}
		s.Run()
		if count != 3 {
			t.Fatalf("ran %d events after Stop, want 3", count)
		}
		if s.Pending() != 7 {
			t.Fatalf("pending = %d, want 7", s.Pending())
		}
	})
}

func TestRunUntil(t *testing.T) {
	forEachImpl(t, func(t *testing.T, newSched func() *Scheduler) {
		s := newSched()
		var count int
		for i := 1; i <= 10; i++ {
			s.At(Time(i)*Microsecond, func() { count++ })
		}
		n := s.RunUntil(5 * Microsecond)
		if n != 5 || count != 5 {
			t.Fatalf("ran %d/%d events, want 5", n, count)
		}
		if s.Now() != 5*Microsecond {
			t.Fatalf("now = %v", s.Now())
		}
		s.Run()
		if count != 10 {
			t.Fatalf("total = %d, want 10", count)
		}
	})
}

func TestRunUntilAdvancesClockWhenIdle(t *testing.T) {
	forEachImpl(t, func(t *testing.T, newSched func() *Scheduler) {
		s := newSched()
		s.RunUntil(3 * Millisecond)
		if s.Now() != 3*Millisecond {
			t.Fatalf("idle RunUntil left clock at %v", s.Now())
		}
	})
}

func TestEventLimit(t *testing.T) {
	forEachImpl(t, func(t *testing.T, newSched func() *Scheduler) {
		s := newSched()
		s.Limit = 4
		var count int
		for i := 1; i <= 10; i++ {
			s.At(Time(i)*Nanosecond, func() { count++ })
		}
		s.Run()
		if count != 4 {
			t.Fatalf("limit ignored: ran %d", count)
		}
	})
}

// Property: for any set of delays, events execute in nondecreasing time
// order and the executed count matches the scheduled count.
func TestPropertyOrdering(t *testing.T) {
	forEachImpl(t, func(t *testing.T, newSched func() *Scheduler) {
		prop := func(delays []uint16) bool {
			if len(delays) == 0 {
				return true
			}
			s := newSched()
			var times []Time
			for _, d := range delays {
				s.After(Time(d)*Nanosecond, func() { times = append(times, s.Now()) })
			}
			s.Run()
			if len(times) != len(delays) {
				return false
			}
			for i := 1; i < len(times); i++ {
				if times[i] < times[i-1] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatal(err)
		}
	})
}

// Property: cancelling a random subset of timers fires exactly the others.
func TestPropertyCancellation(t *testing.T) {
	forEachImpl(t, func(t *testing.T, newSched func() *Scheduler) {
		prop := func(seed int64, n uint8) bool {
			rng := rand.New(rand.NewSource(seed))
			s := newSched()
			total := int(n%64) + 1
			fired := make([]bool, total)
			timers := make([]Timer, total)
			for i := 0; i < total; i++ {
				i := i
				timers[i] = s.After(Time(rng.Intn(1000))*Nanosecond, func() { fired[i] = true })
			}
			cancelled := make([]bool, total)
			for i := 0; i < total; i++ {
				if rng.Intn(2) == 0 {
					cancelled[i] = timers[i].Stop()
				}
			}
			s.Run()
			for i := 0; i < total; i++ {
				if fired[i] == cancelled[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatal(err)
		}
	})
}

// A zero Timer must behave like a long-dead one: not pending, Stop is a
// no-op. Protocol code relies on this instead of nil-pointer checks.
func TestZeroTimer(t *testing.T) {
	var tm Timer
	if tm.Pending() {
		t.Fatal("zero timer pending")
	}
	if tm.Stop() {
		t.Fatal("Stop on zero timer returned true")
	}
}

// A handle from a fired event must stay dead after its slot is recycled:
// stopping it must not cancel the slot's new occupant.
func TestStaleHandleAfterSlotReuse(t *testing.T) {
	forEachImpl(t, func(t *testing.T, newSched func() *Scheduler) {
		s := newSched()
		stale := s.After(1*Nanosecond, func() {})
		s.Run()
		// The freelist is LIFO and empty, so this reuses stale's slot.
		ran := false
		fresh := s.After(1*Nanosecond, func() { ran = true })
		if stale.Pending() {
			t.Fatal("stale handle reports pending after slot reuse")
		}
		if stale.Stop() {
			t.Fatal("stale handle stopped the slot's new occupant")
		}
		if !fresh.Pending() {
			t.Fatal("fresh timer lost")
		}
		s.Run()
		if !ran {
			t.Fatal("fresh timer never fired")
		}
	})
}

// Same-time events must run in scheduling order even when cancellations
// in between force index churn (heap rebuilds, wheel bucket unlinks).
func TestFIFOTieBreakAcrossHeapRebuilds(t *testing.T) {
	forEachImpl(t, func(t *testing.T, newSched func() *Scheduler) {
		s := newSched()
		var got []int
		var victims []Timer
		for round := 0; round < 5; round++ {
			for i := 0; i < 8; i++ {
				id := round*8 + i
				s.At(5*Nanosecond, func() { got = append(got, id) })
				// Interleave far-future victims whose removal reshapes the index.
				victims = append(victims, s.At(Time(100+id)*Nanosecond, func() {
					t.Errorf("victim %d fired", id)
				}))
			}
			// Cancel the odd victims now, while the tied events are queued.
			for i := len(victims) - 1; i >= 0; i -= 2 {
				victims[i].Stop()
			}
		}
		for _, v := range victims {
			v.Stop()
		}
		s.Run()
		if len(got) != 40 || !sort.IntsAreSorted(got) {
			t.Fatalf("tied events ran out of order after rebuilds: %v", got)
		}
	})
}

// When Limit truncates a RunUntil mid-deadline, the clock must stay at
// the last executed event, not jump to the deadline: events remain.
func TestRunUntilLimitClockPlacement(t *testing.T) {
	forEachImpl(t, func(t *testing.T, newSched func() *Scheduler) {
		s := newSched()
		s.Limit = 3
		for i := 1; i <= 10; i++ {
			s.At(Time(i)*Microsecond, func() {})
		}
		s.RunUntil(8 * Microsecond)
		if s.Now() != 3*Microsecond {
			t.Fatalf("clock at %v after Limit truncation, want 3us", s.Now())
		}
		if s.Pending() != 7 {
			t.Fatalf("pending = %d, want 7", s.Pending())
		}
	})
}

// A timer must observe itself as not pending from inside its own
// callback, and re-arming from the callback must yield a live handle.
func TestTimerNotPendingDuringFire(t *testing.T) {
	forEachImpl(t, func(t *testing.T, newSched func() *Scheduler) {
		s := newSched()
		var tm Timer
		var rearmed Timer
		tm = s.After(1*Nanosecond, func() {
			if tm.Pending() {
				t.Error("timer pending inside its own callback")
			}
			if tm.Stop() {
				t.Error("Stop inside own callback returned true")
			}
			rearmed = s.After(1*Nanosecond, func() {})
		})
		s.RunUntil(1 * Nanosecond)
		if !rearmed.Pending() {
			t.Fatal("re-armed timer not pending")
		}
	})
}

// Fired and cancelled slots must be recycled: steady-state churn may not
// grow slot storage beyond the peak number of concurrently-pending events.
func TestSlotRecycling(t *testing.T) {
	forEachImpl(t, func(t *testing.T, newSched func() *Scheduler) {
		s := newSched()
		for i := 0; i < 1000; i++ {
			s.After(1*Nanosecond, func() {})
			keep := s.After(2*Nanosecond, func() {})
			keep.Stop()
			s.Run()
		}
		if cap(s.events) > 8 {
			t.Fatalf("slot storage grew to %d for 2 concurrent events", cap(s.events))
		}
	})
}

func BenchmarkScheduler(b *testing.B) {
	for _, impl := range []Impl{Heap, Wheel} {
		impl := impl
		b.Run(impl.String(), func(b *testing.B) {
			s := NewSchedulerImpl(impl)
			b.ReportAllocs()
			var fn func()
			remaining := b.N
			fn = func() {
				remaining--
				if remaining > 0 {
					s.After(Nanosecond, fn)
				}
			}
			s.After(Nanosecond, fn)
			b.ResetTimer()
			s.Run()
		})
	}
}
