package sim

import (
	"math/rand"
	"testing"
)

// Events at the same instant must fire in scheduling order even when
// they were filed at different wheel levels: A enters at level 2, is
// cascaded down to level 1 by an intermediate pop, B then files at
// level 1 directly, C files at level 0 after a closer pop. FIFO must
// hold across all three paths.
func TestWheelSameTickFIFOAcrossCascade(t *testing.T) {
	s := NewScheduler()
	const T = 100_000 * Picosecond // 0x186A0: level 2 from cursor 0
	var got []string
	s.At(T, func() { got = append(got, "A") })
	// Popping this marker advances the cursor into A's level-2 window,
	// cascading A down to level 1.
	s.At(70_000*Picosecond, func() {
		s.At(T, func() { got = append(got, "B") }) // files at level 1
	})
	s.At(99_000*Picosecond, func() {
		s.At(T, func() { got = append(got, "C") }) // files at level 0
	})
	s.Run()
	if len(got) != 3 || got[0] != "A" || got[1] != "B" || got[2] != "C" {
		t.Fatalf("same-tick order across cascades = %v, want [A B C]", got)
	}
}

// Stopping an event that has already been cascaded to a lower level must
// still unlink it in O(1) and keep it from firing.
func TestWheelStopAfterCascade(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.At(100_000*Picosecond, func() { fired = true })
	var stopped bool
	s.At(70_000*Picosecond, func() {
		// A has been cascaded out of its original level-2 bucket by the
		// descent that reached this event.
		stopped = tm.Stop()
	})
	s.Run()
	if !stopped {
		t.Fatal("Stop after cascade returned false")
	}
	if fired {
		t.Fatal("stopped event fired after cascade")
	}
	if tm.Pending() || tm.Stop() {
		t.Fatal("dead timer came back")
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", s.Pending())
	}
}

// Timers landing exactly on level boundaries (byte carries in the time)
// must fire in time order; off-by-one filing at a boundary would reorder
// or strand them.
func TestWheelLevelBoundaryTimers(t *testing.T) {
	s := NewScheduler()
	var times []Time
	boundary := []Time{
		255, 256, 257,
		65_535, 65_536, 65_537,
		1<<24 - 1, 1 << 24, 1<<24 + 1,
		1 << 32, 1 << 40, 1 << 48, 1 << 56,
		1<<56 + 1,
	}
	// Insert in scrambled order so filing happens at several levels.
	for _, i := range []int{7, 0, 13, 3, 10, 1, 8, 5, 12, 2, 9, 4, 11, 6} {
		s.At(boundary[i], func() { times = append(times, s.Now()) })
	}
	s.Run()
	if len(times) != len(boundary) {
		t.Fatalf("fired %d of %d boundary timers", len(times), len(boundary))
	}
	for i, at := range boundary {
		if times[i] != at {
			t.Fatalf("boundary timer %d fired at %v, want %v", i, times[i], at)
		}
	}
}

// A slot's generation stamp must survive cascading: a handle that died
// before its slot's occupant was cascaded (or that fired after a
// cascade) must stay dead once the slot is reused.
func TestWheelGenerationSurvivesCascade(t *testing.T) {
	s := NewScheduler()
	stale := s.At(100_000*Picosecond, func() {})
	s.At(70_000*Picosecond, func() {}) // forces a cascade of stale's bucket
	s.Run()
	// stale's slot is now on the freelist (LIFO); this reuses it.
	ran := false
	fresh := s.After(100_000*Picosecond, func() { ran = true })
	if stale.Pending() {
		t.Fatal("stale handle pending after cascade + reuse")
	}
	if stale.Stop() {
		t.Fatal("stale handle cancelled the slot's new occupant")
	}
	if !fresh.Pending() {
		t.Fatal("fresh occupant lost")
	}
	s.At(s.Now()+70_000*Picosecond, func() {}) // cascade the fresh occupant too
	s.Run()
	if !ran {
		t.Fatal("fresh occupant never fired")
	}
}

// When RunUntil aborts a descent at its deadline, the wheel cursor can
// legitimately sit ahead of the clock. Later inserts between now and
// the cursor must still fire, in (time, seq) order, ahead of everything
// in the wheel: that is the spill path.
func TestWheelSpillAfterAbortedDescent(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(1000*Picosecond, func() { got = append(got, 1000) })
	s.At(1001*Picosecond, func() { got = append(got, 1001) })
	// 1000/1001 = 0x3E8/0x3E9 share a level-1 bucket (two occupants, so
	// the single-resident fast path does not apply); the descent toward
	// them commits the cursor to 0x300 and cascades before discovering
	// 1000 > 999 and giving up.
	if n := s.RunUntil(999 * Picosecond); n != 0 {
		t.Fatalf("ran %d events before the deadline", n)
	}
	if s.wheel.cur == 0 {
		t.Fatal("descent did not advance the cursor; spill path not exercised")
	}
	// These land behind the cursor.
	s.At(500*Picosecond, func() { got = append(got, 500) })
	s.At(500*Picosecond, func() { got = append(got, 501) }) // same-time FIFO
	s.At(600*Picosecond, func() { got = append(got, 600) })
	dead := s.At(550*Picosecond, func() { t.Error("stopped spill event fired") })
	if s.wheel.spill.head == noSlot {
		t.Fatal("inserts behind the cursor did not reach the spill list")
	}
	if !dead.Stop() {
		t.Fatal("Stop on a spill event returned false")
	}
	s.Run()
	want := []int{500, 501, 600, 1000, 1001}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// The differential test: replay a long randomized stream of mixed
// Schedule / Stop / Reschedule / RunUntil operations through a heap and
// a wheel scheduler in lockstep, asserting the two produce exactly the
// same pop sequence, clocks, and Stop results. This is the strongest
// pin on the wheel's (time, seq) order: any filing, cascade, spill, or
// hot-bucket bug shows up as a divergence.
func TestHeapWheelDifferential(t *testing.T) {
	ops := 2_000_000
	if testing.Short() {
		ops = 200_000
	}
	rng := rand.New(rand.NewSource(42))
	h := NewSchedulerImpl(Heap)
	w := NewSchedulerImpl(Wheel)

	var hOrder, wOrder []uint64
	type pair struct {
		th, tw Timer
	}
	var live []pair
	var token uint64

	randDelay := func() Time {
		switch rng.Intn(10) {
		case 0:
			return 0 // same-instant: hot-bucket appends
		case 1:
			return Time(1) << uint(rng.Intn(40)) // exact level boundaries
		default:
			// Log-uniform magnitudes so every wheel level sees traffic.
			return Time(rng.Int63n(int64(1)<<uint(rng.Intn(36)) + 1))
		}
	}
	schedule := func() {
		tk := token
		token++
		d := randDelay()
		at := h.Now() + d
		live = append(live, pair{
			th: h.At(at, func() { hOrder = append(hOrder, tk) }),
			tw: w.At(at, func() { wOrder = append(wOrder, tk) }),
		})
	}
	compare := func() {
		if len(hOrder) != len(wOrder) {
			t.Fatalf("pop counts diverged: heap %d, wheel %d", len(hOrder), len(wOrder))
		}
		for i := range hOrder {
			if hOrder[i] != wOrder[i] {
				t.Fatalf("pop order diverged at %d: heap token %d, wheel token %d",
					i, hOrder[i], wOrder[i])
			}
		}
		hOrder, wOrder = hOrder[:0], wOrder[:0]
		if h.Now() != w.Now() {
			t.Fatalf("clocks diverged: heap %v, wheel %v", h.Now(), w.Now())
		}
		if h.Pending() != w.Pending() {
			t.Fatalf("pending diverged: heap %d, wheel %d", h.Pending(), w.Pending())
		}
		hAt, hOK := h.NextAtBound()
		wAt, wOK := w.NextAtBound()
		if hAt != wAt || hOK != wOK {
			t.Fatalf("NextAtBound diverged: heap (%v, %v), wheel (%v, %v)",
				hAt, hOK, wAt, wOK)
		}
	}

	for i := 0; i < ops; i++ {
		switch r := rng.Intn(100); {
		case r < 55:
			schedule()
		case r < 70: // stop a random handle (live or stale — both must agree)
			if len(live) == 0 {
				continue
			}
			j := rng.Intn(len(live))
			p := live[j]
			sh, sw := p.th.Stop(), p.tw.Stop()
			if sh != sw {
				t.Fatalf("Stop diverged at op %d: heap %v, wheel %v", i, sh, sw)
			}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		case r < 80: // reschedule = stop + fresh schedule
			if len(live) > 0 {
				j := rng.Intn(len(live))
				p := live[j]
				if sh, sw := p.th.Stop(), p.tw.Stop(); sh != sw {
					t.Fatalf("Stop diverged at op %d: heap %v, wheel %v", i, sh, sw)
				}
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			schedule()
		default: // run up to a random deadline; aborted descents feed the spill
			d := randDelay()
			nh := h.RunUntil(h.Now() + d)
			nw := w.RunUntil(w.Now() + d)
			if nh != nw {
				t.Fatalf("RunUntil executed %d on heap, %d on wheel at op %d", nh, nw, i)
			}
			compare()
		}
		// Keep the handle table bounded; pruning by Pending keeps both
		// sides in lockstep since pendingness must already agree.
		if len(live) > 1<<16 {
			kept := live[:0]
			for _, p := range live {
				if p.th.Pending() {
					kept = append(kept, p)
				}
			}
			live = kept
		}
	}
	nh := h.Run()
	nw := w.Run()
	if nh != nw {
		t.Fatalf("final drain executed %d on heap, %d on wheel", nh, nw)
	}
	compare()
	if h.Executed != w.Executed {
		t.Fatalf("Executed diverged: heap %d, wheel %d", h.Executed, w.Executed)
	}
	if h.Pending() != 0 {
		t.Fatalf("events left after drain: %d", h.Pending())
	}
}

// TestNextAtBoundExactDifferential pins NextAtBound's exactness: after
// every randomized Schedule / Stop / RunUntil operation, the wheel's
// bound must equal the heap's root timestamp — not merely lower-bound
// it. Delays are drawn log-uniform so the earliest event regularly
// lives in a multi-resident higher-level bucket (the case the old
// implementation answered with the coarse window start), and aborted
// RunUntil descents exercise the spill-list branch.
func TestNextAtBoundExactDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	h := NewSchedulerImpl(Heap)
	w := NewSchedulerImpl(Wheel)

	type pair struct{ th, tw Timer }
	var live []pair
	check := func(op string, i int) {
		hAt, hOK := h.NextAtBound()
		wAt, wOK := w.NextAtBound()
		if hAt != wAt || hOK != wOK {
			t.Fatalf("op %d (%s): NextAtBound heap (%v, %v) != wheel (%v, %v)",
				i, op, hAt, hOK, wAt, wOK)
		}
	}
	randDelay := func() Time {
		if rng.Intn(8) == 0 {
			return Time(1) << uint(rng.Intn(40)) // exact level boundaries
		}
		return Time(rng.Int63n(int64(1)<<uint(rng.Intn(36)) + 1))
	}

	for i := 0; i < 30_000; i++ {
		switch r := rng.Intn(100); {
		case r < 60:
			at := h.Now() + randDelay()
			live = append(live, pair{
				th: h.At(at, func() {}),
				tw: w.At(at, func() {}),
			})
			check("schedule", i)
		case r < 75:
			if len(live) == 0 {
				continue
			}
			j := rng.Intn(len(live))
			p := live[j]
			if sh, sw := p.th.Stop(), p.tw.Stop(); sh != sw {
				t.Fatalf("op %d: Stop diverged heap %v wheel %v", i, sh, sw)
			}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			check("stop", i)
		default:
			d := randDelay()
			if nh, nw := h.RunUntil(h.Now()+d), w.RunUntil(w.Now()+d); nh != nw {
				t.Fatalf("op %d: RunUntil ran %d on heap, %d on wheel", i, nh, nw)
			}
			check("rununtil", i)
		}
		if len(live) > 1<<14 {
			kept := live[:0]
			for _, p := range live {
				if p.th.Pending() {
					kept = append(kept, p)
				}
			}
			live = kept
		}
	}
	if nh, nw := h.Run(), w.Run(); nh != nw {
		t.Fatalf("final drain ran %d on heap, %d on wheel", nh, nw)
	}
	check("drain", -1)
}
