// Package cache is a deterministic, content-addressed result cache for
// experiment cells. Nine PRs of engine work made every simulation cell a
// pure function of its outcome-relevant inputs — byte-identical across
// scheduler implementation, shard count, worker count, streaming, and
// spill (pinned by the golden matrix). This package banks that
// guarantee: a cell's result is stored under the SHA-256 of a canonical,
// versioned encoding of those inputs plus a code epoch, so a repeated
// sweep replays from disk instead of recomputing ~10^7 events per cell.
//
// Contracts:
//
//   - Keys are built by the caller (internal/exp) from outcome-relevant
//     fields only; engine knobs that the golden matrix proves invisible
//     (sched, shards, stream, spill chunk, parallelism, fastpath) are
//     excluded, so a result computed on one engine configuration hits on
//     every other.
//   - Values are stats.Summary plus the row's extra metrics, encoded
//     with float64s as raw IEEE-754 bits — no JSON round-trip, so NaN
//     payloads and negative zero survive and a byte-compare of two
//     encodings is exactly a bit-compare of two results.
//   - Writes are atomic (temp file + rename in the same directory), so
//     readers never see a torn entry even with concurrent writers.
//   - Any defect in a stored entry — truncation, garbage, a schema or
//     key mismatch — degrades to a miss with a warning. The cache never
//     fails a run.
//   - Verify mode recomputes on every hit and byte-compares the stored
//     encoding against the fresh one: a standing cross-machine (and
//     cross-engine) determinism tripwire.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"ppt/internal/stats"
)

// Key addresses one cell result: SHA-256 over the schema version, the
// code epoch, and the caller's canonical cell descriptor.
type Key [sha256.Size]byte

func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Value is one cached cell result: the FCT summary plus the cell's
// extra metrics (utilization, drops, efficiency...). Extra may be nil.
type Value struct {
	Sum   stats.Summary
	Extra map[string]float64
}

// clone returns a Value whose Extra map is private to the caller, so
// cells that landed on the same key can't alias each other's rows.
func (v Value) clone() Value {
	if v.Extra == nil {
		return v
	}
	m := make(map[string]float64, len(v.Extra))
	for k, x := range v.Extra {
		m[k] = x
	}
	v.Extra = m
	return v
}

// Stats is a snapshot of the cache's accounting. Counter fields are
// totals since Open (or deltas, from Delta); Bytes is the absolute size
// of the cache directory's entries.
type Stats struct {
	Hits       uint64 // lookups answered from disk
	Misses     uint64 // lookups that computed and stored
	Shared     uint64 // lookups answered by an identical in-flight cell
	Stores     uint64 // entries written
	Verified   uint64 // verify-mode recomputations compared
	Mismatches uint64 // verify-mode comparisons that diverged
	Evictions  uint64 // entries removed by the startup size cap
	Bytes      int64  // bytes of entries on disk
}

// Delta returns s minus a previous snapshot, counter-wise. Bytes stays
// absolute: it describes the directory, not an interval.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Hits:       s.Hits - prev.Hits,
		Misses:     s.Misses - prev.Misses,
		Shared:     s.Shared - prev.Shared,
		Stores:     s.Stores - prev.Stores,
		Verified:   s.Verified - prev.Verified,
		Mismatches: s.Mismatches - prev.Mismatches,
		Evictions:  s.Evictions - prev.Evictions,
		Bytes:      s.Bytes,
	}
}

func (s Stats) String() string {
	out := fmt.Sprintf("%d hits, %d misses, %d stores, %.1f MB",
		s.Hits+s.Shared, s.Misses, s.Stores, float64(s.Bytes)/1e6)
	if s.Verified > 0 || s.Mismatches > 0 {
		out += fmt.Sprintf(", %d verified, %d MISMATCHES", s.Verified, s.Mismatches)
	}
	if s.Evictions > 0 {
		out += fmt.Sprintf(", %d evicted", s.Evictions)
	}
	return out
}

// Cache is one result-cache directory. Safe for concurrent use by the
// experiment worker pool; multiple processes may share a directory (the
// atomic rename keeps entries whole; last writer wins).
type Cache struct {
	dir   string
	epoch string

	hits, misses, shared, stores    atomic.Uint64
	verified, mismatches, evictions atomic.Uint64
	bytes                           atomic.Int64

	// inflight dedups identical keys being computed concurrently inside
	// one invocation: the first cell computes, siblings wait and share.
	mu       sync.Mutex
	inflight map[Key]*flight
}

type flight struct {
	done chan struct{}
	val  Value
	ok   bool // false when the computing cell panicked
}

// Open prepares dir as a cache directory: creates it, probes
// writability (so a bad -cache flag fails in milliseconds, not after a
// long run), and — when maxBytes > 0 — evicts least-recently-modified
// entries until the remainder fits the cap.
func Open(dir string, maxBytes int64) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	probe, err := os.CreateTemp(dir, "probe-*")
	if err != nil {
		return nil, fmt.Errorf("cache: directory %s is not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())

	c := &Cache{dir: dir, epoch: codeEpoch(), inflight: map[Key]*flight{}}
	if err := c.sweep(maxBytes); err != nil {
		return nil, err
	}
	return c, nil
}

// sweep totals the existing entries and applies the startup size cap:
// mtime-LRU eviction until total <= maxBytes (0 = uncapped).
func (c *Cache) sweep(maxBytes int64) error {
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	type entry struct {
		name  string
		size  int64
		mtime int64
	}
	var entries []entry
	var total int64
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != fileSuffix {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // raced with a concurrent eviction; skip
		}
		entries = append(entries, entry{e.Name(), info.Size(), info.ModTime().UnixNano()})
		total += info.Size()
	}
	if maxBytes > 0 && total > maxBytes {
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].mtime != entries[j].mtime {
				return entries[i].mtime < entries[j].mtime
			}
			return entries[i].name < entries[j].name // stable under equal stamps
		})
		for _, e := range entries {
			if total <= maxBytes {
				break
			}
			if err := os.Remove(filepath.Join(c.dir, e.name)); err == nil {
				total -= e.size
				c.evictions.Add(1)
			}
		}
	}
	c.bytes.Store(total)
	return nil
}

// codeEpoch identifies the code that computed a result: the VCS
// revision plus a dirty marker, read from the binary's build info. A
// build without VCS stamping (go test binaries, `go run` in some
// configurations) reports "unversioned": such builds share an epoch, so
// stale-across-code-changes entries are possible there — that is what
// verify mode exists to catch, and schemaVersion is the manual escape
// hatch when the entry layout itself changes.
func codeEpoch() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unversioned"
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unversioned"
	}
	if dirty {
		return rev + "+dirty"
	}
	return rev
}

// Epoch reports the code epoch baked into every key.
func (c *Cache) Epoch() string { return c.epoch }

// SetEpoch overrides the code epoch (tests; deliberate cross-build
// sharing). Must be called before any NewKey.
func (c *Cache) SetEpoch(e string) { c.epoch = e }

// NewKey derives the content address of a cell from its canonical
// descriptor. The schema version and code epoch are mixed in, so an
// entry layout change or a code change (on VCS-stamped builds)
// invalidates every old entry by construction.
func (c *Cache) NewKey(desc string) Key {
	h := sha256.New()
	fmt.Fprintf(h, "pptsim-cell/v%d\nepoch=%s\n", schemaVersion, c.epoch)
	io.WriteString(h, desc)
	var k Key
	h.Sum(k[:0])
	return k
}

// Stats snapshots the accounting.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Shared:     c.shared.Load(),
		Stores:     c.stores.Load(),
		Verified:   c.verified.Load(),
		Mismatches: c.mismatches.Load(),
		Evictions:  c.evictions.Load(),
		Bytes:      c.bytes.Load(),
	}
}

func (c *Cache) path(key Key) string {
	return filepath.Join(c.dir, key.String()+fileSuffix)
}

// Get loads the entry for key. Every defect — absence, truncation,
// garbage, a schema or key mismatch — reads as (zero, false); corrupt
// files are removed and warned about, never fatal. Get does not touch
// the hit/miss counters; Do owns the accounting.
func (c *Cache) Get(key Key) (Value, bool) {
	path := c.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "cache: warning: unreadable entry %s: %v (treating as miss)\n", key, err)
		}
		return Value{}, false
	}
	v, err := decodeRecord(data, key)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cache: warning: discarding entry %s: %v (treating as miss)\n", key, err)
		os.Remove(path) // best-effort hygiene; a failed remove re-warns next time
		return Value{}, false
	}
	return v, true
}

// Put stores v under key atomically: the full record is written to a
// temp file in the cache directory and renamed into place, so a
// concurrent reader (or a racing writer) sees either the old complete
// entry or the new complete entry. Errors warn and drop the store —
// a full disk degrades the cache, not the run.
func (c *Cache) Put(key Key, v Value) {
	rec := encodeRecord(schemaVersion, key, v)
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "cache: warning: cannot store %s: %v\n", key, err)
		return
	}
	_, werr := tmp.Write(rec)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		// Replacing an entry (verify rewrites, racing writers) must not
		// double-count its bytes.
		var old int64
		if info, err := os.Stat(c.path(key)); err == nil {
			old = info.Size()
		}
		if werr = os.Rename(tmp.Name(), c.path(key)); werr == nil {
			c.stores.Add(1)
			c.bytes.Add(int64(len(rec)) - old)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "cache: warning: cannot store %s: %v\n", key, werr)
	os.Remove(tmp.Name())
}

// Do answers one cell: from disk when the key hits, from an identical
// in-flight computation when one exists, and by calling compute (then
// storing) otherwise. In verify mode a hit additionally recomputes and
// byte-compares the canonical encodings, reporting a divergence through
// Outcome.Mismatch (and returning the fresh value, which is the ground
// truth); the stored entry is left in place as evidence.
func (c *Cache) Do(key Key, verify bool, compute func() Value) (Value, Outcome) {
	if v, ok := c.Get(key); ok {
		c.hits.Add(1)
		if !verify {
			return v, Outcome{Hit: true}
		}
		fresh := compute()
		c.verified.Add(1)
		if !payloadEqual(v, fresh) {
			c.mismatches.Add(1)
			return fresh, Outcome{Hit: true, Mismatch: true}
		}
		return v, Outcome{Hit: true}
	}

	c.mu.Lock()
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.ok {
			c.shared.Add(1)
			return f.val.clone(), Outcome{Hit: true, Shared: true}
		}
		// The computing cell panicked; fall through to an independent
		// computation rather than propagating its failure.
	} else {
		f := &flight{done: make(chan struct{})}
		c.inflight[key] = f
		c.mu.Unlock()
		defer func() {
			// Runs on compute panics too: siblings must never block on a
			// flight whose owner died (ok stays false).
			c.mu.Lock()
			delete(c.inflight, key)
			c.mu.Unlock()
			close(f.done)
		}()
		v := compute()
		f.val, f.ok = v.clone(), true
		c.misses.Add(1)
		c.Put(key, v)
		return v, Outcome{}
	}
	v := compute()
	c.misses.Add(1)
	c.Put(key, v)
	return v, Outcome{}
}

// Outcome reports how Do answered.
type Outcome struct {
	Hit      bool // answered from disk (or a shared in-flight cell)
	Shared   bool // specifically from an identical in-flight cell
	Mismatch bool // verify mode: the stored entry diverged from fresh
}

// payloadEqual bit-compares two values through their canonical
// encodings: equality of every Summary field and of every extra's raw
// IEEE-754 bits (so NaN == NaN here, and +0 != -0).
func payloadEqual(a, b Value) bool {
	return string(encodePayload(a)) == string(encodePayload(b))
}
