package cache

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"ppt/internal/sim"
	"ppt/internal/stats"
)

func testCache(t *testing.T) *Cache {
	t.Helper()
	c, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return c
}

func sampleValue() Value {
	return Value{
		Sum: stats.Summary{
			Flows:      1234,
			OverallAvg: 567890,
			SmallCount: 1000,
			SmallAvg:   111,
			SmallP99:   2222,
			LargeCount: 234,
			LargeAvg:   987654321,
			Truncated:  true,
			Unfinished: 7,
		},
		Extra: map[string]float64{
			"utilization": 0.9517,
			"drops":       41,
		},
	}
}

func TestRoundTrip(t *testing.T) {
	c := testCache(t)
	key := c.NewKey("cell-a")
	want := sampleValue()
	c.Put(key, want)
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	st := c.Stats()
	if st.Stores != 1 || st.Bytes == 0 {
		t.Fatalf("stats after one Put: %+v", st)
	}
}

// TestBitExactness pins the raw-IEEE-754 promise: negative zero, NaN
// payloads, and MaxInt64 picoseconds survive a disk round trip
// bit-for-bit. A JSON-based codec fails every case here.
func TestBitExactness(t *testing.T) {
	c := testCache(t)
	weirdNaN := math.Float64frombits(0x7ff8_0000_dead_beef) // non-default payload
	want := Value{
		Sum: stats.Summary{
			Flows:      1,
			OverallAvg: sim.Time(math.MaxInt64),
			SmallAvg:   sim.Time(math.MinInt64),
		},
		Extra: map[string]float64{
			"negzero": math.Copysign(0, -1),
			"nan":     weirdNaN,
			"inf":     math.Inf(1),
			"tiny":    5e-324, // smallest subnormal
		},
	}
	key := c.NewKey("bit-exact")
	c.Put(key, want)
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("miss")
	}
	if got.Sum != want.Sum {
		t.Fatalf("summary mismatch: got %+v want %+v", got.Sum, want.Sum)
	}
	for k, w := range want.Extra {
		g, ok := got.Extra[k]
		if !ok {
			t.Fatalf("extra %q lost", k)
		}
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Errorf("extra %q: bits %#x, want %#x", k, math.Float64bits(g), math.Float64bits(w))
		}
	}
	if math.Signbit(got.Extra["negzero"]) != true {
		t.Error("negative zero lost its sign")
	}
}

func TestEmptyExtrasStayNil(t *testing.T) {
	c := testCache(t)
	key := c.NewKey("no-extras")
	c.Put(key, Value{Sum: stats.Summary{Flows: 3}})
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("miss")
	}
	if got.Extra != nil {
		t.Fatalf("want nil Extra, got %+v", got.Extra)
	}
}

// TestSummarySchemaPinned fails when stats.Summary gains, loses, or
// retypes a field without a matching codec change + schemaVersion bump.
func TestSummarySchemaPinned(t *testing.T) {
	want := []struct{ name, typ string }{
		{"Flows", "int"},
		{"OverallAvg", "sim.Time"},
		{"SmallCount", "int"},
		{"SmallAvg", "sim.Time"},
		{"SmallP99", "sim.Time"},
		{"LargeCount", "int"},
		{"LargeAvg", "sim.Time"},
		{"Truncated", "bool"},
		{"Unfinished", "int"},
	}
	typ := reflect.TypeOf(stats.Summary{})
	if typ.NumField() != len(want) {
		t.Fatalf("stats.Summary has %d fields, codec encodes %d — update codec.go and bump schemaVersion", typ.NumField(), len(want))
	}
	for i, w := range want {
		f := typ.Field(i)
		if f.Name != w.name || f.Type.String() != w.typ {
			t.Fatalf("field %d is %s %s, codec expects %s %s — update codec.go and bump schemaVersion", i, f.Name, f.Type, w.name, w.typ)
		}
	}
}

// Corruption matrix: every defect must read as a clean miss.

func corrupt(t *testing.T, c *Cache, key Key, mutate func([]byte) []byte) {
	t.Helper()
	path := c.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read entry: %v", err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatalf("rewrite entry: %v", err)
	}
}

func TestCorruptEntriesReadAsMiss(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"garbage", func(b []byte) []byte {
			g := make([]byte, len(b))
			for i := range g {
				g[i] = byte(i*37 + 11)
			}
			return g
		}},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"wrong-version", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:], schemaVersion+1)
			return b
		}},
		{"flipped-payload-bit", func(b []byte) []byte { b[headerLen+3] ^= 0x01; return b }},
		{"flipped-crc", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
		{"trailing-junk", func(b []byte) []byte { return append(b, 0xaa, 0xbb) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := testCache(t)
			key := c.NewKey("victim-" + tc.name)
			c.Put(key, sampleValue())
			corrupt(t, c, key, tc.mutate)
			if v, ok := c.Get(key); ok {
				t.Fatalf("corrupt entry (%s) read as hit: %+v", tc.name, v)
			}
			if _, err := os.Stat(c.path(key)); !os.IsNotExist(err) {
				t.Errorf("corrupt entry not removed (err=%v)", err)
			}
			// The slot is usable again.
			c.Put(key, sampleValue())
			if _, ok := c.Get(key); !ok {
				t.Error("re-Put after corruption still misses")
			}
		})
	}
}

func TestWrongKeyFileReadAsMiss(t *testing.T) {
	c := testCache(t)
	keyA := c.NewKey("a")
	keyB := c.NewKey("b")
	c.Put(keyA, sampleValue())
	// Copy A's entry into B's slot: framing and CRC are valid but the
	// stored key betrays the mismatch.
	data, err := os.ReadFile(c.path(keyA))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path(keyB), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(keyB); ok {
		t.Fatal("entry stored under the wrong file name read as hit")
	}
}

// TestConcurrentWriters races many goroutines Put-ing and Get-ing the
// same key: with temp+rename writes every read must be a whole entry
// (hit with valid content) or a clean miss — never a torn record. Run
// under -race this also pins the counter plumbing.
func TestConcurrentWriters(t *testing.T) {
	c := testCache(t)
	key := c.NewKey("contended")
	want := sampleValue()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c.Put(key, want)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if v, ok := c.Get(key); ok {
					if !reflect.DeepEqual(v, want) {
						t.Errorf("torn read: %+v", v)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestDoComputesOnceAndHitsAfter(t *testing.T) {
	c := testCache(t)
	key := c.NewKey("cell")
	computes := 0
	compute := func() Value { computes++; return sampleValue() }

	v, out := c.Do(key, false, compute)
	if out.Hit || computes != 1 {
		t.Fatalf("first Do: outcome %+v, computes %d", out, computes)
	}
	v2, out2 := c.Do(key, false, compute)
	if !out2.Hit || out2.Shared || computes != 1 {
		t.Fatalf("second Do: outcome %+v, computes %d", out2, computes)
	}
	if !reflect.DeepEqual(v, v2) {
		t.Fatalf("hit returned different value: %+v vs %+v", v, v2)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDoSingleflightShares(t *testing.T) {
	c := testCache(t)
	key := c.NewKey("dedup")
	var computes, release = 0, make(chan struct{})
	var mu sync.Mutex
	compute := func() Value {
		mu.Lock()
		computes++
		mu.Unlock()
		<-release
		return sampleValue()
	}
	const n = 4
	results := make([]Outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i] = c.Do(key, false, compute)
		}(i)
	}
	// Let every goroutine reach Do before releasing the leader.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	mu.Lock()
	got := computes
	mu.Unlock()
	if got != 1 {
		t.Fatalf("%d computations, want 1", got)
	}
	shared := 0
	for _, out := range results {
		if out.Shared {
			shared++
		}
	}
	if shared != n-1 {
		t.Fatalf("%d shared outcomes, want %d (results %+v)", shared, n-1, results)
	}
}

func TestDoSharedValuesDontAlias(t *testing.T) {
	c := testCache(t)
	key := c.NewKey("alias")
	v1, _ := c.Do(key, false, sampleValue)
	v2, _ := c.Do(key, false, sampleValue)
	v1.Extra["utilization"] = -1
	if v2.Extra["utilization"] == -1 {
		t.Fatal("two Do results share one Extra map")
	}
}

// TestDoLeaderPanicReleasesWaiters pins the panic-safety of the
// singleflight: a waiter must not deadlock, and must recompute rather
// than inherit the leader's failure.
func TestDoLeaderPanicReleasesWaiters(t *testing.T) {
	c := testCache(t)
	key := c.NewKey("panicky")
	started := make(chan struct{})
	waiterDone := make(chan Outcome, 1)
	go func() {
		defer func() { recover() }()
		c.Do(key, false, func() Value {
			close(started)
			time.Sleep(50 * time.Millisecond)
			panic("cell failed")
		})
	}()
	<-started
	go func() {
		_, out := c.Do(key, false, sampleValue)
		waiterDone <- out
	}()
	select {
	case out := <-waiterDone:
		if out.Shared {
			t.Fatalf("waiter shared a panicked flight: %+v", out)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter deadlocked on panicked leader")
	}
}

func TestDoVerify(t *testing.T) {
	c := testCache(t)
	key := c.NewKey("verify")
	c.Put(key, sampleValue())

	// Clean verify: recomputation matches the stored entry.
	_, out := c.Do(key, true, sampleValue)
	if !out.Hit || out.Mismatch {
		t.Fatalf("clean verify outcome %+v", out)
	}
	if st := c.Stats(); st.Verified != 1 || st.Mismatches != 0 {
		t.Fatalf("stats %+v", st)
	}

	// Divergent verify: fresh computation differs → Mismatch, and the
	// fresh value is returned as ground truth.
	divergent := sampleValue()
	divergent.Sum.Flows++
	v, out := c.Do(key, true, func() Value { return divergent })
	if !out.Mismatch {
		t.Fatalf("divergent verify outcome %+v", out)
	}
	if v.Sum.Flows != divergent.Sum.Flows {
		t.Fatalf("verify mismatch returned stale value %+v", v.Sum)
	}
	if st := c.Stats(); st.Mismatches != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDoVerifyCatchesNaNAndSignDrift(t *testing.T) {
	c := testCache(t)
	key := c.NewKey("bits")
	stored := Value{Extra: map[string]float64{"x": math.Copysign(0, -1)}}
	c.Put(key, stored)
	// +0 vs -0 compare equal under ==, but the tripwire is bit-level.
	fresh := Value{Extra: map[string]float64{"x": 0}}
	if _, out := c.Do(key, true, func() Value { return fresh }); !out.Mismatch {
		t.Fatal("sign-of-zero drift not caught by verify")
	}
}

func TestEvictionMtimeLRU(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var keys []Key
	for _, name := range []string{"old", "mid", "new"} {
		k := c.NewKey(name)
		keys = append(keys, k)
		c.Put(k, sampleValue())
	}
	entrySize := c.Stats().Bytes / 3
	// Age the entries explicitly so the LRU order is deterministic.
	now := time.Now()
	for i, k := range keys {
		stamp := now.Add(time.Duration(i-3) * time.Hour)
		if err := os.Chtimes(c.path(k), stamp, stamp); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen with room for two entries: the oldest must go.
	c2, err := Open(dir, 2*entrySize)
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Evictions != 1 || st.Bytes != 2*entrySize {
		t.Fatalf("stats after capped reopen: %+v", st)
	}
	if _, ok := c2.Get(keys[0]); ok {
		t.Error("oldest entry survived eviction")
	}
	for _, k := range keys[1:] {
		if _, ok := c2.Get(k); !ok {
			t.Error("recent entry evicted")
		}
	}
	// A cap below everything clears the directory.
	c3, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st := c3.Stats(); st.Bytes != 0 || st.Evictions != 2 {
		t.Fatalf("stats after tiny cap: %+v", st)
	}
}

func TestOpenRejectsUnwritableDir(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("root ignores file modes")
	}
	dir := t.TempDir()
	ro := filepath.Join(dir, "ro")
	if err := os.Mkdir(ro, 0o555); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(ro, 0); err == nil {
		t.Fatal("Open accepted an unwritable directory")
	}
}

func TestKeyDependsOnEpochAndDesc(t *testing.T) {
	c := testCache(t)
	k1 := c.NewKey("desc")
	k2 := c.NewKey("desc2")
	if k1 == k2 {
		t.Fatal("different descriptors, same key")
	}
	c.SetEpoch("other-code")
	if c.NewKey("desc") == k1 {
		t.Fatal("different epoch, same key")
	}
}

func TestStatsDelta(t *testing.T) {
	c := testCache(t)
	key := c.NewKey("d")
	c.Do(key, false, sampleValue)
	before := c.Stats()
	c.Do(key, false, sampleValue)
	d := c.Stats().Delta(before)
	if d.Hits != 1 || d.Misses != 0 || d.Bytes == 0 {
		t.Fatalf("delta %+v", d)
	}
}
