package cache

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"ppt/internal/sim"
)

// Entry layout (all integers little-endian):
//
//	magic   [4]byte  "PPTC"
//	version u16      schemaVersion
//	key     [32]byte the entry's own content address (self-check)
//	plen    u32      payload length in bytes
//	payload [plen]   see encodePayload
//	crc     u32      CRC-32C (Castagnoli) of payload
//
// Payload:
//
//	Flows, OverallAvg, SmallCount, SmallAvg, SmallP99,
//	LargeCount, LargeAvg   as i64
//	Truncated              as one byte (0/1)
//	Unfinished             as i64
//	nExtra                 u32
//	then nExtra of: u16 key length | key bytes | u64 Float64bits(value)
//	sorted by key
//
// Floats travel as raw IEEE-754 bits: negative zero and NaN payloads
// round-trip exactly, and payload equality is bit equality of results.
// The layout is pinned by TestSummarySchemaPinned — adding a field to
// stats.Summary without bumping schemaVersion fails that test.

const (
	schemaVersion = 1
	fileSuffix    = ".c1"
	magic         = "PPTC"
	headerLen     = len(magic) + 2 + 32 + 4
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func encodePayload(v Value) []byte {
	keys := make([]string, 0, len(v.Extra))
	for k := range v.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	n := 8*8 + 1 + 4
	for _, k := range keys {
		n += 2 + len(k) + 8
	}
	buf := make([]byte, 0, n)
	i64 := func(x int64) { buf = binary.LittleEndian.AppendUint64(buf, uint64(x)) }

	s := v.Sum
	i64(int64(s.Flows))
	i64(int64(s.OverallAvg))
	i64(int64(s.SmallCount))
	i64(int64(s.SmallAvg))
	i64(int64(s.SmallP99))
	i64(int64(s.LargeCount))
	i64(int64(s.LargeAvg))
	if s.Truncated {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	i64(int64(s.Unfinished))

	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Extra[k]))
	}
	return buf
}

func decodePayload(buf []byte) (Value, error) {
	var v Value
	pos := 0
	i64 := func() (int64, error) {
		if pos+8 > len(buf) {
			return 0, fmt.Errorf("truncated payload at offset %d", pos)
		}
		x := int64(binary.LittleEndian.Uint64(buf[pos:]))
		pos += 8
		return x, nil
	}
	read := func(dst *int64) error {
		x, err := i64()
		*dst = x
		return err
	}

	var flows, smallCount, largeCount, unfinished int64
	var overallAvg, smallAvg, smallP99, largeAvg int64
	for _, dst := range []*int64{&flows, &overallAvg, &smallCount, &smallAvg, &smallP99, &largeCount, &largeAvg} {
		if err := read(dst); err != nil {
			return Value{}, err
		}
	}
	if pos+1 > len(buf) {
		return Value{}, fmt.Errorf("truncated payload at offset %d", pos)
	}
	switch buf[pos] {
	case 0:
		v.Sum.Truncated = false
	case 1:
		v.Sum.Truncated = true
	default:
		return Value{}, fmt.Errorf("bad bool byte %#x at offset %d", buf[pos], pos)
	}
	pos++
	if err := read(&unfinished); err != nil {
		return Value{}, err
	}
	v.Sum.Flows = int(flows)
	v.Sum.OverallAvg = sim.Time(overallAvg)
	v.Sum.SmallCount = int(smallCount)
	v.Sum.SmallAvg = sim.Time(smallAvg)
	v.Sum.SmallP99 = sim.Time(smallP99)
	v.Sum.LargeCount = int(largeCount)
	v.Sum.LargeAvg = sim.Time(largeAvg)
	v.Sum.Unfinished = int(unfinished)

	if pos+4 > len(buf) {
		return Value{}, fmt.Errorf("truncated payload at offset %d", pos)
	}
	nExtra := binary.LittleEndian.Uint32(buf[pos:])
	pos += 4
	if nExtra > 0 {
		v.Extra = make(map[string]float64, nExtra)
	}
	for i := uint32(0); i < nExtra; i++ {
		if pos+2 > len(buf) {
			return Value{}, fmt.Errorf("truncated extra #%d", i)
		}
		klen := int(binary.LittleEndian.Uint16(buf[pos:]))
		pos += 2
		if pos+klen+8 > len(buf) {
			return Value{}, fmt.Errorf("truncated extra #%d", i)
		}
		k := string(buf[pos : pos+klen])
		pos += klen
		v.Extra[k] = math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))
		pos += 8
	}
	if pos != len(buf) {
		return Value{}, fmt.Errorf("%d trailing bytes after payload", len(buf)-pos)
	}
	return v, nil
}

// encodeRecord frames a payload into the on-disk entry format. The
// version parameter exists so tests can write mismatched entries.
func encodeRecord(version uint16, key Key, v Value) []byte {
	payload := encodePayload(v)
	buf := make([]byte, 0, headerLen+len(payload)+4)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint16(buf, version)
	buf = append(buf, key[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return buf
}

// decodeRecord validates framing, schema version, stored key, length,
// and checksum before handing the payload to decodePayload. Every
// failure is an error the caller treats as a miss.
func decodeRecord(data []byte, want Key) (Value, error) {
	if len(data) < headerLen+4 {
		return Value{}, fmt.Errorf("entry too short (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return Value{}, fmt.Errorf("bad magic %q", data[:len(magic)])
	}
	pos := len(magic)
	version := binary.LittleEndian.Uint16(data[pos:])
	pos += 2
	if version != schemaVersion {
		return Value{}, fmt.Errorf("schema version %d, want %d", version, schemaVersion)
	}
	var stored Key
	copy(stored[:], data[pos:])
	pos += 32
	if stored != want {
		return Value{}, fmt.Errorf("stored key %s does not match file name", stored)
	}
	plen := int(binary.LittleEndian.Uint32(data[pos:]))
	pos += 4
	if len(data) != headerLen+plen+4 {
		return Value{}, fmt.Errorf("entry length %d, want %d", len(data), headerLen+plen+4)
	}
	payload := data[pos : pos+plen]
	crc := binary.LittleEndian.Uint32(data[pos+plen:])
	if crc != crc32.Checksum(payload, castagnoli) {
		return Value{}, fmt.Errorf("payload checksum mismatch")
	}
	return decodePayload(payload)
}
