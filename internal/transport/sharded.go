package transport

import (
	"fmt"
	"sync/atomic"

	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/stats"
)

// This file is the conservative time-windowed parallel run driver
// (YAWNS / bounded-lag; see DESIGN.md §7.3). A partitioned fabric
// (topo.Config.Shards >= 1) assigns every device to one of N logical
// shards, each with its own scheduler, packet pool, and — built here —
// its own Env (collector, efficiency counters, endpoint pools, flow
// freelist, release cursor). All shards advance in lock-step windows of
// width w = min propagation delay over cross-shard wires: a packet
// transmitted during window k crosses the boundary no earlier than the
// k+1 barrier, so windows can execute with no intra-window
// communication at all, and every cross-shard effect is applied at a
// barrier in a canonical order:
//
//  1. cross-shard packets, merged per destination shard in
//     (time, srcShard, seq) order (netsim.MergeWindows);
//  2. receiver starts for flows released this window whose destination
//     is another shard, in source-shard index order;
//  3. sender teardowns for cross-shard flows completed this window, in
//     completing-shard index order;
//  4. global stop / event-budget / deadline checks.
//
// The logical partition is fixed by the topology; Config.Shards only
// caps how many worker goroutines execute the shards each window.
// Because shards interact exclusively through the barrier steps above,
// the worker count is invisible to simulated outcomes: -shards=1, 2 and
// 4 are byte-identical by construction, and a monolithic run differs
// from a windowed one only through the documented teardown deferral.

// shardedRun is the shared state of one windowed run.
type shardedRun struct {
	proto     ShardableProtocol
	envs      []*Env
	hostShard []int

	// remaining counts unfinished flows; decremented (atomically — the
	// only cross-shard write during a window) as completions happen,
	// checked by the driver at barriers.
	remaining atomic.Int64

	// recv stages cross-shard receiver starts, indexed by the source
	// (releasing) shard so each slice has a single writer per window.
	recv [][]*Flow
	// tear stages cross-shard sender teardowns, indexed by the
	// completing (receiver) shard — again a single writer per window.
	tear [][]*Flow
}

func (r *shardedRun) flowDone() { r.remaining.Add(-1) }

// stageReceiverStart records a cross-shard flow released in shard this
// window; the driver binds its receiver at the next barrier.
func (r *shardedRun) stageReceiverStart(shard int, f *Flow) {
	r.recv[shard] = append(r.recv[shard], f)
}

// stageTeardown records a cross-shard flow completed in shard (the
// receiver side) this window; the driver unbinds and recycles the
// sender at the next barrier.
func (r *shardedRun) stageTeardown(shard int, f *Flow) {
	r.tear[shard] = append(r.tear[shard], f)
	r.flowDone()
}

// applyReceiverStarts binds staged receivers in their destination
// shards. Runs on the driver thread at a barrier: every shard is
// quiescent, and iterating source shards in index order (entries within
// a slice are in release order) makes the per-destination-pool
// allocation order a pure function of the workload.
func (r *shardedRun) applyReceiverStarts() {
	for i := range r.recv {
		staged := r.recv[i]
		if len(staged) == 0 {
			continue
		}
		for j, f := range staged {
			r.proto.StartReceiver(r.envs[r.hostShard[f.Dst.ID()]], f)
			staged[j] = nil
		}
		r.recv[i] = staged[:0]
	}
}

// applyTeardowns unbinds and recycles staged senders in their source
// shards, marks the flows sender-done, and returns recyclable flows to
// the source shard's freelist. Runs on the driver thread at a barrier;
// recycling may stop sender timers, which is safe because the shard is
// quiescent.
func (r *shardedRun) applyTeardowns() {
	for i := range r.tear {
		staged := r.tear[i]
		if len(staged) == 0 {
			continue
		}
		for j, f := range staged {
			se := r.envs[r.hostShard[f.Src.ID()]]
			f.srcDone = true
			src := f.Src.Unbind(f.ID, false)
			if rec, ok := src.(EndpointRecycler); ok {
				rec.Recycle(se)
			}
			if f.pooled && se.recycleFlows {
				se.putFlow(f)
			}
			staged[j] = nil
		}
		r.tear[i] = staged[:0]
	}
}

// crew is the persistent worker pool of one windowed run: worker w owns
// logical shards {i : i mod workers == w} for the whole run, executing
// them sequentially each window. Channel handoffs give the
// happens-before edges that make the barrier a real synchronization
// point (the race detector checks this under -race golden runs).
type crew struct {
	scheds []*sim.Scheduler
	start  []chan sim.Time
	done   chan struct{}
}

func startCrew(scheds []*sim.Scheduler, workers int) *crew {
	c := &crew{scheds: scheds, start: make([]chan sim.Time, workers), done: make(chan struct{}, workers)}
	for w := range c.start {
		ch := make(chan sim.Time, 1)
		c.start[w] = ch
		go func(w int, ch chan sim.Time) {
			for deadline := range ch {
				for i := w; i < len(c.scheds); i += len(c.start) {
					c.scheds[i].RunUntil(deadline)
				}
				c.done <- struct{}{}
			}
		}(w, ch)
	}
	return c
}

func (c *crew) runWindow(deadline sim.Time) {
	for _, ch := range c.start {
		ch <- deadline
	}
	for range c.start {
		<-c.done
	}
}

func (c *crew) stop() {
	for _, ch := range c.start {
		close(ch)
	}
}

// shardQueue is one shard's pending-release buffer: the driver pushes
// flows destined for the shard's releaser at barriers, the releaser
// pulls them (through the FlowSource interface) while executing a
// window. The two never run concurrently — barriers are quiescent — so
// no locking. Drained prefixes are compacted away so steady-state
// memory is one lookahead window's worth of flows, not the whole trace.
type shardQueue struct {
	flows []SimpleFlow
	next  int
}

func (q *shardQueue) Next() (SimpleFlow, bool) {
	if q.next >= len(q.flows) {
		q.flows = q.flows[:0]
		q.next = 0
		return SimpleFlow{}, false
	}
	f := q.flows[q.next]
	q.next++
	return f, true
}

func (q *shardQueue) push(f SimpleFlow) {
	if q.next > 4096 && q.next*2 >= len(q.flows) {
		m := copy(q.flows, q.flows[q.next:])
		q.flows = q.flows[:m]
		q.next = 0
	}
	q.flows = append(q.flows, f)
}

func (q *shardQueue) pending() int { return len(q.flows) - q.next }

// runShardedSource is RunSource's windowed twin for partitioned
// fabrics. The single arrival-ordered source is demultiplexed at window
// barriers: before each window the driver pulls every flow arriving
// inside it, pushes each onto its source shard's queue, and arms any
// idle releaser. A flow arriving in window k cannot be released before
// window k, so feeding at the k-1/k barrier is always in time, and
// same-timestamp flows keep their source order within a shard (the
// queue preserves it) and their canonical cross-shard order at
// barriers (receiver starts apply in source-shard index order, as
// before).
func runShardedSource(env *Env, proto ShardableProtocol, src FlowSource, cfg RunConfig) stats.Summary {
	part := env.Net.Part
	n := part.N
	w := part.Window
	if w <= 0 {
		panic("transport: partitioned fabric without a positive lookahead window")
	}
	_, recycle := Protocol(proto).(FlowRecycler)

	run := &shardedRun{
		proto:     proto,
		hostShard: part.HostShard,
		recv:      make([][]*Flow, n),
		tear:      make([][]*Flow, n),
	}
	run.envs = make([]*Env, n)
	for i := range run.envs {
		run.envs[i] = &Env{
			Net:          env.Net,
			Collector:    stats.NewCollector(),
			RTOMin:       env.RTOMin,
			OnComplete:   env.OnComplete,
			recycleFlows: recycle,
			sched:        part.Scheds[i],
			shard:        i,
			run:          run,
		}
	}

	queues := make([]*shardQueue, n)
	rels := make([]*releaser, n)
	for i := range queues {
		queues[i] = &shardQueue{}
		rel := &releaser{env: run.envs[i], proto: proto, src: queues[i], sharded: run, shard: i}
		rel.fireFn = rel.fire
		rels[i] = rel
	}

	// srcNext is the driver's one-flow lookahead into the global stream.
	var srcNext SimpleFlow
	srcHave := false
	var lastArrive sim.Time
	pull := func() {
		f, ok := src.Next()
		if !ok {
			srcHave = false
			return
		}
		if f.Arrive < lastArrive {
			panic(fmt.Sprintf("transport: FlowSource yielded decreasing arrival times (%v after %v); sources must be arrival-sorted",
				f.Arrive, lastArrive))
		}
		lastArrive = f.Arrive
		srcNext, srcHave = f, true
	}
	pull()
	// feed routes every flow arriving by horizon to its source shard's
	// queue (counting it as outstanding) and arms idle releasers. Runs
	// on the driver thread while every shard is quiescent.
	feed := func(horizon sim.Time) {
		for srcHave && srcNext.Arrive <= horizon {
			queues[part.HostShard[srcNext.Src]].push(srcNext)
			run.remaining.Add(1)
			pull()
		}
		for _, rel := range rels {
			if !rel.armed {
				if !rel.havePending {
					rel.prime()
				}
				if rel.havePending {
					rel.env.sched.At(rel.pending.Arrive, rel.fireFn)
					rel.armed = true
				}
			}
		}
	}

	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 2_000_000_000
	}
	budget := env.Net.Executed() + cfg.MaxEvents
	for _, s := range part.Scheds {
		// Per-shard runaway backstop; the canonical budget check happens
		// at barriers over the summed count.
		s.Limit = s.Executed + cfg.MaxEvents
	}
	deadline := sim.MaxTime
	if cfg.Deadline != 0 {
		deadline = cfg.Deadline
	}

	workers := part.Workers
	if env.OnComplete != nil {
		// A completion observer is arbitrary user code invoked inside
		// shard event loops; run single-threaded rather than racing it.
		workers = 1
	}
	var workerPool *crew
	if workers > 1 {
		workerPool = startCrew(part.Scheds, workers)
		defer workerPool.stop()
	}
	// The lock-step window loop. Windows are [k·w, (k+1)·w) for integral
	// k — absolute multiples of w, so barrier times (and with them the
	// receiver-start and teardown instants) do not depend on which empty
	// windows were skipped.
	for windowEnd := w; ; {
		runTo := windowEnd - 1
		if runTo > deadline {
			runTo = deadline
		}
		// Feed this window's arrivals before any shard executes it.
		feed(runTo)
		if workerPool != nil {
			workerPool.runWindow(runTo)
		} else {
			for _, s := range part.Scheds {
				s.RunUntil(runTo)
			}
		}
		// Barrier: every shard quiescent, driver thread only.
		netsim.MergeWindows(part.Outboxes, part.Inboxes)
		run.applyReceiverStarts()
		run.applyTeardowns()
		if run.remaining.Load() <= 0 && !srcHave {
			break
		}
		if env.Net.Executed() >= budget {
			break
		}
		if runTo >= deadline {
			break
		}
		// Advance, skipping windows no shard has events in. NextAtBound
		// is exact for both queue implementations, so the skip lands
		// directly on the next occupied window; skipped windows are
		// provably empty and their barriers would be no-ops, so barrier
		// times stay on the same absolute grid regardless of queue
		// implementation.
		next := sim.MaxTime
		idle := true
		for _, s := range part.Scheds {
			if at, ok := s.NextAtBound(); ok {
				idle = false
				if at < next {
					next = at
				}
			}
		}
		if srcHave && srcNext.Arrive < next {
			// Quiet fabric but the stream has future arrivals: skip to
			// their window instead of breaking or crawling.
			next = srcNext.Arrive
			idle = false
		}
		if idle {
			// Drained with flows outstanding: a protocol stall; report
			// truncation below just like the monolithic path.
			break
		}
		if ne := (next/w)*w + w; ne > windowEnd {
			windowEnd = ne
		} else {
			windowEnd += w
		}
	}

	// Merge per-shard results into the caller's env in canonical order.
	collectors := make([]*stats.Collector, n)
	for i, se := range run.envs {
		collectors[i] = se.Collector
		env.Eff.SentPayload += se.Eff.SentPayload
		env.Eff.SentLowPayload += se.Eff.SentLowPayload
		env.Eff.UsefulDelivered += se.Eff.UsefulDelivered
		env.Eff.UsefulLow += se.Eff.UsefulLow
		se.run = nil
	}
	env.Collector.MergeCanonical(collectors...)
	for _, h := range env.Net.Hosts {
		env.Eff.SentPayload += h.NIC().Stats.TxDataBytes
	}
	sum := env.Collector.Summarize()
	// Unfinished counts released-or-queued flows that never completed
	// plus everything still in the stream.
	left := int(run.remaining.Load())
	if srcHave {
		left++
		srcHave = false
	}
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		left++
	}
	if left > 0 {
		sum.Truncated = true
		sum.Unfinished = left
	}
	return sum
}
