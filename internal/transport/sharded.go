package transport

import (
	"sort"
	"sync/atomic"

	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/stats"
)

// This file is the conservative time-windowed parallel run driver
// (YAWNS / bounded-lag; see DESIGN.md §7.3). A partitioned fabric
// (topo.Config.Shards >= 1) assigns every device to one of N logical
// shards, each with its own scheduler, packet pool, and — built here —
// its own Env (collector, efficiency counters, endpoint pools, flow
// freelist, release cursor). All shards advance in lock-step windows of
// width w = min propagation delay over cross-shard wires: a packet
// transmitted during window k crosses the boundary no earlier than the
// k+1 barrier, so windows can execute with no intra-window
// communication at all, and every cross-shard effect is applied at a
// barrier in a canonical order:
//
//  1. cross-shard packets, merged per destination shard in
//     (time, srcShard, seq) order (netsim.MergeWindows);
//  2. receiver starts for flows released this window whose destination
//     is another shard, in source-shard index order;
//  3. sender teardowns for cross-shard flows completed this window, in
//     completing-shard index order;
//  4. global stop / event-budget / deadline checks.
//
// The logical partition is fixed by the topology; Config.Shards only
// caps how many worker goroutines execute the shards each window.
// Because shards interact exclusively through the barrier steps above,
// the worker count is invisible to simulated outcomes: -shards=1, 2 and
// 4 are byte-identical by construction, and a monolithic run differs
// from a windowed one only through the documented teardown deferral.

// shardedRun is the shared state of one windowed run.
type shardedRun struct {
	proto     ShardableProtocol
	envs      []*Env
	hostShard []int

	// remaining counts unfinished flows; decremented (atomically — the
	// only cross-shard write during a window) as completions happen,
	// checked by the driver at barriers.
	remaining atomic.Int64

	// recv stages cross-shard receiver starts, indexed by the source
	// (releasing) shard so each slice has a single writer per window.
	recv [][]*Flow
	// tear stages cross-shard sender teardowns, indexed by the
	// completing (receiver) shard — again a single writer per window.
	tear [][]*Flow
}

func (r *shardedRun) flowDone() { r.remaining.Add(-1) }

// stageReceiverStart records a cross-shard flow released in shard this
// window; the driver binds its receiver at the next barrier.
func (r *shardedRun) stageReceiverStart(shard int, f *Flow) {
	r.recv[shard] = append(r.recv[shard], f)
}

// stageTeardown records a cross-shard flow completed in shard (the
// receiver side) this window; the driver unbinds and recycles the
// sender at the next barrier.
func (r *shardedRun) stageTeardown(shard int, f *Flow) {
	r.tear[shard] = append(r.tear[shard], f)
	r.flowDone()
}

// applyReceiverStarts binds staged receivers in their destination
// shards. Runs on the driver thread at a barrier: every shard is
// quiescent, and iterating source shards in index order (entries within
// a slice are in release order) makes the per-destination-pool
// allocation order a pure function of the workload.
func (r *shardedRun) applyReceiverStarts() {
	for i := range r.recv {
		staged := r.recv[i]
		if len(staged) == 0 {
			continue
		}
		for j, f := range staged {
			r.proto.StartReceiver(r.envs[r.hostShard[f.Dst.ID()]], f)
			staged[j] = nil
		}
		r.recv[i] = staged[:0]
	}
}

// applyTeardowns unbinds and recycles staged senders in their source
// shards, marks the flows sender-done, and returns recyclable flows to
// the source shard's freelist. Runs on the driver thread at a barrier;
// recycling may stop sender timers, which is safe because the shard is
// quiescent.
func (r *shardedRun) applyTeardowns() {
	for i := range r.tear {
		staged := r.tear[i]
		if len(staged) == 0 {
			continue
		}
		for j, f := range staged {
			se := r.envs[r.hostShard[f.Src.ID()]]
			f.srcDone = true
			src := f.Src.Unbind(f.ID, false)
			if rec, ok := src.(EndpointRecycler); ok {
				rec.Recycle(se)
			}
			if f.pooled && se.recycleFlows {
				se.putFlow(f)
			}
			staged[j] = nil
		}
		r.tear[i] = staged[:0]
	}
}

// crew is the persistent worker pool of one windowed run: worker w owns
// logical shards {i : i mod workers == w} for the whole run, executing
// them sequentially each window. Channel handoffs give the
// happens-before edges that make the barrier a real synchronization
// point (the race detector checks this under -race golden runs).
type crew struct {
	scheds []*sim.Scheduler
	start  []chan sim.Time
	done   chan struct{}
}

func startCrew(scheds []*sim.Scheduler, workers int) *crew {
	c := &crew{scheds: scheds, start: make([]chan sim.Time, workers), done: make(chan struct{}, workers)}
	for w := range c.start {
		ch := make(chan sim.Time, 1)
		c.start[w] = ch
		go func(w int, ch chan sim.Time) {
			for deadline := range ch {
				for i := w; i < len(c.scheds); i += len(c.start) {
					c.scheds[i].RunUntil(deadline)
				}
				c.done <- struct{}{}
			}
		}(w, ch)
	}
	return c
}

func (c *crew) runWindow(deadline sim.Time) {
	for _, ch := range c.start {
		ch <- deadline
	}
	for range c.start {
		<-c.done
	}
}

func (c *crew) stop() {
	for _, ch := range c.start {
		close(ch)
	}
}

// runSharded is Run's windowed twin for partitioned fabrics.
func runSharded(env *Env, proto ShardableProtocol, flows []SimpleFlow, cfg RunConfig) stats.Summary {
	part := env.Net.Part
	n := part.N
	w := part.Window
	if w <= 0 {
		panic("transport: partitioned fabric without a positive lookahead window")
	}
	_, recycle := Protocol(proto).(FlowRecycler)

	run := &shardedRun{
		proto:     proto,
		hostShard: part.HostShard,
		recv:      make([][]*Flow, n),
		tear:      make([][]*Flow, n),
	}
	run.remaining.Store(int64(len(flows)))
	run.envs = make([]*Env, n)
	for i := range run.envs {
		run.envs[i] = &Env{
			Net:          env.Net,
			Collector:    stats.NewCollector(),
			RTOMin:       env.RTOMin,
			OnComplete:   env.OnComplete,
			recycleFlows: recycle,
			sched:        part.Scheds[i],
			shard:        i,
			run:          run,
		}
	}

	// Partition the workload by source shard, preserving arrival order
	// (ties keep input order, as in the monolithic releaser), and
	// pre-size each shard's collector by the completions it will record
	// — those land in the receiver's shard.
	if !arrivalSorted(flows) {
		flows = append([]SimpleFlow(nil), flows...)
		sort.SliceStable(flows, func(i, j int) bool { return flows[i].Arrive < flows[j].Arrive })
	}
	perShard := make([][]SimpleFlow, n)
	for _, f := range flows {
		s := part.HostShard[f.Src]
		perShard[s] = append(perShard[s], f)
		run.envs[part.HostShard[f.Dst]].Collector.Reserve(1)
	}
	for i, sf := range perShard {
		if len(sf) == 0 {
			continue
		}
		rel := &releaser{env: run.envs[i], proto: proto, flows: sf, sharded: run, shard: i}
		rel.fireFn = rel.fire
		part.Scheds[i].At(sf[0].Arrive, rel.fireFn)
	}

	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 2_000_000_000
	}
	budget := env.Net.Executed() + cfg.MaxEvents
	for _, s := range part.Scheds {
		// Per-shard runaway backstop; the canonical budget check happens
		// at barriers over the summed count.
		s.Limit = s.Executed + cfg.MaxEvents
	}
	deadline := sim.MaxTime
	if cfg.Deadline != 0 {
		deadline = cfg.Deadline
	}

	workers := part.Workers
	if env.OnComplete != nil {
		// A completion observer is arbitrary user code invoked inside
		// shard event loops; run single-threaded rather than racing it.
		workers = 1
	}
	var workerPool *crew
	if workers > 1 {
		workerPool = startCrew(part.Scheds, workers)
		defer workerPool.stop()
	}
	// The lock-step window loop. Windows are [k·w, (k+1)·w) for integral
	// k — absolute multiples of w, so barrier times (and with them the
	// receiver-start and teardown instants) do not depend on which empty
	// windows were skipped.
	for windowEnd := w; ; {
		runTo := windowEnd - 1
		if runTo > deadline {
			runTo = deadline
		}
		if workerPool != nil {
			workerPool.runWindow(runTo)
		} else {
			for _, s := range part.Scheds {
				s.RunUntil(runTo)
			}
		}
		// Barrier: every shard quiescent, driver thread only.
		netsim.MergeWindows(part.Outboxes, part.Inboxes)
		run.applyReceiverStarts()
		run.applyTeardowns()
		if run.remaining.Load() <= 0 {
			break
		}
		if env.Net.Executed() >= budget {
			break
		}
		if runTo >= deadline {
			break
		}
		// Advance, skipping windows no shard has events in. NextAtBound
		// is a lower bound (exact for the heap, possibly coarse for the
		// wheel), so the skip target may undershoot — never overshoot —
		// the next event's window; skipped windows are provably empty and
		// their barriers would be no-ops, so the two queue
		// implementations stay byte-identical despite different bounds.
		next := sim.MaxTime
		idle := true
		for _, s := range part.Scheds {
			if at, ok := s.NextAtBound(); ok {
				idle = false
				if at < next {
					next = at
				}
			}
		}
		if idle {
			// Drained with flows outstanding: a protocol stall; report
			// truncation below just like the monolithic path.
			break
		}
		if ne := (next/w)*w + w; ne > windowEnd {
			windowEnd = ne
		} else {
			windowEnd += w
		}
	}

	// Merge per-shard results into the caller's env in canonical order.
	collectors := make([]*stats.Collector, n)
	for i, se := range run.envs {
		collectors[i] = se.Collector
		env.Eff.SentPayload += se.Eff.SentPayload
		env.Eff.SentLowPayload += se.Eff.SentLowPayload
		env.Eff.UsefulDelivered += se.Eff.UsefulDelivered
		env.Eff.UsefulLow += se.Eff.UsefulLow
		se.run = nil
	}
	env.Collector.MergeCanonical(collectors...)
	for _, h := range env.Net.Hosts {
		env.Eff.SentPayload += h.NIC().Stats.TxDataBytes
	}
	sum := env.Collector.Summarize()
	if left := run.remaining.Load(); left > 0 {
		sum.Truncated = true
		sum.Unfinished = int(left)
	}
	return sum
}
