package transport

import (
	"fmt"
	"sync/atomic"
	"time"

	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/stats"
	"ppt/internal/topo"
)

// This file is the conservative time-windowed parallel run driver
// (YAWNS / bounded-lag; see DESIGN.md §7.3/§7.5). A partitioned fabric
// (topo.Config.Shards >= 1) assigns every device to one of N logical
// shards, each with its own scheduler, packet pool, and — built here —
// its own Env (collector, efficiency counters, endpoint pools, flow
// freelist, release cursor).
//
// Shards advance in rounds bounded by the per-shard-pair lookahead
// matrix L (topo.Partition.Lookahead): in each round, shard d may
// execute every event strictly before its horizon
//
//	h_d = min over shards s of (eff_s + L[s][d])
//
// where eff_s is a lower bound on the next instant shard s could emit
// anything (its earliest pending event, the next unreleased arrival,
// or its already-executed floor, whichever binds). The min ranges over
// s = d too: L[d][d] is the minimum cycle delay through another shard,
// bounding how far d may run before its own transmissions can reflect
// back. Every cross-shard effect is applied at the round barrier in a
// canonical order:
//
//  1. cross-shard packets, merged per destination shard in
//     (time, srcShard, seq) order (netsim.MergeWindows);
//  2. receiver starts for flows released this round whose destination
//     is another shard, in source-shard index order;
//  3. sender quiesces for cross-shard flows completed this round, in
//     completing-shard index order: the sender is frozen (srcDone set,
//     timers stopped) at the barrier, while the expensive
//     Unbind/Recycle/freelist half of the teardown is deferred to the
//     sender shard's next granted window and applied there by the
//     owning worker, off the serial barrier path (DESIGN.md §7.7);
//  4. global stop / event-budget / deadline checks.
//
// The logical partition and the matrix are fixed by the topology;
// Config.Shards only caps how many worker goroutines execute the
// shards each round. The worker assignment starts from the
// deterministic static packing in Partition.ShardWorker and is
// re-balanced mid-run from measured per-shard executed-event counts
// (every rebalanceRounds rounds, with hysteresis) — worker placement
// only decides which goroutine executes a window, so the rebalance is
// invisible to simulated outcomes. Because shards interact exclusively
// through the barrier steps above and every horizon is computed from
// shard-local state, the worker count is invisible to simulated
// outcomes: -shards=1, 2 and 4 are byte-identical by construction, and
// a monolithic run differs from a windowed one only through the
// documented teardown deferral.

// ShardStats is the windowed engine's per-run instrumentation,
// surfaced through Env.ShardStats into exp results and -benchjson
// extras (never into rendered tables or CSV — golden outputs stay
// engine-agnostic). All counts are execution-side observations; they
// never feed back into simulated outcomes.
type ShardStats struct {
	// Shards and Workers echo the partition shape of the run.
	Shards  int `json:",omitempty"`
	Workers int `json:",omitempty"`
	// Rounds counts barrier synchronizations (window rounds).
	Rounds uint64 `json:",omitempty"`
	// WindowsRun / WindowsSkipped count per-shard window executions:
	// a shard with no event inside its horizon skips the round without
	// touching its scheduler.
	WindowsRun     uint64 `json:",omitempty"`
	WindowsSkipped uint64 `json:",omitempty"`
	// CrossPackets counts cross-shard entries merged at barriers.
	CrossPackets uint64 `json:",omitempty"`
	// RunNs is driver wall-clock spent executing shard windows;
	// BarrierNs is driver wall-clock spent in barrier work (merge,
	// receiver starts, teardowns, stop checks). Their ratio is the
	// engine's synchronization overhead.
	RunNs     int64 `json:",omitempty"`
	BarrierNs int64 `json:",omitempty"`
	// ShardEvents[i] is the number of scheduler events shard i executed
	// over the run. Event shares (ShardEvents[i] over the total) measure
	// load imbalance deterministically; wall-clock busy spans were
	// meaningless on time-shared CPUs (every shard of a 1-CPU container
	// reported an identical fraction).
	ShardEvents []uint64 `json:",omitempty"`
	// Rebalances counts adopted event-load-aware worker reassignments
	// (LPT re-runs that beat the current packing by the hysteresis
	// margin). Zero for single-worker runs.
	Rebalances uint64 `json:",omitempty"`
	// WorkerSpread is the final assignment's per-worker share spread of
	// executed events: (heaviest − lightest worker) over the total. A
	// small spread means the packing kept workers evenly fed.
	WorkerSpread float64 `json:",omitempty"`
}

// Merge folds another run's counters into s (element-wise for
// ShardEvents, extending as needed). Used by exp to aggregate across
// cells.
func (s *ShardStats) Merge(o *ShardStats) {
	if o == nil {
		return
	}
	if o.Shards > s.Shards {
		s.Shards = o.Shards
	}
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	s.Rounds += o.Rounds
	s.WindowsRun += o.WindowsRun
	s.WindowsSkipped += o.WindowsSkipped
	s.CrossPackets += o.CrossPackets
	s.RunNs += o.RunNs
	s.BarrierNs += o.BarrierNs
	for len(s.ShardEvents) < len(o.ShardEvents) {
		s.ShardEvents = append(s.ShardEvents, 0)
	}
	for i, v := range o.ShardEvents {
		s.ShardEvents[i] += v
	}
	s.Rebalances += o.Rebalances
	if o.WorkerSpread > s.WorkerSpread {
		s.WorkerSpread = o.WorkerSpread
	}
}

// BarrierFrac is the fraction of engine wall-clock spent at barriers.
func (s *ShardStats) BarrierFrac() float64 {
	total := s.RunNs + s.BarrierNs
	if total <= 0 {
		return 0
	}
	return float64(s.BarrierNs) / float64(total)
}

// EventShareBounds returns the smallest and largest per-shard share of
// executed events. A wide spread means the partition is load-imbalanced
// (one shard does most of the simulating while the rest idle at
// barriers); unlike wall-clock spans, shares are deterministic and
// meaningful on any machine.
func (s *ShardStats) EventShareBounds() (lo, hi float64) {
	if len(s.ShardEvents) == 0 {
		return 0, 0
	}
	var total uint64
	for _, v := range s.ShardEvents {
		total += v
	}
	if total == 0 {
		return 0, 0
	}
	lo = float64(s.ShardEvents[0]) / float64(total)
	hi = lo
	for _, v := range s.ShardEvents[1:] {
		f := float64(v) / float64(total)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	return lo, hi
}

// shardedRun is the shared state of one windowed run.
type shardedRun struct {
	proto     ShardableProtocol
	envs      []*Env
	hostShard []int

	// remaining counts unfinished flows; decremented (atomically — the
	// only cross-shard write during a window) as completions happen,
	// checked by the driver at barriers.
	remaining atomic.Int64

	// recv stages cross-shard receiver starts, indexed by the source
	// (releasing) shard so each slice has a single writer per window.
	recv [][]*Flow
	// tear stages cross-shard sender teardowns, indexed by the
	// completing (receiver) shard — again a single writer per window.
	tear [][]*Flow
	// pendTear holds quiesced senders awaiting the deferred recycle
	// half of their teardown, indexed by the sender's (source) shard.
	// Written by the driver at barriers, drained by the worker owning
	// the shard just before its next window runs — the start/done
	// channel handoffs order the two.
	pendTear [][]*Flow
}

func (r *shardedRun) flowDone() { r.remaining.Add(-1) }

// stageReceiverStart records a cross-shard flow released in shard this
// window; the driver binds its receiver at the next barrier.
func (r *shardedRun) stageReceiverStart(shard int, f *Flow) {
	r.recv[shard] = append(r.recv[shard], f)
}

// stageTeardown records a cross-shard flow completed in shard (the
// receiver side) this window; the driver unbinds and recycles the
// sender at the next barrier.
func (r *shardedRun) stageTeardown(shard int, f *Flow) {
	r.tear[shard] = append(r.tear[shard], f)
	r.flowDone()
}

// applyReceiverStarts binds staged receivers in their destination
// shards. Runs on the driver thread at a barrier: every shard is
// quiescent, and iterating source shards in index order (entries within
// a slice are in release order) makes the per-destination-pool
// allocation order a pure function of the workload.
func (r *shardedRun) applyReceiverStarts() {
	for i := range r.recv {
		staged := r.recv[i]
		if len(staged) == 0 {
			continue
		}
		for j, f := range staged {
			r.proto.StartReceiver(r.envs[r.hostShard[f.Dst.ID()]], f)
			staged[j] = nil
		}
		r.recv[i] = staged[:0]
	}
}

// quiesceTeardowns freezes every sender staged for teardown this round
// and regroups the flows per source shard for deferred recycling. Runs
// on the driver thread at a barrier, iterating completing shards in
// index order (entries within a slice are in completion order) so each
// source shard's deferred queue is a deterministic subsequence of the
// old global application order.
//
// Setting srcDone and stopping the sender's timers here is the entire
// schedule-visible half of a teardown: every sender packet handler and
// timer callback early-returns on SenderDone, and after StopTimers the
// shard's pending set matches what a full barrier teardown would have
// left — so horizons, and with them the whole round trajectory, are
// bit-identical to applying everything at the barrier. The remaining
// half (NIC unbind, endpoint recycle, flow freelist) touches only
// shard-local pools that are read exclusively while the shard
// executes, so it rides the shard's next granted window instead of the
// serial barrier path. Senders without the StopTimers hook tear down
// at the barrier, as before.
func (r *shardedRun) quiesceTeardowns() {
	for i := range r.tear {
		staged := r.tear[i]
		if len(staged) == 0 {
			continue
		}
		for j, f := range staged {
			f.srcDone = true
			if q, ok := f.Src.Endpoint(f.ID, false).(SenderQuiescer); ok {
				q.StopTimers()
				d := r.hostShard[f.Src.ID()]
				r.pendTear[d] = append(r.pendTear[d], f)
			} else {
				r.recycleSender(f)
			}
			staged[j] = nil
		}
		r.tear[i] = staged[:0]
	}
}

// recycleSender is the deferred half of a sender teardown: unbind the
// endpoint from the source NIC, recycle it, and return a recyclable
// flow to the source shard's freelist.
func (r *shardedRun) recycleSender(f *Flow) {
	se := r.envs[r.hostShard[f.Src.ID()]]
	src := f.Src.Unbind(f.ID, false)
	if rec, ok := src.(EndpointRecycler); ok {
		rec.Recycle(se)
	}
	if f.pooled && se.recycleFlows {
		se.putFlow(f)
	}
}

// applyTeardowns recycles every quiesced sender of shard d. Called by
// the worker owning d just before the shard's window runs (or by the
// driver after the round loop exits, to flush shards that never ran
// again). Recycled structs land in the pools the shard's own releaser
// pops while executing, so applying just before RunUntil presents
// exactly the pool state a barrier-time application would have.
func (r *shardedRun) applyTeardowns(d int) {
	staged := r.pendTear[d]
	for j, f := range staged {
		r.recycleSender(f)
		staged[j] = nil
	}
	r.pendTear[d] = staged[:0]
}

// shardIdle marks a shard with no event inside its horizon this round:
// the crew skips it entirely (no RunUntil, no clock churn).
const shardIdle = sim.Time(-1)

// crew is the persistent worker pool of one windowed run. Worker w
// owns a set of logical shards — seeded from Partition.ShardWorker's
// deterministic host-count-weighted packing, re-packed mid-run by the
// driver's event-load rebalancer (reassign) — executing them
// sequentially each round. runTo and owned are written by the driver
// before the start signal and shard scheduler state by the owning
// worker before the done signal; the channel handoffs give the
// happens-before edges that make the barrier a real synchronization
// point (the race detector checks this under -race golden runs).
type crew struct {
	scheds []*sim.Scheduler
	owned  [][]int // worker -> owned shard indices, ascending
	runTo  []sim.Time
	// preRun, when set, runs on the owning worker for each non-idle
	// shard just before its RunUntil — the deferred teardown hook. Set
	// once by the driver before the first start signal.
	preRun func(shard int)
	start  []chan struct{}
	done   chan struct{}
}

func startCrew(scheds []*sim.Scheduler, shardWorker []int, workers int, runTo []sim.Time) *crew {
	c := &crew{
		scheds: scheds,
		owned:  make([][]int, workers),
		runTo:  runTo,
		start:  make([]chan struct{}, workers),
		done:   make(chan struct{}, workers),
	}
	for i := range scheds {
		w := i % workers
		if shardWorker != nil {
			w = shardWorker[i]
		}
		c.owned[w] = append(c.owned[w], i)
	}
	for w := range c.start {
		ch := make(chan struct{}, 1)
		c.start[w] = ch
		go func(w int, ch chan struct{}) {
			for range ch {
				c.runShards(w)
				c.done <- struct{}{}
			}
		}(w, ch)
	}
	return c
}

// runShards executes worker w's non-idle shards up to their per-shard
// horizons. Called from the worker goroutine, or from the driver when
// only one worker has work this round (saving the channel round trip).
func (c *crew) runShards(w int) {
	for _, i := range c.owned[w] {
		if rt := c.runTo[i]; rt != shardIdle {
			if c.preRun != nil {
				c.preRun(i)
			}
			c.scheds[i].RunUntil(rt)
		}
	}
}

// reassign rebuilds the worker→shard ownership from a new shard→worker
// map. Driver-only, between rounds: every worker is parked on its start
// channel, and the next start signal publishes the new slices.
func (c *crew) reassign(shardWorker []int) {
	for w := range c.owned {
		c.owned[w] = c.owned[w][:0]
	}
	for i, w := range shardWorker {
		c.owned[w] = append(c.owned[w], i)
	}
}

func (c *crew) stop() {
	for _, ch := range c.start {
		close(ch)
	}
}

// shardQueue is one shard's pending-release buffer: the driver pushes
// flows destined for the shard's releaser at barriers, the releaser
// pulls them (through the FlowSource interface) while executing a
// window. The two never run concurrently — barriers are quiescent — so
// no locking. Drained prefixes are compacted away so steady-state
// memory is one lookahead window's worth of flows, not the whole trace.
type shardQueue struct {
	flows []SimpleFlow
	next  int
}

func (q *shardQueue) Next() (SimpleFlow, bool) {
	if q.next >= len(q.flows) {
		q.flows = q.flows[:0]
		q.next = 0
		return SimpleFlow{}, false
	}
	f := q.flows[q.next]
	q.next++
	return f, true
}

func (q *shardQueue) push(f SimpleFlow) {
	if q.next > 4096 && q.next*2 >= len(q.flows) {
		m := copy(q.flows, q.flows[q.next:])
		q.flows = q.flows[:m]
		q.next = 0
	}
	q.flows = append(q.flows, f)
}

func (q *shardQueue) pending() int { return len(q.flows) - q.next }

// runShardedSource is RunSource's windowed twin for partitioned
// fabrics. The single arrival-ordered source is demultiplexed at round
// barriers: before each round the driver pulls every flow arriving
// inside the round's furthest horizon, pushes each onto its source
// shard's queue, and arms any idle releaser. The one-flow lookahead
// into the stream (srcNext.Arrive) participates in every shard's eff
// bound, so horizons never outrun an unreleased arrival: a flow is
// always fed to its shard at a barrier that precedes its release time.
func runShardedSource(env *Env, proto ShardableProtocol, src FlowSource, cfg RunConfig) stats.Summary {
	part := env.Net.Part
	n := part.N
	la := part.Lookahead
	if la == nil {
		// Builders that predate the matrix supply only the global
		// minimum window: synthesize the equivalent complete matrix.
		if part.Window <= 0 {
			panic("transport: partitioned fabric without a positive lookahead window")
		}
		la = topo.NewLookahead(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					la.AddWire(i, j, part.Window)
				}
			}
		}
		la.Close()
	}
	if m := la.Min(); m <= 0 && m != sim.MaxTime {
		panic("transport: partitioned fabric with a non-positive lookahead entry")
	}
	_, recycle := Protocol(proto).(FlowRecycler)

	run := &shardedRun{
		proto:     proto,
		hostShard: part.HostShard,
		recv:      make([][]*Flow, n),
		tear:      make([][]*Flow, n),
		pendTear:  make([][]*Flow, n),
	}
	run.envs = make([]*Env, n)
	for i := range run.envs {
		run.envs[i] = &Env{
			Net:          env.Net,
			Collector:    stats.NewCollector(),
			RTOMin:       env.RTOMin,
			OnComplete:   env.OnComplete,
			recycleFlows: recycle,
			sched:        part.Scheds[i],
			shard:        i,
			run:          run,
		}
	}

	queues := make([]*shardQueue, n)
	rels := make([]*releaser, n)
	for i := range queues {
		queues[i] = &shardQueue{}
		rel := &releaser{env: run.envs[i], proto: proto, src: queues[i], sharded: run, shard: i}
		rel.fireFn = rel.fire
		rels[i] = rel
	}

	collectors := make([]*stats.Collector, n)
	for i, se := range run.envs {
		collectors[i] = se.Collector
	}
	// A spilling caller collector folds per-shard completions
	// incrementally at barriers instead of one MergeCanonical at the
	// end, keeping resident records bounded by the spill chunk while
	// staying bit-identical to the in-memory windowed Summary
	// (stats.WindowFold; DESIGN.md §7.7).
	var fold *stats.WindowFold
	if env.Collector.Spilling() {
		fold = stats.NewWindowFold(env.Collector)
	}

	// srcNext is the driver's one-flow lookahead into the global stream.
	var srcNext SimpleFlow
	srcHave := false
	var lastArrive sim.Time
	pull := func() {
		f, ok := src.Next()
		if !ok {
			srcHave = false
			return
		}
		if f.Arrive < lastArrive {
			panic(fmt.Sprintf("transport: FlowSource yielded decreasing arrival times (%v after %v); sources must be arrival-sorted",
				f.Arrive, lastArrive))
		}
		lastArrive = f.Arrive
		srcNext, srcHave = f, true
	}
	pull()
	// feed routes every flow arriving by horizon to its source shard's
	// queue (counting it as outstanding) and arms idle releasers. Runs
	// on the driver thread while every shard is quiescent.
	feed := func(horizon sim.Time) {
		for srcHave && srcNext.Arrive <= horizon {
			queues[part.HostShard[srcNext.Src]].push(srcNext)
			run.remaining.Add(1)
			pull()
		}
		for _, rel := range rels {
			if !rel.armed {
				if !rel.havePending {
					rel.prime()
				}
				if rel.havePending {
					rel.env.sched.At(rel.pending.Arrive, rel.fireFn)
					rel.armed = true
				}
			}
		}
	}

	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 2_000_000_000
	}
	budget := env.Net.Executed() + cfg.MaxEvents
	startExec := make([]uint64, n)
	for i, s := range part.Scheds {
		// Per-shard runaway backstop; the canonical budget check happens
		// at barriers over the summed count.
		s.Limit = s.Executed + cfg.MaxEvents
		startExec[i] = s.Executed
	}
	deadline := sim.MaxTime
	if cfg.Deadline != 0 {
		deadline = cfg.Deadline
	}

	workers := part.Workers
	if env.OnComplete != nil {
		// A completion observer is arbitrary user code invoked inside
		// shard event loops; run single-threaded rather than racing it.
		workers = 1
	}
	st := &ShardStats{Shards: n, Workers: workers, ShardEvents: make([]uint64, n)}
	floors := make([]sim.Time, n)   // every event < floors[d] is executed
	effs := make([]sim.Time, n)     // earliest possible next emission per shard
	horizons := make([]sim.Time, n) // h_d for the current round
	runTo := make([]sim.Time, n)    // per-shard deadline, shardIdle to skip
	settleTo := make([]sim.Time, n) // furthest horizon each shard ever ran to
	preTear := func(i int) {
		if len(run.pendTear[i]) > 0 {
			run.applyTeardowns(i)
		}
	}
	var workerPool *crew
	var workerBusy []bool
	// assign is the live shard→worker map: seeded from the partition's
	// static host-count packing, re-packed mid-run from measured event
	// loads. Purely an execution-placement concern — outcomes never see
	// it.
	var assign []int
	var lastExec, loadBuf []uint64
	if workers > 1 {
		workerPool = startCrew(part.Scheds, part.ShardWorker, workers, runTo)
		workerPool.preRun = preTear
		workerBusy = make([]bool, workers)
		defer workerPool.stop()
		assign = make([]int, n)
		for i := range assign {
			if part.ShardWorker != nil {
				assign[i] = part.ShardWorker[i]
			} else {
				assign[i] = i % workers
			}
		}
		lastExec = make([]uint64, n)
		for i, s := range part.Scheds {
			lastExec[i] = s.Executed
		}
		loadBuf = make([]uint64, n)
	}
	shardWorker := func(i int) int {
		if assign != nil {
			return assign[i]
		}
		return i % workers
	}

	// The round loop. Each iteration computes per-shard horizons from
	// the lookahead matrix, executes every shard (in parallel) up to
	// its own horizon, then applies cross-shard effects at the barrier.
	// Horizons are a pure function of shard-local scheduler state and
	// the stream lookahead, so the loop's entire trajectory — barrier
	// instants included — is identical for every worker count and both
	// queue implementations (NextAtBound is exact on each).
	for {
		// eff_s: shard s cannot emit anything (packet, release, or
		// derived event) before this instant. Its earliest pending
		// event and the next unreleased arrival both bound it from
		// below; its floor keeps it monotonic when the shard is ahead.
		srcArr := sim.MaxTime
		if srcHave {
			srcArr = srcNext.Arrive
		}
		idle := true
		for i, s := range part.Scheds {
			next := srcArr
			if at, ok := s.NextAtBound(); ok && at < next {
				next = at
			}
			if next != sim.MaxTime {
				idle = false
				if f := floors[i]; next < f {
					next = f
				}
			}
			effs[i] = next
		}
		if idle {
			// Drained with flows outstanding: a protocol stall; report
			// truncation below just like the monolithic path.
			break
		}
		// h_d = min_s (eff_s + L[s][d]), including s = d via the cycle
		// entry. Floors keep horizons monotonic; the deadline caps the
		// executable range but not the floor (a capped shard resumes
		// from deadline+1 next round, and the loop exits once every
		// shard has reached the deadline).
		maxRun := sim.Time(0)
		minRun := sim.MaxTime
		for d := 0; d < n; d++ {
			h := sim.MaxTime
			for s := 0; s < n; s++ {
				if v := satAddTime(effs[s], la.At(s, d)); v < h {
					h = v
				}
			}
			if f := floors[d]; h < f {
				h = f
			}
			horizons[d] = h
			rt := h - 1
			if rt > deadline {
				rt = deadline
			}
			runTo[d] = rt
			if rt > settleTo[d] {
				settleTo[d] = rt
			}
			if rt > maxRun {
				maxRun = rt
			}
			if rt < minRun {
				minRun = rt
			}
		}
		// Feed every arrival inside the furthest horizon before any
		// shard executes; arrivals beyond a shard's own horizon just
		// sit armed until a later round.
		feed(maxRun)
		// A shard with no event inside its horizon skips the round.
		launched := 0
		soloWorker := -1
		if workerBusy != nil {
			for w := range workerBusy {
				workerBusy[w] = false
			}
		}
		for i, s := range part.Scheds {
			at, ok := s.NextAtBound()
			if !ok || at > runTo[i] {
				runTo[i] = shardIdle
				st.WindowsSkipped++
				continue
			}
			st.WindowsRun++
			if workerBusy != nil {
				if w := shardWorker(i); !workerBusy[w] {
					workerBusy[w] = true
					launched++
					soloWorker = w
				}
			}
		}
		t0 := time.Now()
		switch {
		case workerPool == nil:
			for i, s := range part.Scheds {
				if rt := runTo[i]; rt != shardIdle {
					preTear(i)
					s.RunUntil(rt)
				}
			}
		case launched == 1:
			// One busy worker: run its shards on the driver thread and
			// skip the channel round trip.
			workerPool.runShards(soloWorker)
		default:
			for w, busy := range workerBusy {
				if busy {
					workerPool.start[w] <- struct{}{}
				}
			}
			for i := 0; i < launched; i++ {
				<-workerPool.done
			}
		}
		t1 := time.Now()
		// Barrier: every shard quiescent, driver thread only.
		st.CrossPackets += uint64(netsim.MergeWindows(part.Outboxes, part.Inboxes))
		run.applyReceiverStarts()
		run.quiesceTeardowns()
		for d := 0; d < n; d++ {
			if h := horizons[d]; h > deadline {
				floors[d] = deadline + 1
			} else {
				floors[d] = h
			}
		}
		if fold != nil {
			// Everything before the smallest new floor is final: future
			// completions in shard d happen at or after floors[d].
			safe := floors[0]
			for _, f := range floors[1:] {
				if f < safe {
					safe = f
				}
			}
			fold.Fold(safe, collectors)
		}
		st.Rounds++
		st.RunNs += t1.Sub(t0).Nanoseconds()
		st.BarrierNs += time.Since(t1).Nanoseconds()
		if workerPool != nil && st.Rounds%rebalanceRounds == 0 {
			// Event-load-aware rebalance: re-run the LPT packing over the
			// last window of measured per-shard executed events, adopting
			// it only on a clear win (hysteresis — reassignment churn
			// costs locality and buys nothing on near-ties).
			var total uint64
			for i, s := range part.Scheds {
				loadBuf[i] = s.Executed - lastExec[i]
				lastExec[i] = s.Executed
				total += loadBuf[i]
			}
			if total > 0 {
				prop := topo.AssignWorkers(loadBuf, workers)
				cur := workerMakespan(assign, loadBuf, workers)
				alt := workerMakespan(prop, loadBuf, workers)
				if alt*16 <= cur*15 {
					copy(assign, prop)
					workerPool.reassign(assign)
					st.Rebalances++
				}
			}
		}
		if run.remaining.Load() <= 0 && !srcHave {
			break
		}
		if env.Net.Executed() >= budget {
			break
		}
		if minRun >= deadline {
			break
		}
	}
	// Flush teardowns deferred to shards that never ran another window.
	for d := range run.pendTear {
		preTear(d)
	}
	for i, s := range part.Scheds {
		st.ShardEvents[i] = s.Executed - startExec[i]
	}
	if workerPool != nil {
		spans := make([]uint64, workers)
		var total uint64
		for i, v := range st.ShardEvents {
			spans[assign[i]] += v
			total += v
		}
		if total > 0 {
			lo, hi := spans[0], spans[0]
			for _, v := range spans[1:] {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			st.WorkerSpread = float64(hi-lo) / float64(total)
		}
	}
	env.ShardStats = st

	// Settle deferred fused-path tx accounting (DESIGN.md §7.6): each
	// shard's ports count every serialization physically complete by the
	// furthest horizon that shard ever ran to — exactly the set whose
	// classic finishTx events would have executed.
	limOf := make(map[*sim.Scheduler]sim.Time, n)
	for i, s := range part.Scheds {
		limOf[s] = settleTo[i]
	}
	env.Net.SettleTx(func(s *sim.Scheduler) sim.Time { return limOf[s] })

	// Merge per-shard results into the caller's env in canonical order.
	for _, se := range run.envs {
		env.Eff.SentPayload += se.Eff.SentPayload
		env.Eff.SentLowPayload += se.Eff.SentLowPayload
		env.Eff.UsefulDelivered += se.Eff.UsefulDelivered
		env.Eff.UsefulLow += se.Eff.UsefulLow
		se.run = nil
	}
	if fold != nil {
		fold.FoldAll(collectors)
	} else {
		env.Collector.MergeCanonical(collectors...)
	}
	for _, h := range env.Net.Hosts {
		env.Eff.SentPayload += h.NIC().Stats.TxDataBytes
	}
	sum := env.Collector.Summarize()
	// Unfinished counts released-or-queued flows that never completed
	// plus everything still in the stream.
	left := int(run.remaining.Load())
	if srcHave {
		left++
		srcHave = false
	}
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		left++
	}
	if left > 0 {
		sum.Truncated = true
		sum.Unfinished = left
	}
	return sum
}

// rebalanceRounds is how many barrier rounds pass between event-load
// rebalance checks. Large enough that the sampled window smooths
// transient skew and the LPT + makespan arithmetic amortizes to noise,
// small enough that a workload phase change (incast burst moving
// between leaves, a long-flow tail) reaches the packing while it still
// matters.
const rebalanceRounds = 1024

// workerMakespan is the heaviest per-worker total of the given
// per-shard loads under an assignment — the quantity LPT minimizes and
// the rebalancer's adoption criterion.
func workerMakespan(assign []int, load []uint64, workers int) uint64 {
	spans := make([]uint64, workers)
	for i, w := range assign {
		spans[w] += load[i]
	}
	var max uint64
	for _, v := range spans {
		if v > max {
			max = v
		}
	}
	return max
}

// satAddTime adds two times, saturating at sim.MaxTime (an idle shard's
// eff is MaxTime; adding a lookahead entry must not wrap).
func satAddTime(a, b sim.Time) sim.Time {
	if a == sim.MaxTime || b == sim.MaxTime || a > sim.MaxTime-b {
		return sim.MaxTime
	}
	return a + b
}
