// Package conformance runs every transport in the repository through a
// common battery of scenarios: an idle network, a loaded all-to-all
// workload, a hard incast, random (non-congestion) loss injection, and a
// tiny-buffer fabric. Every protocol must complete every flow in every
// scenario — the baseline property all the paper's experiments assume.
package conformance

import (
	"fmt"
	"testing"

	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/topo"
	"ppt/internal/transport"
	"ppt/internal/transport/aeolus"
	"ppt/internal/transport/dctcp"
	"ppt/internal/transport/expresspass"
	"ppt/internal/transport/halfback"
	"ppt/internal/transport/homa"
	"ppt/internal/transport/hpcc"
	"ppt/internal/transport/ndp"
	"ppt/internal/transport/pias"
	pptproto "ppt/internal/transport/ppt"
	"ppt/internal/transport/rc3"
	"ppt/internal/transport/swift"
	"ppt/internal/workload"
)

// proto describes one transport under test and its fabric needs.
type proto struct {
	name  string
	make  func() transport.Protocol
	tweak func(*topo.Config)
}

func allProtocols() []proto {
	return []proto{
		{name: "dctcp", make: func() transport.Protocol { return dctcp.Proto{} }},
		{name: "tcp10", make: func() transport.Protocol { return dctcp.Proto{Cfg: dctcp.Config{NoECN: true}} }},
		{name: "ppt", make: func() transport.Protocol { return pptproto.Proto{} }},
		{name: "ppt-noecn", make: func() transport.Protocol { return pptproto.Proto{Cfg: pptproto.Config{DisableECN: true}} }},
		{name: "ppt-noewd", make: func() transport.Protocol { return pptproto.Proto{Cfg: pptproto.Config{DisableEWD: true}} }},
		{name: "ppt-nosched", make: func() transport.Protocol { return pptproto.Proto{Cfg: pptproto.Config{DisableScheduling: true}} }},
		{name: "ppt-sndbuf128k", make: func() transport.Protocol { return pptproto.Proto{Cfg: pptproto.Config{SendBuf: 128 << 10}} }},
		{name: "rc3", make: func() transport.Protocol { return rc3.Proto{} }},
		{name: "pias", make: func() transport.Protocol { return pias.Proto{} }},
		{name: "halfback", make: func() transport.Protocol { return halfback.Proto{} }},
		{name: "swift", make: func() transport.Protocol { return swift.Proto{} }},
		{name: "swift+ppt", make: func() transport.Protocol { return swift.Proto{Cfg: swift.Config{WithPPT: true}} }},
		{name: "hpcc", make: func() transport.Protocol { return hpcc.Proto{} },
			tweak: func(c *topo.Config) { c.EnableINT = true }},
		{name: "hpcc+ppt", make: func() transport.Protocol { return hpcc.PPTVariant{} },
			tweak: func(c *topo.Config) { c.EnableINT = true }},
		{name: "homa", make: func() transport.Protocol { return homa.New(homa.Config{}) }},
		{name: "aeolus", make: func() transport.Protocol { return aeolus.New(aeolus.Config{}) },
			tweak: func(c *topo.Config) { c.DroppableThresh = 24_000 }},
		{name: "ndp", make: func() transport.Protocol { return ndp.New(ndp.Config{}) },
			tweak: func(c *topo.Config) { c.TrimToHeader = true }},
		{name: "expresspass", make: func() transport.Protocol { return expresspass.New(expresspass.Config{}) }},
	}
}

// scenario shapes one fabric + workload combination.
type scenario struct {
	name   string
	adapt  func(*topo.Config)
	flows  func(cfg topo.Config, hosts int) []transport.SimpleFlow
	rtoMin sim.Time
}

func baseConfig() topo.Config {
	return topo.Config{
		HostRate:            10 * netsim.Gbps,
		LinkDelay:           5 * sim.Microsecond,
		ECNHighK:            30_000,
		ECNLowK:             24_000,
		SharedBuffer:        1 << 20,
		DynamicLowThreshold: true,
	}
}

func generated(pattern func(hosts int) workload.Pattern, load float64, n int) func(topo.Config, int) []transport.SimpleFlow {
	return func(cfg topo.Config, hosts int) []transport.SimpleFlow {
		wf := workload.Generate(workload.GenConfig{
			Dist: workload.WebSearch, Pattern: pattern(hosts), Load: load,
			HostRate: cfg.HostRate, NumFlows: n, Seed: 5,
		})
		flows := make([]transport.SimpleFlow, len(wf))
		for i, f := range wf {
			flows[i] = transport.SimpleFlow{ID: f.ID, Src: f.Src, Dst: f.Dst,
				Size: f.Size, Arrive: f.Arrive, FirstCall: f.Size}
		}
		return flows
	}
}

func scenarios() []scenario {
	return []scenario{
		{
			name: "idle-single-flow",
			flows: func(topo.Config, int) []transport.SimpleFlow {
				return []transport.SimpleFlow{{ID: 1, Src: 0, Dst: 1, Size: 777_777, FirstCall: 777_777}}
			},
		},
		{
			name:  "loaded-all-to-all",
			flows: generated(func(h int) workload.Pattern { return workload.AllToAll{N: h} }, 0.6, 60),
		},
		{
			name:  "hard-incast",
			flows: generated(func(h int) workload.Pattern { return workload.Incast{N: h, Target: 0} }, 0.9, 40),
		},
		{
			name:   "random-loss-1pct",
			adapt:  func(c *topo.Config) { c.LossProb = 0.01 },
			flows:  generated(func(h int) workload.Pattern { return workload.AllToAll{N: h} }, 0.4, 40),
			rtoMin: 300 * sim.Microsecond,
		},
		{
			name:   "tiny-buffer",
			adapt:  func(c *topo.Config) { c.SharedBuffer = 40_000 },
			flows:  generated(func(h int) workload.Pattern { return workload.Incast{N: h, Target: 0} }, 0.7, 30),
			rtoMin: 300 * sim.Microsecond,
		},
	}
}

func TestEveryTransportEveryScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance sweep")
	}
	const hosts = 8
	for _, sc := range scenarios() {
		for _, pr := range allProtocols() {
			sc, pr := sc, pr
			t.Run(fmt.Sprintf("%s/%s", sc.name, pr.name), func(t *testing.T) {
				t.Parallel()
				cfg := baseConfig()
				if sc.adapt != nil {
					sc.adapt(&cfg)
				}
				if pr.tweak != nil {
					pr.tweak(&cfg)
				}
				net := topo.Star(hosts, cfg)
				env := transport.NewEnv(net)
				env.RTOMin = 500 * sim.Microsecond
				if sc.rtoMin != 0 {
					env.RTOMin = sc.rtoMin
				}
				flows := sc.flows(cfg, hosts)
				sum := transport.Run(env, pr.make(), flows, transport.RunConfig{MaxEvents: 80_000_000})
				if sum.Flows != len(flows) {
					t.Fatalf("completed %d/%d flows", sum.Flows, len(flows))
				}
				// Sanity: all FCTs positive and the efficiency
				// accounting is self-consistent.
				if sum.OverallAvg <= 0 {
					t.Fatalf("non-positive avg FCT %v", sum.OverallAvg)
				}
				if env.Eff.SentPayload < env.Eff.UsefulDelivered {
					t.Fatalf("delivered %d > sent %d", env.Eff.UsefulDelivered, env.Eff.SentPayload)
				}
			})
		}
	}
}

// TestLossInjectionActuallyDrops guards the failure-injection plumbing
// itself.
func TestLossInjectionActuallyDrops(t *testing.T) {
	cfg := baseConfig()
	cfg.LossProb = 0.05
	net := topo.Star(4, cfg)
	env := transport.NewEnv(net)
	env.RTOMin = 300 * sim.Microsecond
	flows := []transport.SimpleFlow{{ID: 1, Src: 0, Dst: 1, Size: 2_000_000, FirstCall: 2_000_000}}
	sum := transport.Run(env, dctcp.Proto{}, flows, transport.RunConfig{})
	if sum.Flows != 1 {
		t.Fatal("flow did not survive loss injection")
	}
	var rnd int64
	for _, p := range net.SwitchPorts() {
		rnd += p.Stats.RandomDrops
	}
	if rnd == 0 {
		t.Fatal("LossProb=0.05 never dropped")
	}
}

// TestLossInjectionDeterministic: identical seeds give identical drops.
func TestLossInjectionDeterministic(t *testing.T) {
	run := func() int64 {
		cfg := baseConfig()
		cfg.LossProb = 0.02
		net := topo.Star(4, cfg)
		env := transport.NewEnv(net)
		env.RTOMin = 300 * sim.Microsecond
		transport.Run(env, dctcp.Proto{}, []transport.SimpleFlow{
			{ID: 1, Src: 0, Dst: 1, Size: 1_000_000, FirstCall: 1_000_000},
		}, transport.RunConfig{})
		var rnd int64
		for _, p := range net.SwitchPorts() {
			rnd += p.Stats.RandomDrops
		}
		return rnd
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic loss: %d vs %d", a, b)
	}
}
