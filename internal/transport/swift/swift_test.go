package swift

import (
	"testing"

	"ppt/internal/sim"
	"ppt/internal/transport"
	"ppt/internal/transport/transporttest"
)

func TestSingleFlowCompletes(t *testing.T) {
	env := transporttest.NewStarEnv(4)
	sum := transporttest.MustComplete(t, env, Proto{}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 2_000_000},
	})
	if sum.OverallAvg < 1600*sim.Microsecond {
		t.Fatalf("impossibly fast: %v", sum.OverallAvg)
	}
}

func TestDelayStaysNearTarget(t *testing.T) {
	// Two elephants: delay-based control should keep the standing queue
	// bounded so no drops occur with a moderate buffer.
	env := transporttest.NewStarEnv(4, transporttest.WithBuffer(400_000))
	flows := []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 2, Size: 5_000_000},
		{ID: 2, Src: 1, Dst: 2, Size: 5_000_000},
	}
	transporttest.MustComplete(t, env, Proto{}, flows)
	var drops int64
	for _, p := range env.Net.SwitchPorts() {
		drops += p.Stats.Drops
	}
	if drops != 0 {
		t.Fatalf("swift dropped %d packets", drops)
	}
}

func TestAdjustIncreasesBelowTarget(t *testing.T) {
	env := transporttest.NewStarEnv(4)
	f := &transport.Flow{ID: 1, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1], Size: 1 << 30}
	cfg := Config{}.withDefaults(env)
	s := &sender{env: env, f: f, cfg: cfg, cwnd: float64(cfg.InitCwnd)}
	before := s.cwnd
	s.adjust(cfg.TargetDelay/2, 10_000)
	if s.cwnd <= before {
		t.Fatal("no additive increase below target delay")
	}
}

func TestAdjustDecreasesAboveTarget(t *testing.T) {
	env := transporttest.NewStarEnv(4)
	f := &transport.Flow{ID: 1, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1], Size: 1 << 30}
	cfg := Config{}.withDefaults(env)
	s := &sender{env: env, f: f, cfg: cfg, cwnd: float64(cfg.InitCwnd), srtt: env.BaseRTT()}
	before := s.cwnd
	s.adjust(cfg.TargetDelay*3, 10_000)
	if s.cwnd >= before {
		t.Fatal("no decrease above target delay")
	}
	// Bounded by MaxMD.
	if s.cwnd < before*(1-cfg.MaxMD)-1 {
		t.Fatalf("decrease %v -> %v exceeds MaxMD", before, s.cwnd)
	}
}

func TestDecreaseThrottledPerRTT(t *testing.T) {
	env := transporttest.NewStarEnv(4)
	f := &transport.Flow{ID: 1, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1], Size: 1 << 30}
	cfg := Config{}.withDefaults(env)
	s := &sender{env: env, f: f, cfg: cfg, cwnd: float64(cfg.InitCwnd), srtt: env.BaseRTT()}
	s.adjust(cfg.TargetDelay*3, 10_000)
	after := s.cwnd
	s.adjust(cfg.TargetDelay*3, 10_000) // same instant: throttled
	if s.cwnd != after {
		t.Fatal("second decrease within an RTT not throttled")
	}
}

func TestWithPPTBeatsPlainSwiftOnIdleNetwork(t *testing.T) {
	mk := func(withPPT bool) sim.Time {
		env := transporttest.NewStarEnv(4)
		sum := transporttest.MustComplete(t, env, Proto{Cfg: Config{WithPPT: withPPT}},
			[]transport.SimpleFlow{{ID: 1, Src: 0, Dst: 1, Size: 90_000, FirstCall: 1_000}})
		return sum.OverallAvg
	}
	plain := mk(false)
	dual := mk(true)
	if dual > plain {
		t.Fatalf("swift+ppt (%v) slower than swift (%v) on idle network", dual, plain)
	}
}

func TestWithPPTCompletesWorkload(t *testing.T) {
	env := transporttest.NewStarEnv(6)
	transporttest.MustComplete(t, env, Proto{Cfg: Config{WithPPT: true}},
		transporttest.MixedFlows(6, 3_000_000, 20_000))
}

func TestNames(t *testing.T) {
	if (Proto{}).Name() != "swift" {
		t.Fatal("name")
	}
	if (Proto{Cfg: Config{WithPPT: true}}).Name() != "swift+ppt" {
		t.Fatal("variant name")
	}
}
