// Package swift implements a delay-based transport conceptually
// equivalent to Swift [21], as used by the paper's Figure 14 study: the
// congestion window is adjusted purely on measured fabric RTT against a
// target delay (the ns-3 variant the paper describes, which ignores host
// congestion). WithPPT layers the paper's LCP design on top: an
// opportunistic low-priority loop opens whenever the measured delay
// falls below target, uses the same 2:1 EWD clocking, and closes after
// two silent RTTs, with PPT's mirror-symmetric flow scheduling.
package swift

import (
	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/transport"
	"ppt/internal/transport/lowloop"
	"ppt/internal/transport/ppt"
)

// Config tunes the delay-based loop.
type Config struct {
	// TargetDelay is the fabric RTT target (default: 1.5 × base RTT).
	TargetDelay sim.Time
	// AI is the additive increase per RTT in MSS units (default 1).
	AI float64
	// Beta scales multiplicative decrease (default 0.8).
	Beta float64
	// MaxMD floors a single decrease factor (default 0.5).
	MaxMD float64
	// InitCwnd in bytes (default 10 MSS).
	InitCwnd int64

	// WithPPT enables the dual-loop + scheduling variant of Fig 14.
	WithPPT bool
}

func (c Config) withDefaults(env *transport.Env) Config {
	if c.TargetDelay == 0 {
		c.TargetDelay = env.BaseRTT() + env.BaseRTT()/2
	}
	if c.AI == 0 {
		c.AI = 1
	}
	if c.Beta == 0 {
		c.Beta = 0.8
	}
	if c.MaxMD == 0 {
		c.MaxMD = 0.5
	}
	if c.InitCwnd == 0 {
		c.InitCwnd = 10 * netsim.MSS
	}
	return c
}

// Proto is the Swift-like protocol factory.
type Proto struct {
	Cfg Config
}

// Name implements transport.Protocol.
func (p Proto) Name() string {
	if p.Cfg.WithPPT {
		return "swift+ppt"
	}
	return "swift"
}

// Start implements transport.Protocol.
func (p Proto) Start(env *transport.Env, f *transport.Flow) {
	cfg := p.Cfg.withDefaults(env)
	if cfg.WithPPT && f.FirstCall > 100_000 {
		f.IdentifiedLarge = true
	}
	if cfg.WithPPT {
		f.Dst.Bind(f.ID, true, ppt.NewDualLoopReceiver(env, f))
	} else {
		f.Dst.Bind(f.ID, true, &receiver{env: env, f: f, r: transport.NewReassembly(f.Size)})
	}
	s := &sender{env: env, f: f, cfg: cfg, cwnd: float64(cfg.InitCwnd)}
	if cfg.WithPPT {
		s.loop = lowloop.New(env, f, s)
	}
	f.Src.Bind(f.ID, false, s)
	s.trySend()
}

type sender struct {
	env *transport.Env
	f   *transport.Flow
	cfg Config

	cwnd           float64
	sndUna, sndNxt int64
	skip           transport.IntervalSet
	bytesSent      int64
	lastDecrease   sim.Time
	decreased      bool
	dupAcks        int
	rto            sim.Timer

	// loop is the PPT low-priority loop (WithPPT variant, Fig 14).
	loop      *lowloop.Loop
	loopOpens int
	srtt      sim.Time
}

// Frontier implements lowloop.Host.
func (s *sender) Frontier() int64 { return s.sndNxt }

// Window implements lowloop.Host.
func (s *sender) Window() float64 { return s.cwnd }

// RTT implements lowloop.Host.
func (s *sender) RTT() sim.Time { return s.rtt() }

// LowPrio implements lowloop.Host.
func (s *sender) LowPrio() int8 { return s.prio(true) }

// SkipSet implements lowloop.Host.
func (s *sender) SkipSet() *transport.IntervalSet { return &s.skip }

// OnSkipUpdate implements lowloop.Host.
func (s *sender) OnSkipUpdate() { s.trySend() }

func (s *sender) prio(low bool) int8 {
	if !s.cfg.WithPPT {
		return 0
	}
	var p int8
	switch {
	case s.f.IdentifiedLarge:
		p = 3
	case s.bytesSent < 100_000:
		p = 0
	case s.bytesSent < 1_000_000:
		p = 1
	case s.bytesSent < 10_000_000:
		p = 2
	default:
		p = 3
	}
	if low {
		p += 4
	}
	return p
}

func (s *sender) inflight() int64 {
	out := s.sndNxt - s.sndUna
	if out <= 0 {
		return 0
	}
	return out - s.skip.CoveredIn(s.sndUna, s.sndNxt)
}

func (s *sender) trySend() {
	if s.f.Done() {
		return
	}
	for s.sndNxt < s.f.Size {
		if float64(s.inflight())+netsim.MSS > s.cwnd && s.inflight() > 0 {
			break
		}
		seq := s.skip.ContiguousFrom(s.sndNxt)
		end := seq + netsim.MSS
		if end > s.f.Size {
			end = s.f.Size
		}
		if cov := s.skip.FirstCoveredIn(seq, end); cov < end {
			end = cov
		}
		if seq >= s.f.Size || end <= seq {
			break
		}
		pkt := s.f.Src.Data(s.f.ID, s.f.Dst.ID(), seq, int32(end-seq), s.prio(false))
		s.bytesSent += int64(end - seq)
		s.f.Src.Send(pkt)
		s.sndNxt = end
	}
	s.armRTO()
}

func (s *sender) armRTO() {
	if s.inflight() <= 0 || s.f.Done() {
		s.rto.Stop()
		return
	}
	if s.rto.Pending() {
		return
	}
	s.rto = s.env.Sched().After(s.env.RTO(), s.onRTO)
}

func (s *sender) onRTO() {
	if s.f.Done() || s.inflight() <= 0 {
		return
	}
	s.cwnd = netsim.MSS
	s.sndNxt = s.sndUna
	s.trySend()
	s.rto = s.env.Sched().After(s.env.RTO(), s.onRTO)
}

// Handle implements netsim.Endpoint.
func (s *sender) Handle(pkt *netsim.Packet) {
	if s.f.Done() || pkt.Kind != netsim.Ack {
		return
	}
	if pkt.LowLoop {
		if s.loop != nil {
			s.loop.OnLowAck(pkt)
		}
		return
	}
	var rtt sim.Time
	if pkt.EchoTS > 0 {
		rtt = s.env.Now() - pkt.EchoTS
		if s.srtt == 0 {
			s.srtt = rtt
		} else {
			s.srtt = (7*s.srtt + rtt) / 8
		}
	}
	if pkt.Seq > s.sndUna {
		acked := pkt.Seq - s.sndUna
		s.sndUna = pkt.Seq
		if s.sndUna > s.sndNxt {
			s.sndNxt = s.sndUna
		}
		s.dupAcks = 0
		s.rto.Stop()
		s.adjust(rtt, acked)
	} else if s.inflight() > 0 {
		s.dupAcks++
		if s.dupAcks == 3 {
			s.fastRetransmit()
			s.dupAcks = 0
		}
	}
	s.trySend()
}

// adjust is the Swift control law on fabric delay.
func (s *sender) adjust(rtt sim.Time, acked int64) {
	if rtt == 0 {
		return
	}
	if rtt < s.cfg.TargetDelay {
		// Additive increase, normalized per window.
		s.cwnd += s.cfg.AI * netsim.MSS * float64(acked) / s.cwnd
		if s.loop != nil && !s.loop.Active() {
			// The paper's Fig 14 trigger: delay below target means the
			// fabric has spare capacity for opportunistic packets.
			i := int64(s.env.BDP()) - int64(s.cwnd)
			s.loop.Open(i, s.loopOpens > 0)
			s.loopOpens++
		}
		return
	}
	// Multiplicative decrease at most once per RTT.
	now := s.env.Now()
	if s.decreased && now-s.lastDecrease < s.srtt {
		return
	}
	s.decreased = true
	s.lastDecrease = now
	md := 1 - s.cfg.Beta*float64(rtt-s.cfg.TargetDelay)/float64(rtt)
	if md < 1-s.cfg.MaxMD {
		md = 1 - s.cfg.MaxMD
	}
	s.cwnd *= md
	if s.cwnd < netsim.MSS {
		s.cwnd = netsim.MSS
	}
}

func (s *sender) fastRetransmit() {
	seq := s.skip.ContiguousFrom(s.sndUna)
	end := seq + netsim.MSS
	if end > s.f.Size {
		end = s.f.Size
	}
	if end <= seq {
		return
	}
	pkt := s.f.Src.Data(s.f.ID, s.f.Dst.ID(), seq, int32(end-seq), s.prio(false))
	pkt.Retrans = true
	s.f.Src.Send(pkt)
	s.cwnd /= 2
	if s.cwnd < netsim.MSS {
		s.cwnd = netsim.MSS
	}
}

func (s *sender) rtt() sim.Time {
	if s.srtt > 0 {
		return s.srtt
	}
	return s.env.BaseRTT()
}

// receiver is the plain delay-echo receiver.
type receiver struct {
	env *transport.Env
	f   *transport.Flow
	r   *transport.Reassembly
}

// Handle implements netsim.Endpoint.
func (rc *receiver) Handle(pkt *netsim.Packet) {
	if pkt.Kind != netsim.Data {
		return
	}
	rc.r.Add(pkt.Seq, pkt.PayloadLen)
	ack := rc.f.Dst.Ctrl(netsim.Ack, rc.f.ID, rc.f.Src.ID(), 0)
	ack.Seq = rc.r.CumAck()
	ack.EchoTS = pkt.SentAt
	rc.f.Dst.Send(ack)
	if rc.r.Complete() {
		rc.env.Complete(rc.f)
	}
}
