package transport

import "testing"

// pooledThing is a minimal Poolable for exercising the freelist.
type pooledThing struct {
	PoolNode
	v int
}

func TestPoolReusesReturnedStructs(t *testing.T) {
	p := &Pool[*pooledThing]{newFn: func() *pooledThing { return &pooledThing{} }}
	a := p.Get()
	if p.Allocs != 1 || p.Reuses != 0 {
		t.Fatalf("after first Get: Allocs=%d Reuses=%d", p.Allocs, p.Reuses)
	}
	a.v = 42
	p.Put(a)
	if p.Frees != 1 || p.Len() != 1 {
		t.Fatalf("after Put: Frees=%d Len=%d", p.Frees, p.Len())
	}
	b := p.Get()
	if b != a {
		t.Fatal("Get after Put returned a different struct")
	}
	if p.Allocs != 1 || p.Reuses != 1 {
		t.Fatalf("after reuse: Allocs=%d Reuses=%d", p.Allocs, p.Reuses)
	}
	// Pooled structs come back dirty by contract: the caller
	// re-initializes. Verify the pool did not silently zero it, so the
	// contract stays honest (producers must set every field).
	if b.v != 42 {
		t.Fatalf("pool zeroed struct: v=%d", b.v)
	}
}

func TestPoolDoubleFreePanics(t *testing.T) {
	p := &Pool[*pooledThing]{newFn: func() *pooledThing { return &pooledThing{} }}
	a := p.Get()
	p.Put(a)
	defer func() {
		r := recover()
		if r != "transport: pool double-free" {
			t.Fatalf("recover() = %v, want double-free panic", r)
		}
	}()
	p.Put(a)
}

func TestPoolForSameKeySamePool(t *testing.T) {
	env := &Env{}
	key := NewPoolKey("test.thing")
	p1 := PoolFor(env, key, func() *pooledThing { return &pooledThing{} })
	p2 := PoolFor(env, key, func() *pooledThing { return &pooledThing{} })
	if p1 != p2 {
		t.Fatal("PoolFor returned distinct pools for the same (env, key)")
	}
	// A different Env must get its own pool: reuse never crosses runs.
	p3 := PoolFor(&Env{}, key, func() *pooledThing { return &pooledThing{} })
	if p3 == p1 {
		t.Fatal("pools shared across Envs")
	}
}

func TestFlowFreelistReusesAndGuardsDoubleFree(t *testing.T) {
	env := &Env{}
	f := env.getFlow()
	if !f.pooled {
		t.Fatal("freelist flow not marked pooled")
	}
	f.done = true
	f.Start = 99
	f.IdentifiedLarge = true
	env.putFlow(f)
	g := env.getFlow()
	if g != f {
		t.Fatal("getFlow after putFlow returned a different Flow")
	}
	if g.done || g.Start != 0 || g.IdentifiedLarge || g.inPool {
		t.Fatalf("recycled flow carries stale state: %+v", g)
	}
	env.putFlow(g)
	defer func() {
		r := recover()
		if r != "transport: flow double-free" {
			t.Fatalf("recover() = %v, want flow double-free panic", r)
		}
	}()
	env.putFlow(g)
}
