package lowloop

import (
	"testing"

	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/transport"
	"ppt/internal/transport/transporttest"
)

// fakeHost is a minimal high loop for driving the low loop directly.
type fakeHost struct {
	frontier int64
	window   float64
	rtt      sim.Time
	skip     transport.IntervalSet
	skipUps  int
}

func (h *fakeHost) Frontier() int64                 { return h.frontier }
func (h *fakeHost) Window() float64                 { return h.window }
func (h *fakeHost) RTT() sim.Time                   { return h.rtt }
func (h *fakeHost) LowPrio() int8                   { return 5 }
func (h *fakeHost) SkipSet() *transport.IntervalSet { return &h.skip }
func (h *fakeHost) OnSkipUpdate()                   { h.skipUps++ }

func setup(t *testing.T, size int64) (*Loop, *fakeHost, *transport.Env) {
	t.Helper()
	env := transporttest.NewStarEnv(3)
	f := &transport.Flow{ID: 1, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1], Size: size}
	h := &fakeHost{frontier: 14_480, window: 14_480, rtt: env.BaseRTT()}
	return New(env, f, h), h, env
}

func TestOpenSendsPacedWindow(t *testing.T) {
	l, _, env := setup(t, 10_000_000)
	l.Open(10*netsim.MSS, false)
	if !l.Active() {
		t.Fatal("loop not active after open")
	}
	env.Sched().RunUntil(2 * env.BaseRTT())
	if l.OppSent() < 9*netsim.MSS {
		t.Fatalf("paced out only %d bytes", l.OppSent())
	}
}

func TestOpenRejectsTinyWindow(t *testing.T) {
	l, _, _ := setup(t, 10_000_000)
	l.Open(netsim.MSS-1, false)
	if l.Active() {
		t.Fatal("opened with sub-MSS window")
	}
}

func TestOpenRejectsWhenCrossed(t *testing.T) {
	l, h, _ := setup(t, 100_000)
	h.frontier = 100_000 // high loop already covers everything
	l.Open(10*netsim.MSS, false)
	if l.Active() {
		t.Fatal("opened past the crossing point")
	}
}

func TestGuardedOpenCapsToSpareGap(t *testing.T) {
	l, h, _ := setup(t, 100_000)
	h.frontier = 50_000
	h.window = 20_000
	// Gap beyond two windows: 100000-50000-40000 = 10000 < requested.
	l.Open(50_000, true)
	if !l.Active() {
		t.Fatal("guarded open refused a positive spare gap")
	}
	// And with no spare gap at all it must refuse.
	l2, h2, _ := setup(t, 100_000)
	h2.frontier = 70_000
	h2.window = 20_000
	l2.Open(50_000, true)
	if l2.Active() {
		t.Fatal("guarded open accepted with no spare gap")
	}
}

func TestLowAckClocksOnePacket(t *testing.T) {
	l, _, env := setup(t, 10_000_000)
	l.Open(4*netsim.MSS, false)
	env.Sched().RunUntil(env.BaseRTT()) // paced out, loop still alive
	sent := l.OppSent()
	ack := netsim.CtrlPacket(netsim.Ack, 1, 1, 0, 5)
	ack.LowLoop = true
	l.OnLowAck(ack)
	if l.OppSent() != sent+netsim.MSS {
		t.Fatalf("clean low ACK sent %d new bytes, want one MSS", l.OppSent()-sent)
	}
}

func TestECESuppresses(t *testing.T) {
	l, _, env := setup(t, 10_000_000)
	l.Open(4*netsim.MSS, false)
	env.Sched().RunUntil(env.BaseRTT())
	sent := l.OppSent()
	ece := netsim.CtrlPacket(netsim.Ack, 1, 1, 0, 5)
	ece.LowLoop = true
	ece.ECE = true
	l.OnLowAck(ece)
	if l.OppSent() != sent {
		t.Fatal("ECE low ACK clocked out a packet")
	}
}

func TestAckUpdatesSkipAndNotifiesHost(t *testing.T) {
	l, h, _ := setup(t, 10_000_000)
	ack := netsim.CtrlPacket(netsim.Ack, 1, 1, 0, 5)
	ack.LowLoop = true
	ack.Meta = &transport.AckMeta{
		LowSeqs: [2]int64{9_000_000, 9_500_000},
		LowLens: [2]int32{netsim.MSS, netsim.MSS},
		LowN:    2,
	}
	l.OnLowAck(ack)
	if !h.skip.Contains(9_000_000, 9_000_000+netsim.MSS) {
		t.Fatal("skip set not updated")
	}
	if h.skipUps != 1 {
		t.Fatalf("host notified %d times", h.skipUps)
	}
}

func TestTerminatesAfterSilence(t *testing.T) {
	l, _, env := setup(t, 10_000_000)
	l.Open(4*netsim.MSS, false)
	env.Sched().RunUntil(10 * env.BaseRTT())
	if l.Active() {
		t.Fatal("loop still active after 10 silent RTTs")
	}
}

func TestReopenGatedOnBacklog(t *testing.T) {
	l, _, env := setup(t, 10_000_000)
	l.Open(4*netsim.MSS, false)
	env.Sched().RunUntil(10 * env.BaseRTT()) // terminate with inflight unacked
	l.Open(4*netsim.MSS, false)
	if l.Active() {
		t.Fatal("reopened while the previous injection is unacknowledged")
	}
	// ACK the backlog; now it may reopen.
	for i := 0; i < 2; i++ {
		ack := netsim.CtrlPacket(netsim.Ack, 1, 1, 0, 5)
		ack.LowLoop = true
		ack.Meta = &transport.AckMeta{
			LowSeqs: [2]int64{10_000_000 - int64(2*i+1)*netsim.MSS, 10_000_000 - int64(2*i+2)*netsim.MSS},
			LowLens: [2]int32{netsim.MSS, netsim.MSS},
			LowN:    2,
		}
		l.OnLowAck(ack)
	}
	l.Open(4*netsim.MSS, false)
	if !l.Active() {
		t.Fatal("did not reopen after backlog cleared")
	}
}

func TestSendSkipsDeliveredTail(t *testing.T) {
	l, h, env := setup(t, 10_000_000)
	// The last two MSS were already delivered (and acked).
	h.skip.Add(10_000_000-2*netsim.MSS, 10_000_000)
	l.Open(2*netsim.MSS, false)
	env.Sched().RunUntil(2 * env.BaseRTT())
	if l.OppSent() == 0 {
		t.Fatal("nothing sent")
	}
	// The loop must have descended below the delivered suffix: its
	// frontier is under 10MB - 2 MSS.
	if l.tailNext >= 10_000_000-2*netsim.MSS {
		t.Fatalf("tailNext = %d did not skip the delivered suffix", l.tailNext)
	}
}
