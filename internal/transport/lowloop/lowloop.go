// Package lowloop is PPT's low-priority control loop (§3) factored out
// as a building block, the way appendix B of the paper proposes: any
// window-based transport can bolt it on by providing its send frontier,
// current window and RTT estimate, and by choosing when to open a loop
// (DCTCP's α minimum, Swift's delay-below-target, HPCC's inflight-below-
// BDP...). The loop sends opportunistic packets backwards from the flow
// tail, paced at I/RTT, 2:1 ACK-clocked thereafter (EWD), silenced by
// ECE, and self-terminating after two silent RTTs.
//
// The ppt package keeps its own tightly-coupled copy of this logic (it
// also drives identification and tagging); this package exists so the
// Fig 14 delay-based variant and the appendix-B HPCC variant share one
// implementation.
package lowloop

import (
	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/transport"
)

// Host is the high-priority loop as seen by the low loop.
type Host interface {
	// Frontier is the high loop's next-new-byte offset (snd_nxt).
	Frontier() int64
	// Window is the high loop's current congestion window in bytes.
	Window() float64
	// RTT is the current round-trip estimate.
	RTT() sim.Time
	// LowPrio tags opportunistic packets (the mirror priority).
	LowPrio() int8
	// SkipSet is the shared scoreboard of bytes the low loop delivered;
	// the high loop must skip these when transmitting.
	SkipSet() *transport.IntervalSet
	// OnSkipUpdate is called after the scoreboard grows, so the high
	// loop can re-evaluate what it may send.
	OnSkipUpdate()
}

// Loop is one flow's low-priority control loop.
type Loop struct {
	env  *transport.Env
	f    *transport.Flow
	host Host

	active   bool
	tailNext int64
	budget   int64
	paceGap  sim.Time
	pacing   bool
	inflight int64
	oppSent  int64

	deadTimer sim.Timer
}

// New builds an (inactive) loop over the whole flow tail.
func New(env *transport.Env, f *transport.Flow, host Host) *Loop {
	return &Loop{env: env, f: f, host: host, tailNext: f.Size}
}

// Active reports whether a loop is currently open.
func (l *Loop) Active() bool { return l.active }

// OppSent reports total opportunistic payload bytes sent.
func (l *Loop) OppSent() int64 { return l.oppSent }

// Open starts a loop with initial window i paced over one RTT. guarded
// loops (mid-flow re-opens) cap the budget to the gap beyond two high
// windows and are refused while a prior injection is still outstanding.
func (l *Loop) Open(i int64, guarded bool) {
	if i < netsim.MSS || l.active || l.f.Done() {
		return
	}
	if l.tailNext <= l.host.Frontier() {
		return
	}
	if guarded {
		spare := l.tailNext - l.host.Frontier() - 2*int64(l.host.Window())
		if i > spare {
			i = spare
		}
		if i < netsim.MSS {
			return
		}
	}
	if l.inflight >= i/2 {
		return
	}
	l.active = true
	l.budget = i
	pkts := (i + netsim.MSS - 1) / netsim.MSS
	l.paceGap = l.rtt() / sim.Time(pkts)
	l.resetDeadTimer()
	if !l.pacing {
		l.pacing = true
		l.paceOne()
	}
}

func (l *Loop) rtt() sim.Time {
	if r := l.host.RTT(); r > 0 {
		return r
	}
	return l.env.BaseRTT()
}

func (l *Loop) paceOne() {
	if !l.active || l.f.Done() || l.budget <= 0 {
		l.pacing = false
		return
	}
	if !l.send() {
		l.pacing = false
		return
	}
	l.budget -= netsim.MSS
	l.env.Sched().After(l.paceGap, l.paceOne)
}

// send emits one opportunistic packet from the tail, staying one high
// window ahead of the high loop's frontier and skipping delivered
// ranges; false when crossed.
func (l *Loop) send() bool {
	frontier := l.host.Frontier() + int64(l.host.Window())
	skip := l.host.SkipSet()
	for l.tailNext > frontier && skip.Contains(l.tailNext-1, l.tailNext) {
		l.tailNext = skip.ContiguousBack(l.tailNext)
	}
	seq := l.tailNext - netsim.MSS
	if seq < frontier {
		seq = frontier
	}
	if cov := skip.ContiguousFrom(seq); cov > seq {
		seq = cov
	}
	if seq >= l.tailNext {
		return false
	}
	n := int32(l.tailNext - seq)
	pkt := l.f.Src.Data(l.f.ID, l.f.Dst.ID(), seq, n, l.host.LowPrio())
	pkt.ECT = true
	pkt.LowLoop = true
	l.f.Src.Send(pkt)
	l.env.Eff.SentLowPayload += int64(n)
	l.oppSent += int64(n)
	l.inflight += int64(n)
	l.tailNext = seq
	return true
}

// OnLowAck processes a low-priority ACK: records delivered ranges on the
// shared scoreboard and — unless the ACK carries ECE — clocks out one
// new opportunistic packet (the EWD 2:1 halving).
func (l *Loop) OnLowAck(pkt *netsim.Packet) {
	if meta, ok := pkt.Meta.(*transport.AckMeta); ok && meta.LowN > 0 {
		skip := l.host.SkipSet()
		for i := 0; i < meta.LowN; i++ {
			skip.Add(meta.LowSeqs[i], meta.LowSeqs[i]+int64(meta.LowLens[i]))
			l.inflight -= int64(meta.LowLens[i])
		}
		if l.inflight < 0 {
			l.inflight = 0
		}
		l.host.OnSkipUpdate()
	}
	if !l.active {
		return
	}
	l.resetDeadTimer()
	if pkt.ECE {
		return
	}
	l.send()
}

func (l *Loop) resetDeadTimer() {
	l.deadTimer.Stop()
	l.deadTimer = l.env.Sched().After(2*l.rtt(), l.Terminate)
}

// Terminate closes the loop; a later Open starts a fresh one.
func (l *Loop) Terminate() {
	l.active = false
	l.pacing = false
	l.budget = 0
}
