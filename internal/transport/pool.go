package transport

import "fmt"

// This file is the framework half of the flow-path pooling introduced
// for high-flow-count runs: a deterministic, run-scoped freelist for
// endpoint structs, mirroring netsim.PacketPool (and deliberately NOT a
// sync.Pool, for the same reproducibility reasons documented there).
// Protocols opt in per struct type; everything else keeps allocating.
//
// Ownership rules (see DESIGN.md §7.2):
//
//   - A pooled struct is owned by exactly one party at a time: the pool
//     (between flows) or the protocol (while its flow is bound).
//   - Env.Complete unbinds both endpoints and hands any endpoint
//     implementing EndpointRecycler back to its pool. By that point the
//     protocol must have stopped every pending timer whose callback
//     references the struct — a stale timer firing into a recycled,
//     re-initialized endpoint would corrupt an unrelated flow.
//   - Returning the same struct twice panics (double-free guard), just
//     like PacketPool.Free.

// PoolNode is the embeddable bookkeeping for pooled structs. Embedding
// it (by value) makes a struct satisfy Poolable.
type PoolNode struct {
	inPool bool
}

func (n *PoolNode) poolNode() *PoolNode { return n }

// Poolable is satisfied by pointer-to-struct types that embed PoolNode.
type Poolable interface {
	poolNode() *PoolNode
}

// Pool is a deterministic freelist of T. The zero value is unusable;
// build pools with PoolFor so they are scoped to one Env (one simulation
// run, one goroutine) and shared by every flow of that run.
type Pool[T Poolable] struct {
	newFn func() T
	free  []T

	// Allocs counts structs that had to be heap-allocated, Reuses counts
	// structs served from the freelist, Frees counts returns. In steady
	// state Reuses dominates and Allocs stays at the high-water mark of
	// concurrently live flows.
	Allocs uint64
	Reuses uint64
	Frees  uint64
}

// Get returns a struct from the freelist, or a fresh one. The caller
// must fully re-initialize it: pooled structs come back dirty.
func (p *Pool[T]) Get() T {
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		var zero T
		p.free[n-1] = zero
		p.free = p.free[:n-1]
		t.poolNode().inPool = false
		p.Reuses++
		return t
	}
	p.Allocs++
	return p.newFn()
}

// Put returns t to the freelist. The caller must not reference t again;
// returning the same struct twice panics, because two owners thinking
// they hold it would silently corrupt a later, unrelated flow.
func (p *Pool[T]) Put(t T) {
	n := t.poolNode()
	if n.inPool {
		panic("transport: pool double-free")
	}
	n.inPool = true
	p.free = append(p.free, t)
	p.Frees++
}

// Len reports the current freelist depth.
func (p *Pool[T]) Len() int { return len(p.free) }

// PoolKey identifies one pooled struct type within an Env. Each package
// declares its keys once at package level (the pointer identity is the
// key, so two packages can both pool a type called "sender" without
// colliding).
type PoolKey struct{ name string }

// NewPoolKey returns a fresh key; name is for diagnostics only.
func NewPoolKey(name string) *PoolKey { return &PoolKey{name: name} }

// PoolFor returns env's pool for key, creating it (with newFn as the
// allocator) on first use. Pools live exactly as long as their Env —
// one simulation run — so reuse never crosses runs and the race
// detector sees each pool touched by a single goroutine.
func PoolFor[T Poolable](env *Env, key *PoolKey, newFn func() T) *Pool[T] {
	if env.pools == nil {
		env.pools = make(map[*PoolKey]any)
	}
	if p, ok := env.pools[key]; ok {
		pool, ok := p.(*Pool[T])
		if !ok {
			panic(fmt.Sprintf("transport: pool key %q reused with a different type", key.name))
		}
		return pool
	}
	pool := &Pool[T]{newFn: newFn}
	env.pools[key] = pool
	return pool
}

// EndpointRecycler is implemented by pooled endpoints. Env.Complete
// calls Recycle on each endpoint it unbinds; the implementation must
// stop every pending timer that references the struct and return it to
// its pool.
type EndpointRecycler interface {
	Recycle(env *Env)
}

// SenderQuiescer is implemented by sender endpoints that can cancel
// every pending timer referencing the struct without being recycled.
// The windowed run driver quiesces a completed flow's sender at the
// barrier that stages its teardown — the cheap, schedule-visible half
// of the work — and defers the Unbind/Recycle/freelist half to the
// shard's next granted window, off the serial barrier path. Senders
// without the hook simply tear down at the barrier, as before.
type SenderQuiescer interface {
	StopTimers()
}

// FlowRecycler marks protocols whose endpoints guarantee that, by the
// time Env.Complete has recycled them, no pending timer or retained
// reference can reach the *Flow. Only then may Run recycle Flow structs
// through the run freelist; protocols without the marker get a freshly
// allocated Flow per transfer (unchanged semantics), because a stale
// timer observing a recycled flow's Done() == false would resurrect a
// dead transfer as a zombie of the new one.
type FlowRecycler interface {
	RecyclesFlows()
}
