package dctcp

import (
	"testing"

	"ppt/internal/netsim"
	"ppt/internal/transport"
)

// TestPooledReceiverResetNoStaleState: a receiver recycled after a
// partial transfer and re-issued for a new flow must carry none of the
// old reassembly state (the pool hands structs back dirty; Init must
// scrub everything).
func TestPooledReceiverResetNoStaleState(t *testing.T) {
	env := newEnv()
	f1 := &transport.Flow{ID: 1, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1], Size: 100_000}
	r1 := GetReceiver(env, f1)
	r1.R.Add(0, 50_000)
	r1.R.Add(80_000, 20_000)
	if r1.R.Received() != 70_000 {
		t.Fatalf("setup: received %d", r1.R.Received())
	}
	r1.Recycle(env)

	f2 := &transport.Flow{ID: 2, Src: env.Net.Hosts[2], Dst: env.Net.Hosts[3], Size: 40_000}
	r2 := GetReceiver(env, f2)
	if r2 != r1 {
		t.Fatal("pool did not recycle the receiver")
	}
	if r2.R.Received() != 0 || r2.R.CumAck() != 0 {
		t.Fatalf("stale reassembly: received=%d cumack=%d", r2.R.Received(), r2.R.CumAck())
	}
	if r2.R.Size != 40_000 || r2.R.Complete() {
		t.Fatalf("reassembly not retargeted: size=%d complete=%v", r2.R.Size, r2.R.Complete())
	}
	if r2.F != f2 {
		t.Fatal("receiver still points at the old flow")
	}
}

// TestPooledSenderResetNoStaleState is the sender-side analogue: window
// state, skip ranges and callbacks from the previous flow must be gone.
func TestPooledSenderResetNoStaleState(t *testing.T) {
	env := newEnv()
	f1 := &transport.Flow{ID: 1, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1], Size: 100_000}
	s1 := GetSender(env, f1, Config{})
	s1.Cwnd = 123_456
	s1.SndNxt = 60_000
	s1.Skip.Add(10_000, 20_000)
	s1.OnAck = func(*netsim.Packet) {}
	s1.Recycle(env)

	f2 := &transport.Flow{ID: 2, Src: env.Net.Hosts[2], Dst: env.Net.Hosts[3], Size: 40_000}
	s2 := GetSender(env, f2, Config{})
	if s2 != s1 {
		t.Fatal("pool did not recycle the sender")
	}
	if s2.Cwnd != float64(s2.C.InitCwnd) || s2.SndNxt != 0 || s2.SndUna != 0 {
		t.Fatalf("stale window state: cwnd=%v sndnxt=%d snduna=%d", s2.Cwnd, s2.SndNxt, s2.SndUna)
	}
	if s2.Skip.Total() != 0 {
		t.Fatalf("stale skip ranges: %d bytes", s2.Skip.Total())
	}
	if s2.OnAck != nil || s2.OnAlpha != nil {
		t.Fatal("stale callbacks survived Init")
	}
	if s2.F != f2 {
		t.Fatal("sender still points at the old flow")
	}
}

// TestConstructorEndpointsNotPooled: endpoints built with the public
// constructors are caller-owned (tests, the MW oracle, embedding
// transports may retain them past completion); Recycle must leave them
// alone rather than feeding them to the pool.
func TestConstructorEndpointsNotPooled(t *testing.T) {
	env := newEnv()
	f := &transport.Flow{ID: 1, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1], Size: 100_000}
	s := NewSender(env, f, Config{})
	r := NewReceiver(env, f)
	s.Recycle(env)
	r.Recycle(env)
	if got := GetSender(env, f, Config{}); got == s {
		t.Fatal("constructor-built sender leaked into the pool")
	}
	if got := GetReceiver(env, f); got == r {
		t.Fatal("constructor-built receiver leaked into the pool")
	}
	// Recycle on a caller-owned struct must still be non-destructive: the
	// flow pointer survives for the retaining caller.
	if s.F == nil && r.F == nil {
		t.Fatal("Recycle scrubbed caller-owned endpoints")
	}
}
