// Package dctcp implements Data Center TCP [5]: slow start, congestion
// avoidance, per-window ECN-fraction estimation (the α estimator of
// Equation 1), proportional window reduction, fast retransmit, and
// go-back-N timeout recovery.
//
// The sender is written to be embedded: PPT reuses it unchanged as the
// high-priority control loop (HCP), supplying a Skip set of bytes the
// low-priority loop already delivered, a priority tagger, and an α hook
// for the intermittent LCP initialization of §3.1.
package dctcp

import (
	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/transport"
)

// Config tunes a sender.
type Config struct {
	// G is the α estimation gain g of Equation 1 (default 1/16).
	G float64
	// InitCwnd is the initial congestion window in bytes (default
	// 10 MSS, the modern Linux default the paper's TCP-10 row cites).
	InitCwnd int64
	// Prio tags data packets given cumulative bytes sent (default P0).
	Prio func(bytesSent int64) int8
	// AckPrio tags this flow's ACKs (default P0).
	AckPrio int8
	// NoECN disables ECT marking (pure loss-based TCP behaviour).
	NoECN bool
}

// defaultPrio is the zero-config tagger; a package-level func so
// withDefaults does not allocate a closure per flow.
func defaultPrio(int64) int8 { return 0 }

func (c Config) withDefaults() Config {
	if c.G == 0 {
		c.G = 1.0 / 16
	}
	if c.InitCwnd == 0 {
		c.InitCwnd = 10 * netsim.MSS
	}
	if c.Prio == nil {
		c.Prio = defaultPrio
	}
	return c
}

// Sender is the DCTCP congestion-controlled sender for one flow.
type Sender struct {
	transport.PoolNode

	Env *transport.Env
	F   *transport.Flow
	C   Config

	Cwnd     float64 // bytes
	Ssthresh float64
	SndUna   int64
	SndNxt   int64
	Alpha    float64

	// Wmax is the largest congestion window observed after the flow
	// left slow start (§3.1 footnote 3: only congestion-avoidance
	// windows count toward the LCP fill target).
	Wmax     float64
	ExitedSS bool

	// PeakCwnd is the largest window regardless of phase — the "MW"
	// recorded by the hypothetical-DCTCP oracle of §2.3.
	PeakCwnd float64

	// Skip marks bytes delivered out of band (PPT's LCP SACK
	// scoreboard); the sender never (re)transmits them.
	Skip *transport.IntervalSet

	// BytesSent counts payload bytes transmitted (for tagging).
	BytesSent int64

	// SRTT is a smoothed RTT from ACK echo timestamps; starts at the
	// fabric base RTT.
	SRTT sim.Time

	// OnAlpha fires after each per-window α update (PPT case-2 hook).
	OnAlpha func(alpha float64)
	// OnAck fires for every ACK processed (delay-based variants hook
	// RTT measurements here).
	OnAck func(pkt *netsim.Packet)

	windowEnd   int64 // α window boundary: next update when SndUna passes it
	ackedInWin  int64
	markedInWin int64

	dupAcks int
	rto     sim.Timer
	// rtoFn is onRTO bound once at construction: evaluating the method
	// value inline would allocate a fresh closure on every (re)arm.
	rtoFn func()

	// pooled marks senders owned by the Env pool (built by Proto.Start);
	// Recycle no-ops for plain NewSender structs, which callers like the
	// MW oracle retain past completion.
	pooled bool
}

// NewIdleSender allocates a sender shell with its once-per-struct state
// (Skip set, bound RTO callback) but no flow; Init attaches one. Pools
// use it as their allocator.
func NewIdleSender() *Sender {
	s := &Sender{Skip: &transport.IntervalSet{}}
	s.rtoFn = s.onRTO
	return s
}

// NewSender builds (but does not launch) a sender.
func NewSender(env *transport.Env, f *transport.Flow, cfg Config) *Sender {
	s := NewIdleSender()
	s.Init(env, f, cfg)
	return s
}

// Init (re)targets a sender at a flow, resetting every piece of
// congestion state in place. It is what makes Sender pool-reusable: a
// recycled struct after Init is indistinguishable from a fresh
// NewSender result (the Skip set keeps its backing array, emptied).
func (s *Sender) Init(env *transport.Env, f *transport.Flow, cfg Config) {
	cfg = cfg.withDefaults()
	s.Env = env
	s.F = f
	s.C = cfg
	s.Cwnd = float64(cfg.InitCwnd)
	s.Ssthresh = 1 << 40
	s.SndUna = 0
	s.SndNxt = 0
	s.Alpha = 0
	s.Wmax = 0
	s.ExitedSS = false
	s.PeakCwnd = 0
	s.Skip.Reset()
	s.BytesSent = 0
	s.SRTT = env.BaseRTT()
	s.OnAlpha = nil
	s.OnAck = nil
	s.windowEnd = 0
	s.ackedInWin = 0
	s.markedInWin = 0
	s.dupAcks = 0
	s.rto = sim.Timer{}
}

// StopTimers cancels every pending timer whose callback references the
// sender — the precondition for recycling it (or its flow).
func (s *Sender) StopTimers() { s.stopRTO() }

// Launch begins transmission.
func (s *Sender) Launch() {
	s.windowEnd = 0
	s.TrySend()
}

// InFlight returns the unacknowledged bytes not covered by Skip.
func (s *Sender) InFlight() int64 {
	out := s.SndNxt - s.SndUna
	if out <= 0 {
		return 0
	}
	return out - s.Skip.CoveredIn(s.SndUna, s.SndNxt)
}

// InSlowStart reports the congestion phase.
func (s *Sender) InSlowStart() bool { return s.Cwnd < s.Ssthresh }

// nextSeg returns the next [seq, end) to transmit starting the scan at
// `from`, skipping Skip-covered bytes; ok is false when nothing remains.
func (s *Sender) nextSeg(from int64) (seq, end int64, ok bool) {
	seq = from
	for seq < s.F.Size {
		// Skip over out-of-band-delivered bytes.
		next := s.Skip.ContiguousFrom(seq)
		if next > seq {
			seq = next
			continue
		}
		end = seq + netsim.MSS
		if end > s.F.Size {
			end = s.F.Size
		}
		// Truncate at the next Skip-covered byte.
		if cov := s.Skip.FirstCoveredIn(seq, end); cov < end {
			end = cov
		}
		return seq, end, true
	}
	return 0, 0, false
}

// TrySend transmits while the window allows.
func (s *Sender) TrySend() {
	if s.F.SenderDone() {
		s.stopRTO()
		return
	}
	for {
		if float64(s.InFlight())+netsim.MSS > s.Cwnd && s.InFlight() > 0 {
			break
		}
		seq, end, ok := s.nextSeg(s.SndNxt)
		if !ok {
			break
		}
		if float64(s.InFlight())+float64(end-seq) > s.Cwnd && s.InFlight() > 0 {
			break
		}
		s.transmit(seq, int32(end-seq), false)
		s.SndNxt = end
	}
	s.armRTO()
}

func (s *Sender) transmit(seq int64, n int32, retrans bool) {
	pkt := s.F.Src.Data(s.F.ID, s.F.Dst.ID(), seq, n, s.C.Prio(s.BytesSent))
	pkt.ECT = !s.C.NoECN
	pkt.Retrans = retrans
	s.BytesSent += int64(n)
	s.F.Src.Send(pkt)
}

func (s *Sender) armRTO() {
	if s.InFlight() <= 0 || s.F.SenderDone() {
		s.stopRTO()
		return
	}
	if s.rto.Pending() {
		return
	}
	s.rto = s.Env.Sched().After(s.Env.RTO(), s.rtoFn)
}

func (s *Sender) resetRTO() {
	s.stopRTO()
	s.armRTO()
}

func (s *Sender) stopRTO() {
	s.rto.Stop()
	s.rto = sim.Timer{}
}

func (s *Sender) onRTO() {
	if s.F.SenderDone() || s.InFlight() <= 0 {
		return
	}
	// Go-back-N: rewind and slow-start from one segment.
	s.Ssthresh = s.Cwnd / 2
	if s.Ssthresh < netsim.MSS {
		s.Ssthresh = netsim.MSS
	}
	s.Cwnd = netsim.MSS
	s.SndNxt = s.SndUna
	s.dupAcks = 0
	s.windowEnd = s.SndUna // restart the α window
	s.ackedInWin, s.markedInWin = 0, 0
	seq, end, ok := s.nextSeg(s.SndUna)
	if ok {
		s.transmit(seq, int32(end-seq), true)
		s.SndNxt = end
	}
	s.rto = s.Env.Sched().After(s.Env.RTO(), s.rtoFn)
}

// Handle implements netsim.Endpoint for the sender side (ACK arrivals).
func (s *Sender) Handle(pkt *netsim.Packet) {
	if s.F.SenderDone() {
		return
	}
	if pkt.Kind != netsim.Ack || pkt.LowLoop {
		return // low-loop ACKs are the embedding transport's business
	}
	s.ProcessAck(pkt)
}

// ProcessAck runs the DCTCP control logic for one high-priority ACK.
func (s *Sender) ProcessAck(pkt *netsim.Packet) {
	cum := pkt.Seq
	if pkt.EchoTS > 0 {
		rtt := s.Env.Now() - pkt.EchoTS
		s.SRTT = (7*s.SRTT + rtt) / 8
	}
	if s.OnAck != nil {
		s.OnAck(pkt)
	}
	if cum > s.SndUna {
		acked := cum - s.SndUna
		s.SndUna = cum
		// Crossed paths with the low loop (§5.2): the receiver's
		// cumulative ACK can run past everything HCP ever sent.
		if s.SndUna > s.SndNxt {
			s.SndNxt = s.SndUna
		}
		s.dupAcks = 0
		s.growWindow(acked, pkt.ECE)
		s.resetRTO()
	} else if s.InFlight() > 0 {
		s.dupAcks++
		s.countMarks(netsim.MSS, pkt.ECE) // dup ACK still echoes marking state
		if s.dupAcks == 3 {
			s.fastRetransmit()
		}
	}
	s.maybeUpdateAlpha()
	s.TrySend()
}

func (s *Sender) growWindow(acked int64, ece bool) {
	s.countMarks(acked, ece)
	if s.InSlowStart() {
		s.Cwnd += float64(acked)
	} else {
		s.Cwnd += netsim.MSS * float64(acked) / s.Cwnd
	}
	s.noteWmax()
}

func (s *Sender) countMarks(acked int64, ece bool) {
	s.ackedInWin += acked
	if ece {
		s.markedInWin += acked
	}
}

// maybeUpdateAlpha applies Equation 1 once per window of data.
func (s *Sender) maybeUpdateAlpha() {
	if s.SndUna < s.windowEnd {
		return
	}
	if s.ackedInWin > 0 {
		f := float64(s.markedInWin) / float64(s.ackedInWin)
		s.Alpha = (1-s.C.G)*s.Alpha + s.C.G*f
		if s.markedInWin > 0 {
			// ECN window reduction: cwnd *= (1 - α/2).
			s.Cwnd *= 1 - s.Alpha/2
			if s.Cwnd < netsim.MSS {
				s.Cwnd = netsim.MSS
			}
			s.Ssthresh = s.Cwnd
			s.markSlowStartExit()
		}
		if s.OnAlpha != nil {
			s.OnAlpha(s.Alpha)
		}
	}
	s.ackedInWin, s.markedInWin = 0, 0
	s.windowEnd = s.SndNxt
}

func (s *Sender) fastRetransmit() {
	seq, end, ok := s.nextSeg(s.SndUna)
	if !ok {
		return
	}
	s.transmit(seq, int32(end-seq), true)
	s.Ssthresh = s.Cwnd / 2
	if s.Ssthresh < 2*netsim.MSS {
		s.Ssthresh = 2 * netsim.MSS
	}
	s.Cwnd = s.Ssthresh
	s.markSlowStartExit()
	s.resetRTO()
}

func (s *Sender) markSlowStartExit() {
	if !s.ExitedSS {
		s.ExitedSS = true
	}
	s.noteWmax()
}

func (s *Sender) noteWmax() {
	if s.Cwnd > s.PeakCwnd {
		s.PeakCwnd = s.Cwnd
	}
	if s.ExitedSS && s.Cwnd > s.Wmax {
		s.Wmax = s.Cwnd
	}
}

// Receiver is the plain DCTCP receiver: one ACK per data packet echoing
// the CE bit, completion when all bytes arrive.
type Receiver struct {
	transport.PoolNode

	Env *transport.Env
	F   *transport.Flow
	R   *transport.Reassembly
	// AckPrio tags outgoing ACKs.
	AckPrio int8

	pooled bool
}

// NewReceiver builds a receiver.
func NewReceiver(env *transport.Env, f *transport.Flow) *Receiver {
	r := &Receiver{R: transport.NewReassembly(0)}
	r.Init(env, f)
	return r
}

// Init (re)targets a receiver at a flow, reusing the reassembly set's
// backing array.
func (r *Receiver) Init(env *transport.Env, f *transport.Flow) {
	r.Env = env
	r.F = f
	r.R.Reset(f.Size)
	r.AckPrio = 0
}

// Handle implements netsim.Endpoint for the receiver side.
func (r *Receiver) Handle(pkt *netsim.Packet) {
	if pkt.Kind != netsim.Data {
		return
	}
	r.R.Add(pkt.Seq, pkt.PayloadLen)
	ack := r.F.Dst.Ctrl(netsim.Ack, r.F.ID, r.F.Src.ID(), r.AckPrio)
	ack.Seq = r.R.CumAck()
	ack.ECE = pkt.CE
	ack.EchoTS = pkt.SentAt
	r.F.Dst.Send(ack)
	if r.R.Complete() {
		r.Env.Complete(r.F)
	}
}

// Pool keys for the endpoint structs Proto.Start draws per flow.
var (
	senderPool   = transport.NewPoolKey("dctcp.sender")
	receiverPool = transport.NewPoolKey("dctcp.receiver")
)

func newIdleReceiver() *Receiver { return &Receiver{R: transport.NewReassembly(0)} }

// GetSender returns an initialized sender from env's pool; it returns
// to the pool via Recycle when its flow completes.
func GetSender(env *transport.Env, f *transport.Flow, cfg Config) *Sender {
	s := transport.PoolFor(env, senderPool, NewIdleSender).Get()
	s.Init(env, f, cfg)
	s.pooled = true
	return s
}

// GetReceiver is the receiver-side analogue of GetSender.
func GetReceiver(env *transport.Env, f *transport.Flow) *Receiver {
	r := transport.PoolFor(env, receiverPool, newIdleReceiver).Get()
	r.Init(env, f)
	r.pooled = true
	return r
}

// Recycle implements transport.EndpointRecycler: stop the RTO and
// return pool-owned senders to the freelist. Senders built with
// NewSender (tests, the MW oracle, embedding transports) are left
// alone — their creators may still hold them.
func (s *Sender) Recycle(env *transport.Env) {
	s.StopTimers()
	if !s.pooled {
		return
	}
	s.pooled = false
	s.F = nil
	s.OnAlpha = nil
	s.OnAck = nil
	transport.PoolFor(env, senderPool, NewIdleSender).Put(s)
}

// Recycle implements transport.EndpointRecycler for the receiver (no
// timers to stop).
func (r *Receiver) Recycle(env *transport.Env) {
	if !r.pooled {
		return
	}
	r.pooled = false
	r.F = nil
	transport.PoolFor(env, receiverPool, newIdleReceiver).Put(r)
}

// Proto is the plain-DCTCP protocol factory.
type Proto struct {
	Cfg Config
}

// Name implements transport.Protocol.
func (Proto) Name() string { return "dctcp" }

// RecyclesFlows implements transport.FlowRecycler: both endpoints stop
// their timers on Recycle, so no pending callback can reach the Flow
// after Complete.
func (Proto) RecyclesFlows() {}

// Start implements transport.Protocol.
func (p Proto) Start(env *transport.Env, f *transport.Flow) {
	p.StartReceiver(env, f)
	p.StartSender(env, f)
}

// StartReceiver implements transport.ShardableProtocol: build and bind
// the receiver only. Pure setup (no clock reads, no scheduling), so the
// windowed driver may call it on the barrier thread in the destination
// host's shard.
func (p Proto) StartReceiver(env *transport.Env, f *transport.Flow) {
	r := GetReceiver(env, f)
	f.Dst.Bind(f.ID, true, r)
}

// StartSender implements transport.ShardableProtocol: build, bind and
// launch the sender at the flow's arrival time in the source shard.
func (p Proto) StartSender(env *transport.Env, f *transport.Flow) {
	s := GetSender(env, f, p.Cfg)
	f.Src.Bind(f.ID, false, s)
	s.Launch()
}
