package dctcp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/topo"
	"ppt/internal/transport"
)

// newEnv builds a tiny star fabric for end-to-end tests.
func newEnv() *transport.Env {
	net := topo.Star(4, topo.Config{
		HostRate:     10 * netsim.Gbps,
		LinkDelay:    5 * sim.Microsecond,
		ECNHighK:     30_000,
		SharedBuffer: 1 << 20,
	})
	return transport.NewEnv(net)
}

func TestSingleFlowCompletes(t *testing.T) {
	env := newEnv()
	sum := transport.Run(env, Proto{}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 1_000_000},
	}, transport.RunConfig{})
	if sum.Flows != 1 {
		t.Fatalf("completed %d flows", sum.Flows)
	}
	// 1MB at 10G is 800us of serialization plus the ~21us base RTT and
	// slow-start ramp; anything under ~5ms is sane, under 800us is
	// impossible.
	if sum.OverallAvg < 800*sim.Microsecond || sum.OverallAvg > 5*sim.Millisecond {
		t.Fatalf("FCT = %v", sum.OverallAvg)
	}
}

func TestTinyFlowOneRTT(t *testing.T) {
	env := newEnv()
	sum := transport.Run(env, Proto{}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 1000},
	}, transport.RunConfig{})
	// One packet each way: about one base RTT.
	if sum.OverallAvg > 2*env.BaseRTT() {
		t.Fatalf("tiny flow FCT = %v, base RTT %v", sum.OverallAvg, env.BaseRTT())
	}
}

func TestManyFlowsAllComplete(t *testing.T) {
	env := newEnv()
	var flows []transport.SimpleFlow
	for i := 0; i < 30; i++ {
		flows = append(flows, transport.SimpleFlow{
			ID: uint32(i + 1), Src: i % 3, Dst: 3, Size: int64(10_000 + i*5_000),
			Arrive: sim.Time(i) * 10 * sim.Microsecond,
		})
	}
	sum := transport.Run(env, Proto{}, flows, transport.RunConfig{})
	if sum.Flows != 30 {
		t.Fatalf("completed %d/30", sum.Flows)
	}
}

func TestCompetingFlowsShareFairly(t *testing.T) {
	env := newEnv()
	// Two long flows into the same sink, started together.
	sum := transport.Run(env, Proto{}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 2, Size: 4_000_000},
		{ID: 2, Src: 1, Dst: 2, Size: 4_000_000},
	}, transport.RunConfig{})
	if sum.Flows != 2 {
		t.Fatalf("completed %d", sum.Flows)
	}
	recs := env.Collector.Records()
	a, b := recs[0].FCT(), recs[1].FCT()
	ratio := float64(a) / float64(b)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("unfair share: FCTs %v vs %v", a, b)
	}
	// Ideal: 8MB over a 10G bottleneck = 6.4ms total.
	worst := a
	if b > a {
		worst = b
	}
	if worst > 12*sim.Millisecond {
		t.Fatalf("bottleneck underused: worst FCT %v", worst)
	}
}

func TestECNKeepsQueueShort(t *testing.T) {
	env := newEnv()
	done := transport.Run(env, Proto{}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 2, Size: 3_000_000},
		{ID: 2, Src: 1, Dst: 2, Size: 3_000_000},
	}, transport.RunConfig{})
	if done.Flows != 2 {
		t.Fatal("flows incomplete")
	}
	// With K=30KB and ECN, the shared pool should never have been
	// exhausted (no drops at the bottleneck).
	port := env.Net.Switches[0].Port(2) // downlink to host 2
	if port.Stats.Drops != 0 {
		t.Fatalf("drops = %d despite ECN", port.Stats.Drops)
	}
	if port.Stats.MarksHigh == 0 {
		t.Fatal("no ECN marks on a congested port")
	}
}

// synthetic-sender helpers ----------------------------------------------

// bench fabricates a sender whose packets go nowhere, for pure
// state-machine tests.
func newLoneSender(t *testing.T, size int64) (*Sender, *transport.Env) {
	t.Helper()
	env := newEnv()
	f := &transport.Flow{ID: 9, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1], Size: size, FirstCall: size}
	s := NewSender(env, f, Config{})
	return s, env
}

func ack(cum int64, ece bool) *netsim.Packet {
	p := netsim.CtrlPacket(netsim.Ack, 9, 1, 0, 0)
	p.Seq = cum
	p.ECE = ece
	return p
}

func TestSlowStartDoubles(t *testing.T) {
	s, _ := newLoneSender(t, 1<<30)
	s.Launch()
	if s.SndNxt != 10*netsim.MSS {
		t.Fatalf("initial burst = %d bytes", s.SndNxt)
	}
	start := s.Cwnd
	// Ack the whole initial window: cwnd doubles in slow start.
	s.ProcessAck(ack(10*netsim.MSS, false))
	if s.Cwnd != start+10*netsim.MSS {
		t.Fatalf("cwnd after full-window ack = %v, want %v", s.Cwnd, start+10*netsim.MSS)
	}
	if !s.InSlowStart() {
		t.Fatal("left slow start without congestion")
	}
}

func TestCongestionAvoidanceLinear(t *testing.T) {
	s, _ := newLoneSender(t, 1<<30)
	s.Launch()
	s.Ssthresh = s.Cwnd // force CA
	before := s.Cwnd
	s.ProcessAck(ack(10*netsim.MSS, false))
	// CA: cwnd += MSS*acked/cwnd ~= MSS per RTT when acked==cwnd.
	growth := s.Cwnd - before
	if growth < netsim.MSS*0.9 || growth > netsim.MSS*1.1 {
		t.Fatalf("CA growth = %v, want ~MSS", growth)
	}
}

func TestAlphaUpdateAndCut(t *testing.T) {
	s, _ := newLoneSender(t, 1<<30)
	s.Launch()
	before := s.Cwnd
	// Every byte of the first window marked: F=1, α = g·1 = 1/16.
	s.ProcessAck(ack(10*netsim.MSS, true))
	wantAlpha := 1.0 / 16
	if s.Alpha != wantAlpha {
		t.Fatalf("alpha = %v, want %v", s.Alpha, wantAlpha)
	}
	// Window cut by α/2 after the slow-start growth was applied.
	grown := before + 10*netsim.MSS
	want := grown * (1 - wantAlpha/2)
	if s.Cwnd < want*0.999 || s.Cwnd > want*1.001 {
		t.Fatalf("cwnd = %v, want %v", s.Cwnd, want)
	}
	if s.InSlowStart() {
		t.Fatal("still in slow start after ECN cut")
	}
}

func TestAlphaDecaysWithoutMarks(t *testing.T) {
	s, _ := newLoneSender(t, 1<<30)
	s.Launch()
	s.Alpha = 0.5
	s.ProcessAck(ack(10*netsim.MSS, false))
	want := 0.5 * (1 - 1.0/16)
	if s.Alpha < want*0.999 || s.Alpha > want*1.001 {
		t.Fatalf("alpha = %v, want %v", s.Alpha, want)
	}
}

func TestWmaxOnlyAfterSlowStart(t *testing.T) {
	s, _ := newLoneSender(t, 1<<30)
	s.Launch()
	s.ProcessAck(ack(10*netsim.MSS, false))
	if s.Wmax != 0 {
		t.Fatalf("Wmax tracked during slow start: %v", s.Wmax)
	}
	s.ProcessAck(ack(30*netsim.MSS, true)) // exits slow start
	if !s.ExitedSS || s.Wmax == 0 {
		t.Fatalf("Wmax not tracked after exit: %v (exited=%v)", s.Wmax, s.ExitedSS)
	}
	if s.Wmax < s.Cwnd {
		t.Fatalf("Wmax %v < cwnd %v", s.Wmax, s.Cwnd)
	}
}

func TestDupAcksTriggerFastRetransmit(t *testing.T) {
	s, _ := newLoneSender(t, 1<<30)
	s.Launch()
	sent := s.BytesSent
	cw := s.Cwnd
	s.ProcessAck(ack(0, false))
	s.ProcessAck(ack(0, false))
	if s.BytesSent > sent+int64(cw)+netsim.MSS {
		t.Fatal("retransmitted before 3 dupacks")
	}
	before := s.BytesSent
	s.ProcessAck(ack(0, false))
	if s.BytesSent == before {
		t.Fatal("no fast retransmit on 3rd dupack")
	}
	if s.Cwnd >= cw {
		t.Fatalf("cwnd not reduced: %v -> %v", cw, s.Cwnd)
	}
}

func TestCrossedPathsAdvancesSndNxt(t *testing.T) {
	// §5.2: an ACK beyond snd_nxt (receiver got in-order LCP bytes)
	// advances the send queue head.
	s, _ := newLoneSender(t, 1<<30)
	s.Launch()
	beyond := s.SndNxt + 100*netsim.MSS
	s.ProcessAck(ack(beyond, false))
	if s.SndUna != beyond || s.SndNxt < beyond {
		t.Fatalf("una=%d nxt=%d, want both >= %d", s.SndUna, s.SndNxt, beyond)
	}
}

func TestSkipSetAvoidsRanges(t *testing.T) {
	s, _ := newLoneSender(t, 1<<30)
	// Mark [MSS, 3*MSS) as delivered by the low loop.
	s.Skip.Add(netsim.MSS, 3*netsim.MSS)
	s.Launch()
	// First segment [0, MSS); second must start at 3*MSS.
	seq, end, ok := s.nextSeg(netsim.MSS)
	if !ok || seq != 3*netsim.MSS || end != 4*netsim.MSS {
		t.Fatalf("nextSeg after skip = [%d,%d) ok=%v", seq, end, ok)
	}
}

func TestNextSegTruncatesAtCoveredByte(t *testing.T) {
	s, _ := newLoneSender(t, 1<<30)
	s.Skip.Add(1000, 2000)
	seq, end, ok := s.nextSeg(0)
	if !ok || seq != 0 || end != 1000 {
		t.Fatalf("nextSeg = [%d,%d) ok=%v, want [0,1000)", seq, end, ok)
	}
}

func TestInFlightExcludesSkipped(t *testing.T) {
	s, _ := newLoneSender(t, 1<<30)
	s.Launch() // 10 MSS in flight
	full := s.InFlight()
	s.Skip.Add(0, 2*netsim.MSS)
	if got := s.InFlight(); got != full-2*netsim.MSS {
		t.Fatalf("inflight = %d, want %d", got, full-2*netsim.MSS)
	}
}

func TestRTORecoversFromTotalLoss(t *testing.T) {
	// Tiny queue cap forces drops; the flow must still complete via
	// timeouts.
	net := topo.Star(3, topo.Config{
		HostRate:     10 * netsim.Gbps,
		LinkDelay:    5 * sim.Microsecond,
		SharedBuffer: 4_500, // fits ~3 packets
	})
	env := transport.NewEnv(net)
	env.RTOMin = 200 * sim.Microsecond
	// Two senders into one 10G downlink: the 3-packet shared buffer
	// guarantees overflow drops during slow start.
	sum := transport.Run(env, Proto{}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 60_000},
		{ID: 2, Src: 2, Dst: 1, Size: 60_000},
	}, transport.RunConfig{})
	if sum.Flows != 2 {
		t.Fatal("flows never completed under heavy loss")
	}
	if env.Net.Switches[0].Port(1).Stats.Drops == 0 {
		t.Fatal("test did not actually force drops")
	}
}

func TestPriorityTagging(t *testing.T) {
	env := newEnv()
	var prios []int8
	f := &transport.Flow{ID: 9, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1], Size: 1 << 20}
	cfg := Config{Prio: func(sent int64) int8 {
		if sent >= 5*netsim.MSS {
			return 3
		}
		return 0
	}}
	s := NewSender(env, f, cfg)
	orig := s.C.Prio
	s.C.Prio = func(sent int64) int8 {
		p := orig(sent)
		prios = append(prios, p)
		return p
	}
	s.Launch()
	if len(prios) != 10 {
		t.Fatalf("sent %d packets", len(prios))
	}
	if prios[0] != 0 || prios[9] != 3 {
		t.Fatalf("prios = %v", prios)
	}
}

func TestRetransFlaggedForEfficiency(t *testing.T) {
	s, env := newLoneSender(t, 1<<30)
	s.Launch()
	nic := env.Net.Hosts[0].NIC()
	// No receiver exists, so bound the run: RTO retransmission would
	// otherwise continue forever (as it should).
	env.Sched().RunUntil(100 * sim.Microsecond)
	fresh := nic.Stats.TxFreshBytes
	s.ProcessAck(ack(0, false))
	s.ProcessAck(ack(0, false))
	s.ProcessAck(ack(0, false)) // fast retransmit
	env.Sched().RunUntil(200 * sim.Microsecond)
	if nic.Stats.TxFreshBytes != fresh {
		t.Fatal("retransmission counted as fresh payload")
	}
	if nic.Stats.TxDataBytes <= fresh {
		t.Fatal("retransmission not counted as data payload")
	}
}

// Property: no ACK sequence, however adversarial, drives the window
// below one MSS, the in-flight estimate negative, or α outside [0,1].
func TestPropertySenderInvariants(t *testing.T) {
	prop := func(seed int64, nAcks uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s, _ := newLoneSender(t, 1<<30)
		s.Launch()
		for i := 0; i < int(nAcks%60)+1; i++ {
			p := netsim.CtrlPacket(netsim.Ack, 9, 1, 0, 0)
			// Random cumulative ack around the current window, sometimes
			// stale, sometimes beyond snd_nxt (crossed paths).
			p.Seq = s.SndUna + int64(rng.Intn(3*netsim.MSS*20)) - netsim.MSS*10
			if p.Seq < 0 {
				p.Seq = 0
			}
			p.ECE = rng.Intn(3) == 0
			s.ProcessAck(p)
			if s.Cwnd < netsim.MSS {
				return false
			}
			if s.InFlight() < 0 {
				return false
			}
			if s.Alpha < 0 || s.Alpha > 1 {
				return false
			}
			if s.SndUna > s.SndNxt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: the skip set never causes a segment to be emitted from
// covered bytes.
func TestPropertyNextSegAvoidsSkip(t *testing.T) {
	prop := func(seed int64, nRanges uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s, _ := newLoneSender(t, 1<<20)
		for i := 0; i < int(nRanges%10)+1; i++ {
			a := int64(rng.Intn(1 << 20))
			b := a + int64(rng.Intn(8*netsim.MSS))
			s.Skip.Add(a, b)
		}
		for from := int64(0); ; {
			seq, end, ok := s.nextSeg(from)
			if !ok {
				return true
			}
			if s.Skip.CoveredIn(seq, end) != 0 {
				return false
			}
			if end <= seq || end-seq > netsim.MSS {
				return false
			}
			from = end
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
