// Package expresspass implements ExpressPass [11], a Table 1 proactive
// baseline: senders hold data until credits arrive ("passive, 1st RTT
// wasted"). A flow announces itself with a header-only request; the
// receiver's per-host credit pacer then emits one credit per MSS slot of
// its downlink, round-robining across active inbound flows; each credit
// releases exactly one data packet. Because data is credit-clocked at
// the receiver's line rate, data packets essentially never overflow the
// last hop — the scheme's selling point — at the cost of a wasted first
// RTT and credit overhead.
package expresspass

import (
	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/transport"
)

// Config tunes ExpressPass.
type Config struct {
	// CreditRate scales the credit pace relative to the downlink
	// (default 1.0; the real system shapes credits to ~95% to leave
	// room for other traffic).
	CreditRate float64
}

// Proto is the ExpressPass protocol factory; one instance per run (it
// owns the per-host credit pacers).
type Proto struct {
	Cfg    Config
	pacers map[int32]*creditPacer
}

// New builds an ExpressPass instance.
func New(cfg Config) *Proto {
	if cfg.CreditRate == 0 {
		cfg.CreditRate = 1.0
	}
	return &Proto{Cfg: cfg, pacers: make(map[int32]*creditPacer)}
}

// Name implements transport.Protocol.
func (*Proto) Name() string { return "expresspass" }

// Start implements transport.Protocol.
func (p *Proto) Start(env *transport.Env, f *transport.Flow) {
	pacer := p.pacers[f.Dst.ID()]
	if pacer == nil {
		pacer = &creditPacer{env: env, host: f.Dst, rate: p.Cfg.CreditRate}
		p.pacers[f.Dst.ID()] = pacer
	}
	rx := &receiver{env: env, f: f, r: transport.NewReassembly(f.Size), pacer: pacer}
	f.Dst.Bind(f.ID, true, rx)
	s := &sender{env: env, f: f}
	f.Src.Bind(f.ID, false, s)
	// Announce the flow with a one-byte request packet; all real data
	// waits for credits (the wasted first RTT: the pacer only learns of
	// the flow when the announcement arrives).
	s.announce()
	s.armRetry()
}

// sender releases one packet per credit.
type sender struct {
	env      *transport.Env
	f        *transport.Flow
	sentNext int64
}

// announce carries the flow's first byte as a credit request.
func (s *sender) announce() {
	req := s.f.Src.Data(s.f.ID, s.f.Dst.ID(), 0, 1, 0)
	s.f.Src.Send(req)
}

// Handle implements netsim.Endpoint.
func (s *sender) Handle(pkt *netsim.Packet) {
	if s.f.Done() || pkt.Kind != netsim.Grant {
		return
	}
	// A credit may carry a retransmission request for a lost packet.
	if ci, ok := pkt.Meta.(creditInfo); ok && ci.ResendLen > 0 {
		rp := s.f.Src.Data(s.f.ID, s.f.Dst.ID(), ci.ResendSeq, ci.ResendLen, 1)
		rp.Retrans = true
		s.f.Src.Send(rp)
		return
	}
	if s.sentNext >= s.f.Size {
		return
	}
	end := s.sentNext + netsim.MSS
	if end > s.f.Size {
		end = s.f.Size
	}
	s.f.Src.Send(s.f.Src.Data(s.f.ID, s.f.Dst.ID(), s.sentNext, int32(end-s.sentNext), 1))
	s.sentNext = end
}

// armRetry guards against a lost announcement.
func (s *sender) armRetry() {
	s.env.Sched().After(s.env.RTO(), func() {
		if s.f.Done() {
			return
		}
		if s.sentNext == 0 {
			s.announce()
		}
		s.armRetry()
	})
}

type creditInfo struct {
	ResendSeq int64
	ResendLen int32
}

// creditPacer emits credits at the downlink packet rate, round-robin
// across this host's active inbound flows.
type creditPacer struct {
	env    *transport.Env
	host   *netsim.Host
	rate   float64
	queue  []*receiver
	pacing bool
}

func (cp *creditPacer) register(rx *receiver) {
	cp.queue = append(cp.queue, rx)
	if !cp.pacing {
		cp.pacing = true
		cp.tick()
	}
}

func (cp *creditPacer) tick() {
	// Drop finished flows from the rotation.
	for len(cp.queue) > 0 && (cp.queue[0].done() || cp.queue[0].credited >= cp.queue[0].f.Size) {
		cp.queue = cp.queue[1:]
	}
	if len(cp.queue) == 0 {
		cp.pacing = false
		return
	}
	rx := cp.queue[0]
	cp.queue = append(cp.queue[1:], rx)
	rx.credited += netsim.MSS
	credit := rx.f.Dst.Ctrl(netsim.Grant, rx.f.ID, rx.f.Src.ID(), 0)
	rx.f.Dst.Send(credit)
	slot := cp.host.Rate().TxTime(netsim.MSS + netsim.HeaderBytes)
	gap := sim.Time(float64(slot) / cp.rate)
	cp.env.Sched().After(gap, cp.tick)
}

// receiver reassembles and requests retransmissions for definite holes.
type receiver struct {
	env       *transport.Env
	f         *transport.Flow
	r         *transport.Reassembly
	pacer     *creditPacer
	credited  int64
	announced bool
	retry     sim.Timer
}

func (rc *receiver) done() bool { return rc.f.Done() }

// Handle implements netsim.Endpoint.
func (rc *receiver) Handle(pkt *netsim.Packet) {
	if pkt.Kind != netsim.Data {
		return
	}
	// The first arrival (normally the one-byte announcement) registers
	// the flow with the credit pacer.
	if !rc.announced {
		rc.announced = true
		rc.pacer.register(rc)
	}
	rc.r.Add(pkt.Seq, pkt.PayloadLen)
	if rc.r.Complete() {
		rc.retry.Stop()
		rc.env.Complete(rc.f)
		return
	}
	rc.armRetry()
}

// armRetry re-requests the first missing packet on an RTO cadence (lost
// credits or rare data losses on upstream hops).
func (rc *receiver) armRetry() {
	rc.retry.Stop()
	rc.retry = rc.env.Sched().After(rc.env.RTO(), func() {
		if rc.f.Done() || rc.r.Complete() {
			return
		}
		miss := rc.r.FirstMissing()
		end := rc.r.NextCovered(miss, min64(miss+netsim.MSS, rc.f.Size))
		credit := rc.f.Dst.Ctrl(netsim.Grant, rc.f.ID, rc.f.Src.ID(), 0)
		credit.Meta = creditInfo{ResendSeq: miss, ResendLen: int32(end - miss)}
		rc.f.Dst.Send(credit)
		rc.armRetry()
	})
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
