package expresspass

import (
	"testing"

	"ppt/internal/sim"
	"ppt/internal/transport"
	"ppt/internal/transport/transporttest"
)

func TestSingleFlowCompletes(t *testing.T) {
	env := transporttest.NewStarEnv(4)
	sum := transporttest.MustComplete(t, env, New(Config{}), []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 1_000_000},
	})
	// Credit-clocked at 10G plus the wasted first RTT.
	if sum.OverallAvg < 800*sim.Microsecond {
		t.Fatalf("impossibly fast: %v", sum.OverallAvg)
	}
}

func TestFirstRTTWasted(t *testing.T) {
	// The Table 1 signature: even a one-packet flow needs a full RTT of
	// credit setup before data moves, so FCT >= ~1.5 RTT.
	env := transporttest.NewStarEnv(4)
	sum := transporttest.MustComplete(t, env, New(Config{}), []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 1_000},
	})
	if sum.OverallAvg < env.BaseRTT() {
		t.Fatalf("tiny flow FCT %v under one RTT: first RTT not spent on credits", sum.OverallAvg)
	}
}

func TestCreditClockingPreventsOverflow(t *testing.T) {
	// Heavy incast: data is credit-clocked to the downlink rate, so the
	// bottleneck queue never overflows.
	env := transporttest.NewStarEnv(9, transporttest.WithBuffer(60_000))
	flows := transporttest.IncastFlows(8, 400_000)
	transporttest.MustComplete(t, env, New(Config{}), flows)
	var dataDrops int64
	for _, p := range env.Net.SwitchPorts() {
		dataDrops += p.Stats.Drops
	}
	if dataDrops != 0 {
		t.Fatalf("credit-clocked data dropped %d packets", dataDrops)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	env := transporttest.NewStarEnv(4)
	flows := []transport.SimpleFlow{
		{ID: 1, Src: 1, Dst: 0, Size: 2_000_000},
		{ID: 2, Src: 2, Dst: 0, Size: 2_000_000},
	}
	transporttest.MustComplete(t, env, New(Config{}), flows)
	recs := env.Collector.Records()
	a, b := recs[0].FCT(), recs[1].FCT()
	if a > b*3/2 || b > a*3/2 {
		t.Fatalf("unfair credits: %v vs %v", a, b)
	}
}

func TestReducedCreditRate(t *testing.T) {
	full := transporttest.MustComplete(t, transporttest.NewStarEnv(4), New(Config{CreditRate: 1.0}),
		[]transport.SimpleFlow{{ID: 1, Src: 0, Dst: 1, Size: 1_000_000}})
	half := transporttest.MustComplete(t, transporttest.NewStarEnv(4), New(Config{CreditRate: 0.5}),
		[]transport.SimpleFlow{{ID: 1, Src: 0, Dst: 1, Size: 1_000_000}})
	if float64(half.OverallAvg) < 1.6*float64(full.OverallAvg) {
		t.Fatalf("half-rate credits (%v) not ~2x slower than full rate (%v)",
			half.OverallAvg, full.OverallAvg)
	}
}
