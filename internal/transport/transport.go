// Package transport provides the framework every protocol in this
// repository is written against: flows, the run loop that releases them
// at their arrival times, byte-range reassembly, and shared accounting.
//
// A protocol is a factory that wires a sender endpoint on the source host
// and a receiver endpoint on the destination host. Completion is decided
// by the receiver (all bytes reassembled) and reported to the
// environment, which records the FCT and tears the flow down.
package transport

import (
	"fmt"
	"sort"

	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/stats"
	"ppt/internal/topo"
)

// Flow is one transfer in flight.
type Flow struct {
	ID    uint32
	Src   *netsim.Host
	Dst   *netsim.Host
	Size  int64
	Start sim.Time

	// FirstCall is the number of bytes the application's first send()
	// syscall injected into the send buffer (set by the bufaware model;
	// defaults to Size, i.e. the whole message written at once).
	FirstCall int64

	// IdentifiedLarge is the buffer-aware classifier's verdict.
	IdentifiedLarge bool

	done bool

	// srcDone mirrors done for the sender side. Monolithic runs set both
	// together; in a windowed (sharded) run a cross-shard flow's sender
	// teardown is deferred to the next window barrier, so srcDone trails
	// done by up to one window. Sender-side code polls SenderDone.
	srcDone bool

	// crossShard marks flows whose endpoints live in different shards of
	// a partitioned fabric (always false in monolithic runs).
	crossShard bool

	// pooled marks flows owned by the run freelist (built by Run's
	// releaser); flows constructed directly by experiment code are never
	// recycled. inPool is the double-free guard.
	pooled bool
	inPool bool
}

// Env is the shared environment endpoints run in.
type Env struct {
	Net       *topo.Network
	Collector *stats.Collector
	Eff       stats.Efficiency

	// RTOMin floors every retransmission timer.
	RTOMin sim.Time

	// ShardStats holds the windowed engine's instrumentation after a
	// sharded run (nil for monolithic runs). Execution-side counters
	// only — they never influence simulated outcomes.
	ShardStats *ShardStats

	remaining    int
	stopWhenDone bool
	// feeding is true while the run's FlowSource may still yield flows;
	// the last completion only stops the loop once the source is dry.
	feeding bool

	// OnComplete, when set, observes each completion (after recording).
	// Observers must not retain the *Flow past the callback: under a
	// flow-recycling protocol the struct is reused for a later arrival.
	OnComplete func(*Flow)

	// pools is the per-run endpoint pool registry (see PoolFor).
	pools map[*PoolKey]any

	// flowFree is the run-scoped Flow freelist; recycleFlows gates it on
	// the protocol implementing FlowRecycler.
	flowFree     []*Flow
	recycleFlows bool

	// sched is this environment's event scheduler: the fabric scheduler
	// for monolithic runs, the shard's own scheduler for the per-shard
	// environments of a windowed run. shard and run are set only on the
	// latter (see sharded.go).
	sched *sim.Scheduler
	shard int
	run   *shardedRun
}

// NewEnv builds an environment over a fabric.
func NewEnv(net *topo.Network) *Env {
	return &Env{
		Net:       net,
		Collector: stats.NewCollector(),
		RTOMin:    1 * sim.Millisecond,
		sched:     net.Sched,
	}
}

// Sched returns the environment's scheduler (the shard's own in a
// windowed run).
func (e *Env) Sched() *sim.Scheduler { return e.sched }

// Now returns the current simulated time.
func (e *Env) Now() sim.Time { return e.sched.Now() }

// BaseRTT returns the fabric's zero-load RTT.
func (e *Env) BaseRTT() sim.Time { return e.Net.BaseRTT }

// BDP returns the fabric bandwidth-delay product in bytes.
func (e *Env) BDP() int { return e.Net.BDP() }

// RTO returns the retransmission timeout to use: a small multiple of the
// base RTT, floored at RTOMin.
func (e *Env) RTO() sim.Time {
	rto := 3 * e.Net.BaseRTT
	if rto < e.RTOMin {
		rto = e.RTOMin
	}
	return rto
}

// Complete records a finished flow, unbinds its endpoints (recycling
// any that implement EndpointRecycler), and stops the run loop when the
// last tracked flow finishes. Flows drawn from the run freelist return
// to it here, once the protocol has vouched (via FlowRecycler) that no
// stale timer can still reach them.
func (e *Env) Complete(f *Flow) {
	if f.done {
		return
	}
	f.done = true
	e.Collector.Complete(f.ID, f.Size, f.Start, e.Now())
	e.Eff.UsefulDelivered += f.Size
	if f.crossShard {
		// Windowed run with the sender in another shard, which may be
		// executing this window concurrently: tear down only the receiver
		// (this shard) now, and stage the sender's unbind/recycle — and
		// the flow's return to the source freelist — for the driver to
		// apply at the next window barrier, when every shard is
		// quiescent. Until then the sender observes SenderDone() == false
		// and keeps reacting to in-flight ACKs; the barrier time is a
		// pure function of the completion time, so the gap's behaviour is
		// identical at every worker count.
		dst := f.Dst.Unbind(f.ID, true)
		if r, ok := dst.(EndpointRecycler); ok {
			r.Recycle(e)
		}
		if e.OnComplete != nil {
			e.OnComplete(f)
		}
		e.run.stageTeardown(e.shard, f)
		return
	}
	f.srcDone = true
	src := f.Src.Unbind(f.ID, false)
	dst := f.Dst.Unbind(f.ID, true)
	if r, ok := src.(EndpointRecycler); ok {
		r.Recycle(e)
	}
	if r, ok := dst.(EndpointRecycler); ok {
		r.Recycle(e)
	}
	if e.OnComplete != nil {
		e.OnComplete(f)
	}
	if f.pooled && e.recycleFlows {
		e.putFlow(f)
	}
	if e.run != nil {
		e.run.flowDone()
		return
	}
	if e.stopWhenDone {
		e.remaining--
		if e.remaining == 0 && !e.feeding {
			e.Sched().Stop()
		}
	}
}

// getFlow draws a Flow from the run freelist (or allocates one) and
// resets the fields the releaser does not overwrite.
func (e *Env) getFlow() *Flow {
	if n := len(e.flowFree); n > 0 {
		f := e.flowFree[n-1]
		e.flowFree[n-1] = nil
		e.flowFree = e.flowFree[:n-1]
		f.inPool = false
		f.done = false
		f.srcDone = false
		f.crossShard = false
		f.IdentifiedLarge = false
		f.Start = 0
		return f
	}
	return &Flow{pooled: true}
}

// putFlow returns a released flow to the freelist. Returning the same
// flow twice panics: two owners would corrupt a later transfer.
func (e *Env) putFlow(f *Flow) {
	if f.inPool {
		panic("transport: flow double-free")
	}
	f.inPool = true
	f.Src, f.Dst = nil, nil
	e.flowFree = append(e.flowFree, f)
}

// Done reports whether the flow has completed. Sender-side code in
// sharded-capable protocols must use SenderDone instead: in a windowed
// run, done is written by the receiver's shard while the sender's shard
// may still be executing.
func (f *Flow) Done() bool { return f.done }

// SenderDone reports whether the sender-side endpoint has been (or is
// being) torn down. Equal to Done in monolithic runs; in a windowed run
// it trails Done by up to one window for cross-shard flows.
func (f *Flow) SenderDone() bool { return f.srcDone }

// Protocol wires endpoints for one flow. Start is called at the flow's
// arrival time.
type Protocol interface {
	Name() string
	Start(env *Env, f *Flow)
}

// ShardableProtocol is a Protocol whose flow setup can be split across
// shards of a partitioned fabric: StartSender runs at the flow's
// arrival time in the source host's shard; StartReceiver runs at the
// next window barrier in the destination host's shard (always before
// the first packet can arrive — the barrier is within one window of the
// arrival, the first cross-shard packet at least two windows out).
// StartReceiver is invoked on the driver thread while shards are
// quiescent, so it must not read the clock, schedule events, or send
// packets — it only builds and binds the receiver endpoint. Start must
// remain equivalent to StartReceiver followed by StartSender (it is
// still what monolithic runs and same-shard flows call).
type ShardableProtocol interface {
	Protocol
	StartSender(env *Env, f *Flow)
	StartReceiver(env *Env, f *Flow)
}

// RunConfig controls a full experiment run.
type RunConfig struct {
	// MaxEvents aborts runaway simulations; 0 means a generous default.
	MaxEvents uint64
	// Deadline bounds simulated time; 0 means unbounded.
	Deadline sim.Time
}

// SimpleFlow is a pending transfer request: endpoints by host index, a
// size, and an arrival time. Experiment code converts workload.Flow
// values into these.
type SimpleFlow struct {
	ID     uint32
	Src    int
	Dst    int
	Size   int64
	Arrive sim.Time
	// FirstCall overrides the first-syscall size for the buffer-aware
	// classifier; zero means the whole message is written at once.
	FirstCall int64
}

// FlowSource yields pending transfers lazily, one at a time, in
// nondecreasing arrival order (the releaser panics on a decreasing
// source). It is the streaming counterpart of a materialized
// []SimpleFlow: a million-flow workload pulled through a FlowSource
// costs one SimpleFlow of lookahead instead of the whole slice.
// workload.Generator and workload.TraceReader adapt to it trivially.
type FlowSource interface {
	// Next returns the next flow; ok is false once the source is
	// exhausted, and stays false on every later call.
	Next() (SimpleFlow, bool)
}

// sliceSource adapts a materialized, arrival-sorted slice to FlowSource.
type sliceSource struct {
	flows []SimpleFlow
	next  int
}

func (s *sliceSource) Next() (SimpleFlow, bool) {
	if s.next >= len(s.flows) {
		return SimpleFlow{}, false
	}
	f := s.flows[s.next]
	s.next++
	return f, true
}

// releaser is the run's rolling arrival cursor: instead of
// materializing a *Flow, a capturing closure, and a scheduler event per
// flow before the run starts, one timer pulls flows from a FlowSource
// with a single-flow lookahead and releases each batch of
// same-timestamp flows when its moment comes. Peak pre-run state drops
// from O(flows) heap objects to one event and one pending SimpleFlow,
// and the Flow structs themselves come from the Env freelist when the
// protocol supports recycling. Pulling never touches the scheduler, so
// for a materialized source the (time, seq) sequence of release events
// is identical to walking the slice directly.
type releaser struct {
	env   *Env
	proto Protocol
	src   FlowSource

	// pending is the one-flow lookahead: the next flow to release, if
	// havePending.
	pending     SimpleFlow
	havePending bool
	lastArrive  sim.Time

	// armed tracks whether a scheduler event exists that will call fire;
	// the windowed driver re-arms idle releasers at barriers as it feeds
	// their queues.
	armed bool

	// fireFn is fire bound once; re-arming with a fresh method value
	// would allocate per batch.
	fireFn func()
	// sharded, when non-nil, is the windowed run this releaser's shard
	// belongs to: cross-shard flows start their sender immediately and
	// stage their receiver start for the next barrier.
	sharded *shardedRun
	shard   int
}

// prime refills the lookahead from the source, enforcing nondecreasing
// arrival order.
func (rel *releaser) prime() {
	f, ok := rel.src.Next()
	if !ok {
		return
	}
	if f.Arrive < rel.lastArrive {
		panic(fmt.Sprintf("transport: FlowSource yielded decreasing arrival times (%v after %v); sources must be arrival-sorted",
			f.Arrive, rel.lastArrive))
	}
	rel.lastArrive = f.Arrive
	rel.pending = f
	rel.havePending = true
}

// fire releases every flow whose arrival time has come, then re-arms
// for the next pending arrival. Same-timestamp flows start in source
// order — exactly the (time, seq) order the per-flow events of the old
// scheme gave them.
func (rel *releaser) fire() {
	env := rel.env
	now := env.Now()
	rel.armed = false
	if !rel.havePending {
		rel.prime()
	}
	for rel.havePending && rel.pending.Arrive <= now {
		wf := rel.pending
		rel.havePending = false
		f := env.getFlow()
		f.ID = wf.ID
		f.Src = env.Net.Hosts[wf.Src]
		f.Dst = env.Net.Hosts[wf.Dst]
		f.Size = wf.Size
		f.FirstCall = wf.FirstCall
		if f.FirstCall == 0 {
			f.FirstCall = wf.Size
		}
		f.Start = now
		if r := rel.sharded; r != nil {
			if r.hostShard[wf.Src] != r.hostShard[wf.Dst] {
				f.crossShard = true
				r.stageReceiverStart(rel.shard, f)
				r.proto.StartSender(env, f)
			} else {
				rel.proto.Start(env, f)
			}
		} else {
			env.remaining++
			rel.proto.Start(env, f)
		}
		rel.prime()
	}
	if rel.havePending {
		env.Sched().At(rel.pending.Arrive, rel.fireFn)
		rel.armed = true
	} else if rel.sharded == nil {
		// Source dry and nothing pending: the next completion that
		// drains remaining may stop the run.
		env.feeding = false
		if env.stopWhenDone && env.remaining == 0 {
			env.Sched().Stop()
		}
	}
}

// unreleased counts the flows the releaser never started, draining the
// source; used only for truncation reporting after the run loop exits.
func (rel *releaser) unreleased() int {
	n := 0
	if rel.havePending {
		n++
		rel.havePending = false
	}
	for {
		if _, ok := rel.src.Next(); !ok {
			return n
		}
		n++
	}
}

// arrivalSorted reports whether flows are already in arrival order (the
// workload generator emits them sorted, so the common case avoids the
// copy).
func arrivalSorted(flows []SimpleFlow) bool {
	for i := 1; i < len(flows); i++ {
		if flows[i].Arrive < flows[i-1].Arrive {
			return false
		}
	}
	return true
}

// Run releases flows at their arrival times under proto and runs the
// simulation until every flow completes (or a safety bound trips). It
// returns the FCT summary. On a partitioned fabric (topo.Config.Shards
// >= 1) the windowed multi-core driver takes over; proto must then be a
// ShardableProtocol. Run is the materialized convenience over
// RunSource: it sorts (if needed), reserves the collector, and streams
// the slice — producing the exact event sequence walking the slice
// always has.
func Run(env *Env, proto Protocol, flows []SimpleFlow, cfg RunConfig) stats.Summary {
	if !arrivalSorted(flows) {
		flows = append([]SimpleFlow(nil), flows...)
		sort.SliceStable(flows, func(i, j int) bool { return flows[i].Arrive < flows[j].Arrive })
	}
	if env.Net.Part == nil {
		env.Collector.Reserve(len(flows))
	}
	return RunSource(env, proto, &sliceSource{flows: flows}, cfg)
}

// RunSource is Run over a lazily produced workload: flows are pulled
// from src — which must yield nondecreasing arrival times — with a
// single-flow lookahead, so a million-flow run never materializes its
// trace. Completion statistics still accumulate in env.Collector; pair
// with stats.Collector.SetSpill to bound that side too.
func RunSource(env *Env, proto Protocol, src FlowSource, cfg RunConfig) stats.Summary {
	if env.Net.Part != nil {
		sp, ok := proto.(ShardableProtocol)
		if !ok {
			panic(fmt.Sprintf("transport: partitioned fabric requires a ShardableProtocol; %s is not one", proto.Name()))
		}
		return runShardedSource(env, sp, src, cfg)
	}
	env.remaining = 0
	env.stopWhenDone = true
	env.feeding = true
	_, env.recycleFlows = proto.(FlowRecycler)
	sched := env.Sched()
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 2_000_000_000
	}
	sched.Limit = sched.Executed + cfg.MaxEvents
	rel := &releaser{env: env, proto: proto, src: src}
	rel.fireFn = rel.fire
	rel.prime()
	if rel.havePending {
		sched.At(rel.pending.Arrive, rel.fireFn)
		rel.armed = true
	} else {
		env.feeding = false
	}
	deadline := sim.MaxTime
	if cfg.Deadline != 0 {
		deadline = cfg.Deadline
	}
	sched.RunUntil(deadline)
	env.recycleFlows = false
	env.feeding = false
	// Settle the ports' deferred fused-transmit accounting before
	// reading Tx counters: every serialization that physically completed
	// within the run counts exactly once, in both pipeline modes
	// (DESIGN.md §7.6). On a deadline truncation the clock may lag the
	// deadline — the fused pipeline has no serialize-complete events to
	// execute — so the settle horizon is the deadline itself (unless the
	// event budget tripped first, where the executed clock is all either
	// mode can vouch for).
	lim := sched.Now()
	if deadline != sim.MaxTime && env.remaining > 0 && sched.Executed < sched.Limit {
		lim = deadline
	}
	env.Net.SettleTx(func(*sim.Scheduler) sim.Time { return lim })
	// Account host-NIC payload counters into the efficiency summary.
	for _, h := range env.Net.Hosts {
		env.Eff.SentPayload += h.NIC().Stats.TxDataBytes
	}
	sum := env.Collector.Summarize()
	if unfinished := env.remaining + rel.unreleased(); unfinished > 0 {
		// MaxEvents or Deadline tripped before every flow finished: the
		// summary covers only the flows that made it, which silently biases
		// FCT statistics toward the fast ones. Flag it so callers can warn.
		// Unfinished counts released-but-incomplete flows and everything
		// the source still held.
		sum.Truncated = true
		sum.Unfinished = unfinished
	}
	return sum
}

// Reassembly is the receiver-side byte accounting shared by every
// protocol: an interval set over [0, Size).
type Reassembly struct {
	Size int64
	set  IntervalSet
}

// NewReassembly tracks a flow of the given size.
func NewReassembly(size int64) *Reassembly { return &Reassembly{Size: size} }

// Reset re-targets a recycled Reassembly at a new flow, keeping the
// interval set's backing array so steady-state reuse does not allocate.
func (r *Reassembly) Reset(size int64) {
	r.Size = size
	r.set.Reset()
}

// Add records payload [seq, seq+n) and returns the newly covered bytes.
func (r *Reassembly) Add(seq int64, n int32) int64 {
	end := seq + int64(n)
	if end > r.Size {
		end = r.Size
	}
	return r.set.Add(seq, end)
}

// Complete reports whether all bytes have arrived.
func (r *Reassembly) Complete() bool { return r.set.Total() >= r.Size }

// CumAck returns the contiguous prefix length — the TCP cumulative ACK.
func (r *Reassembly) CumAck() int64 { return r.set.ContiguousFrom(0) }

// TailFrontier returns the start of the contiguous suffix reaching Size
// (== Size when no suffix has arrived).
func (r *Reassembly) TailFrontier() int64 { return r.set.ContiguousBack(r.Size) }

// Received returns total distinct bytes received.
func (r *Reassembly) Received() int64 { return r.set.Total() }

// FirstMissing returns the first uncovered byte offset (== Size when
// complete).
func (r *Reassembly) FirstMissing() int64 { return r.set.NextGap(0, r.Size) }

// NextCovered returns the first received byte at or after a, or limit
// when nothing below limit has arrived — the end of the gap starting at
// a.
func (r *Reassembly) NextCovered(a, limit int64) int64 {
	return r.set.FirstCoveredIn(a, limit)
}

// ContiguousFrom returns the end of the received run starting at a
// (== a when byte a has not arrived).
func (r *Reassembly) ContiguousFrom(a int64) int64 { return r.set.ContiguousFrom(a) }

// MaxCovered returns the highest received offset + 1 (0 when nothing has
// arrived). On an in-order fabric, every gap below this frontier is a
// definite loss.
func (r *Reassembly) MaxCovered() int64 { return r.set.Max() }

// String aids debugging.
func (r *Reassembly) String() string {
	return fmt.Sprintf("reasm %d/%d cum=%d tail=%d", r.set.Total(), r.Size, r.CumAck(), r.TailFrontier())
}
