package transport_test

import (
	"testing"

	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/topo"
	"ppt/internal/transport"
	"ppt/internal/transport/dctcp"
)

func newTruncEnv() *transport.Env {
	net := topo.Star(4, topo.Config{
		HostRate:     10 * netsim.Gbps,
		LinkDelay:    5 * sim.Microsecond,
		ECNHighK:     30_000,
		ECNLowK:      24_000,
		SharedBuffer: 1 << 20,
	})
	return transport.NewEnv(net)
}

func TestRunFlagsDeadlineTruncation(t *testing.T) {
	env := newTruncEnv()
	// 2MB at 10G needs ~1.6ms; a 100µs deadline cannot finish it.
	sum := transport.Run(env, dctcp.Proto{}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 2_000_000},
	}, transport.RunConfig{Deadline: 100 * sim.Microsecond})
	if !sum.Truncated || sum.Unfinished != 1 {
		t.Fatalf("summary = %+v, want Truncated with 1 unfinished flow", sum)
	}
}

func TestRunFlagsMaxEventsTruncation(t *testing.T) {
	env := newTruncEnv()
	sum := transport.Run(env, dctcp.Proto{}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 2_000_000},
		{ID: 2, Src: 2, Dst: 3, Size: 2_000_000},
	}, transport.RunConfig{MaxEvents: 50})
	if !sum.Truncated || sum.Unfinished != 2 {
		t.Fatalf("summary = %+v, want Truncated with 2 unfinished flows", sum)
	}
}

func TestRunCompleteNotTruncated(t *testing.T) {
	env := newTruncEnv()
	sum := transport.Run(env, dctcp.Proto{}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 100_000},
	}, transport.RunConfig{})
	if sum.Truncated || sum.Unfinished != 0 {
		t.Fatalf("summary = %+v, want clean completion", sum)
	}
	if sum.Flows != 1 {
		t.Fatalf("flows = %d", sum.Flows)
	}
}
