package transport

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalAddDisjoint(t *testing.T) {
	var s IntervalSet
	if got := s.Add(0, 10); got != 10 {
		t.Fatalf("added %d", got)
	}
	if got := s.Add(20, 30); got != 10 {
		t.Fatalf("added %d", got)
	}
	if s.Total() != 20 || s.Len() != 2 {
		t.Fatalf("total=%d len=%d", s.Total(), s.Len())
	}
}

func TestIntervalAddOverlap(t *testing.T) {
	var s IntervalSet
	s.Add(0, 10)
	if got := s.Add(5, 15); got != 5 {
		t.Fatalf("overlap added %d, want 5", got)
	}
	if s.Total() != 15 || s.Len() != 1 {
		t.Fatalf("total=%d len=%d", s.Total(), s.Len())
	}
}

func TestIntervalAddBridges(t *testing.T) {
	var s IntervalSet
	s.Add(0, 10)
	s.Add(20, 30)
	if got := s.Add(5, 25); got != 10 {
		t.Fatalf("bridge added %d, want 10", got)
	}
	if s.Len() != 1 || !s.Contains(0, 30) {
		t.Fatalf("not merged: len=%d", s.Len())
	}
}

func TestIntervalAdjacentMerge(t *testing.T) {
	var s IntervalSet
	s.Add(0, 10)
	s.Add(10, 20)
	if s.Len() != 1 || s.Total() != 20 {
		t.Fatalf("adjacent not merged: len=%d total=%d", s.Len(), s.Total())
	}
}

func TestIntervalDuplicate(t *testing.T) {
	var s IntervalSet
	s.Add(0, 10)
	if got := s.Add(0, 10); got != 0 {
		t.Fatalf("duplicate added %d", got)
	}
	if got := s.Add(2, 8); got != 0 {
		t.Fatalf("subset added %d", got)
	}
}

func TestIntervalEmptyAdd(t *testing.T) {
	var s IntervalSet
	if got := s.Add(5, 5); got != 0 {
		t.Fatalf("empty added %d", got)
	}
	if got := s.Add(10, 3); got != 0 {
		t.Fatalf("inverted added %d", got)
	}
}

func TestContains(t *testing.T) {
	var s IntervalSet
	s.Add(10, 20)
	s.Add(30, 40)
	cases := []struct {
		a, b int64
		want bool
	}{
		{10, 20, true}, {12, 18, true}, {10, 21, false},
		{5, 15, false}, {25, 26, false}, {30, 40, true},
		{15, 35, false}, {19, 20, true}, {5, 5, true},
	}
	for _, c := range cases {
		if got := s.Contains(c.a, c.b); got != c.want {
			t.Errorf("Contains(%d,%d) = %v", c.a, c.b, got)
		}
	}
}

func TestCoveredIn(t *testing.T) {
	var s IntervalSet
	s.Add(10, 20)
	s.Add(30, 40)
	if got := s.CoveredIn(0, 50); got != 20 {
		t.Fatalf("CoveredIn(0,50) = %d", got)
	}
	if got := s.CoveredIn(15, 35); got != 10 {
		t.Fatalf("CoveredIn(15,35) = %d", got)
	}
	if got := s.CoveredIn(20, 30); got != 0 {
		t.Fatalf("CoveredIn(20,30) = %d", got)
	}
}

func TestContiguousFrom(t *testing.T) {
	var s IntervalSet
	s.Add(0, 10)
	s.Add(15, 25)
	if got := s.ContiguousFrom(0); got != 10 {
		t.Fatalf("from 0 = %d", got)
	}
	if got := s.ContiguousFrom(10); got != 10 {
		t.Fatalf("from 10 (gap) = %d", got)
	}
	if got := s.ContiguousFrom(17); got != 25 {
		t.Fatalf("from 17 = %d", got)
	}
}

func TestContiguousBack(t *testing.T) {
	var s IntervalSet
	s.Add(80, 100)
	s.Add(40, 60)
	if got := s.ContiguousBack(100); got != 80 {
		t.Fatalf("back 100 = %d", got)
	}
	if got := s.ContiguousBack(80); got != 80 {
		t.Fatalf("back 80 (gap below) = %d", got)
	}
	if got := s.ContiguousBack(60); got != 40 {
		t.Fatalf("back 60 = %d", got)
	}
	if got := s.ContiguousBack(70); got != 70 {
		t.Fatalf("back 70 (uncovered) = %d", got)
	}
}

func TestNextGap(t *testing.T) {
	var s IntervalSet
	s.Add(0, 10)
	if got := s.NextGap(0, 100); got != 10 {
		t.Fatalf("gap = %d", got)
	}
	if got := s.NextGap(0, 5); got != 5 {
		t.Fatalf("clamped gap = %d", got)
	}
	if got := s.NextGap(50, 100); got != 50 {
		t.Fatalf("gap at uncovered = %d", got)
	}
}

// Property: IntervalSet agrees with a naive bitmap model under random
// adds.
func TestPropertyIntervalMatchesBitmap(t *testing.T) {
	prop := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const span = 300
		var s IntervalSet
		bitmap := make([]bool, span)
		for op := 0; op < int(nOps%40)+5; op++ {
			a := int64(rng.Intn(span))
			b := a + int64(rng.Intn(40))
			if b > span {
				b = span
			}
			var wantAdded int64
			for i := a; i < b; i++ {
				if !bitmap[i] {
					bitmap[i] = true
					wantAdded++
				}
			}
			if got := s.Add(a, b); got != wantAdded {
				return false
			}
		}
		var total int64
		for _, set := range bitmap {
			if set {
				total++
			}
		}
		if s.Total() != total {
			return false
		}
		// Spot-check queries against the bitmap.
		for q := 0; q < 20; q++ {
			a := int64(rng.Intn(span))
			b := a + int64(rng.Intn(50))
			if b > span {
				b = span
			}
			want := true
			var wantCov int64
			for i := a; i < b; i++ {
				if !bitmap[i] {
					want = false
				} else {
					wantCov++
				}
			}
			if s.Contains(a, b) != want || s.CoveredIn(a, b) != wantCov {
				return false
			}
			cf := s.ContiguousFrom(a)
			wantCF := a
			for wantCF < span && bitmap[wantCF] {
				wantCF++
			}
			if a < span && bitmap[a] {
				if cf != wantCF {
					return false
				}
			} else if cf != a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestReassembly(t *testing.T) {
	r := NewReassembly(5000)
	if r.Complete() {
		t.Fatal("empty complete")
	}
	if got := r.Add(0, 1448); got != 1448 {
		t.Fatalf("added %d", got)
	}
	if r.CumAck() != 1448 {
		t.Fatalf("cum = %d", r.CumAck())
	}
	// Tail bytes via the low loop.
	r.Add(4000, 1000)
	if r.TailFrontier() != 4000 {
		t.Fatalf("tail frontier = %d", r.TailFrontier())
	}
	if r.FirstMissing() != 1448 {
		t.Fatalf("first missing = %d", r.FirstMissing())
	}
	r.Add(1448, 1448)
	r.Add(2896, 1448) // overlaps into the tail region; clamped at size? no, 2896+1448=4344 covers the gap
	if !r.Complete() {
		t.Fatalf("not complete: %v", r)
	}
	if r.Received() != 5000 {
		t.Fatalf("received = %d", r.Received())
	}
}

func TestReassemblyClampsAtSize(t *testing.T) {
	r := NewReassembly(1000)
	if got := r.Add(500, 1448); got != 500 {
		t.Fatalf("clamped add = %d", got)
	}
	r.Add(0, 500)
	if !r.Complete() || r.CumAck() != 1000 {
		t.Fatalf("state = %v", r)
	}
}
