// Package halfback implements Halfback [23], a Table 1 baseline: short
// flows (below a size threshold, 141KB in the paper) are paced out
// entirely in the first RTT — no slow start — and the *back half* of the
// flow is proactively retransmitted right behind it, trading bandwidth
// for loss-recovery latency ("run short flows quickly and safely").
// Larger flows fall back to plain DCTCP. Like the paper's
// characterization, it helps only the startup phase and ignores spare
// bandwidth in the queue-buildup phase.
package halfback

import (
	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/transport"
	"ppt/internal/transport/dctcp"
)

// Config tunes Halfback.
type Config struct {
	// Threshold is the short-flow cutoff (default 141KB, the paper's
	// figure for Halfback's first-RTT pacing).
	Threshold int64
	// DCTCP configures the fallback loop for large flows.
	DCTCP dctcp.Config
}

// Proto is the Halfback protocol factory.
type Proto struct {
	Cfg Config
}

// Name implements transport.Protocol.
func (Proto) Name() string { return "halfback" }

// Start implements transport.Protocol.
func (p Proto) Start(env *transport.Env, f *transport.Flow) {
	threshold := p.Cfg.Threshold
	if threshold == 0 {
		threshold = 141_000
	}
	if f.Size > threshold {
		dctcp.Proto{Cfg: p.Cfg.DCTCP}.Start(env, f)
		return
	}
	r := &receiver{env: env, f: f, r: transport.NewReassembly(f.Size)}
	f.Dst.Bind(f.ID, true, r)
	s := &sender{env: env, f: f}
	f.Src.Bind(f.ID, false, s)
	s.launch()
}

// sender blasts the whole short flow, then replays the back half.
type sender struct {
	env *transport.Env
	f   *transport.Flow
}

func (s *sender) launch() {
	// Whole flow at line rate (the NIC serializes it within ~1 RTT for
	// sub-BDP flows).
	for seq := int64(0); seq < s.f.Size; seq += netsim.MSS {
		s.emit(seq, false)
	}
	// Proactive replay of the back half: if any original packet there
	// was lost to the burst, its copy arrives without waiting for a
	// timeout.
	for seq := s.f.Size / 2 / netsim.MSS * netsim.MSS; seq < s.f.Size; seq += netsim.MSS {
		s.emit(seq, true)
	}
	s.armRetry()
}

func (s *sender) emit(seq int64, retrans bool) {
	end := seq + netsim.MSS
	if end > s.f.Size {
		end = s.f.Size
	}
	pkt := s.f.Src.Data(s.f.ID, s.f.Dst.ID(), seq, int32(end-seq), 0)
	pkt.Retrans = retrans
	s.f.Src.Send(pkt)
}

// armRetry is the loss backstop: on timeout, replay the whole (short)
// flow. The delay carries per-flow jitter so synchronized senders whose
// bursts collided do not collide identically on every retry.
func (s *sender) armRetry() {
	jitter := sim.Time(s.f.ID%16) * s.env.BaseRTT() / 4
	s.env.Sched().After(s.env.RTO()+jitter, func() {
		if s.f.Done() {
			return
		}
		for seq := int64(0); seq < s.f.Size; seq += netsim.MSS {
			s.emit(seq, true)
		}
		s.armRetry()
	})
}

// Handle implements netsim.Endpoint (Halfback needs no ACK clocking for
// short flows; ACKs only exist so the retry backstop can observe
// progress through flow completion).
func (s *sender) Handle(pkt *netsim.Packet) {}

type receiver struct {
	env *transport.Env
	f   *transport.Flow
	r   *transport.Reassembly
}

// Handle implements netsim.Endpoint.
func (rc *receiver) Handle(pkt *netsim.Packet) {
	if pkt.Kind != netsim.Data {
		return
	}
	rc.r.Add(pkt.Seq, pkt.PayloadLen)
	if rc.r.Complete() {
		rc.env.Complete(rc.f)
	}
}
