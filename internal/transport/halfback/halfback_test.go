package halfback

import (
	"testing"

	"ppt/internal/sim"
	"ppt/internal/transport"
	"ppt/internal/transport/dctcp"
	"ppt/internal/transport/transporttest"
)

func TestShortFlowOneRTT(t *testing.T) {
	env := transporttest.NewStarEnv(4)
	sum := transporttest.MustComplete(t, env, Proto{}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 50_000},
	})
	// Paced out in the 1st RTT: completion ~ serialization + 1 RTT.
	if sum.OverallAvg > env.BaseRTT()+2*env.BaseRTT() {
		t.Fatalf("short flow FCT = %v", sum.OverallAvg)
	}
}

func TestShortFlowBeatsDCTCPOnIdleNetwork(t *testing.T) {
	flow := []transport.SimpleFlow{{ID: 1, Src: 0, Dst: 1, Size: 100_000}}
	hb := transporttest.MustComplete(t, transporttest.NewStarEnv(4), Proto{}, flow)
	dc := transporttest.MustComplete(t, transporttest.NewStarEnv(4), dctcp.Proto{}, flow)
	if hb.OverallAvg >= dc.OverallAvg {
		t.Fatalf("halfback %v not faster than DCTCP %v", hb.OverallAvg, dc.OverallAvg)
	}
}

func TestLargeFlowFallsBackToDCTCP(t *testing.T) {
	env := transporttest.NewStarEnv(4)
	sum := transporttest.MustComplete(t, env, Proto{}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 2_000_000},
	})
	// 2MB at 10G = 1.6ms minimum; a line-rate blast would finish near
	// that, DCTCP fallback takes slow-start time on top.
	if sum.OverallAvg < 1600*sim.Microsecond {
		t.Fatalf("large flow impossibly fast (%v): did not fall back", sum.OverallAvg)
	}
}

func TestBackHalfReplicated(t *testing.T) {
	env := transporttest.NewStarEnv(4)
	transporttest.MustComplete(t, env, Proto{}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 100_000},
	})
	// Drain the NIC: the run loop stops at the completion event, with
	// replica packets still queued.
	env.Sched().RunUntil(env.Now() + 10*env.BaseRTT())
	nic := env.Net.Hosts[0].NIC()
	// ~100KB fresh + ~50KB proactive replication.
	if nic.Stats.TxDataBytes < 140_000 {
		t.Fatalf("sent only %d bytes: back half not replicated", nic.Stats.TxDataBytes)
	}
	if nic.Stats.TxFreshBytes > 101_000 {
		t.Fatalf("fresh bytes = %d", nic.Stats.TxFreshBytes)
	}
}

func TestSurvivesBurstLoss(t *testing.T) {
	// Tiny buffer: the line-rate blast loses packets; the replicated
	// back half and the retry backstop must still complete the flow.
	env := transporttest.NewStarEnv(5, transporttest.WithBuffer(20_000))
	env.RTOMin = 300 * sim.Microsecond
	transporttest.MustComplete(t, env, Proto{}, transporttest.IncastFlows(4, 80_000))
}
