package pias

import (
	"testing"

	"ppt/internal/sim"
	"ppt/internal/stats"
	"ppt/internal/transport"
	"ppt/internal/transport/dctcp"
	"ppt/internal/transport/transporttest"
)

func TestSingleFlowCompletes(t *testing.T) {
	env := transporttest.NewStarEnv(4)
	transporttest.MustComplete(t, env, Proto{}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 2_000_000},
	})
}

func TestDemotionThresholds(t *testing.T) {
	env := transporttest.NewStarEnv(4)
	f := &transport.Flow{ID: 1, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1], Size: 1 << 40}
	var prio func(int64) int8
	// Capture the prio function PIAS installs.
	probe := Proto{Cfg: Config{DCTCP: dctcp.Config{}}}
	_ = probe
	th := DefaultThresholds
	prio = func(sent int64) int8 {
		for i, t := range th {
			if sent < t {
				return int8(i)
			}
		}
		return 7
	}
	cases := []struct {
		sent int64
		want int8
	}{
		{0, 0}, {49_999, 0}, {50_000, 1}, {199_999, 2}, {999_999, 4},
		{4_999_999, 5}, {19_999_999, 6}, {20_000_000, 7},
	}
	for _, c := range cases {
		if got := prio(c.sent); got != c.want {
			t.Errorf("prio(%d) = %d, want %d", c.sent, got, c.want)
		}
	}
	_ = f
}

func TestSmallFlowsBypassElephant(t *testing.T) {
	// PIAS's reason to exist: small flows arriving while an elephant
	// (demoted to a low priority) transmits should see near-solo FCTs,
	// much better than under plain DCTCP.
	run := func(p transport.Protocol) stats.Summary {
		env := transporttest.NewStarEnv(4)
		transporttest.MustComplete(t, env, p, transporttest.MixedFlows(8, 10_000_000, 20_000))
		return env.Collector.Summarize()
	}
	piasSum := run(Proto{})
	dctcpSum := run(dctcp.Proto{})
	if float64(piasSum.SmallAvg) > 0.9*float64(dctcpSum.SmallAvg) {
		t.Fatalf("PIAS small avg %v not better than DCTCP %v",
			piasSum.SmallAvg, dctcpSum.SmallAvg)
	}
}

func TestElephantNotStarved(t *testing.T) {
	env := transporttest.NewStarEnv(4)
	sum := transporttest.MustComplete(t, env, Proto{}, transporttest.MixedFlows(8, 10_000_000, 20_000))
	// The elephant (10MB at 10G = 8ms solo) must finish within a sane
	// multiple despite demotion.
	if sum.LargeAvg > 40*sim.Millisecond {
		t.Fatalf("elephant FCT %v: starved", sum.LargeAvg)
	}
}
