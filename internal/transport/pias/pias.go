// Package pias implements PIAS [9]: information-agnostic flow scheduling
// on top of DCTCP. Every flow starts at the highest priority and is
// demoted through the switch priority queues as it sends more bytes,
// approximating least-attained-service without knowing flow sizes.
//
// PIAS uses all eight priorities (it has no low-priority loop), with
// demotion thresholds tuned per workload; the defaults here follow the
// roughly-geometric spacing the PIAS paper derives for heavy-tailed
// datacenter workloads.
package pias

import (
	"ppt/internal/transport"
	"ppt/internal/transport/dctcp"
)

// DefaultThresholds demote a flow through P0..P7 as bytes are sent.
var DefaultThresholds = [7]int64{
	50_000, 100_000, 200_000, 500_000, 1_000_000, 5_000_000, 20_000_000,
}

// Config tunes PIAS.
type Config struct {
	DCTCP      dctcp.Config
	Thresholds [7]int64
}

// Proto is the PIAS protocol factory.
type Proto struct {
	Cfg Config
}

// Name implements transport.Protocol.
func (Proto) Name() string { return "pias" }

// Start implements transport.Protocol.
func (p Proto) Start(env *transport.Env, f *transport.Flow) {
	th := p.Cfg.Thresholds
	if th == ([7]int64{}) {
		th = DefaultThresholds
	}
	cfg := p.Cfg.DCTCP
	cfg.Prio = func(sent int64) int8 {
		for i, t := range th {
			if sent < t {
				return int8(i)
			}
		}
		return 7
	}
	r := dctcp.NewReceiver(env, f)
	f.Dst.Bind(f.ID, true, r)
	s := dctcp.NewSender(env, f, cfg)
	f.Src.Bind(f.ID, false, s)
	s.Launch()
}
