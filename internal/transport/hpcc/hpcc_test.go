package hpcc

import (
	"testing"

	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/transport"
	"ppt/internal/transport/transporttest"
)

func TestSingleFlowCompletes(t *testing.T) {
	env := transporttest.NewStarEnv(4, transporttest.WithINT())
	sum := transporttest.MustComplete(t, env, Proto{}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 2_000_000},
	})
	if sum.OverallAvg < 1600*sim.Microsecond {
		t.Fatalf("impossibly fast: %v", sum.OverallAvg)
	}
}

func TestStartsAtFullBDP(t *testing.T) {
	// HPCC starts at line rate (window = BDP), so a BDP-sized flow
	// completes in ~1 RTT — no slow start.
	env := transporttest.NewStarEnv(4, transporttest.WithINT())
	size := int64(env.BDP())
	sum := transporttest.MustComplete(t, env, Proto{}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: size},
	})
	if sum.OverallAvg > 2*env.BaseRTT() {
		t.Fatalf("BDP flow took %v, want ~1 RTT (%v)", sum.OverallAvg, env.BaseRTT())
	}
}

func TestConvergesWithoutDrops(t *testing.T) {
	// Two elephants sharing a bottleneck: INT feedback must keep the
	// queue controlled well below overflow.
	env := transporttest.NewStarEnv(4, transporttest.WithINT(), transporttest.WithBuffer(500_000))
	flows := []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 2, Size: 5_000_000},
		{ID: 2, Src: 1, Dst: 2, Size: 5_000_000},
	}
	transporttest.MustComplete(t, env, Proto{}, flows)
	var drops int64
	for _, p := range env.Net.SwitchPorts() {
		drops += p.Stats.Drops
	}
	if drops != 0 {
		t.Fatalf("HPCC dropped %d packets", drops)
	}
}

func TestReactShrinksWindowAtHighUtilization(t *testing.T) {
	env := transporttest.NewStarEnv(4, transporttest.WithINT())
	f := &transport.Flow{ID: 1, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1], Size: 1 << 30}
	cfg := Config{}.withDefaults(env)
	s := &sender{env: env, f: f, cfg: cfg, wnd: float64(cfg.InitWindow), wc: float64(cfg.InitWindow)}
	baseT := env.BaseRTT()
	// First sample establishes the baseline.
	s.react([]netsim.INTHop{{QLen: 0, TxBytes: 0, TS: 0, Rate: 10 * netsim.Gbps}})
	// Second sample: link fully utilized with a standing queue.
	bytesPerRTT := int64(float64(10*netsim.Gbps) / 8 * baseT.Seconds())
	s.react([]netsim.INTHop{{QLen: 100_000, TxBytes: bytesPerRTT, TS: baseT, Rate: 10 * netsim.Gbps}})
	if s.wnd >= float64(cfg.InitWindow) {
		t.Fatalf("window %v did not shrink under U>η", s.wnd)
	}
}

func TestReactGrowsWindowWhenIdle(t *testing.T) {
	env := transporttest.NewStarEnv(4, transporttest.WithINT())
	f := &transport.Flow{ID: 1, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1], Size: 1 << 30}
	cfg := Config{}.withDefaults(env)
	s := &sender{env: env, f: f, cfg: cfg, wnd: float64(cfg.InitWindow) / 2, wc: float64(cfg.InitWindow) / 2}
	baseT := env.BaseRTT()
	s.react([]netsim.INTHop{{QLen: 0, TxBytes: 0, TS: 0, Rate: 10 * netsim.Gbps}})
	// 30% utilization, empty queue.
	tx := int64(float64(10*netsim.Gbps) / 8 * baseT.Seconds() * 0.3)
	s.react([]netsim.INTHop{{QLen: 0, TxBytes: tx, TS: baseT, Rate: 10 * netsim.Gbps}})
	if s.wnd <= float64(cfg.InitWindow)/2 {
		t.Fatalf("window %v did not grow at U=0.3", s.wnd)
	}
}

func TestDefaults(t *testing.T) {
	env := transporttest.NewStarEnv(2)
	cfg := Config{}.withDefaults(env)
	if cfg.Eta != 0.95 || cfg.MaxStage != 5 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.InitWindow != int64(env.BDP()) {
		t.Fatalf("InitWindow = %d", cfg.InitWindow)
	}
}
