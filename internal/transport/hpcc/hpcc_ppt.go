package hpcc

import (
	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/transport"
	"ppt/internal/transport/lowloop"
)

// Appendix B of the paper sketches PPT's design as a building block for
// INT-based transports: "one may open a PPT LCP loop to send
// low-priority opportunistic packets whenever HPCC's estimated in-flight
// bytes are smaller than BDP". WithPPT implements exactly that: the
// per-ACK telemetry utilization U gates the low loop (U below the target
// η means measured spare capacity), sized to the unused share of the
// BDP, with the standard EWD/ECE machinery from the lowloop package.

// PPTVariant wraps HPCC with PPT's low-priority loop (appendix B).
type PPTVariant struct {
	Cfg Config
}

// Name implements transport.Protocol.
func (PPTVariant) Name() string { return "hpcc+ppt" }

// Start implements transport.Protocol.
func (p PPTVariant) Start(env *transport.Env, f *transport.Flow) {
	cfg := p.Cfg.withDefaults(env)
	r := &dualReceiver{env: env, f: f, r: transport.NewReassembly(f.Size)}
	f.Dst.Bind(f.ID, true, r)
	s := &pptSender{
		sender: sender{
			env: env, f: f, cfg: cfg,
			wnd: float64(cfg.InitWindow), wc: float64(cfg.InitWindow),
		},
	}
	s.loop = lowloop.New(env, f, s)
	f.Src.Bind(f.ID, false, s)
	s.trySend()
}

// pptSender extends the HPCC sender with the low loop.
type pptSender struct {
	sender
	loop      *lowloop.Loop
	loopOpens int
	lastU     float64
}

// Frontier implements lowloop.Host.
func (s *pptSender) Frontier() int64 { return s.sndNxt }

// Window implements lowloop.Host.
func (s *pptSender) Window() float64 { return s.wnd }

// RTT implements lowloop.Host.
func (s *pptSender) RTT() sim.Time { return s.env.BaseRTT() }

// LowPrio implements lowloop.Host: HPCC has no per-flow scheduling, so
// all opportunistic packets ride the first low priority.
func (s *pptSender) LowPrio() int8 { return 4 }

// SkipSet implements lowloop.Host.
func (s *pptSender) SkipSet() *transport.IntervalSet { return &s.skip }

// OnSkipUpdate implements lowloop.Host.
func (s *pptSender) OnSkipUpdate() { s.trySend() }

// Handle implements netsim.Endpoint.
func (s *pptSender) Handle(pkt *netsim.Packet) {
	if s.f.Done() || pkt.Kind != netsim.Ack {
		return
	}
	if pkt.LowLoop {
		s.loop.OnLowAck(pkt)
		return
	}
	if ints, ok := pkt.Meta.([]netsim.INTHop); ok && len(ints) > 0 {
		s.lastU = s.reactU(ints)
		// reactU copied what it keeps (prevINT); recycle the array.
		s.f.Src.Pool().PutINT(ints)
		pkt.Meta = nil
		// The appendix-B trigger: telemetry says the path has spare
		// capacity for opportunistic packets.
		if s.lastU > 0 && s.lastU < s.cfg.Eta && !s.loop.Active() {
			i := int64((1 - s.lastU) * float64(s.env.BDP()))
			s.loop.Open(i, s.loopOpens > 0)
			s.loopOpens++
		}
	}
	s.processCum(pkt)
	s.trySend()
}

// dualReceiver acks HPCC data per packet with INT echo and coalesces
// opportunistic arrivals 2:1 into low-priority ACKs.
type dualReceiver struct {
	env *transport.Env
	f   *transport.Flow
	r   *transport.Reassembly

	pendingSeq int64
	pendingLen int32
	pendingCE  bool
	hasPending bool
}

// Handle implements netsim.Endpoint.
func (rc *dualReceiver) Handle(pkt *netsim.Packet) {
	if pkt.Kind != netsim.Data {
		return
	}
	added := rc.r.Add(pkt.Seq, pkt.PayloadLen)
	if pkt.LowLoop {
		rc.env.Eff.UsefulLow += added
		if !rc.hasPending {
			rc.pendingSeq, rc.pendingLen, rc.pendingCE = pkt.Seq, pkt.PayloadLen, pkt.CE
			rc.hasPending = true
		} else {
			ack := rc.f.Dst.Ctrl(netsim.Ack, rc.f.ID, rc.f.Src.ID(), pkt.Prio)
			ack.LowLoop = true
			ack.Seq = rc.r.CumAck()
			ack.ECE = pkt.CE || rc.pendingCE
			ack.EchoTS = pkt.SentAt
			ack.Meta = &transport.AckMeta{
				LowSeqs: [2]int64{rc.pendingSeq, pkt.Seq},
				LowLens: [2]int32{rc.pendingLen, pkt.PayloadLen},
				LowN:    2,
			}
			rc.hasPending = false
			rc.f.Dst.Send(ack)
		}
	} else {
		ack := rc.f.Dst.Ctrl(netsim.Ack, rc.f.ID, rc.f.Src.ID(), 0)
		ack.Seq = rc.r.CumAck()
		ack.EchoTS = pkt.SentAt
		if len(pkt.INT) > 0 {
			// Move ownership: the data packet is recycled when Handle
			// returns, so the ACK takes the telemetry array with it.
			ack.Meta = pkt.INT
			pkt.INT = nil
		}
		rc.f.Dst.Send(ack)
	}
	if rc.r.Complete() {
		rc.env.Complete(rc.f)
	}
}
