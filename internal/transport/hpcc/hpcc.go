// Package hpcc implements HPCC [25]: high-precision congestion control
// driven by in-band network telemetry. Every data packet gathers per-hop
// (qlen, txBytes, ts, rate) records; the receiver echoes them on ACKs;
// the sender estimates per-hop normalized inflight U and sets
//
//	W = W_c / (U/η) + W_AI            (multiplicative, U ≥ η)
//	W = W + W_AI                      (additive, up to maxStage stages)
//
// updating the reference window W_c once per RTT. Run HPCC on a fabric
// built with topo.Config.EnableINT = true.
package hpcc

import (
	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/transport"
)

// Config tunes HPCC.
type Config struct {
	// Eta is the target utilization η (default 0.95).
	Eta float64
	// MaxStage bounds consecutive additive-increase stages (default 5).
	MaxStage int
	// WAI is the additive increase in bytes per adjustment (default
	// MSS/2 — a fraction of a packet, per the paper's guidance for
	// many concurrent flows).
	WAI float64
	// InitWindow in bytes (default: fabric BDP).
	InitWindow int64
}

func (c Config) withDefaults(env *transport.Env) Config {
	if c.Eta == 0 {
		c.Eta = 0.95
	}
	if c.MaxStage == 0 {
		c.MaxStage = 5
	}
	if c.WAI == 0 {
		c.WAI = netsim.MSS / 2
	}
	if c.InitWindow == 0 {
		c.InitWindow = int64(env.BDP())
	}
	return c
}

// Proto is the HPCC protocol factory.
type Proto struct {
	Cfg Config
}

// Name implements transport.Protocol.
func (Proto) Name() string { return "hpcc" }

// Start implements transport.Protocol.
func (p Proto) Start(env *transport.Env, f *transport.Flow) {
	cfg := p.Cfg.withDefaults(env)
	r := &receiver{env: env, f: f, r: transport.NewReassembly(f.Size)}
	f.Dst.Bind(f.ID, true, r)
	s := &sender{
		env: env, f: f, cfg: cfg,
		wnd: float64(cfg.InitWindow), wc: float64(cfg.InitWindow),
	}
	f.Src.Bind(f.ID, false, s)
	s.trySend()
}

type sender struct {
	env *transport.Env
	f   *transport.Flow
	cfg Config

	wnd          float64 // current window W
	wc           float64 // reference window W_c
	incStage     int
	lastWcUpdate sim.Time

	sndUna, sndNxt int64
	skip           transport.IntervalSet // bytes delivered by a low loop
	prevINT        []netsim.INTHop
	dupAcks        int
	rto            sim.Timer
}

func (s *sender) inflight() int64 {
	out := s.sndNxt - s.sndUna
	if out <= 0 {
		return 0
	}
	return out - s.skip.CoveredIn(s.sndUna, s.sndNxt)
}

func (s *sender) trySend() {
	if s.f.Done() {
		return
	}
	for s.sndNxt < s.f.Size {
		if float64(s.inflight())+netsim.MSS > s.wnd && s.inflight() > 0 {
			break
		}
		seq := s.skip.ContiguousFrom(s.sndNxt)
		end := seq + netsim.MSS
		if end > s.f.Size {
			end = s.f.Size
		}
		if cov := s.skip.FirstCoveredIn(seq, end); cov < end {
			end = cov
		}
		if seq >= s.f.Size || end <= seq {
			break
		}
		s.transmit(seq, int32(end-seq), false)
		s.sndNxt = end
	}
	s.armRTO()
}

func (s *sender) transmit(seq int64, n int32, retrans bool) {
	pkt := s.f.Src.Data(s.f.ID, s.f.Dst.ID(), seq, n, 0)
	pkt.INT = s.f.Src.Pool().GetINT()
	pkt.Retrans = retrans
	s.f.Src.Send(pkt)
}

func (s *sender) armRTO() {
	if s.inflight() <= 0 || s.f.Done() {
		s.rto.Stop()
		return
	}
	if s.rto.Pending() {
		return
	}
	s.rto = s.env.Sched().After(s.env.RTO(), s.onRTO)
}

func (s *sender) onRTO() {
	if s.f.Done() || s.inflight() <= 0 {
		return
	}
	s.sndNxt = s.sndUna
	s.wnd = netsim.MSS
	end := s.sndUna + netsim.MSS
	if end > s.f.Size {
		end = s.f.Size
	}
	s.transmit(s.sndUna, int32(end-s.sndUna), true)
	s.sndNxt = end
	s.rto = s.env.Sched().After(s.env.RTO(), s.onRTO)
}

// Handle implements netsim.Endpoint.
func (s *sender) Handle(pkt *netsim.Packet) {
	if s.f.Done() || pkt.Kind != netsim.Ack {
		return
	}
	if ints, ok := pkt.Meta.([]netsim.INTHop); ok && len(ints) > 0 {
		s.react(ints)
		// react copied what it keeps (prevINT); the telemetry array the
		// receiver handed us can go back to the pool.
		s.f.Src.Pool().PutINT(ints)
		pkt.Meta = nil
	}
	s.processCum(pkt)
	s.trySend()
}

// processCum applies the cumulative-ACK bookkeeping shared with the
// appendix-B variant.
func (s *sender) processCum(pkt *netsim.Packet) {
	if pkt.Seq > s.sndUna {
		s.sndUna = pkt.Seq
		if s.sndUna > s.sndNxt {
			s.sndNxt = s.sndUna
		}
		s.dupAcks = 0
		s.rto.Stop()
	} else if s.inflight() > 0 {
		s.dupAcks++
		if s.dupAcks == 3 {
			seq := s.skip.ContiguousFrom(s.sndUna)
			end := seq + netsim.MSS
			if end > s.f.Size {
				end = s.f.Size
			}
			if end > seq {
				s.transmit(seq, int32(end-seq), true)
			}
			s.dupAcks = 0
		}
	}
}

// react runs the HPCC window computation against echoed telemetry.
func (s *sender) react(cur []netsim.INTHop) {
	u := s.reactU(cur)
	if u == 0 {
		return
	}
	if u >= s.cfg.Eta || s.incStage >= s.cfg.MaxStage {
		s.wnd = s.wc/(u/s.cfg.Eta) + s.cfg.WAI
		s.maybeUpdateWc(true)
	} else {
		s.wnd = s.wc + s.cfg.WAI
		s.maybeUpdateWc(false)
	}
	if s.wnd < netsim.MSS {
		s.wnd = netsim.MSS
	}
}

// reactU estimates the maximum per-hop normalized inflight U from two
// consecutive telemetry snapshots (0 until a baseline exists).
func (s *sender) reactU(cur []netsim.INTHop) float64 {
	if s.prevINT == nil || len(s.prevINT) != len(cur) {
		s.prevINT = append([]netsim.INTHop(nil), cur...)
		return 0
	}
	baseT := s.env.BaseRTT().Seconds()
	u := 0.0
	for j := range cur {
		dt := (cur[j].TS - s.prevINT[j].TS).Seconds()
		if dt <= 0 {
			continue
		}
		bps := float64(cur[j].Rate) / 8 // bytes per second
		qlen := float64(min64(cur[j].QLen, s.prevINT[j].QLen))
		txRate := float64(cur[j].TxBytes-s.prevINT[j].TxBytes) / dt
		uj := qlen/(bps*baseT) + txRate/bps
		if uj > u {
			u = uj
		}
	}
	s.prevINT = append(s.prevINT[:0], cur...)
	return u
}

// maybeUpdateWc commits the reference window once per base RTT.
func (s *sender) maybeUpdateWc(mi bool) {
	now := s.env.Now()
	if now-s.lastWcUpdate < s.env.BaseRTT() {
		return
	}
	s.lastWcUpdate = now
	s.wc = s.wnd
	if mi {
		s.incStage = 0
	} else {
		s.incStage++
	}
}

type receiver struct {
	env *transport.Env
	f   *transport.Flow
	r   *transport.Reassembly
}

// Handle implements netsim.Endpoint: per-packet ACK echoing telemetry.
func (rc *receiver) Handle(pkt *netsim.Packet) {
	if pkt.Kind != netsim.Data {
		return
	}
	rc.r.Add(pkt.Seq, pkt.PayloadLen)
	ack := rc.f.Dst.Ctrl(netsim.Ack, rc.f.ID, rc.f.Src.ID(), 0)
	ack.Seq = rc.r.CumAck()
	ack.EchoTS = pkt.SentAt
	if len(pkt.INT) > 0 {
		// Move ownership: the data packet is recycled when this Handle
		// returns, so the ACK must take the telemetry array with it.
		ack.Meta = pkt.INT
		pkt.INT = nil
	}
	rc.f.Dst.Send(ack)
	if rc.r.Complete() {
		rc.env.Complete(rc.f)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
