package transport

import "sort"

// IntervalSet tracks a union of disjoint half-open byte ranges [a, b).
// Receivers use it to reassemble flows; PPT senders use it to skip bytes
// the low-priority loop already delivered (the SACK scoreboard of §5.2).
type IntervalSet struct {
	// iv holds disjoint, sorted, non-adjacent intervals.
	iv    [][2]int64
	total int64
}

// Reset empties the set in place, keeping the backing array so a
// recycled set stops allocating once it has seen its high-water
// interval count.
func (s *IntervalSet) Reset() {
	s.iv = s.iv[:0]
	s.total = 0
}

// Add inserts [a, b) and returns how many bytes were newly covered.
func (s *IntervalSet) Add(a, b int64) int64 {
	if a >= b {
		return 0
	}
	// Find first interval ending at or after a (adjacency merges too).
	i := sort.Search(len(s.iv), func(i int) bool { return s.iv[i][1] >= a })
	newA, newB := a, b
	j := i
	var overlap int64
	for ; j < len(s.iv) && s.iv[j][0] <= b; j++ {
		lo, hi := s.iv[j][0], s.iv[j][1]
		if lo < newA {
			newA = lo
		}
		if hi > newB {
			newB = hi
		}
		// Count the overlap with the inserted range for new-byte math.
		oLo, oHi := max64(lo, a), min64(hi, b)
		if oLo < oHi {
			overlap += oHi - oLo
		}
	}
	added := (b - a) - overlap
	if added == 0 && i < len(s.iv) && s.iv[i][0] <= a && s.iv[i][1] >= b {
		return 0
	}
	if i == j {
		// No overlap or adjacency: open a gap at i. The append only
		// grows the backing array amortized; everything else below
		// mutates in place, so a long-lived set stops allocating once
		// it reaches its high-water interval count.
		s.iv = append(s.iv, [2]int64{})
		copy(s.iv[i+1:], s.iv[i:])
		s.iv[i] = [2]int64{newA, newB}
	} else {
		// Collapse intervals [i, j) into one merged range.
		s.iv[i] = [2]int64{newA, newB}
		if j > i+1 {
			n := copy(s.iv[i+1:], s.iv[j:])
			s.iv = s.iv[:i+1+n]
		}
	}
	s.total += added
	return added
}

// Contains reports whether [a, b) is fully covered.
func (s *IntervalSet) Contains(a, b int64) bool {
	if a >= b {
		return true
	}
	i := sort.Search(len(s.iv), func(i int) bool { return s.iv[i][1] > a })
	return i < len(s.iv) && s.iv[i][0] <= a && s.iv[i][1] >= b
}

// CoveredIn returns the number of covered bytes within [a, b).
func (s *IntervalSet) CoveredIn(a, b int64) int64 {
	var n int64
	i := sort.Search(len(s.iv), func(i int) bool { return s.iv[i][1] > a })
	for ; i < len(s.iv) && s.iv[i][0] < b; i++ {
		lo, hi := max64(s.iv[i][0], a), min64(s.iv[i][1], b)
		if lo < hi {
			n += hi - lo
		}
	}
	return n
}

// Total returns the covered byte count.
func (s *IntervalSet) Total() int64 { return s.total }

// Len returns the number of disjoint intervals.
func (s *IntervalSet) Len() int { return len(s.iv) }

// ContiguousFrom returns the end of the covered run starting at a, i.e.
// the largest e such that [a, e) is covered (e == a when a is uncovered).
func (s *IntervalSet) ContiguousFrom(a int64) int64 {
	i := sort.Search(len(s.iv), func(i int) bool { return s.iv[i][1] > a })
	if i < len(s.iv) && s.iv[i][0] <= a {
		return s.iv[i][1]
	}
	return a
}

// ContiguousBack returns the start of the covered run ending at b, i.e.
// the smallest t such that [t, b) is covered (t == b when uncovered).
func (s *IntervalSet) ContiguousBack(b int64) int64 {
	i := sort.Search(len(s.iv), func(i int) bool { return s.iv[i][1] >= b })
	if i < len(s.iv) && s.iv[i][0] < b && s.iv[i][1] >= b {
		return s.iv[i][0]
	}
	return b
}

// Max returns the end of the highest interval (0 when empty).
func (s *IntervalSet) Max() int64 {
	if len(s.iv) == 0 {
		return 0
	}
	return s.iv[len(s.iv)-1][1]
}

// FirstCoveredIn returns the smallest covered offset in [a, b), or b
// when none is covered.
func (s *IntervalSet) FirstCoveredIn(a, b int64) int64 {
	i := sort.Search(len(s.iv), func(i int) bool { return s.iv[i][1] > a })
	if i < len(s.iv) && s.iv[i][0] < b {
		if s.iv[i][0] > a {
			return s.iv[i][0]
		}
		return a
	}
	return b
}

// NextGap returns the first uncovered byte at or after a, clamped to
// limit.
func (s *IntervalSet) NextGap(a, limit int64) int64 {
	g := s.ContiguousFrom(a)
	if g > limit {
		return limit
	}
	return g
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
