package transport_test

import (
	"math/rand"
	"testing"

	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/topo"
	"ppt/internal/transport"
	"ppt/internal/transport/dctcp"
)

// lazySource yields a fixed flow schedule one at a time, tracking how
// far the run actually pulled.
type lazySource struct {
	flows  []transport.SimpleFlow
	pulled int
}

func (s *lazySource) Next() (transport.SimpleFlow, bool) {
	if s.pulled >= len(s.flows) {
		return transport.SimpleFlow{}, false
	}
	f := s.flows[s.pulled]
	s.pulled++
	return f, true
}

func randomFlows(n, hosts int, seed int64) []transport.SimpleFlow {
	rng := rand.New(rand.NewSource(seed))
	flows := make([]transport.SimpleFlow, n)
	at := sim.Time(0)
	for i := range flows {
		at += sim.Time(rng.Int63n(int64(20 * sim.Microsecond)))
		src := rng.Intn(hosts)
		dst := rng.Intn(hosts - 1)
		if dst >= src {
			dst++
		}
		flows[i] = transport.SimpleFlow{
			ID: uint32(i + 1), Src: src, Dst: dst,
			Size:   rng.Int63n(400_000) + 1,
			Arrive: at,
		}
	}
	return flows
}

// TestRunSourceMatchesRun is the transport-level streamed-vs-
// materialized differential: the same workload through RunSource and
// through Run must produce identical summaries, field for field.
func TestRunSourceMatchesRun(t *testing.T) {
	flows := randomFlows(200, 4, 5)
	envA, envB := newTruncEnv(), newTruncEnv()
	want := transport.Run(envA, dctcp.Proto{}, flows, transport.RunConfig{})
	src := &lazySource{flows: flows}
	got := transport.RunSource(envB, dctcp.Proto{}, src, transport.RunConfig{})
	if got != want {
		t.Fatalf("streamed summary %+v != materialized %+v", got, want)
	}
	if src.pulled != len(flows) {
		t.Fatalf("run pulled %d of %d flows", src.pulled, len(flows))
	}
}

// TestRunSourceSpilled runs the streamed path with a spilling collector
// and checks the summary still matches the fully materialized,
// in-memory run — the end-to-end bounded-memory pipeline.
func TestRunSourceSpilled(t *testing.T) {
	flows := randomFlows(300, 4, 9)
	envA, envB := newTruncEnv(), newTruncEnv()
	want := transport.Run(envA, dctcp.Proto{}, flows, transport.RunConfig{})
	if err := envB.Collector.SetSpill(32); err != nil {
		t.Fatal(err)
	}
	defer envB.Collector.Close()
	got := transport.RunSource(envB, dctcp.Proto{}, &lazySource{flows: flows}, transport.RunConfig{})
	if got != want {
		t.Fatalf("spilled streamed summary %+v != materialized %+v", got, want)
	}
	if peak := envB.Collector.ResidentPeak(); peak > 32 {
		t.Fatalf("resident peak %d exceeds chunk", peak)
	}
	if envB.Collector.SpilledRecords() == 0 {
		t.Fatal("nothing spilled")
	}
}

// TestRunSourceTruncationDrainsSource pins Unfinished accounting for
// streamed runs: flows never pulled from the source still count.
func TestRunSourceTruncationDrainsSource(t *testing.T) {
	env := newTruncEnv()
	src := &lazySource{flows: []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 2_000_000, Arrive: 0},
		{ID: 2, Src: 2, Dst: 3, Size: 1000, Arrive: 50 * sim.Millisecond},
		{ID: 3, Src: 1, Dst: 2, Size: 1000, Arrive: 60 * sim.Millisecond},
	}}
	sum := transport.RunSource(env, dctcp.Proto{}, src, transport.RunConfig{Deadline: 100 * sim.Microsecond})
	if !sum.Truncated || sum.Unfinished != 3 {
		t.Fatalf("summary = %+v, want Truncated with 3 unfinished", sum)
	}
}

// TestRunSourceRejectsUnsorted pins the decreasing-arrival guard.
func TestRunSourceRejectsUnsorted(t *testing.T) {
	env := newTruncEnv()
	defer func() {
		if recover() == nil {
			t.Fatal("decreasing-arrival source accepted")
		}
	}()
	transport.RunSource(env, dctcp.Proto{}, &lazySource{flows: []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 1000, Arrive: 10 * sim.Microsecond},
		{ID: 2, Src: 2, Dst: 3, Size: 1000, Arrive: 5 * sim.Microsecond},
	}}, transport.RunConfig{})
}

// TestRunSourceShardedMatches runs the streamed path on a partitioned
// fabric at several worker counts: the windowed engine's contract is
// that worker count is invisible to simulated outcomes, so every
// shard setting must produce the byte-identical summary. (Monolithic
// and windowed runs may differ slightly — the documented teardown
// deferral — so the reference here is the windowed run itself, and the
// materialized windowed run of the same workload.)
func TestRunSourceShardedMatches(t *testing.T) {
	build := func(shards int) *transport.Env {
		net := topo.LeafSpine(2, 2, 4, topo.Config{
			HostRate:     10 * netsim.Gbps,
			CoreRate:     40 * netsim.Gbps,
			LinkDelay:    5 * sim.Microsecond,
			ECNHighK:     30_000,
			ECNLowK:      24_000,
			SharedBuffer: 1 << 20,
			Shards:       shards,
		})
		return transport.NewEnv(net)
	}
	flows := randomFlows(150, 8, 21)
	envRef := build(1)
	want := transport.Run(envRef, dctcp.Proto{}, flows, transport.RunConfig{})
	if want.Truncated || want.Flows != 150 {
		t.Fatalf("reference run did not complete: %+v", want)
	}
	for _, shards := range []int{1, 2, 4} {
		env := build(shards)
		got := transport.RunSource(env, dctcp.Proto{}, &lazySource{flows: flows}, transport.RunConfig{})
		if got != want {
			t.Fatalf("shards=%d streamed summary %+v != materialized shards=1 %+v", shards, got, want)
		}
	}
}
