package aeolus

import (
	"testing"

	"ppt/internal/sim"
	"ppt/internal/transport"
	"ppt/internal/transport/transporttest"
)

func TestSingleFlowCompletes(t *testing.T) {
	env := transporttest.NewStarEnv(4, transporttest.WithDroppable(20_000))
	sum := transporttest.MustComplete(t, env, New(Config{}), []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 2_000_000},
	})
	if sum.OverallAvg < 1600*sim.Microsecond {
		t.Fatalf("impossibly fast: %v", sum.OverallAvg)
	}
}

func TestTinyFlowFirstRTT(t *testing.T) {
	env := transporttest.NewStarEnv(4, transporttest.WithDroppable(20_000))
	sum := transporttest.MustComplete(t, env, New(Config{}), []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 5_000},
	})
	if sum.OverallAvg > env.BaseRTT() {
		t.Fatalf("tiny flow FCT %v", sum.OverallAvg)
	}
}

func TestUnscheduledSelectivelyDropped(t *testing.T) {
	// A heavy incast: the droppable unscheduled packets must be shed at
	// the switch (selective drop), and every flow must still complete
	// via scheduled retransmission.
	env := transporttest.NewStarEnv(9, transporttest.WithDroppable(10_000))
	env.RTOMin = 300 * sim.Microsecond
	flows := transporttest.IncastFlows(8, 400_000)
	transporttest.MustComplete(t, env, New(Config{}), flows)
	var dropsLow int64
	for _, p := range env.Net.SwitchPorts() {
		dropsLow += p.Stats.DropsLow
	}
	if dropsLow == 0 {
		t.Fatal("no selective drops under incast")
	}
}

func TestProbeSurvivesIncast(t *testing.T) {
	// The first packet of each flow is not droppable, so the receiver
	// always learns of every flow even under selective dropping.
	env := transporttest.NewStarEnv(17, transporttest.WithDroppable(5_000))
	env.RTOMin = 300 * sim.Microsecond
	flows := transporttest.IncastFlows(16, 200_000)
	transporttest.MustComplete(t, env, New(Config{}), flows)
}

func TestShedBytesRecoveredWithoutTimeout(t *testing.T) {
	// Two incast flows with selective dropping: holes in the
	// unscheduled span must be re-requested via grants. We verify
	// completion is much faster than the RTO (i.e. grant-based
	// recovery, not timeout-based).
	env := transporttest.NewStarEnv(5, transporttest.WithDroppable(6_000))
	env.RTOMin = 20 * sim.Millisecond // timeouts would be catastrophic
	flows := transporttest.IncastFlows(4, 120_000)
	sum := transporttest.MustComplete(t, env, New(Config{}), flows)
	var dropsLow int64
	for _, p := range env.Net.SwitchPorts() {
		dropsLow += p.Stats.DropsLow
	}
	if dropsLow == 0 {
		t.Skip("no selective drops occurred; nothing to recover")
	}
	if sum.OverallAvg > 5*sim.Millisecond {
		t.Fatalf("avg FCT %v suggests timeout-based recovery", sum.OverallAvg)
	}
}

func TestNextHolePacket(t *testing.T) {
	env := transporttest.NewStarEnv(4)
	cfg := Config{RTTBytes: 50_000}.withDefaults(env)
	mgr := &rxManager{env: env, cfg: cfg,
		grants: transport.PoolFor(env, grantInfoPool, newGrantInfo)}
	f := &transport.Flow{ID: 1, Src: env.Net.Hosts[1], Dst: env.Net.Hosts[0], Size: 100_000}
	rx := &rxFlow{mgr: mgr, f: f, r: transport.NewReassembly(f.Size), granted: 50_000}
	// No data yet: no hole (nothing below the frontier).
	if _, n := rx.nextHolePacket(); n != 0 {
		t.Fatalf("hole on empty reassembly: %d", n)
	}
	// Bytes [10000, 20000) arrived, [0, 10000) shed: a definite hole,
	// requested one MSS at a time without repeats.
	rx.r.Add(10_000, 10_000)
	seq, n := rx.nextHolePacket()
	if seq != 0 || n != 1448 {
		t.Fatalf("hole = (%d, %d), want (0, 1448)", seq, n)
	}
	rx.reqd.Add(seq, seq+n)
	seq2, n2 := rx.nextHolePacket()
	if seq2 != 1448 || n2 != 1448 {
		t.Fatalf("second hole = (%d, %d), want (1448, 1448)", seq2, n2)
	}
	// Once the whole hole is requested, nothing remains.
	rx.reqd.Add(0, 10_000)
	if _, n := rx.nextHolePacket(); n != 0 {
		t.Fatalf("hole after full request: %d", n)
	}
}

func TestDefaults(t *testing.T) {
	env := transporttest.NewStarEnv(2)
	cfg := Config{}.withDefaults(env)
	if cfg.UnschedPrio != 6 || cfg.Overcommit != 2 {
		t.Fatalf("defaults = %+v", cfg)
	}
}
