// Package aeolus implements Aeolus [17], the paper's "building block for
// proactive transports", integrated with Homa as in the paper's
// evaluation. Like Homa, receivers drive scheduled transmission with
// grants; unlike Homa, the first-RTT unscheduled packets are sent at
// line rate in a *droppable* low-priority class that switches discard
// early under buildup (selective dropping), and dropped unscheduled
// bytes are recovered by scheduled grants carrying selective
// retransmission requests instead of timeouts.
package aeolus

import (
	"sort"
	"sync/atomic"

	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/transport"
)

// Config tunes Aeolus.
type Config struct {
	// RTTBytes is the unscheduled allowance / grant window.
	RTTBytes int64
	// Overcommit matches Homa's setting (2 in the paper).
	Overcommit int
	// UnschedPrio is the droppable class for pre-credit packets
	// (default P6: below every scheduled priority).
	UnschedPrio int8
}

func (c Config) withDefaults(env *transport.Env) Config {
	if c.RTTBytes == 0 {
		c.RTTBytes = int64(env.BDP())
	}
	if c.Overcommit == 0 {
		c.Overcommit = 2
	}
	if c.UnschedPrio == 0 {
		c.UnschedPrio = 6
	}
	return c
}

type dataInfo struct {
	Size int64
}

// grantInfo is a scheduled credit; Resend, when non-zero-length, asks
// the sender to also retransmit that missing range (selective
// retransmission of lost unscheduled bytes).
type grantInfo struct {
	UpTo      int64
	Prio      int8
	ResendSeq int64
	ResendLen int64
}

// Debug counters for diagnostic harnesses. Updated atomically so
// concurrent runs (the parallel experiment pool) stay race-free; the
// values then aggregate across whatever runs share the process.
var Debug struct {
	HoleReqs, RetryReqs, Keepalives int64
	ResendBytes, GrantBytes         int64
}

// Proto is the Aeolus protocol factory; one instance per run.
type Proto struct {
	Cfg      Config
	managers map[int32]*rxManager
}

// New builds an Aeolus protocol instance.
func New(cfg Config) *Proto {
	return &Proto{Cfg: cfg, managers: make(map[int32]*rxManager)}
}

// Name implements transport.Protocol.
func (*Proto) Name() string { return "aeolus" }

// Start implements transport.Protocol.
func (p *Proto) Start(env *transport.Env, f *transport.Flow) {
	cfg := p.Cfg.withDefaults(env)
	mgr := p.managers[f.Dst.ID()]
	if mgr == nil {
		mgr = &rxManager{env: env, cfg: cfg, flows: make(map[uint32]*rxFlow)}
		p.managers[f.Dst.ID()] = mgr
	}
	rx := &rxFlow{mgr: mgr, f: f, r: transport.NewReassembly(f.Size), granted: min64(cfg.RTTBytes, f.Size)}
	mgr.flows[f.ID] = rx
	f.Dst.Bind(f.ID, true, rx)

	s := &sender{env: env, f: f, cfg: cfg}
	f.Src.Bind(f.ID, false, s)
	s.launch()
}

type sender struct {
	env *transport.Env
	f   *transport.Flow
	cfg Config

	sentNext int64
	keep     sim.Timer
	gotRx    bool
}

func (s *sender) launch() {
	unsched := min64(s.cfg.RTTBytes, s.f.Size)
	first := true
	for s.sentNext < unsched {
		end := min64(s.sentNext+netsim.MSS, unsched)
		pkt := s.f.Src.Data(s.f.ID, s.f.Dst.ID(), s.sentNext, int32(end-s.sentNext), s.cfg.UnschedPrio)
		pkt.Meta = &dataInfo{Size: s.f.Size}
		if first {
			// The probe packet is protected so the receiver always
			// learns the flow exists; the rest may be shed.
			pkt.Prio = 1
			first = false
		} else {
			pkt.Droppable = true
		}
		s.f.Src.Send(pkt)
		s.sentNext = end
	}
	s.armKeepalive()
}

func (s *sender) armKeepalive() {
	s.keep = s.env.Sched().After(s.env.RTO(), func() {
		if s.f.Done() || s.gotRx {
			return
		}
		pkt := s.f.Src.Data(s.f.ID, s.f.Dst.ID(), 0, int32(min64(netsim.MSS, s.f.Size)), 1)
		pkt.Meta = &dataInfo{Size: s.f.Size}
		pkt.Retrans = true
		atomic.AddInt64(&Debug.Keepalives, 1)
		s.f.Src.Send(pkt)
		s.armKeepalive()
	})
}

// Handle implements netsim.Endpoint (grants).
func (s *sender) Handle(pkt *netsim.Packet) {
	if s.f.Done() || pkt.Kind != netsim.Grant {
		return
	}
	s.gotRx = true
	gi := pkt.Meta.(*grantInfo)
	// Selective retransmission of shed unscheduled bytes rides first,
	// at the scheduled priority.
	if gi.ResendLen > 0 {
		end := min64(gi.ResendSeq+gi.ResendLen, s.f.Size)
		atomic.AddInt64(&Debug.ResendBytes, end-gi.ResendSeq)
		for seq := gi.ResendSeq; seq < end; seq += netsim.MSS {
			n := int32(min64(seq+netsim.MSS, end) - seq)
			rp := s.f.Src.Data(s.f.ID, s.f.Dst.ID(), seq, n, gi.Prio)
			rp.Retrans = true
			rp.Meta = &dataInfo{Size: s.f.Size}
			s.f.Src.Send(rp)
		}
	}
	limit := min64(gi.UpTo, s.f.Size)
	if limit > s.sentNext {
		atomic.AddInt64(&Debug.GrantBytes, limit-s.sentNext)
	}
	for s.sentNext < limit {
		end := min64(s.sentNext+netsim.MSS, limit)
		pkt := s.f.Src.Data(s.f.ID, s.f.Dst.ID(), s.sentNext, int32(end-s.sentNext), gi.Prio)
		pkt.Meta = &dataInfo{Size: s.f.Size}
		s.f.Src.Send(pkt)
		s.sentNext = end
	}
}

type rxManager struct {
	env   *transport.Env
	cfg   Config
	flows map[uint32]*rxFlow
}

func (m *rxManager) pump() {
	active := make([]*rxFlow, 0, len(m.flows))
	for _, rx := range m.flows {
		if rx.granted < rx.f.Size || !rx.r.Complete() {
			active = append(active, rx)
		}
	}
	if len(active) == 0 {
		return
	}
	sort.Slice(active, func(i, j int) bool {
		ri := active[i].f.Size - active[i].r.Received()
		rj := active[j].f.Size - active[j].r.Received()
		if ri != rj {
			return ri < rj
		}
		return active[i].f.ID < active[j].f.ID
	})
	k := m.cfg.Overcommit
	if k > len(active) {
		k = len(active)
	}
	for rank := 0; rank < k; rank++ {
		rx := active[rank]
		prio := int8(2 + rank)
		if prio > 5 {
			prio = 5
		}
		rx.grantSome(prio)
	}
}

type rxFlow struct {
	mgr     *rxManager
	f       *transport.Flow
	r       *transport.Reassembly
	granted int64
	// reqd tracks hole bytes whose retransmission was already requested;
	// the retry timer clears it so persistent losses are re-requested on
	// an RTO cadence rather than per arrival (which would turn one shed
	// burst into a retransmission storm).
	reqd  transport.IntervalSet
	retry sim.Timer
}

// grantSome issues credits while this flow's outstanding window allows.
// Retransmissions of shed bytes are grant-clocked: at most one hole
// packet is requested per pump, so recovery proceeds at roughly the
// arrival rate instead of blasting line-rate resend bursts.
func (rx *rxFlow) grantSome(prio int8) {
	if seq, n := rx.nextHolePacket(); n > 0 {
		atomic.AddInt64(&Debug.HoleReqs, 1)
		rx.reqd.Add(seq, seq+n)
		g := rx.f.Dst.Ctrl(netsim.Grant, rx.f.ID, rx.f.Src.ID(), 0)
		g.Meta = &grantInfo{UpTo: rx.granted, Prio: prio, ResendSeq: seq, ResendLen: n}
		rx.f.Dst.Send(g)
	}
	for rx.granted-rx.r.Received() < rx.mgr.cfg.RTTBytes && rx.granted < rx.f.Size {
		upTo := min64(rx.granted+netsim.MSS, rx.f.Size)
		g := rx.f.Dst.Ctrl(netsim.Grant, rx.f.ID, rx.f.Src.ID(), 0)
		g.Meta = &grantInfo{UpTo: upTo, Prio: prio}
		rx.f.Dst.Send(g)
		rx.granted = upTo
	}
}

// nextHolePacket returns one MSS-bounded missing range below the
// received frontier that has not been requested yet, or n == 0. On this
// in-order fabric, a byte below the frontier that neither arrived nor
// was requested is a definite loss.
func (rx *rxFlow) nextHolePacket() (int64, int64) {
	frontier := rx.r.MaxCovered()
	pos := int64(0)
	for pos < frontier {
		if next := rx.r.ContiguousFrom(pos); next > pos {
			pos = next // received: skip
			continue
		}
		if next := rx.reqd.ContiguousFrom(pos); next > pos {
			pos = next // already requested: skip
			continue
		}
		end := pos + netsim.MSS
		if c := rx.r.NextCovered(pos, end); c < end {
			end = c
		}
		if c := rx.reqd.FirstCoveredIn(pos, end); c < end {
			end = c
		}
		if end > frontier {
			end = frontier
		}
		return pos, end - pos
	}
	return 0, 0
}

// Handle implements netsim.Endpoint.
func (rx *rxFlow) Handle(pkt *netsim.Packet) {
	if pkt.Kind != netsim.Data {
		return
	}
	rx.r.Add(pkt.Seq, pkt.PayloadLen)
	if rx.r.Complete() {
		rx.retry.Stop()
		delete(rx.mgr.flows, rx.f.ID)
		rx.mgr.env.Complete(rx.f)
		rx.mgr.pump()
		return
	}
	rx.armRetry()
	rx.mgr.pump()
}

// armRetry is the last-resort timeout (e.g. the tail packet of a fully
// granted flow was lost).
func (rx *rxFlow) armRetry() {
	rx.retry.Stop()
	rx.retry = rx.mgr.env.Sched().After(rx.mgr.env.RTO(), func() {
		if rx.f.Done() || rx.r.Complete() {
			return
		}
		// Forget past requests — whatever is still missing after an RTO
		// was lost again — and kick recovery with one packet.
		rx.reqd = transport.IntervalSet{}
		atomic.AddInt64(&Debug.RetryReqs, 1)
		miss := rx.r.FirstMissing()
		end := min64(miss+netsim.MSS, rx.f.Size)
		rx.reqd.Add(miss, end)
		g := rx.f.Dst.Ctrl(netsim.Grant, rx.f.ID, rx.f.Src.ID(), 0)
		g.Meta = &grantInfo{UpTo: rx.granted, Prio: 2, ResendSeq: miss, ResendLen: end - miss}
		rx.f.Dst.Send(g)
		rx.armRetry()
	})
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
