// Package aeolus implements Aeolus [17], the paper's "building block for
// proactive transports", integrated with Homa as in the paper's
// evaluation. Like Homa, receivers drive scheduled transmission with
// grants; unlike Homa, the first-RTT unscheduled packets are sent at
// line rate in a *droppable* low-priority class that switches discard
// early under buildup (selective dropping), and dropped unscheduled
// bytes are recovered by scheduled grants carrying selective
// retransmission requests instead of timeouts.
package aeolus

import (
	"sort"
	"sync/atomic"

	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/transport"
)

// Config tunes Aeolus.
type Config struct {
	// RTTBytes is the unscheduled allowance / grant window.
	RTTBytes int64
	// Overcommit matches Homa's setting (2 in the paper).
	Overcommit int
	// UnschedPrio is the droppable class for pre-credit packets
	// (default P6: below every scheduled priority).
	UnschedPrio int8
}

func (c Config) withDefaults(env *transport.Env) Config {
	if c.RTTBytes == 0 {
		c.RTTBytes = int64(env.BDP())
	}
	if c.Overcommit == 0 {
		c.Overcommit = 2
	}
	if c.UnschedPrio == 0 {
		c.UnschedPrio = 6
	}
	return c
}

type dataInfo struct {
	Size int64
}

// grantInfo is a scheduled credit; Resend, when non-zero-length, asks
// the sender to also retransmit that missing range (selective
// retransmission of lost unscheduled bytes). Instances cycle through an
// Env pool — reuse is dirty, so every producer sets all four fields.
type grantInfo struct {
	transport.PoolNode
	UpTo      int64
	Prio      int8
	ResendSeq int64
	ResendLen int64
}

// Debug counters for diagnostic harnesses. Updated atomically so
// concurrent runs (the parallel experiment pool) stay race-free; the
// values then aggregate across whatever runs share the process.
var Debug struct {
	HoleReqs, RetryReqs, Keepalives int64
	ResendBytes, GrantBytes         int64
}

// Proto is the Aeolus protocol factory; one instance per run.
type Proto struct {
	Cfg      Config
	managers map[int32]*rxManager
}

// New builds an Aeolus protocol instance.
func New(cfg Config) *Proto {
	return &Proto{Cfg: cfg, managers: make(map[int32]*rxManager)}
}

// Name implements transport.Protocol.
func (*Proto) Name() string { return "aeolus" }

// RecyclesFlows implements transport.FlowRecycler: Recycle stops the
// keepalive and retry timers — the only callbacks that could reach a
// recycled Flow.
func (*Proto) RecyclesFlows() {}

// Pool keys for the per-flow objects Start draws from the Env.
var (
	senderPool    = transport.NewPoolKey("aeolus.sender")
	rxFlowPool    = transport.NewPoolKey("aeolus.rxflow")
	grantInfoPool = transport.NewPoolKey("aeolus.grantinfo")
)

func newGrantInfo() *grantInfo { return &grantInfo{} }

// Start implements transport.Protocol.
func (p *Proto) Start(env *transport.Env, f *transport.Flow) {
	cfg := p.Cfg.withDefaults(env)
	mgr := p.managers[f.Dst.ID()]
	if mgr == nil {
		mgr = &rxManager{env: env, cfg: cfg,
			grants: transport.PoolFor(env, grantInfoPool, newGrantInfo)}
		p.managers[f.Dst.ID()] = mgr
	}
	rx := transport.PoolFor(env, rxFlowPool, newIdleRxFlow).Get()
	rx.init(mgr, f)
	rx.pooled = true
	mgr.insert(rx)
	f.Dst.Bind(f.ID, true, rx)

	s := transport.PoolFor(env, senderPool, newIdleSender).Get()
	s.init(env, f, cfg)
	s.pooled = true
	f.Src.Bind(f.ID, false, s)
	s.launch()
}

type sender struct {
	transport.PoolNode
	env *transport.Env
	f   *transport.Flow
	cfg Config

	sentNext int64
	keep     sim.Timer
	gotRx    bool
	pooled   bool

	// grants is the Env grant-meta pool, cached off the registry.
	grants *transport.Pool[*grantInfo]

	// dinfo is the one dataInfo value every data packet points at (the
	// receiver never dereferences it here; delivery is a sink, so a
	// stable per-sender value replaces a per-packet allocation).
	dinfo dataInfo
	// keepFn is keepFired bound once; re-arming with an inline closure
	// would allocate per RTO.
	keepFn func()
}

// newIdleSender builds an unbound sender shell for the pool.
func newIdleSender() *sender {
	s := &sender{}
	s.keepFn = s.keepFired
	return s
}

// init (re)targets the sender at a flow.
func (s *sender) init(env *transport.Env, f *transport.Flow, cfg Config) {
	s.env, s.f, s.cfg = env, f, cfg
	s.sentNext = 0
	s.keep = sim.Timer{}
	s.gotRx = false
	s.grants = transport.PoolFor(env, grantInfoPool, newGrantInfo)
	s.dinfo = dataInfo{Size: f.Size}
}

// Recycle implements transport.EndpointRecycler.
func (s *sender) Recycle(env *transport.Env) {
	s.keep.Stop()
	if !s.pooled {
		return
	}
	s.pooled = false
	s.f = nil
	transport.PoolFor(env, senderPool, newIdleSender).Put(s)
}

func (s *sender) launch() {
	unsched := min64(s.cfg.RTTBytes, s.f.Size)
	first := true
	for s.sentNext < unsched {
		end := min64(s.sentNext+netsim.MSS, unsched)
		pkt := s.f.Src.Data(s.f.ID, s.f.Dst.ID(), s.sentNext, int32(end-s.sentNext), s.cfg.UnschedPrio)
		pkt.Meta = &s.dinfo
		if first {
			// The probe packet is protected so the receiver always
			// learns the flow exists; the rest may be shed.
			pkt.Prio = 1
			first = false
		} else {
			pkt.Droppable = true
		}
		s.f.Src.Send(pkt)
		s.sentNext = end
	}
	s.armKeepalive()
}

func (s *sender) armKeepalive() {
	s.keep = s.env.Sched().After(s.env.RTO(), s.keepFn)
}

func (s *sender) keepFired() {
	if s.f.Done() || s.gotRx {
		return
	}
	pkt := s.f.Src.Data(s.f.ID, s.f.Dst.ID(), 0, int32(min64(netsim.MSS, s.f.Size)), 1)
	pkt.Meta = &s.dinfo
	pkt.Retrans = true
	atomic.AddInt64(&Debug.Keepalives, 1)
	s.f.Src.Send(pkt)
	s.armKeepalive()
}

// Handle implements netsim.Endpoint (grants).
func (s *sender) Handle(pkt *netsim.Packet) {
	if s.f.Done() || pkt.Kind != netsim.Grant {
		return
	}
	s.gotRx = true
	gi := pkt.Meta.(*grantInfo)
	upTo, prio := gi.UpTo, gi.Prio
	resendSeq, resendLen := gi.ResendSeq, gi.ResendLen
	pkt.Meta = nil
	s.grants.Put(gi)
	// Selective retransmission of shed unscheduled bytes rides first,
	// at the scheduled priority.
	if resendLen > 0 {
		end := min64(resendSeq+resendLen, s.f.Size)
		atomic.AddInt64(&Debug.ResendBytes, end-resendSeq)
		for seq := resendSeq; seq < end; seq += netsim.MSS {
			n := int32(min64(seq+netsim.MSS, end) - seq)
			rp := s.f.Src.Data(s.f.ID, s.f.Dst.ID(), seq, n, prio)
			rp.Retrans = true
			rp.Meta = &s.dinfo
			s.f.Src.Send(rp)
		}
	}
	limit := min64(upTo, s.f.Size)
	if limit > s.sentNext {
		atomic.AddInt64(&Debug.GrantBytes, limit-s.sentNext)
	}
	for s.sentNext < limit {
		end := min64(s.sentNext+netsim.MSS, limit)
		pkt := s.f.Src.Data(s.f.ID, s.f.Dst.ID(), s.sentNext, int32(end-s.sentNext), prio)
		pkt.Meta = &s.dinfo
		s.f.Src.Send(pkt)
		s.sentNext = end
	}
}

type rxManager struct {
	env *transport.Env
	cfg Config

	// order holds the inbound flows sorted by (remaining bytes, flow ID);
	// see the identical structure in package homa. Arrivals only shrink a
	// flow's key, so reposition bubbles leftward.
	order []*rxFlow

	// grants is the Env grant-meta pool (senders return consumed metas).
	grants *transport.Pool[*grantInfo]
}

// rxLess orders a before b under SRPT with flow-ID tie-break.
func rxLess(a, b *rxFlow) bool {
	ra := a.f.Size - a.r.Received()
	rb := b.f.Size - b.r.Received()
	if ra != rb {
		return ra < rb
	}
	return a.f.ID < b.f.ID
}

// insert places rx at its sorted position.
func (m *rxManager) insert(rx *rxFlow) {
	i := sort.Search(len(m.order), func(i int) bool { return rxLess(rx, m.order[i]) })
	m.order = append(m.order, nil)
	copy(m.order[i+1:], m.order[i:])
	m.order[i] = rx
	for j := i; j < len(m.order); j++ {
		m.order[j].pos = j
	}
}

// remove splices rx out of the order.
func (m *rxManager) remove(rx *rxFlow) {
	i := rx.pos
	copy(m.order[i:], m.order[i+1:])
	m.order[len(m.order)-1] = nil
	m.order = m.order[:len(m.order)-1]
	for j := i; j < len(m.order); j++ {
		m.order[j].pos = j
	}
}

// reposition bubbles rx leftward after an arrival shrank its key.
func (m *rxManager) reposition(rx *rxFlow) {
	for rx.pos > 0 && rxLess(rx, m.order[rx.pos-1]) {
		prev := m.order[rx.pos-1]
		m.order[rx.pos-1], m.order[rx.pos] = rx, prev
		prev.pos = rx.pos
		rx.pos--
	}
}

func (m *rxManager) pump() {
	k := m.cfg.Overcommit
	rank := 0
	for _, rx := range m.order {
		if rank >= k {
			break
		}
		if rx.granted >= rx.f.Size && rx.r.Complete() {
			// Completed flows leave the order before pump runs; this
			// mirrors the filter of the sort-based pump it replaced.
			continue
		}
		prio := int8(2 + rank)
		if prio > 5 {
			prio = 5
		}
		rx.grantSome(prio)
		rank++
	}
}

type rxFlow struct {
	transport.PoolNode
	mgr     *rxManager
	f       *transport.Flow
	r       *transport.Reassembly
	granted int64
	pos     int // index in mgr.order
	pooled  bool
	// reqd tracks hole bytes whose retransmission was already requested;
	// the retry timer clears it so persistent losses are re-requested on
	// an RTO cadence rather than per arrival (which would turn one shed
	// burst into a retransmission storm).
	reqd  transport.IntervalSet
	retry sim.Timer
	// retryFn is retryFired bound once (see sender.keepFn).
	retryFn func()
}

// newIdleRxFlow builds an unbound receiver shell for the pool.
func newIdleRxFlow() *rxFlow {
	rx := &rxFlow{r: transport.NewReassembly(0)}
	rx.retryFn = rx.retryFired
	return rx
}

// init (re)targets the receiver at a flow.
func (rx *rxFlow) init(mgr *rxManager, f *transport.Flow) {
	rx.mgr, rx.f = mgr, f
	rx.r.Reset(f.Size)
	rx.granted = min64(mgr.cfg.RTTBytes, f.Size)
	rx.reqd.Reset()
	rx.retry = sim.Timer{}
}

// Recycle implements transport.EndpointRecycler.
func (rx *rxFlow) Recycle(env *transport.Env) {
	rx.retry.Stop()
	if !rx.pooled {
		return
	}
	rx.pooled = false
	rx.f = nil
	rx.mgr = nil
	transport.PoolFor(env, rxFlowPool, newIdleRxFlow).Put(rx)
}

// grantSome issues credits while this flow's outstanding window allows.
// Retransmissions of shed bytes are grant-clocked: at most one hole
// packet is requested per pump, so recovery proceeds at roughly the
// arrival rate instead of blasting line-rate resend bursts.
func (rx *rxFlow) grantSome(prio int8) {
	if seq, n := rx.nextHolePacket(); n > 0 {
		atomic.AddInt64(&Debug.HoleReqs, 1)
		rx.reqd.Add(seq, seq+n)
		g := rx.f.Dst.Ctrl(netsim.Grant, rx.f.ID, rx.f.Src.ID(), 0)
		gi := rx.mgr.grants.Get()
		gi.UpTo, gi.Prio = rx.granted, prio
		gi.ResendSeq, gi.ResendLen = seq, n
		g.Meta = gi
		rx.f.Dst.Send(g)
	}
	for rx.granted-rx.r.Received() < rx.mgr.cfg.RTTBytes && rx.granted < rx.f.Size {
		upTo := min64(rx.granted+netsim.MSS, rx.f.Size)
		g := rx.f.Dst.Ctrl(netsim.Grant, rx.f.ID, rx.f.Src.ID(), 0)
		gi := rx.mgr.grants.Get()
		gi.UpTo, gi.Prio = upTo, prio
		gi.ResendSeq, gi.ResendLen = 0, 0
		g.Meta = gi
		rx.f.Dst.Send(g)
		rx.granted = upTo
	}
}

// nextHolePacket returns one MSS-bounded missing range below the
// received frontier that has not been requested yet, or n == 0. On this
// in-order fabric, a byte below the frontier that neither arrived nor
// was requested is a definite loss.
func (rx *rxFlow) nextHolePacket() (int64, int64) {
	frontier := rx.r.MaxCovered()
	pos := int64(0)
	for pos < frontier {
		if next := rx.r.ContiguousFrom(pos); next > pos {
			pos = next // received: skip
			continue
		}
		if next := rx.reqd.ContiguousFrom(pos); next > pos {
			pos = next // already requested: skip
			continue
		}
		end := pos + netsim.MSS
		if c := rx.r.NextCovered(pos, end); c < end {
			end = c
		}
		if c := rx.reqd.FirstCoveredIn(pos, end); c < end {
			end = c
		}
		if end > frontier {
			end = frontier
		}
		return pos, end - pos
	}
	return 0, 0
}

// Handle implements netsim.Endpoint.
func (rx *rxFlow) Handle(pkt *netsim.Packet) {
	if pkt.Kind != netsim.Data {
		return
	}
	rx.r.Add(pkt.Seq, pkt.PayloadLen)
	mgr := rx.mgr // survives the Recycle inside Complete
	if rx.r.Complete() {
		rx.retry.Stop()
		mgr.remove(rx)
		mgr.env.Complete(rx.f)
		mgr.pump()
		return
	}
	mgr.reposition(rx)
	rx.armRetry()
	mgr.pump()
}

// armRetry is the last-resort timeout (e.g. the tail packet of a fully
// granted flow was lost).
func (rx *rxFlow) armRetry() {
	rx.retry.Stop()
	if rx.retryFn == nil {
		rx.retryFn = rx.retryFired
	}
	rx.retry = rx.mgr.env.Sched().After(rx.mgr.env.RTO(), rx.retryFn)
}

func (rx *rxFlow) retryFired() {
	if rx.f.Done() || rx.r.Complete() {
		return
	}
	// Forget past requests — whatever is still missing after an RTO
	// was lost again — and kick recovery with one packet.
	rx.reqd.Reset()
	atomic.AddInt64(&Debug.RetryReqs, 1)
	miss := rx.r.FirstMissing()
	end := min64(miss+netsim.MSS, rx.f.Size)
	rx.reqd.Add(miss, end)
	g := rx.f.Dst.Ctrl(netsim.Grant, rx.f.ID, rx.f.Src.ID(), 0)
	gi := rx.mgr.grants.Get()
	gi.UpTo, gi.Prio = rx.granted, 2
	gi.ResendSeq, gi.ResendLen = miss, end-miss
	g.Meta = gi
	rx.f.Dst.Send(g)
	rx.armRetry()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
