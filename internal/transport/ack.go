package transport

// AckMeta is the acknowledgment payload shared by the DCTCP-family
// transports (DCTCP, PPT, RC3, PIAS, Swift). It rides in Packet.Meta on
// Ack packets; the cumulative acknowledgment itself rides in Packet.Seq.
//
// The embedded PoolNode lets producers draw AckMetas from an Env pool
// (see PoolFor); a consumer that reads the fields and returns the meta
// closes the loop, while consumers that never Put simply leave the meta
// to the garbage collector — dirty reuse means a pooled producer must
// set every field on each Get.
type AckMeta struct {
	PoolNode

	// LowSeqs are the byte offsets of the opportunistic (low-loop) data
	// packets this low-priority ACK covers; LowN of them are valid.
	// A PPT receiver coalesces two opportunistic arrivals per ACK.
	LowSeqs [2]int64
	LowLens [2]int32
	LowN    int

	// TailFrontier is the receiver's contiguous-suffix start, letting
	// the sender cap its high-loop transmissions.
	TailFrontier int64
}
