// Package rc3 implements Recursively Cautious Congestion Control [30] as
// the paper characterizes it: the primary loop is unchanged (DCTCP here,
// as in the paper's evaluation), and a second low-priority loop starts
// transmitting the flow from its tail immediately at flow start, keeping
// a full BDP in flight every RTT across exponentially sized priority
// levels, with no ECN reaction and no attempt to protect the primary
// loop. The loop runs until it crosses the primary loop's frontier.
//
// This aggressive behaviour — contrasted with PPT's intermittent,
// exponentially decreasing, ECN-guarded loop — is what Figures 8–13 and
// 24 measure.
package rc3

import (
	"ppt/internal/netsim"
	"ppt/internal/transport"
	"ppt/internal/transport/dctcp"
)

// Config tunes RC3.
type Config struct {
	// DCTCP configures the primary loop.
	DCTCP dctcp.Config
	// LevelBase is the packet count of the first low-priority level
	// (default 40; each subsequent level is 10× larger, per RC3).
	LevelBase int64
}

// Proto is the RC3 protocol factory.
type Proto struct {
	Cfg Config
}

// Name implements transport.Protocol.
func (Proto) Name() string { return "rc3" }

// Start implements transport.Protocol.
func (p Proto) Start(env *transport.Env, f *transport.Flow) {
	cfg := p.Cfg
	if cfg.LevelBase == 0 {
		cfg.LevelBase = 40
	}
	r := &receiver{env: env, f: f, r: transport.NewReassembly(f.Size)}
	f.Dst.Bind(f.ID, true, r)
	s := &sender{env: env, f: f, cfg: cfg, tailNext: f.Size}
	s.hcp = dctcp.NewSender(env, f, cfg.DCTCP)
	f.Src.Bind(f.ID, false, s)
	s.hcp.Launch()
	s.launchLCP()
}

type sender struct {
	env *transport.Env
	f   *transport.Flow
	cfg Config
	hcp *dctcp.Sender

	tailNext int64 // next tail byte frontier (descending)
	oppSent  int64 // payload bytes sent by the low loop
	inflight int64 // low-loop bytes in flight
}

// launchLCP blasts the first BDP of tail bytes at line rate; afterwards
// the loop is ACK-clocked at one-for-one, holding ~BDP in flight per RTT
// ("fills up the entire BDP for every RTT").
func (s *sender) launchLCP() {
	bdp := int64(s.env.BDP())
	for s.inflight < bdp {
		if !s.sendOpportunistic() {
			return
		}
	}
}

// lowPrio maps cumulative low-loop packets sent to the RC3 exponential
// priority levels: first LevelBase packets at P4, 10× that at P5, 10×
// again at P6, remainder at P7.
func (s *sender) lowPrio() int8 {
	pktsSent := s.oppSent / netsim.MSS
	level := s.cfg.LevelBase
	for p := int8(4); p < 7; p++ {
		if pktsSent < level {
			return p
		}
		level *= 10
	}
	return 7
}

func (s *sender) sendOpportunistic() bool {
	seq := s.tailNext - netsim.MSS
	if seq < s.hcp.SndNxt {
		seq = s.hcp.SndNxt
	}
	if seq >= s.tailNext {
		return false // crossed with the primary loop: RC3 stops here
	}
	n := int32(s.tailNext - seq)
	pkt := s.f.Src.Data(s.f.ID, s.f.Dst.ID(), seq, n, s.lowPrio())
	pkt.ECT = true // marked, but RC3 ignores the echo
	pkt.LowLoop = true
	s.f.Src.Send(pkt)
	s.env.Eff.SentLowPayload += int64(n)
	s.oppSent += int64(n)
	s.inflight += int64(n)
	s.tailNext = seq
	return true
}

// Handle implements netsim.Endpoint.
func (s *sender) Handle(pkt *netsim.Packet) {
	if s.f.Done() || pkt.Kind != netsim.Ack {
		return
	}
	if pkt.LowLoop {
		if meta, ok := pkt.Meta.(*transport.AckMeta); ok {
			for i := 0; i < meta.LowN; i++ {
				s.hcp.Skip.Add(meta.LowSeqs[i], meta.LowSeqs[i]+int64(meta.LowLens[i]))
				s.inflight -= int64(meta.LowLens[i])
			}
			s.hcp.TrySend()
		}
		if s.inflight < 0 {
			s.inflight = 0
		}
		// One-for-one clocking, no ECE suppression: RC3 keeps the pipe
		// full regardless of congestion.
		s.sendOpportunistic()
		return
	}
	s.hcp.ProcessAck(pkt)
}

type receiver struct {
	env *transport.Env
	f   *transport.Flow
	r   *transport.Reassembly
}

// Handle implements netsim.Endpoint.
func (rc *receiver) Handle(pkt *netsim.Packet) {
	if pkt.Kind != netsim.Data {
		return
	}
	added := rc.r.Add(pkt.Seq, pkt.PayloadLen)
	ack := rc.f.Dst.Ctrl(netsim.Ack, rc.f.ID, rc.f.Src.ID(), 0)
	ack.Seq = rc.r.CumAck()
	ack.ECE = pkt.CE
	ack.EchoTS = pkt.SentAt
	if pkt.LowLoop {
		rc.env.Eff.UsefulLow += added
		ack.LowLoop = true
		ack.Prio = pkt.Prio
		ack.Meta = &transport.AckMeta{
			LowSeqs: [2]int64{pkt.Seq},
			LowLens: [2]int32{pkt.PayloadLen},
			LowN:    1,
		}
	}
	rc.f.Dst.Send(ack)
	if rc.r.Complete() {
		rc.env.Complete(rc.f)
	}
}
