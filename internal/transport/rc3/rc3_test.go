package rc3

import (
	"testing"

	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/topo"
	"ppt/internal/transport"
	"ppt/internal/transport/dctcp"
	"ppt/internal/transport/transporttest"
)

func TestSingleFlowCompletes(t *testing.T) {
	env := transporttest.NewStarEnv(4)
	sum := transporttest.MustComplete(t, env, Proto{}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 2_000_000},
	})
	if sum.OverallAvg < 1600*sim.Microsecond {
		t.Fatalf("impossibly fast: %v", sum.OverallAvg)
	}
	if env.Eff.SentLowPayload == 0 {
		t.Fatal("RC3 low loop never sent")
	}
}

func TestLowLoopStartsImmediately(t *testing.T) {
	env := transporttest.NewStarEnv(4)
	f := &transport.Flow{ID: 5, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1],
		Size: 10_000_000, FirstCall: 10_000_000}
	Proto{}.Start(env, f)
	// Immediately after start, a full BDP of low-priority bytes must be
	// in flight (no waiting for spare-bandwidth signals).
	if env.Eff.SentLowPayload < int64(env.BDP())-netsim.MSS {
		t.Fatalf("low loop sent %d, want ~BDP %d at flow start",
			env.Eff.SentLowPayload, env.BDP())
	}
}

func TestExponentialPriorityLevels(t *testing.T) {
	env := transporttest.NewStarEnv(4)
	f := &transport.Flow{ID: 5, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1], Size: 1 << 30}
	s := &sender{env: env, f: f, cfg: Config{LevelBase: 40}, tailNext: f.Size}
	s.hcp = dctcp.NewSender(env, f, dctcp.Config{})
	cases := []struct {
		pktsSent int64
		want     int8
	}{
		{0, 4}, {39, 4}, {40, 5}, {399, 5}, {400, 6}, {3999, 6}, {4000, 7}, {1 << 20, 7},
	}
	for _, c := range cases {
		s.oppSent = c.pktsSent * netsim.MSS
		if got := s.lowPrio(); got != c.want {
			t.Errorf("lowPrio after %d pkts = %d, want %d", c.pktsSent, got, c.want)
		}
	}
}

func TestNoECESuppression(t *testing.T) {
	// RC3's defining flaw per the paper: it keeps clocking opportunistic
	// packets even when ACKs carry ECE.
	env := transporttest.NewStarEnv(4)
	f := &transport.Flow{ID: 5, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1],
		Size: 100_000_000, FirstCall: 100}
	s := &sender{env: env, f: f, cfg: Config{LevelBase: 40}, tailNext: f.Size}
	s.hcp = dctcp.NewSender(env, f, dctcp.Config{})
	f.Src.Bind(f.ID, false, s)
	s.launchLCP()
	before := s.oppSent
	ack := netsim.CtrlPacket(netsim.Ack, f.ID, f.Dst.ID(), f.Src.ID(), 4)
	ack.LowLoop = true
	ack.ECE = true
	ack.Meta = &transport.AckMeta{LowSeqs: [2]int64{f.Size - netsim.MSS}, LowLens: [2]int32{netsim.MSS}, LowN: 1}
	s.Handle(ack)
	if s.oppSent <= before {
		t.Fatal("RC3 suppressed on ECE; it must not")
	}
}

func TestIncastCompletes(t *testing.T) {
	env := transporttest.NewStarEnv(9)
	transporttest.MustComplete(t, env, Proto{}, transporttest.IncastFlows(8, 300_000))
}

func TestRC3HurtsVictimMoreThanDCTCP(t *testing.T) {
	// The victim study behind Fig 15/24: a small DCTCP-like flow
	// sharing the bottleneck with an RC3 elephant sees more queueing
	// than with a plain DCTCP elephant, because RC3's low loop occupies
	// the buffer. We assert the victim is at least not *helped*.
	victimFCT := func(bg transport.Protocol) sim.Time {
		env := transporttest.NewStarEnv(4, transporttest.WithBuffer(200_000))
		flows := []transport.SimpleFlow{
			{ID: 1, Src: 0, Dst: 2, Size: 20_000_000},
			{ID: 2, Src: 1, Dst: 2, Size: 100_000, Arrive: 500 * sim.Microsecond},
		}
		transporttest.MustComplete(t, env, muxProto{bg: bg}, flows)
		for _, r := range env.Collector.Records() {
			if r.FlowID == 2 {
				return r.FCT()
			}
		}
		t.Fatal("victim missing")
		return 0
	}
	withRC3 := victimFCT(Proto{})
	withDCTCP := victimFCT(dctcp.Proto{})
	if float64(withRC3) < 0.9*float64(withDCTCP) {
		t.Fatalf("victim faster under RC3 (%v) than DCTCP (%v)?", withRC3, withDCTCP)
	}
}

type muxProto struct{ bg transport.Protocol }

func (m muxProto) Name() string { return "mux" }
func (m muxProto) Start(env *transport.Env, f *transport.Flow) {
	if f.ID == 2 {
		dctcp.Proto{}.Start(env, f)
		return
	}
	m.bg.Start(env, f)
}

func TestLowClassCapLimitsRC3(t *testing.T) {
	// Fig 24 mechanism: capping the low-priority class sheds RC3's
	// opportunistic packets at the switch.
	net := topo.Star(4, topo.Config{
		HostRate:     10 * netsim.Gbps,
		LinkDelay:    5 * sim.Microsecond,
		ECNHighK:     30_000,
		SharedBuffer: 1 << 20,
		LowClassCap:  5_000, // fits ~3 low-priority packets
	})
	env := transport.NewEnv(net)
	env.RTOMin = 500 * sim.Microsecond
	// Two senders into one downlink: the low loops alone offer 2×BDP at
	// once, far beyond the 5KB low-class allowance.
	transporttest.MustComplete(t, env, Proto{}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 5_000_000},
		{ID: 2, Src: 2, Dst: 1, Size: 5_000_000},
	})
	var dropsLow int64
	for _, p := range net.SwitchPorts() {
		dropsLow += p.Stats.DropsLow
	}
	if dropsLow == 0 {
		t.Fatal("no low-class drops despite tight low-class cap")
	}
}
