package ppt

import (
	"testing"

	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/topo"
	"ppt/internal/transport"
)

func oracleEnv() *transport.Env {
	return transport.NewEnv(topo.Star(4, topo.Config{
		HostRate:     10 * netsim.Gbps,
		LinkDelay:    20 * sim.Microsecond,
		ECNHighK:     100_000,
		ECNLowK:      80_000,
		SharedBuffer: 4 << 20,
	}))
}

func oracleFlows() []transport.SimpleFlow {
	return []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 400_000},
		{ID: 2, Src: 2, Dst: 1, Size: 400_000, Arrive: 50 * sim.Microsecond},
		{ID: 3, Src: 3, Dst: 1, Size: 80_000, Arrive: 300 * sim.Microsecond},
	}
}

func TestMWRecorderCapturesWindows(t *testing.T) {
	env := oracleEnv()
	rec := NewMWRecorder()
	sum := transport.Run(env, rec, oracleFlows(), transport.RunConfig{})
	if sum.Flows != 3 {
		t.Fatalf("completed %d", sum.Flows)
	}
	mws := rec.MW()
	if len(mws) != 3 {
		t.Fatalf("recorded %d windows", len(mws))
	}
	for id, mw := range mws {
		if mw < netsim.MSS {
			t.Fatalf("flow %d MW = %v", id, mw)
		}
	}
}

func TestOracleBeatsDCTCP(t *testing.T) {
	flows := oracleFlows()
	// Pass 1: record MW.
	rec := NewMWRecorder()
	base := transport.Run(oracleEnv(), rec, flows, transport.RunConfig{})
	// Pass 2: fill to MW.
	sum := transport.Run(oracleEnv(), Oracle{MW: rec.MW()}, flows, transport.RunConfig{})
	if sum.Flows != 3 {
		t.Fatalf("completed %d", sum.Flows)
	}
	if sum.OverallAvg >= base.OverallAvg {
		t.Fatalf("oracle %v not faster than DCTCP %v", sum.OverallAvg, base.OverallAvg)
	}
}

func TestOracleOverfillHurts(t *testing.T) {
	// §2.3 Fig 3: filling beyond MW bursts and loses packets. With a
	// tight buffer, 1.5×MW must not beat 1.0×MW.
	tight := func() *transport.Env {
		return transport.NewEnv(topo.Star(4, topo.Config{
			HostRate:     10 * netsim.Gbps,
			LinkDelay:    20 * sim.Microsecond,
			ECNHighK:     60_000,
			ECNLowK:      48_000,
			SharedBuffer: 150_000,
		}))
	}
	flows := []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 600_000},
		{ID: 2, Src: 2, Dst: 1, Size: 600_000, Arrive: 20 * sim.Microsecond},
		{ID: 3, Src: 3, Dst: 1, Size: 600_000, Arrive: 40 * sim.Microsecond},
	}
	rec := NewMWRecorder()
	transport.Run(tight(), rec, flows, transport.RunConfig{})
	exact := transport.Run(tight(), Oracle{MW: rec.MW(), FillFraction: 1.0}, flows, transport.RunConfig{})
	over := transport.Run(tight(), Oracle{MW: rec.MW(), FillFraction: 1.5}, flows, transport.RunConfig{})
	if exact.Flows != 3 || over.Flows != 3 {
		t.Fatalf("incomplete: %d/%d", exact.Flows, over.Flows)
	}
	if float64(over.OverallAvg) < 0.95*float64(exact.OverallAvg) {
		t.Fatalf("1.5xMW (%v) should not beat 1.0xMW (%v)", over.OverallAvg, exact.OverallAvg)
	}
}

func TestOracleDefaultFillFraction(t *testing.T) {
	// Zero FillFraction behaves as 1.0.
	rec := NewMWRecorder()
	flows := oracleFlows()
	transport.Run(oracleEnv(), rec, flows, transport.RunConfig{})
	a := transport.Run(oracleEnv(), Oracle{MW: rec.MW()}, flows, transport.RunConfig{})
	b := transport.Run(oracleEnv(), Oracle{MW: rec.MW(), FillFraction: 1.0}, flows, transport.RunConfig{})
	if a.OverallAvg != b.OverallAvg {
		t.Fatalf("default fraction differs: %v vs %v", a.OverallAvg, b.OverallAvg)
	}
}
