// Package ppt implements the paper's contribution: a pragmatic transport
// that runs DCTCP unchanged as a high-priority control loop (HCP) and
// adds a low-priority control loop (LCP) sending opportunistic packets
// from the tail of the same flow to fill the spare bandwidth.
//
// The three mechanisms of §3 and §4 appear here directly:
//
//   - Intermittent loop initialization (§3.1): an LCP loop opens at flow
//     start with I = BDP − IW (delayed one RTT for identified-large
//     flows) and, after slow start, whenever the flow's DCTCP α reaches
//     its minimum over recent RTTs, with I = (½ − α_min)·W_max.
//   - Exponential window decreasing (§3.2): the initial window is paced
//     over one RTT; afterwards the receiver returns one low-priority ACK
//     per two opportunistic arrivals and the sender sends one packet per
//     non-ECE low-priority ACK, halving the LCP rate every RTT. A loop
//     terminates after two RTTs without low-priority ACKs.
//   - Buffer-aware flow scheduling (§4): flows whose first syscall
//     exceeds the identification threshold are tagged large; packets are
//     tagged with mirror-symmetric priorities (HCP P0–P3, LCP P4–P7)
//     demoted as bytes are sent.
//
// Ablation switches reproduce the deep-dive variants of §6.3: DisableECN
// (Fig 15), DisableEWD (Fig 16), DisableScheduling (Fig 17),
// DisableIdentification (Fig 18).
package ppt

import (
	"sync/atomic"

	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/transport"
	"ppt/internal/transport/dctcp"
)

// Config tunes PPT.
type Config struct {
	// DCTCP configures the embedded HCP loop.
	DCTCP dctcp.Config

	// IdentifyThreshold is the buffer-aware classifier's first-syscall
	// byte threshold (default 100KB, Table 3).
	IdentifyThreshold int64

	// DemoteThresholds are the bytes-sent boundaries at which an
	// unidentified flow moves from P0→P1→P2→P3 (mirror P4→…→P7).
	DemoteThresholds [3]int64

	// AlphaHistory is how many recent per-RTT α observations the
	// case-2 trigger scans for the minimum (default 16).
	AlphaHistory int

	// SendBuf models the kernel TCP send buffer (§4.1, Fig 27): the
	// LCP can only transmit bytes already copied into the buffer, i.e.
	// within SendBuf of the cumulative ACK. Zero means effectively
	// unbounded (the paper's 2GB setting).
	SendBuf int64

	// Ablations (all false in real PPT).
	DisableECN            bool // LCP ignores ECE (Fig 15)
	DisableEWD            bool // LCP sends at line rate, no 2:1 clock (Fig 16)
	DisableScheduling     bool // no per-flow priorities: HCP=P0, LCP=P4 (Fig 17)
	DisableIdentification bool // treat every flow as unidentified (Fig 18)
	DisableLCP            bool // degenerate to plain DCTCP with tagging

	// NoDelayLCPForLarge disables §3.1's one-RTT delay of the case-1
	// loop for identified-large flows (ablation studies only).
	NoDelayLCPForLarge bool

	// Debug, when set, receives this run's dual-loop diagnostic
	// counters instead of the package-level Debug variable. Experiments
	// that run many simulations concurrently must supply per-run
	// counters (or tolerate the shared global aggregating across runs).
	Debug *DebugCounters

	// OnFlowState, when set, is invoked on every per-window α update
	// with a snapshot of the dual-loop state — the instrumentation
	// behind the Fig 5-style dynamics traces.
	OnFlowState func(flowID uint32, now sim.Time, st FlowState)
}

// FlowState is one dual-loop snapshot (see Config.OnFlowState).
type FlowState struct {
	Cwnd      float64 // HCP congestion window (bytes)
	Alpha     float64 // DCTCP α estimate
	Wmax      float64 // max window since slow-start exit
	LCPActive bool    // low loop currently open
	OppSent   int64   // cumulative opportunistic payload bytes
	SndUna    int64   // HCP cumulative-ACK frontier
	TailNext  int64   // LCP tail frontier
}

func (c Config) withDefaults() Config {
	if c.IdentifyThreshold == 0 {
		c.IdentifyThreshold = 100_000
	}
	if c.DemoteThresholds == [3]int64{} {
		c.DemoteThresholds = [3]int64{100_000, 1_000_000, 10_000_000}
	}
	if c.AlphaHistory == 0 {
		c.AlphaHistory = 16
	}
	return c
}

// DebugCounters aggregates the dual-loop diagnostics a run produces:
// how LCP packets were emitted (paced vs ACK-clocked), why loops opened
// (case 1 vs case 2), and the fresh/duplicate byte split per loop. All
// increments are atomic, so a single counter set may be shared by
// simulations running on different goroutines without tearing.
type DebugCounters struct {
	PacedPkts, ClockedPkts     int64
	Case1Opens, Case2Opens     int64
	DupLowBytes, NewLowBytes   int64
	DupHighBytes, NewHighBytes int64
}

func (d *DebugCounters) inc(f *int64)          { atomic.AddInt64(f, 1) }
func (d *DebugCounters) add(f *int64, n int64) { atomic.AddInt64(f, n) }

// Snapshot returns a consistent copy of the counters.
func (d *DebugCounters) Snapshot() DebugCounters {
	return DebugCounters{
		PacedPkts:    atomic.LoadInt64(&d.PacedPkts),
		ClockedPkts:  atomic.LoadInt64(&d.ClockedPkts),
		Case1Opens:   atomic.LoadInt64(&d.Case1Opens),
		Case2Opens:   atomic.LoadInt64(&d.Case2Opens),
		DupLowBytes:  atomic.LoadInt64(&d.DupLowBytes),
		NewLowBytes:  atomic.LoadInt64(&d.NewLowBytes),
		DupHighBytes: atomic.LoadInt64(&d.DupHighBytes),
		NewHighBytes: atomic.LoadInt64(&d.NewHighBytes),
	}
}

// Reset zeroes the counters.
func (d *DebugCounters) Reset() {
	atomic.StoreInt64(&d.PacedPkts, 0)
	atomic.StoreInt64(&d.ClockedPkts, 0)
	atomic.StoreInt64(&d.Case1Opens, 0)
	atomic.StoreInt64(&d.Case2Opens, 0)
	atomic.StoreInt64(&d.DupLowBytes, 0)
	atomic.StoreInt64(&d.NewLowBytes, 0)
	atomic.StoreInt64(&d.DupHighBytes, 0)
	atomic.StoreInt64(&d.NewHighBytes, 0)
}

// Debug is the process-wide compatibility view of the counters: runs
// that do not supply Config.Debug accumulate here (cmd/ppttrace and the
// diagnostic harnesses read it after a single serial run).
var Debug DebugCounters

// debugSink resolves where a run's counters go.
func (c Config) debugSink() *DebugCounters {
	if c.Debug != nil {
		return c.Debug
	}
	return &Debug
}

// Proto is the PPT protocol factory.
type Proto struct {
	Cfg Config
}

// Name implements transport.Protocol.
func (p Proto) Name() string {
	switch {
	case p.Cfg.DisableECN:
		return "ppt-noecn"
	case p.Cfg.DisableEWD:
		return "ppt-noewd"
	case p.Cfg.DisableScheduling:
		return "ppt-nosched"
	case p.Cfg.DisableIdentification:
		return "ppt-noident"
	default:
		return "ppt"
	}
}

// Start implements transport.Protocol.
func (p Proto) Start(env *transport.Env, f *transport.Flow) {
	p.StartReceiver(env, f)
	p.StartSender(env, f)
}

// StartReceiver implements transport.ShardableProtocol: build and bind
// the receiver endpoint only. It is pure setup — no clock reads, no
// scheduling, no sends — so the windowed driver may invoke it on the
// barrier thread in the destination host's shard.
func (p Proto) StartReceiver(env *transport.Env, f *transport.Flow) {
	cfg := p.Cfg.withDefaults()
	r := getReceiver(env, f, cfg)
	f.Dst.Bind(f.ID, true, r)
}

// StartSender implements transport.ShardableProtocol: run the
// buffer-aware classifier (§4.1 — the first syscall's size against the
// threshold), then build, bind, and launch the sender at the flow's
// arrival time in the source host's shard.
func (p Proto) StartSender(env *transport.Env, f *transport.Flow) {
	cfg := p.Cfg.withDefaults()
	if !cfg.DisableIdentification && f.FirstCall > cfg.IdentifyThreshold {
		f.IdentifiedLarge = true
	}
	s := getSender(env, f, cfg)
	f.Src.Bind(f.ID, false, s)
	s.launch()
}

// RecyclesFlows implements transport.FlowRecycler: Recycle stops every
// timer either endpoint armed (HCP RTO, LCP pacing/open/dead timers,
// receiver quiet-flush), so no pending callback can reach a recycled
// Flow.
func (Proto) RecyclesFlows() {}

// hcpPrio implements the mirror-symmetric tagging of §4.2 for the high
// part (P0–P3); the LCP mirror adds 4.
func hcpPrio(cfg Config, f *transport.Flow, bytesSent int64) int8 {
	if cfg.DisableScheduling {
		return 0
	}
	if f.IdentifiedLarge {
		return 3
	}
	for i, th := range cfg.DemoteThresholds {
		if bytesSent < th {
			return int8(i)
		}
	}
	return 3
}

// sender couples the unchanged DCTCP sender (HCP) with the LCP loop.
// The struct (with its embedded DCTCP sender and LCP loop) is reusable:
// init retargets every field at a new flow, and the hot callbacks are
// bound once at construction so steady-state flows allocate nothing.
type sender struct {
	transport.PoolNode
	env *transport.Env
	f   *transport.Flow
	cfg Config
	dbg *DebugCounters
	hcp *dctcp.Sender
	lcp *lcpLoop

	// useLCP mirrors !cfg.DisableLCP; the lcp struct itself is always
	// present so it can be recycled along with the sender.
	useLCP bool
	// pooled marks senders drawn from the Env pool (see getSender).
	pooled bool

	// prioFn is the HCP priority hook handed to DCTCP, bound once;
	// rebuilding the closure per flow would allocate.
	prioFn func(int64) int8
}

// newIdleSender builds an unbound sender shell for the pool.
func newIdleSender() *sender {
	s := &sender{}
	s.prioFn = s.hcpPrio
	s.hcp = dctcp.NewIdleSender()
	s.lcp = newIdleLCP(s)
	return s
}

func (s *sender) hcpPrio(sent int64) int8 { return hcpPrio(s.cfg, s.f, sent) }

// init (re)targets the sender at a flow; a recycled struct after init is
// indistinguishable from a fresh newSender result.
func (s *sender) init(env *transport.Env, f *transport.Flow, cfg Config) {
	s.env, s.f, s.cfg = env, f, cfg
	s.dbg = cfg.debugSink()
	dcfg := cfg.DCTCP
	dcfg.Prio = s.prioFn
	s.hcp.Init(env, f, dcfg)
	s.useLCP = !cfg.DisableLCP
	s.lcp.init()
	if s.useLCP {
		s.hcp.OnAlpha = s.lcp.alphaFn
	}
	if cfg.OnFlowState != nil {
		// Tracing path: the wrapper closure allocates per flow, which is
		// fine — dynamics traces run a handful of flows.
		prev := s.hcp.OnAlpha
		s.hcp.OnAlpha = func(alpha float64) {
			if prev != nil {
				prev(alpha)
			}
			st := FlowState{
				Cwnd: s.hcp.Cwnd, Alpha: s.hcp.Alpha, Wmax: s.hcp.Wmax,
				SndUna: s.hcp.SndUna,
			}
			if s.useLCP {
				st.LCPActive = s.lcp.active
				st.OppSent = s.lcp.oppSent
				st.TailNext = s.lcp.tailNext
			}
			cfg.OnFlowState(f.ID, env.Now(), st)
		}
	}
}

func newSender(env *transport.Env, f *transport.Flow, cfg Config) *sender {
	s := newIdleSender()
	s.init(env, f, cfg)
	return s
}

func (s *sender) launch() {
	s.hcp.Launch()
	if s.useLCP {
		s.lcp.onFlowStart()
	}
}

// StopTimers implements transport.SenderQuiescer: cancel every pending
// timer that could call back into this sender (HCP RTO, LCP
// pacing/open/dead timers) without recycling it. Idempotent, so the
// later Recycle's own stops are harmless.
func (s *sender) StopTimers() {
	s.hcp.StopTimers()
	s.lcp.stopTimers()
}

// Recycle implements transport.EndpointRecycler: every timer that could
// call back into this sender is stopped, then pool-owned structs return
// to the freelist. Senders built with newSender (tests, traces) are left
// alone — their creators may still hold them.
func (s *sender) Recycle(env *transport.Env) {
	s.StopTimers()
	if !s.pooled {
		return
	}
	s.pooled = false
	s.f = nil
	s.hcp.OnAlpha = nil
	s.hcp.OnAck = nil
	transport.PoolFor(env, senderPool, newIdleSender).Put(s)
}

// Handle implements netsim.Endpoint: high-priority ACKs feed DCTCP,
// low-priority ACKs feed the LCP loop.
func (s *sender) Handle(pkt *netsim.Packet) {
	if s.f.SenderDone() {
		return
	}
	if pkt.Kind != netsim.Ack {
		return
	}
	if pkt.LowLoop {
		if s.useLCP {
			s.lcp.onLowAck(pkt)
		}
		return
	}
	s.hcp.ProcessAck(pkt)
}

// lcpLoop is the low-priority control loop of §3.
type lcpLoop struct {
	s *sender

	active bool
	// tailNext is the byte offset of the next opportunistic segment's
	// start; it moves downward from the flow tail.
	tailNext int64

	// budget is the remaining initial-window bytes of the current loop
	// (case-1/case-2 I); once spent, the loop is purely ACK-clocked.
	budget  int64
	paceGap sim.Time
	pacing  bool

	// guarded marks case-2 loops, which additionally cap their budget
	// to the gap beyond two HCP windows.
	guarded bool

	// alpha history for the case-2 trigger.
	alphas []float64

	// termination timer: 2 RTTs without low-priority ACKs.
	deadTimer sim.Timer
	// openTimer and paceTimer track the delayed case-1 open and the
	// self-rescheduling pacing chain, so Recycle can cancel them before
	// the struct is handed to another flow.
	openTimer sim.Timer
	paceTimer sim.Timer

	// Callbacks bound once at construction: re-deriving a method value at
	// every timer arm allocates a closure per event.
	alphaFn func(float64)
	paceFn  func()
	termFn  func()
	openFn  func()

	// sent/acked accounting.
	oppSent int64
	// inflight is the opportunistic bytes sent but not yet covered by a
	// low-priority ACK. A standing backlog here means the fabric is NOT
	// actually idle for the low class — opening another loop would only
	// deepen the stale queue — so loop initialization is gated on it.
	inflight int64
}

// newIdleLCP builds the loop shell with its callbacks bound; init
// resets the per-flow state.
func newIdleLCP(s *sender) *lcpLoop {
	l := &lcpLoop{s: s}
	l.alphaFn = l.onAlpha
	l.paceFn = l.paceOne
	l.termFn = l.terminate
	l.openFn = l.openCase1
	return l
}

// init resets the loop for its sender's (re)initialized flow. Must run
// after the HCP sender's Init: bufferedTail reads its SndUna.
func (l *lcpLoop) init() {
	l.active = false
	l.tailNext = l.bufferedTail()
	l.budget = 0
	l.paceGap = 0
	l.pacing = false
	l.guarded = false
	l.alphas = l.alphas[:0]
	l.deadTimer = sim.Timer{}
	l.openTimer = sim.Timer{}
	l.paceTimer = sim.Timer{}
	l.oppSent = 0
	l.inflight = 0
}

// stopTimers cancels every pending callback into the loop.
func (l *lcpLoop) stopTimers() {
	l.deadTimer.Stop()
	l.openTimer.Stop()
	l.paceTimer.Stop()
}

// rtt is the loop pacing interval base.
func (l *lcpLoop) rtt() sim.Time {
	if r := l.s.hcp.SRTT; r > 0 {
		return r
	}
	return l.s.env.BaseRTT()
}

// onFlowStart opens the case-1 loop, delayed to the 2nd RTT for
// identified-large flows.
func (l *lcpLoop) onFlowStart() {
	if l.s.f.IdentifiedLarge && !l.s.cfg.NoDelayLCPForLarge {
		l.openTimer = l.s.env.Sched().After(l.s.env.BaseRTT(), l.openFn)
		return
	}
	l.openCase1()
}

// openCase1 opens the case-1 loop: I = BDP − IW (§3.1).
func (l *lcpLoop) openCase1() {
	if l.s.f.SenderDone() {
		return
	}
	l.s.dbg.inc(&l.s.dbg.Case1Opens)
	i := int64(l.s.env.BDP()) - l.s.hcp.C.InitCwnd
	l.open(i, false)
}

// onAlpha is the case-2 trigger: fires on every per-window α update. A
// loop opens when the fresh α is at or below the minimum of the recent
// history — i.e. "α takes the minimum value in the past RTTs" (§3.1) —
// which needs at least one prior observation to compare against.
func (l *lcpLoop) onAlpha(alpha float64) {
	prior := l.alphas
	l.alphas = append(l.alphas, alpha)
	if len(l.alphas) > l.s.cfg.AlphaHistory {
		l.alphas = l.alphas[len(l.alphas)-l.s.cfg.AlphaHistory:]
	}
	if l.active || !l.s.hcp.ExitedSS || l.s.f.SenderDone() || len(prior) == 0 {
		return
	}
	min := prior[0]
	for _, a := range prior {
		if a < min {
			min = a
		}
	}
	// Strictly below every recent observation: congestion is genuinely
	// easing, not plateauing.
	if alpha >= min {
		return
	}
	// I = (1/2 − α_min) · W_max  (Equation 2).
	l.s.dbg.inc(&l.s.dbg.Case2Opens)
	l.open(int64((0.5-alpha)*l.s.hcp.Wmax), true)
}

// bufferedTail is the highest byte offset present in the modeled send
// buffer: the application has only copied SendBuf bytes beyond what the
// receiver has consumed.
func (l *lcpLoop) bufferedTail() int64 {
	if l.s.cfg.SendBuf <= 0 {
		return l.s.f.Size
	}
	upper := l.s.hcp.SndUna + l.s.cfg.SendBuf
	if upper > l.s.f.Size {
		upper = l.s.f.Size
	}
	return upper
}

// open starts a loop with initial window i, paced over one RTT (EWD) or
// blasted at line rate when the EWD ablation is on.
func (l *lcpLoop) open(i int64, guarded bool) {
	if i < netsim.MSS || l.active {
		return
	}
	if guarded {
		// Fill only the gap HCP cannot cover itself this round: the
		// unsent bytes minus roughly two windows of HCP progress.
		spare := l.tailNext - l.s.hcp.SndNxt - 2*int64(l.s.hcp.Cwnd)
		if i > spare {
			i = spare
		}
		if i < netsim.MSS {
			return
		}
	}
	// An unacknowledged backlog from previous loops contradicts the
	// spare-bandwidth signal: those packets are still queued in the low
	// class somewhere. Do not pile a fresh window on top of them. (This
	// is part of the loop's congestion awareness, so the no-ECN
	// ablation — an LCP blind to congestion, the paper's Fig 15 variant
	// — drops it too.)
	if !l.s.cfg.DisableECN && l.inflight >= i/2 {
		return
	}
	l.guarded = guarded
	// With a finite send buffer, a fresh loop restarts from the buffered
	// tail: the buffer slid as the receiver consumed data, exposing
	// bytes above where the previous loop stopped. (With an unbounded
	// buffer tailNext is already the true frontier; resetting it would
	// re-walk — and duplicate — the already-sent tail.)
	if l.s.cfg.SendBuf > 0 {
		if t := l.bufferedTail(); t > l.tailNext {
			l.tailNext = t
		}
	}
	// Never send below what HCP is about to cover.
	if l.tailNext <= l.s.hcp.SndNxt {
		return
	}
	l.active = true
	l.budget = i
	if l.s.cfg.DisableEWD {
		// Fig 16 variant: opportunistic packets at line rate — the
		// whole remaining tail, no pacing, no clocking discipline.
		l.budget = l.tailNext - l.s.hcp.SndNxt
		l.paceGap = l.s.f.Src.Rate().TxTime(netsim.MSS + netsim.HeaderBytes)
	} else {
		pkts := (i + netsim.MSS - 1) / netsim.MSS
		l.paceGap = l.rtt() / sim.Time(pkts)
	}
	l.resetDeadTimer()
	if !l.pacing {
		l.pacing = true
		l.paceOne()
	}
}

// paceOne transmits the next opportunistic packet of the initial window.
func (l *lcpLoop) paceOne() {
	if !l.active || l.s.f.SenderDone() || l.budget <= 0 {
		l.pacing = false
		return
	}
	if !l.sendOpportunistic() {
		l.pacing = false
		return
	}
	l.s.dbg.inc(&l.s.dbg.PacedPkts)
	l.budget -= netsim.MSS
	l.paceTimer = l.s.env.Sched().After(l.paceGap, l.paceFn)
}

// sendOpportunistic emits one packet from the tail end, skipping ranges
// already acknowledged via low-priority ACKs; false when the loops have
// crossed and nothing remains.
func (l *lcpLoop) sendOpportunistic() bool {
	// Stay one HCP window ahead of the high loop's frontier: HCP will
	// cover that region itself within the next round, so opportunistic
	// copies there lose the race and are pure duplication ("the window
	// summation of LCP and HCP will not exceed the MW", §3).
	hcpNext := l.s.hcp.SndNxt + int64(l.s.hcp.Cwnd)
	skip := l.s.hcp.Skip
	// Descend past already-delivered tail ranges.
	for l.tailNext > hcpNext && skip.Contains(l.tailNext-1, l.tailNext) {
		l.tailNext = skip.ContiguousBack(l.tailNext)
	}
	seq := l.tailNext - netsim.MSS
	if seq < hcpNext {
		seq = hcpNext
	}
	if cov := skip.ContiguousFrom(seq); cov > seq {
		// The packet would start inside a delivered range; trim it.
		seq = cov
	}
	if seq >= l.tailNext {
		return false // crossed: the tail is already covered
	}
	n := int32(l.tailNext - seq)
	prio := hcpPrio(l.s.cfg, l.s.f, l.s.hcp.BytesSent) + 4
	pkt := l.s.f.Src.Data(l.s.f.ID, l.s.f.Dst.ID(), seq, n, prio)
	pkt.ECT = !l.s.cfg.DisableECN
	pkt.LowLoop = true
	l.s.f.Src.Send(pkt)
	l.s.env.Eff.SentLowPayload += int64(n)
	l.oppSent += int64(n)
	l.inflight += int64(n)
	l.tailNext = seq
	return true
}

// onLowAck applies the EWD receiver clocking: each low-priority ACK
// (covering two opportunistic packets) triggers exactly one new packet —
// unless it carries ECE, which suppresses it to protect HCP (§3.2).
func (l *lcpLoop) onLowAck(pkt *netsim.Packet) {
	meta, _ := pkt.Meta.(*transport.AckMeta)
	if meta != nil {
		for i := 0; i < meta.LowN; i++ {
			l.s.hcp.Skip.Add(meta.LowSeqs[i], meta.LowSeqs[i]+int64(meta.LowLens[i]))
			l.inflight -= int64(meta.LowLens[i])
		}
		if l.inflight < 0 {
			l.inflight = 0
		}
		// This sender is the meta's sole consumer: everything it carried
		// is now folded into Skip/inflight, so hand it back to the pool.
		pkt.Meta = nil
		putAckMeta(l.s.env, meta)
		// Skipping delivered bytes shrinks HCP's in-flight estimate, so
		// the high loop may be able to transmit right now.
		l.s.hcp.TrySend()
	}
	if !l.active {
		return
	}
	l.resetDeadTimer()
	if pkt.ECE && !l.s.cfg.DisableECN {
		return // congestion: do not clock out a new opportunistic packet
	}
	if l.sendOpportunistic() {
		l.s.dbg.inc(&l.s.dbg.ClockedPkts)
	}
}

func (l *lcpLoop) resetDeadTimer() {
	l.deadTimer.Stop()
	l.deadTimer = l.s.env.Sched().After(2*l.rtt(), l.termFn)
}

// terminate closes the loop after 2 RTTs of ACK silence; a future
// trigger may open a fresh one (§3.2 remarks).
func (l *lcpLoop) terminate() {
	l.active = false
	l.pacing = false
	l.budget = 0
	// The loop is dead: whatever it still counted as in flight is either
	// lost or stuck behind higher classes, and the receiver's quiet-flush
	// has had 2 RTTs to report stragglers. Carrying the stale backlog
	// forward would let the inflight gate in open() veto every future
	// loop of this flow.
	l.inflight = 0
}

// NewDualLoopReceiver exposes the PPT receiver for reuse by transports
// that embed the LCP design on a different high-priority loop (e.g. the
// delay-based variant of Fig 14).
func NewDualLoopReceiver(env *transport.Env, f *transport.Flow) netsim.Endpoint {
	return newReceiver(env, f, Config{}.withDefaults())
}

// receiver reassembles both loops' packets and generates the two ACK
// streams: per-packet high-priority cumulative ACKs for HCP and one
// low-priority ACK per two opportunistic packets for LCP.
type receiver struct {
	transport.PoolNode
	env *transport.Env
	f   *transport.Flow
	cfg Config
	dbg *DebugCounters
	r   *transport.Reassembly

	// pooled marks receivers drawn from the Env pool (see getReceiver).
	pooled bool
	// flushFn is flushPending bound once; arming with a fresh method
	// value would allocate per quiet period.
	flushFn func()

	// pending buffers the last unacknowledged opportunistic arrival.
	pendingSeq  int64
	pendingLen  int32
	pendingCE   bool
	pendingTS   sim.Time
	pendingPrio int8
	hasPending  bool
	// flushTimer acknowledges a pending arrival alone once the loop has
	// gone quiet: without it, an odd opportunistic packet count strands
	// the last arrival forever and the sender's inflight never drains.
	flushTimer sim.Timer
}

// newIdleReceiver builds an unbound receiver shell for the pool.
func newIdleReceiver() *receiver {
	rc := &receiver{r: transport.NewReassembly(0)}
	rc.flushFn = rc.flushPending
	return rc
}

// init (re)targets the receiver at a flow, clearing any pending-arrival
// state a previous flow left behind.
func (rc *receiver) init(env *transport.Env, f *transport.Flow, cfg Config) {
	rc.env, rc.f, rc.cfg = env, f, cfg
	rc.dbg = cfg.debugSink()
	rc.r.Reset(f.Size)
	rc.pendingSeq, rc.pendingLen, rc.pendingCE = 0, 0, false
	rc.pendingTS, rc.pendingPrio = 0, 0
	rc.hasPending = false
	rc.flushTimer = sim.Timer{}
}

func newReceiver(env *transport.Env, f *transport.Flow, cfg Config) *receiver {
	rc := newIdleReceiver()
	rc.init(env, f, cfg)
	return rc
}

// Pool keys for the per-flow objects Proto.Start draws from the Env.
var (
	senderPool   = transport.NewPoolKey("ppt.sender")
	receiverPool = transport.NewPoolKey("ppt.receiver")
	ackMetaPool  = transport.NewPoolKey("ppt.ackmeta")
)

func newAckMeta() *transport.AckMeta { return &transport.AckMeta{} }

// getAckMeta draws a low-ACK meta from the run pool. Reuse is dirty:
// every producer sets all fields. The PPT sender returns consumed metas
// via putAckMeta; foreign consumers (the MW oracle, Swift's low loop)
// never Put, which just leaves those metas to the garbage collector.
func getAckMeta(env *transport.Env) *transport.AckMeta {
	return transport.PoolFor(env, ackMetaPool, newAckMeta).Get()
}

func putAckMeta(env *transport.Env, m *transport.AckMeta) {
	transport.PoolFor(env, ackMetaPool, newAckMeta).Put(m)
}

// getSender returns an initialized sender from env's pool; it returns
// to the pool via Recycle when its flow completes.
func getSender(env *transport.Env, f *transport.Flow, cfg Config) *sender {
	s := transport.PoolFor(env, senderPool, newIdleSender).Get()
	s.init(env, f, cfg)
	s.pooled = true
	return s
}

// getReceiver is the receiver-side analogue of getSender.
func getReceiver(env *transport.Env, f *transport.Flow, cfg Config) *receiver {
	rc := transport.PoolFor(env, receiverPool, newIdleReceiver).Get()
	rc.init(env, f, cfg)
	rc.pooled = true
	return rc
}

// Recycle implements transport.EndpointRecycler: cancel the quiet-flush
// timer, then return pool-owned receivers to the freelist.
func (rc *receiver) Recycle(env *transport.Env) {
	rc.flushTimer.Stop()
	if !rc.pooled {
		return
	}
	rc.pooled = false
	rc.f = nil
	transport.PoolFor(env, receiverPool, newIdleReceiver).Put(rc)
}

// Handle implements netsim.Endpoint.
func (rc *receiver) Handle(pkt *netsim.Packet) {
	if pkt.Kind != netsim.Data {
		return
	}
	added := rc.r.Add(pkt.Seq, pkt.PayloadLen)
	if pkt.LowLoop {
		rc.dbg.add(&rc.dbg.NewLowBytes, added)
		rc.dbg.add(&rc.dbg.DupLowBytes, int64(pkt.PayloadLen)-added)
		rc.env.Eff.UsefulLow += added
		rc.onOpportunistic(pkt)
	} else {
		rc.dbg.add(&rc.dbg.NewHighBytes, added)
		rc.dbg.add(&rc.dbg.DupHighBytes, int64(pkt.PayloadLen)-added)
		rc.ackHigh(pkt)
	}
	if rc.r.Complete() {
		rc.env.Complete(rc.f)
	}
}

func (rc *receiver) ackHigh(pkt *netsim.Packet) {
	ack := rc.f.Dst.Ctrl(netsim.Ack, rc.f.ID, rc.f.Src.ID(), 0)
	ack.Seq = rc.r.CumAck()
	ack.ECE = pkt.CE
	ack.EchoTS = pkt.SentAt
	rc.f.Dst.Send(ack)
}

// onOpportunistic coalesces two opportunistic arrivals per low-priority
// ACK (the 2:1 EWD clock of §3.2). A lone arrival is held for its pair,
// but only until the quiet-flush timer fires: a loop that sent an odd
// number of packets would otherwise strand its last packet unacked and
// the sender's inflight would never drain.
func (rc *receiver) onOpportunistic(pkt *netsim.Packet) {
	if !rc.hasPending {
		rc.pendingSeq, rc.pendingLen, rc.pendingCE = pkt.Seq, pkt.PayloadLen, pkt.CE
		rc.pendingTS, rc.pendingPrio = pkt.SentAt, pkt.Prio
		rc.hasPending = true
		rc.flushTimer.Stop()
		rc.flushTimer = rc.env.Sched().After(2*rc.env.BaseRTT(), rc.flushFn)
		return
	}
	rc.flushTimer.Stop()
	rc.flushTimer = sim.Timer{}
	meta := getAckMeta(rc.env)
	meta.LowSeqs = [2]int64{rc.pendingSeq, pkt.Seq}
	meta.LowLens = [2]int32{rc.pendingLen, pkt.PayloadLen}
	meta.LowN = 2
	meta.TailFrontier = rc.r.TailFrontier()
	rc.hasPending = false
	ack := rc.f.Dst.Ctrl(netsim.Ack, rc.f.ID, rc.f.Src.ID(), pkt.Prio)
	ack.LowLoop = true
	ack.Seq = rc.r.CumAck()
	ack.ECE = pkt.CE || rc.pendingCE
	ack.EchoTS = pkt.SentAt
	ack.Meta = meta
	rc.f.Dst.Send(ack)
}

// flushPending acknowledges a buffered opportunistic arrival on its own
// once the loop has gone quiet for 2 base RTTs (no pair showed up). The
// single-packet ACK lets the sender retire the inflight bytes so the
// `inflight >= i/2` gate cannot veto future loop opens.
func (rc *receiver) flushPending() {
	if !rc.hasPending || rc.f.Done() {
		return
	}
	meta := getAckMeta(rc.env)
	meta.LowSeqs = [2]int64{rc.pendingSeq, 0}
	meta.LowLens = [2]int32{rc.pendingLen, 0}
	meta.LowN = 1
	meta.TailFrontier = rc.r.TailFrontier()
	rc.hasPending = false
	rc.flushTimer = sim.Timer{}
	ack := rc.f.Dst.Ctrl(netsim.Ack, rc.f.ID, rc.f.Src.ID(), rc.pendingPrio)
	ack.LowLoop = true
	ack.Seq = rc.r.CumAck()
	ack.ECE = rc.pendingCE
	ack.EchoTS = rc.pendingTS
	ack.Meta = meta
	rc.f.Dst.Send(ack)
}
