package ppt

import (
	"testing"

	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/stats"
	"ppt/internal/topo"
	"ppt/internal/transport"
	"ppt/internal/transport/dctcp"
	"ppt/internal/workload"
)

func newEnv() *transport.Env {
	net := topo.Star(6, topo.Config{
		HostRate:     10 * netsim.Gbps,
		LinkDelay:    5 * sim.Microsecond,
		ECNHighK:     30_000,
		ECNLowK:      24_000,
		SharedBuffer: 1 << 20,
	})
	return transport.NewEnv(net)
}

func TestSingleFlowCompletes(t *testing.T) {
	env := newEnv()
	sum := transport.Run(env, Proto{}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 2_000_000},
	}, transport.RunConfig{})
	if sum.Flows != 1 {
		t.Fatalf("completed %d", sum.Flows)
	}
	// 2MB at 10G = 1.6ms of pure serialization.
	if sum.OverallAvg < 1600*sim.Microsecond || sum.OverallAvg > 6*sim.Millisecond {
		t.Fatalf("FCT = %v", sum.OverallAvg)
	}
}

func TestLCPSpeedsUpSlowStart(t *testing.T) {
	// A ~BDP-sized flow on an idle, long-RTT fabric: plain DCTCP needs
	// ~3 slow-start RTTs; PPT's case-1 LCP fills BDP−IW in the first
	// RTT, so the flow must finish markedly faster.
	bigRTT := func() *transport.Env {
		return transport.NewEnv(topo.Star(4, topo.Config{
			HostRate:     10 * netsim.Gbps,
			LinkDelay:    20 * sim.Microsecond,
			ECNHighK:     100_000,
			ECNLowK:      80_000,
			SharedBuffer: 4 << 20,
		}))
	}
	size := int64(90_000) // under the identification threshold: LCP at start
	dEnv := bigRTT()
	dctcpSum := transport.Run(dEnv, dctcp.Proto{}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: size},
	}, transport.RunConfig{})
	pEnv := bigRTT()
	pptSum := transport.Run(pEnv, Proto{}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: size},
	}, transport.RunConfig{})
	if pptSum.Flows != 1 || dctcpSum.Flows != 1 {
		t.Fatal("flows incomplete")
	}
	if float64(pptSum.OverallAvg) > 0.8*float64(dctcpSum.OverallAvg) {
		t.Fatalf("PPT %v not clearly faster than DCTCP %v on idle network",
			pptSum.OverallAvg, dctcpSum.OverallAvg)
	}
	// LCP must actually have delivered useful tail bytes.
	if pEnv.Eff.UsefulLow == 0 {
		t.Fatal("LCP delivered nothing")
	}
}

func TestOpportunisticPacketsAreLowPriority(t *testing.T) {
	env := newEnv()
	transport.Run(env, Proto{}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 500_000},
	}, transport.RunConfig{})
	// The switch downlink to host 1 must have carried low-class bytes.
	port := env.Net.Switches[0].Port(1)
	if port.Stats.TxBytes == 0 {
		t.Fatal("no traffic")
	}
	if env.Eff.SentLowPayload == 0 {
		t.Fatal("no opportunistic packets sent")
	}
}

func TestDualLoopCoversAllBytesOnce(t *testing.T) {
	// Transfer efficiency on an idle network should be ~1: the two
	// loops must not blindly send the same bytes twice.
	env := newEnv()
	sum := transport.Run(env, Proto{}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 1_000_000},
		{ID: 2, Src: 2, Dst: 3, Size: 1_000_000},
	}, transport.RunConfig{})
	if sum.Flows != 2 {
		t.Fatal("incomplete")
	}
	if eff := env.Eff.Overall(); eff < 0.85 || eff > 1.0 {
		t.Fatalf("transfer efficiency = %v (sent %d, useful %d)",
			eff, env.Eff.SentPayload, env.Eff.UsefulDelivered)
	}
}

func TestIdentifiedLargeFlowTaggedLow(t *testing.T) {
	env := newEnv()
	f := &transport.Flow{ID: 7, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1],
		Size: 5_000_000, FirstCall: 5_000_000}
	Proto{}.Start(env, f)
	if !f.IdentifiedLarge {
		t.Fatal("5MB first syscall not identified as large")
	}
	cfg := Config{}.withDefaults()
	if got := hcpPrio(cfg, f, 0); got != 3 {
		t.Fatalf("identified-large HCP prio = %d, want 3", got)
	}
}

func TestSmallFirstCallNotIdentified(t *testing.T) {
	env := newEnv()
	f := &transport.Flow{ID: 8, Src: env.Net.Hosts[2], Dst: env.Net.Hosts[3],
		Size: 5_000_000, FirstCall: 16_000} // small send buffer: only 16KB seen
	Proto{}.Start(env, f)
	if f.IdentifiedLarge {
		t.Fatal("16KB first syscall identified as large")
	}
	cfg := Config{}.withDefaults()
	if got := hcpPrio(cfg, f, 0); got != 0 {
		t.Fatalf("unidentified flow starts at prio %d, want 0", got)
	}
}

func TestMirrorSymmetricDemotion(t *testing.T) {
	cfg := Config{}.withDefaults()
	f := &transport.Flow{Size: 1 << 40}
	cases := []struct {
		sent int64
		want int8
	}{
		{0, 0}, {99_999, 0}, {100_000, 1}, {999_999, 1},
		{1_000_000, 2}, {9_999_999, 2}, {10_000_000, 3}, {1 << 39, 3},
	}
	for _, c := range cases {
		if got := hcpPrio(cfg, f, c.sent); got != c.want {
			t.Errorf("prio(%d) = %d, want %d", c.sent, got, c.want)
		}
	}
}

func TestSchedulingDisabledFlattensPriorities(t *testing.T) {
	cfg := Config{DisableScheduling: true}.withDefaults()
	f := &transport.Flow{Size: 1 << 30, IdentifiedLarge: true}
	if got := hcpPrio(cfg, f, 1<<29); got != 0 {
		t.Fatalf("prio = %d, want 0 with scheduling disabled", got)
	}
}

func TestIdentificationDisabled(t *testing.T) {
	env := newEnv()
	f := &transport.Flow{ID: 9, Src: env.Net.Hosts[4], Dst: env.Net.Hosts[5],
		Size: 5_000_000, FirstCall: 5_000_000}
	Proto{Cfg: Config{DisableIdentification: true}}.Start(env, f)
	if f.IdentifiedLarge {
		t.Fatal("identification ran despite ablation")
	}
}

func TestProtocolNames(t *testing.T) {
	cases := map[string]Config{
		"ppt":         {},
		"ppt-noecn":   {DisableECN: true},
		"ppt-noewd":   {DisableEWD: true},
		"ppt-nosched": {DisableScheduling: true},
		"ppt-noident": {DisableIdentification: true},
	}
	for want, cfg := range cases {
		if got := (Proto{Cfg: cfg}).Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestLCPTerminatesAfterSilence(t *testing.T) {
	env := newEnv()
	f := &transport.Flow{ID: 3, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1],
		Size: 10_000_000, FirstCall: 1000}
	s := newSender(env, f, Config{}.withDefaults())
	f.Src.Bind(f.ID, false, s)
	s.launch()
	if !s.lcp.active {
		t.Fatal("case-1 loop did not open")
	}
	// No receiver: no low-priority ACKs ever arrive; the loop must shut
	// itself down after ~2 RTTs of silence.
	env.Sched().RunUntil(env.BaseRTT() * 20)
	if s.lcp.active {
		t.Fatal("LCP loop still active after 20 RTTs of ACK silence")
	}
}

func TestCase2ReopensOnAlphaMinimum(t *testing.T) {
	env := newEnv()
	f := &transport.Flow{ID: 4, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1],
		Size: 10_000_000, FirstCall: 1000}
	s := newSender(env, f, Config{}.withDefaults())
	f.Src.Bind(f.ID, false, s)
	s.lcp.terminate()
	// Pretend the flow left slow start with a healthy Wmax.
	s.hcp.ExitedSS = true
	s.hcp.Wmax = float64(50 * netsim.MSS)
	// α descending to a fresh minimum triggers a loop.
	s.lcp.onAlpha(0.30)
	if s.lcp.active {
		t.Fatal("loop opened while α above history minimum")
	}
	s.lcp.onAlpha(0.10)
	if !s.lcp.active {
		t.Fatal("loop did not open at α minimum")
	}
	// I = (0.5 − 0.10)·Wmax = 0.4·50MSS = 20MSS.
	wantI := int64(0.4 * 50 * netsim.MSS)
	got := s.lcp.budget + netsim.MSS // one packet already paced out
	if got < wantI-netsim.MSS || got > wantI+netsim.MSS {
		t.Fatalf("initial window = %d, want ~%d", got, wantI)
	}
}

func TestCase2RequiresSlowStartExit(t *testing.T) {
	env := newEnv()
	f := &transport.Flow{ID: 5, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1],
		Size: 10_000_000, FirstCall: 1000}
	s := newSender(env, f, Config{}.withDefaults())
	f.Src.Bind(f.ID, false, s)
	s.lcp.terminate()
	s.hcp.ExitedSS = false
	s.lcp.onAlpha(0.0)
	if s.lcp.active {
		t.Fatal("case-2 loop opened during slow start")
	}
}

func TestEquation2NeverExceedsHalfWmax(t *testing.T) {
	// For any α_min >= 0, I <= Wmax/2.
	env := newEnv()
	f := &transport.Flow{ID: 6, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1],
		Size: 1 << 30, FirstCall: 1000}
	for _, alphaMin := range []float64{0, 0.1, 0.25, 0.4999, 0.5, 0.9} {
		s := newSender(env, f, Config{}.withDefaults())
		s.hcp.ExitedSS = true
		s.hcp.Wmax = float64(100 * netsim.MSS)
		s.lcp.onAlpha(0.99) // prime the history
		s.lcp.onAlpha(alphaMin)
		if !s.lcp.active {
			continue // α too high: loop legitimately not opened
		}
		i := s.lcp.budget + s.lcp.oppSent
		if float64(i) > s.hcp.Wmax/2+netsim.MSS {
			t.Fatalf("α=%v: I=%d exceeds Wmax/2=%v", alphaMin, i, s.hcp.Wmax/2)
		}
		s.lcp.terminate()
	}
}

func TestECESuppressesOpportunisticSend(t *testing.T) {
	env := newEnv()
	f := &transport.Flow{ID: 7, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1],
		Size: 10_000_000, FirstCall: 1000}
	s := newSender(env, f, Config{}.withDefaults())
	f.Src.Bind(f.ID, false, s)
	s.launch()
	sent := s.lcp.oppSent
	// ECE-marked low-priority ACK: ignored, no new packet (§3.2).
	ece := netsim.CtrlPacket(netsim.Ack, f.ID, f.Dst.ID(), f.Src.ID(), 4)
	ece.LowLoop = true
	ece.ECE = true
	s.Handle(ece)
	if s.lcp.oppSent != sent {
		t.Fatal("ECE low-priority ACK triggered a new opportunistic packet")
	}
	// Clean ACK: exactly one new packet.
	ok := netsim.CtrlPacket(netsim.Ack, f.ID, f.Dst.ID(), f.Src.ID(), 4)
	ok.LowLoop = true
	s.Handle(ok)
	if s.lcp.oppSent <= sent {
		t.Fatal("clean low-priority ACK did not clock out a packet")
	}
}

func TestNoECNAblationIgnoresECE(t *testing.T) {
	env := newEnv()
	f := &transport.Flow{ID: 8, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1],
		Size: 10_000_000, FirstCall: 1000}
	s := newSender(env, f, Config{DisableECN: true}.withDefaults())
	f.Src.Bind(f.ID, false, s)
	s.launch()
	sent := s.lcp.oppSent
	ece := netsim.CtrlPacket(netsim.Ack, f.ID, f.Dst.ID(), f.Src.ID(), 4)
	ece.LowLoop = true
	ece.ECE = true
	s.Handle(ece)
	if s.lcp.oppSent <= sent {
		t.Fatal("no-ECN ablation still suppressed on ECE")
	}
}

func TestLowAckUpdatesSkipSet(t *testing.T) {
	env := newEnv()
	f := &transport.Flow{ID: 9, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1],
		Size: 10_000_000, FirstCall: 1000}
	s := newSender(env, f, Config{}.withDefaults())
	f.Src.Bind(f.ID, false, s)
	s.launch()
	ackp := netsim.CtrlPacket(netsim.Ack, f.ID, f.Dst.ID(), f.Src.ID(), 4)
	ackp.LowLoop = true
	ackp.Meta = &transport.AckMeta{
		LowSeqs: [2]int64{9_000_000, 9_500_000},
		LowLens: [2]int32{netsim.MSS, netsim.MSS},
		LowN:    2,
	}
	s.Handle(ackp)
	if !s.hcp.Skip.Contains(9_000_000, 9_000_000+netsim.MSS) {
		t.Fatal("skip set missing acked opportunistic range")
	}
	if !s.hcp.Skip.Contains(9_500_000, 9_500_000+netsim.MSS) {
		t.Fatal("skip set missing second acked range")
	}
}

func TestReceiverCoalescesTwoOpportunisticArrivals(t *testing.T) {
	env := newEnv()
	f := &transport.Flow{ID: 10, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1],
		Size: 1_000_000, FirstCall: 1000, Start: 0}
	var lowAcks, highAcks int
	f.Src.Bind(f.ID, false, epFunc(func(p *netsim.Packet) {
		if p.LowLoop {
			lowAcks++
		} else {
			highAcks++
		}
	}))
	rc := newReceiver(env, f, Config{}.withDefaults())
	f.Dst.Bind(f.ID, true, rc)
	mk := func(seq int64, low bool) *netsim.Packet {
		p := netsim.DataPacket(f.ID, f.Src.ID(), f.Dst.ID(), seq, netsim.MSS, 0)
		p.LowLoop = low
		return p
	}
	rc.Handle(mk(900_000, true))
	// Within the quiet-flush window the arrival is held for its pair.
	env.Sched().RunUntil(env.BaseRTT())
	if lowAcks != 0 {
		t.Fatal("low ACK after a single opportunistic packet")
	}
	rc.Handle(mk(901_448, true))
	env.Sched().Run()
	if lowAcks != 1 {
		t.Fatalf("lowAcks = %d after two opportunistic arrivals", lowAcks)
	}
	rc.Handle(mk(0, false))
	env.Sched().Run()
	if highAcks != 1 {
		t.Fatalf("highAcks = %d, want per-packet ACK for HCP data", highAcks)
	}
}

func TestReceiverFlushesStrandedArrival(t *testing.T) {
	// Regression for the stranded-odd-packet bug: a lone opportunistic
	// arrival whose pair never shows up must still be acknowledged (as a
	// single-packet low ACK) once the loop goes quiet, or the sender's
	// inflight never drains and the i/2 gate vetoes every future loop.
	env := newEnv()
	f := &transport.Flow{ID: 11, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1],
		Size: 1_000_000, FirstCall: 1000, Start: 0}
	var lowMetas []*transport.AckMeta
	f.Src.Bind(f.ID, false, epFunc(func(p *netsim.Packet) {
		if p.LowLoop {
			meta, _ := p.Meta.(*transport.AckMeta)
			lowMetas = append(lowMetas, meta)
		}
	}))
	rc := newReceiver(env, f, Config{}.withDefaults())
	f.Dst.Bind(f.ID, true, rc)
	p := netsim.DataPacket(f.ID, f.Src.ID(), f.Dst.ID(), 900_000, netsim.MSS, 4)
	p.LowLoop = true
	rc.Handle(p)
	env.Sched().Run() // drains the 2×BaseRTT flush timer
	if len(lowMetas) != 1 {
		t.Fatalf("lowAcks = %d, want exactly one quiet-flush ACK", len(lowMetas))
	}
	meta := lowMetas[0]
	if meta == nil || meta.LowN != 1 {
		t.Fatalf("flush ACK meta = %+v, want LowN == 1", meta)
	}
	if meta.LowSeqs[0] != 900_000 || meta.LowLens[0] != netsim.MSS {
		t.Fatalf("flush ACK covers (%d,%d), want (900000,%d)",
			meta.LowSeqs[0], meta.LowLens[0], netsim.MSS)
	}
	// The flush is one-shot: no second ACK for the same arrival.
	env.Sched().Run()
	if len(lowMetas) != 1 {
		t.Fatalf("lowAcks = %d after drain, flush re-fired", len(lowMetas))
	}
}

func TestTerminateResetsInflight(t *testing.T) {
	// Regression: terminate() must clear the loop's inflight so the
	// `inflight >= i/2` gate cannot carry a stale backlog into the next
	// loop open and veto it.
	env := newEnv()
	f := &transport.Flow{ID: 12, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1],
		Size: 10_000_000, FirstCall: 1000}
	s := newSender(env, f, Config{}.withDefaults())
	f.Src.Bind(f.ID, false, s)
	s.launch()
	if !s.lcp.active {
		t.Fatal("case-1 loop did not open")
	}
	if s.lcp.inflight == 0 {
		t.Fatal("loop opened but inflight == 0; test premise broken")
	}
	s.lcp.terminate()
	if s.lcp.inflight != 0 {
		t.Fatalf("inflight = %d after terminate, want 0", s.lcp.inflight)
	}
	// With the backlog cleared, a case-2 trigger must be able to reopen.
	s.hcp.ExitedSS = true
	s.hcp.Wmax = float64(50 * netsim.MSS)
	s.lcp.onAlpha(0.30)
	s.lcp.onAlpha(0.10)
	if !s.lcp.active {
		t.Fatal("case-2 reopen suppressed after terminate")
	}
}

func TestOddOpportunisticCountDrainsInflight(t *testing.T) {
	// End-to-end over the fabric: a loop that emits exactly one (odd)
	// opportunistic packet must get that packet acknowledged — the
	// receiver's quiet flush — so the sender's skip set and inflight
	// reflect the delivery instead of stranding it forever.
	env := newEnv()
	f := &transport.Flow{ID: 14, Src: env.Net.Hosts[0], Dst: env.Net.Hosts[1],
		Size: 100_000, FirstCall: 1000}
	s := newSender(env, f, Config{}.withDefaults())
	f.Src.Bind(f.ID, false, s)
	rc := newReceiver(env, f, Config{}.withDefaults())
	f.Dst.Bind(f.ID, true, rc)
	// One-packet loop: the EWD pair never forms.
	s.lcp.open(netsim.MSS, false)
	if !s.lcp.active || s.lcp.inflight != netsim.MSS {
		t.Fatalf("loop active=%v inflight=%d after 1-packet open", s.lcp.active, s.lcp.inflight)
	}
	env.Sched().Run()
	if s.lcp.inflight != 0 {
		t.Fatalf("inflight = %d after drain, want 0", s.lcp.inflight)
	}
	// The flush ACK (not just terminate's reset) must have delivered the
	// packet into the sender's skip set.
	seq := f.Size - netsim.MSS
	if !s.hcp.Skip.Contains(seq, f.Size) {
		t.Fatalf("skip set missing flushed range [%d,%d): stranded packet never acked", seq, f.Size)
	}
}

type epFunc func(*netsim.Packet)

func (f epFunc) Handle(p *netsim.Packet) { f(p) }

func TestHCPProtectedUnderContention(t *testing.T) {
	// A PPT large flow and a DCTCP victim flow share a bottleneck. The
	// victim's FCT must be close to what it gets against plain DCTCP —
	// the LCP must not hurt foreign high-priority traffic.
	run := func(bg transport.Protocol) sim.Time {
		env := newEnv()
		var victim []stats.FCTRecord
		env.OnComplete = func(f *transport.Flow) {
			if f.ID == 2 {
				victim = env.Collector.Records()
			}
		}
		transport.Run(env, protoMux{bg: bg, victimID: 2}, []transport.SimpleFlow{
			{ID: 1, Src: 0, Dst: 2, Size: 8_000_000},
			{ID: 2, Src: 1, Dst: 2, Size: 200_000, Arrive: 200 * sim.Microsecond},
		}, transport.RunConfig{})
		for _, r := range env.Collector.Records() {
			if r.FlowID == 2 {
				return r.FCT()
			}
		}
		t.Fatal("victim never completed")
		_ = victim
		return 0
	}
	base := run(dctcp.Proto{})
	ppt := run(Proto{})
	// Allow 50% slack: the LCP shares the buffer, some interference is
	// inherent, but it must not double the victim's FCT (RC3 does).
	if float64(ppt) > 1.5*float64(base) {
		t.Fatalf("victim FCT %v under PPT vs %v under DCTCP", ppt, base)
	}
}

// protoMux runs the bg protocol for flow 1 and DCTCP for the victim.
type protoMux struct {
	bg       transport.Protocol
	victimID uint32
}

func (m protoMux) Name() string { return "mux" }
func (m protoMux) Start(env *transport.Env, f *transport.Flow) {
	if f.ID == m.victimID {
		dctcp.Proto{}.Start(env, f)
		return
	}
	m.bg.Start(env, f)
}

func TestWorkloadCompletesUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("workload run")
	}
	env := newEnv()
	wflows := workload.Generate(workload.GenConfig{
		Dist:     workload.MemcachedW1,
		Pattern:  workload.AllToAll{N: 6},
		Load:     0.5,
		HostRate: 10 * netsim.Gbps,
		NumFlows: 300,
		Seed:     1,
	})
	flows := make([]transport.SimpleFlow, len(wflows))
	for i, wf := range wflows {
		flows[i] = transport.SimpleFlow{ID: wf.ID, Src: wf.Src, Dst: wf.Dst, Size: wf.Size, Arrive: wf.Arrive}
	}
	sum := transport.Run(env, Proto{}, flows, transport.RunConfig{})
	if sum.Flows != 300 {
		t.Fatalf("completed %d/300", sum.Flows)
	}
}

func TestCwndBoundedBySelfCongestion(t *testing.T) {
	// Regression for the unbounded-slow-start flaw: a single flow whose
	// NIC rate equals the path bottleneck must still see marks (at its
	// own egress queue) and settle near BDP + K instead of inflating
	// its window forever.
	net := topo.TestbedProfile()
	env := transport.NewEnv(net)
	env.RTOMin = 10 * sim.Millisecond
	var maxCwnd float64
	cfg := Config{OnFlowState: func(_ uint32, _ sim.Time, st FlowState) {
		if st.Cwnd > maxCwnd {
			maxCwnd = st.Cwnd
		}
	}}
	sum := transport.Run(env, Proto{Cfg: cfg}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 8_000_000, FirstCall: 8_000_000},
	}, transport.RunConfig{})
	if sum.Flows != 1 {
		t.Fatal("flow incomplete")
	}
	// BDP ~103KB + K 100KB, plus slow-start overshoot; 1MB is already
	// pathological, 8MB would mean no marking at all.
	if maxCwnd > 1_000_000 {
		t.Fatalf("cwnd peaked at %.0f bytes: self-congestion unmarked", maxCwnd)
	}
}

func TestDynamicsProbeFires(t *testing.T) {
	env := newEnv()
	var snaps int
	var sawLCP bool
	cfg := Config{OnFlowState: func(id uint32, now sim.Time, st FlowState) {
		snaps++
		if st.LCPActive {
			sawLCP = true
		}
		if st.Cwnd <= 0 || st.TailNext < 0 {
			t.Errorf("bad snapshot: %+v", st)
		}
	}}
	transport.Run(env, Proto{Cfg: cfg}, []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 3_000_000, FirstCall: 1_000},
		{ID: 2, Src: 2, Dst: 1, Size: 3_000_000, FirstCall: 1_000},
	}, transport.RunConfig{})
	if snaps == 0 {
		t.Fatal("probe never fired")
	}
	_ = sawLCP // LCP activity at snapshot instants is workload-dependent
}
