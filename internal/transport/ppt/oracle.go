package ppt

import (
	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/transport"
	"ppt/internal/transport/dctcp"
)

// The "hypothetical DCTCP" of §2.3: an oracle that knows each flow's
// maximum window (MW) from a prior identical run and, every RTT, sends
// exactly enough low-priority opportunistic packets from the tail to
// fill the gap between the live congestion window and FillFraction×MW.
//
// Figure 2 compares it against DCTCP/Homa/NDP at FillFraction=1;
// Figure 3 sweeps FillFraction from 0.5 to 1.5; Figure 20 reports its
// link utilization.

// MWRecorder is the oracle's first pass: plain DCTCP that keeps each
// flow's sender so the peak congestion window can be read back after the
// run.
type MWRecorder struct {
	senders map[uint32]*dctcp.Sender
}

// NewMWRecorder builds an empty recorder.
func NewMWRecorder() *MWRecorder {
	return &MWRecorder{senders: make(map[uint32]*dctcp.Sender)}
}

// Name implements transport.Protocol.
func (*MWRecorder) Name() string { return "dctcp-mwrecord" }

// Start implements transport.Protocol.
func (m *MWRecorder) Start(env *transport.Env, f *transport.Flow) {
	r := dctcp.NewReceiver(env, f)
	f.Dst.Bind(f.ID, true, r)
	s := dctcp.NewSender(env, f, dctcp.Config{})
	f.Src.Bind(f.ID, false, s)
	m.senders[f.ID] = s
	s.Launch()
}

// MW snapshots the recorded maximum windows; call after the first pass
// finishes.
func (m *MWRecorder) MW() map[uint32]float64 {
	out := make(map[uint32]float64, len(m.senders))
	for id, s := range m.senders {
		out[id] = s.PeakCwnd
	}
	return out
}

// Oracle is the second pass.
type Oracle struct {
	// MW maps flow id -> recorded maximum window in bytes.
	MW map[uint32]float64
	// FillFraction scales the fill target (1.0 = the paper's choice).
	FillFraction float64
}

// Name implements transport.Protocol.
func (Oracle) Name() string { return "hypothetical-dctcp" }

// Start implements transport.Protocol.
func (o Oracle) Start(env *transport.Env, f *transport.Flow) {
	frac := o.FillFraction
	if frac == 0 {
		frac = 1.0
	}
	cfg := Config{DisableScheduling: true}.withDefaults()
	r := newReceiver(env, f, cfg)
	f.Dst.Bind(f.ID, true, r)
	s := &oracleSender{
		env:      env,
		f:        f,
		target:   frac * o.MW[f.ID],
		tailNext: f.Size,
	}
	s.hcp = dctcp.NewSender(env, f, dctcp.Config{})
	f.Src.Bind(f.ID, false, s)
	s.hcp.Launch()
	s.tick()
}

// oracleSender runs DCTCP plus a per-RTT gap filler.
type oracleSender struct {
	env      *transport.Env
	f        *transport.Flow
	hcp      *dctcp.Sender
	target   float64
	tailNext int64
	inflight int64
}

// Handle implements netsim.Endpoint.
func (s *oracleSender) Handle(pkt *netsim.Packet) {
	if s.f.Done() || pkt.Kind != netsim.Ack {
		return
	}
	if pkt.LowLoop {
		if meta, ok := pkt.Meta.(*transport.AckMeta); ok {
			for i := 0; i < meta.LowN; i++ {
				s.hcp.Skip.Add(meta.LowSeqs[i], meta.LowSeqs[i]+int64(meta.LowLens[i]))
				s.inflight -= int64(meta.LowLens[i])
			}
			if s.inflight < 0 {
				s.inflight = 0
			}
			s.hcp.TrySend()
		}
		return
	}
	s.hcp.ProcessAck(pkt)
}

// tick fires once per RTT: fill the gap to the oracle target, paced
// evenly across the RTT.
func (s *oracleSender) tick() {
	if s.f.Done() {
		return
	}
	rtt := s.hcp.SRTT
	if rtt <= 0 {
		rtt = s.env.BaseRTT()
	}
	gap := int64(s.target-s.hcp.Cwnd) - s.inflight
	if gap > 0 && s.tailNext > s.hcp.SndNxt {
		pkts := (gap + netsim.MSS - 1) / netsim.MSS
		gapPace := rtt / sim.Time(pkts)
		s.paceBurst(pkts, gapPace)
	}
	s.env.Sched().After(rtt, s.tick)
}

func (s *oracleSender) paceBurst(left int64, gapPace sim.Time) {
	if left <= 0 || s.f.Done() {
		return
	}
	if !s.sendOpportunistic() {
		return
	}
	s.env.Sched().After(gapPace, func() { s.paceBurst(left-1, gapPace) })
}

func (s *oracleSender) sendOpportunistic() bool {
	seq := s.tailNext - netsim.MSS
	if seq < s.hcp.SndNxt {
		seq = s.hcp.SndNxt
	}
	if seq >= s.tailNext {
		return false
	}
	n := int32(s.tailNext - seq)
	pkt := s.f.Src.Data(s.f.ID, s.f.Dst.ID(), seq, n, 4)
	pkt.ECT = true
	pkt.LowLoop = true
	s.f.Src.Send(pkt)
	s.env.Eff.SentLowPayload += int64(n)
	s.inflight += int64(n)
	s.tailNext = seq
	return true
}
