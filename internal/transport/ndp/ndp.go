// Package ndp implements NDP [15]: senders transmit a full initial
// window at line rate; switches configured with TrimToHeader cut the
// payload of overflowing data packets and forward the headers at the
// highest priority; receivers NACK trimmed packets (the sender queues
// them for retransmission) and pace PULL packets at their downlink rate,
// each pull clocking out one packet at the sender.
//
// Run NDP on a fabric built with topo.Config.TrimToHeader = true; on a
// drop-tail fabric it degenerates to timeout recovery.
package ndp

import (
	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/transport"
)

// Config tunes NDP.
type Config struct {
	// InitWindow is the blind first-RTT window (default: fabric BDP).
	InitWindow int64
	// DataPrio is the priority data packets travel at; trimmed headers,
	// NACKs and PULLs ride P0.
	DataPrio int8
}

func (c Config) withDefaults(env *transport.Env) Config {
	if c.InitWindow == 0 {
		c.InitWindow = int64(env.BDP())
	}
	if c.DataPrio == 0 {
		c.DataPrio = 1
	}
	return c
}

// nackInfo identifies a trimmed packet to retransmit.
type nackInfo struct {
	Seq int64
	Len int32
}

// Proto is the NDP protocol factory; one instance per run (it owns the
// per-host pull pacers).
type Proto struct {
	Cfg    Config
	pacers map[int32]*pullPacer
}

// New builds an NDP protocol instance.
func New(cfg Config) *Proto {
	return &Proto{Cfg: cfg, pacers: make(map[int32]*pullPacer)}
}

// Name implements transport.Protocol.
func (*Proto) Name() string { return "ndp" }

// Start implements transport.Protocol.
func (p *Proto) Start(env *transport.Env, f *transport.Flow) {
	cfg := p.Cfg.withDefaults(env)
	pacer := p.pacers[f.Dst.ID()]
	if pacer == nil {
		pacer = &pullPacer{env: env, host: f.Dst}
		pacer.sendFn = pacer.sendOne
		p.pacers[f.Dst.ID()] = pacer
	}
	rx := &receiver{env: env, f: f, r: transport.NewReassembly(f.Size), pacer: pacer}
	rx.retryFn = rx.retryFired
	f.Dst.Bind(f.ID, true, rx)
	s := &sender{env: env, f: f, cfg: cfg}
	f.Src.Bind(f.ID, false, s)
	s.launch()
}

// sender is window-blind: first window at line rate, then purely
// pull-clocked.
type sender struct {
	env *transport.Env
	f   *transport.Flow
	cfg Config

	sentNext int64
	rtxQueue []nackInfo
}

func (s *sender) launch() {
	limit := s.cfg.InitWindow
	if limit > s.f.Size {
		limit = s.f.Size
	}
	for s.sentNext < limit {
		s.sendNext(limit)
	}
}

func (s *sender) sendNext(limit int64) {
	end := s.sentNext + netsim.MSS
	if end > limit {
		end = limit
	}
	if end <= s.sentNext {
		return
	}
	pkt := s.f.Src.Data(s.f.ID, s.f.Dst.ID(), s.sentNext, int32(end-s.sentNext), s.cfg.DataPrio)
	s.f.Src.Send(pkt)
	s.sentNext = end
}

// Handle implements netsim.Endpoint: NACKs queue retransmissions, PULLs
// clock out one packet (retransmission first).
func (s *sender) Handle(pkt *netsim.Packet) {
	if s.f.Done() {
		return
	}
	switch pkt.Kind {
	case netsim.Ctrl: // NACK for a trimmed packet
		ni := pkt.Meta.(nackInfo)
		s.rtxQueue = append(s.rtxQueue, ni)
	case netsim.Pull:
		if len(s.rtxQueue) > 0 {
			ni := s.rtxQueue[0]
			s.rtxQueue = s.rtxQueue[1:]
			rp := s.f.Src.Data(s.f.ID, s.f.Dst.ID(), ni.Seq, ni.Len, s.cfg.DataPrio)
			rp.Retrans = true
			s.f.Src.Send(rp)
			return
		}
		s.sendNext(s.f.Size)
	}
}

// pullPacer serializes PULL transmission per receiving host at its
// downlink packet rate, across all of the host's inbound NDP flows.
// The queue is a head-indexed ring over one backing array: popping by
// reslicing (queue = queue[1:]) would strand the front capacity, so
// every append past the high-water mark reallocated — the pacer was one
// of the hottest allocation sites in the benchmark profile.
type pullPacer struct {
	env    *transport.Env
	host   *netsim.Host
	queue  []*netsim.Packet
	head   int
	pacing bool
	// sendFn is sendOne bound once; re-arming with a method value would
	// allocate a closure per pull.
	sendFn func()
}

func (pp *pullPacer) enqueue(pull *netsim.Packet) {
	pp.queue = append(pp.queue, pull)
	if !pp.pacing {
		pp.pacing = true
		pp.sendOne()
	}
}

func (pp *pullPacer) sendOne() {
	if pp.head == len(pp.queue) {
		// Drained: rewind to the front of the backing array so future
		// appends reuse it.
		pp.queue = pp.queue[:0]
		pp.head = 0
		pp.pacing = false
		return
	}
	pull := pp.queue[pp.head]
	pp.queue[pp.head] = nil
	pp.head++
	// Compact a mostly-consumed queue so a pacer that never fully drains
	// cannot grow its backing array without bound.
	if pp.head >= 64 && pp.head*2 >= len(pp.queue) {
		n := copy(pp.queue, pp.queue[pp.head:])
		clearTail := pp.queue[n:]
		for i := range clearTail {
			clearTail[i] = nil
		}
		pp.queue = pp.queue[:n]
		pp.head = 0
	}
	pp.host.Send(pull)
	gap := pp.host.Rate().TxTime(netsim.MSS + netsim.HeaderBytes)
	pp.env.Sched().After(gap, pp.sendFn)
}

// receiver reassembles, NACKs trimmed arrivals, and pulls.
type receiver struct {
	env   *transport.Env
	f     *transport.Flow
	r     *transport.Reassembly
	pacer *pullPacer
	retry sim.Timer
	// retryFn is retryFired bound once; an inline closure would allocate
	// on every re-arm (once per data arrival).
	retryFn func()
}

// Handle implements netsim.Endpoint.
func (rc *receiver) Handle(pkt *netsim.Packet) {
	if pkt.Kind != netsim.Data {
		return
	}
	if pkt.Trimmed {
		// Header survived: tell the sender immediately, then pull.
		nack := rc.f.Dst.Ctrl(netsim.Ctrl, rc.f.ID, rc.f.Src.ID(), 0)
		nack.Meta = nackInfo{Seq: pkt.Seq, Len: pkt.PayloadLen}
		rc.f.Dst.Send(nack)
	} else {
		rc.r.Add(pkt.Seq, pkt.PayloadLen)
		if rc.r.Complete() {
			rc.retry.Stop()
			rc.env.Complete(rc.f)
			return
		}
	}
	rc.armRetry()
	// One pull per arrival while the flow is incomplete: arrivals for
	// data we already hold still clock out pulls, which covers pulls
	// consumed by retransmissions of trimmed packets. Spurious trailing
	// pulls are harmless (the sender no-ops when nothing remains).
	pull := rc.f.Dst.Ctrl(netsim.Pull, rc.f.ID, rc.f.Src.ID(), 0)
	rc.pacer.enqueue(pull)
}

// armRetry is the tail-loss backstop: if the flow stalls (e.g. the last
// data packet or a pull was lost on a drop-tail fabric), issue a fresh
// pull and NACK the first gap.
func (rc *receiver) armRetry() {
	rc.retry.Stop()
	if rc.retryFn == nil {
		rc.retryFn = rc.retryFired
	}
	rc.retry = rc.env.Sched().After(rc.env.RTO(), rc.retryFn)
}

func (rc *receiver) retryFired() {
	if rc.f.Done() || rc.r.Complete() {
		return
	}
	miss := rc.r.FirstMissing()
	end := rc.r.NextCovered(miss, rc.f.Size)
	n := int32(min64(end-miss, netsim.MSS))
	nack := rc.f.Dst.Ctrl(netsim.Ctrl, rc.f.ID, rc.f.Src.ID(), 0)
	nack.Meta = nackInfo{Seq: miss, Len: n}
	rc.f.Dst.Send(nack)
	pull := rc.f.Dst.Ctrl(netsim.Pull, rc.f.ID, rc.f.Src.ID(), 0)
	rc.pacer.enqueue(pull)
	rc.armRetry()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
