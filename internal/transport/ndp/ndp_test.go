package ndp

import (
	"testing"

	"ppt/internal/sim"
	"ppt/internal/transport"
	"ppt/internal/transport/transporttest"
)

func TestSingleFlowCompletes(t *testing.T) {
	env := transporttest.NewStarEnv(4, transporttest.WithTrim())
	sum := transporttest.MustComplete(t, env, New(Config{}), []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 2_000_000},
	})
	if sum.OverallAvg < 1600*sim.Microsecond {
		t.Fatalf("impossibly fast: %v", sum.OverallAvg)
	}
}

func TestTinyFlowFirstWindow(t *testing.T) {
	env := transporttest.NewStarEnv(4, transporttest.WithTrim())
	sum := transporttest.MustComplete(t, env, New(Config{}), []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 5_000},
	})
	if sum.OverallAvg > env.BaseRTT() {
		t.Fatalf("tiny flow FCT %v", sum.OverallAvg)
	}
}

func TestTrimmingUnderIncast(t *testing.T) {
	// A hard incast on a trimming fabric with a small buffer: payloads
	// get cut, headers survive, NACK+pull recovers everything without
	// timeouts dominating.
	env := transporttest.NewStarEnv(9, transporttest.WithTrim(), transporttest.WithBuffer(40_000))
	env.RTOMin = 20 * sim.Millisecond // recovery must not rely on RTO
	flows := transporttest.IncastFlows(8, 300_000)
	sum := transporttest.MustComplete(t, env, New(Config{}), flows)
	var trims int64
	for _, p := range env.Net.SwitchPorts() {
		trims += p.Stats.Trims
	}
	if trims == 0 {
		t.Fatal("no trims under incast on a trimming fabric")
	}
	// 8x300KB over one 10G downlink = ~1.92ms of serialization.
	if sum.OverallAvg > 6*sim.Millisecond {
		t.Fatalf("avg FCT %v indicates timeout-dominated recovery", sum.OverallAvg)
	}
}

func TestPullPacingSharesDownlink(t *testing.T) {
	// Two flows to one receiver: the shared pull pacer must interleave
	// pulls so both finish in bottleneck time, roughly fairly.
	env := transporttest.NewStarEnv(4, transporttest.WithTrim())
	flows := []transport.SimpleFlow{
		{ID: 1, Src: 1, Dst: 0, Size: 2_000_000},
		{ID: 2, Src: 2, Dst: 0, Size: 2_000_000},
	}
	transporttest.MustComplete(t, env, New(Config{}), flows)
	recs := env.Collector.Records()
	a, b := recs[0].FCT(), recs[1].FCT()
	if a > 2*b || b > 2*a {
		t.Fatalf("unfair pulls: %v vs %v", a, b)
	}
}

func TestCompletesOnDropTailFabric(t *testing.T) {
	// Without trimming, NDP still completes via its retry backstop.
	env := transporttest.NewStarEnv(5, transporttest.WithBuffer(30_000))
	env.RTOMin = 300 * sim.Microsecond
	flows := transporttest.IncastFlows(4, 150_000)
	transporttest.MustComplete(t, env, New(Config{}), flows)
}

func TestInitWindowDefault(t *testing.T) {
	env := transporttest.NewStarEnv(2)
	cfg := Config{}.withDefaults(env)
	if cfg.InitWindow != int64(env.BDP()) {
		t.Fatalf("InitWindow = %d, want %d", cfg.InitWindow, env.BDP())
	}
	if cfg.DataPrio != 1 {
		t.Fatalf("DataPrio = %d", cfg.DataPrio)
	}
}
