// Package transporttest provides fabric fixtures shared by the protocol
// test suites.
package transporttest

import (
	"testing"

	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/stats"
	"ppt/internal/topo"
	"ppt/internal/transport"
)

// StarOpt tweaks the default test fabric.
type StarOpt func(*topo.Config)

// WithTrim enables NDP-style payload trimming.
func WithTrim() StarOpt { return func(c *topo.Config) { c.TrimToHeader = true } }

// WithINT enables in-band telemetry.
func WithINT() StarOpt { return func(c *topo.Config) { c.EnableINT = true } }

// WithDroppable enables Aeolus selective dropping at the given queue
// threshold.
func WithDroppable(th int64) StarOpt {
	return func(c *topo.Config) { c.DroppableThresh = th }
}

// WithBuffer overrides the shared buffer size.
func WithBuffer(b int64) StarOpt { return func(c *topo.Config) { c.SharedBuffer = b } }

// NewStarEnv builds an n-host, 10G, small-RTT test fabric.
func NewStarEnv(n int, opts ...StarOpt) *transport.Env {
	cfg := topo.Config{
		HostRate:            10 * netsim.Gbps,
		LinkDelay:           5 * sim.Microsecond,
		ECNHighK:            30_000,
		ECNLowK:             24_000,
		SharedBuffer:        1 << 20,
		DynamicLowThreshold: true,
	}
	for _, o := range opts {
		o(&cfg)
	}
	env := transport.NewEnv(topo.Star(n, cfg))
	env.RTOMin = 500 * sim.Microsecond
	return env
}

// MustComplete runs flows and fails the test unless all complete.
func MustComplete(t *testing.T, env *transport.Env, proto transport.Protocol, flows []transport.SimpleFlow) stats.Summary {
	t.Helper()
	sum := transport.Run(env, proto, flows, transport.RunConfig{MaxEvents: 50_000_000})
	if sum.Flows != len(flows) {
		t.Fatalf("%s: completed %d/%d flows", proto.Name(), sum.Flows, len(flows))
	}
	return sum
}

// IncastFlows builds n concurrent same-size flows into host 0 from
// senders 1..n.
func IncastFlows(n int, size int64) []transport.SimpleFlow {
	flows := make([]transport.SimpleFlow, n)
	for i := range flows {
		flows[i] = transport.SimpleFlow{
			ID: uint32(i + 1), Src: i + 1, Dst: 0, Size: size,
			Arrive: sim.Time(i) * sim.Microsecond,
		}
	}
	return flows
}

// MixedFlows builds a mix of one large and several small flows toward
// host 0, the small ones arriving while the large one is in flight.
func MixedFlows(nSmall int, largeSize, smallSize int64) []transport.SimpleFlow {
	flows := []transport.SimpleFlow{{ID: 1, Src: 1, Dst: 0, Size: largeSize}}
	for i := 0; i < nSmall; i++ {
		flows = append(flows, transport.SimpleFlow{
			ID: uint32(i + 2), Src: 2 + i%2, Dst: 0, Size: smallSize,
			Arrive: 100*sim.Microsecond + sim.Time(i)*20*sim.Microsecond,
		})
	}
	return flows
}
