package homa

import (
	"testing"

	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/transport"
	"ppt/internal/transport/transporttest"
)

func TestSingleFlowCompletes(t *testing.T) {
	env := transporttest.NewStarEnv(4)
	sum := transporttest.MustComplete(t, env, New(Config{}), []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 2_000_000},
	})
	if sum.OverallAvg < 1600*sim.Microsecond {
		t.Fatalf("impossibly fast: %v", sum.OverallAvg)
	}
}

func TestTinyFlowUnscheduledOnly(t *testing.T) {
	// A sub-RTTbytes flow completes in about one way + no grants.
	env := transporttest.NewStarEnv(4)
	sum := transporttest.MustComplete(t, env, New(Config{}), []transport.SimpleFlow{
		{ID: 1, Src: 0, Dst: 1, Size: 5_000},
	})
	if sum.OverallAvg > env.BaseRTT() {
		t.Fatalf("tiny flow FCT %v exceeds an RTT %v", sum.OverallAvg, env.BaseRTT())
	}
}

func TestUnschedPrioBySize(t *testing.T) {
	if got := unschedPrio(1_000, 50_000); got != 0 {
		t.Fatalf("small flow unsched prio = %d", got)
	}
	if got := unschedPrio(1_000_000, 50_000); got != 1 {
		t.Fatalf("large flow unsched prio = %d", got)
	}
}

func TestSRPTFavorsShortFlow(t *testing.T) {
	// One long and one short flow into the same receiver: SRPT grants
	// must let the short one finish far sooner than proportional
	// sharing would.
	env := transporttest.NewStarEnv(4)
	flows := []transport.SimpleFlow{
		{ID: 1, Src: 1, Dst: 0, Size: 8_000_000},
		{ID: 2, Src: 2, Dst: 0, Size: 400_000, Arrive: 100 * sim.Microsecond},
	}
	transporttest.MustComplete(t, env, New(Config{}), flows)
	var short, long sim.Time
	for _, r := range env.Collector.Records() {
		if r.FlowID == 2 {
			short = r.FCT()
		} else {
			long = r.FCT()
		}
	}
	// 400KB at 10G is 320us alone; under fair sharing with the elephant
	// it would be ~640us+. SRPT should keep it near solo time.
	if short > 3*long/8 && short > 700*sim.Microsecond {
		t.Fatalf("short flow FCT %v (long %v): SRPT not effective", short, long)
	}
}

func TestOvercommitGrantsTwoFlows(t *testing.T) {
	env := transporttest.NewStarEnv(6)
	proto := New(Config{Overcommit: 2})
	flows := transporttest.IncastFlows(4, 2_000_000)
	transporttest.MustComplete(t, env, proto, flows)
	// With overcommitment 2, the receiver should have granted two flows
	// concurrently; total run time must be ~ sum of serializations (the
	// downlink is the bottleneck), not 4x solo (which would indicate
	// serialization of grant scheduling mistakes).
	sum := env.Collector.Summarize()
	solo := sim.Time(float64(2_000_000*8) / 10e9 * float64(sim.Second))
	if sum.OverallAvg > 5*solo {
		t.Fatalf("avg FCT %v too slow vs solo %v", sum.OverallAvg, solo)
	}
}

func TestLossRecoveryViaResend(t *testing.T) {
	// Tiny shared buffer: the incast burst of unscheduled packets
	// overflows and must be recovered by timeout RESENDs.
	env := transporttest.NewStarEnv(9, transporttest.WithBuffer(30_000))
	env.RTOMin = 300 * sim.Microsecond
	flows := transporttest.IncastFlows(8, 150_000)
	transporttest.MustComplete(t, env, New(Config{}), flows)
	var drops int64
	for _, p := range env.Net.SwitchPorts() {
		drops += p.Stats.Drops
	}
	if drops == 0 {
		t.Fatal("expected drops under incast with 30KB buffer")
	}
}

func TestKeepaliveRecoversLostProbe(t *testing.T) {
	// Force the entire unscheduled burst (one packet) to drop by
	// filling the buffer with a concurrent incast, then verify the
	// keepalive eventually delivers.
	env := transporttest.NewStarEnv(9, transporttest.WithBuffer(20_000))
	env.RTOMin = 300 * sim.Microsecond
	flows := transporttest.IncastFlows(8, 100_000)
	flows = append(flows, transport.SimpleFlow{ID: 99, Src: 8, Dst: 0, Size: 1_000, Arrive: 5 * sim.Microsecond})
	transporttest.MustComplete(t, env, New(Config{}), flows)
}

func TestGrantWindowBounded(t *testing.T) {
	// The receiver must never grant more than RTTbytes beyond received.
	env := transporttest.NewStarEnv(4)
	cfg := Config{RTTBytes: 20_000}.withDefaults(env)
	mgr := &rxManager{env: env, cfg: cfg,
		grants: transport.PoolFor(env, grantInfoPool, newGrantInfo)}
	f := &transport.Flow{ID: 1, Src: env.Net.Hosts[1], Dst: env.Net.Hosts[0], Size: 1_000_000}
	rx := &rxFlow{mgr: mgr, f: f, r: transport.NewReassembly(f.Size), granted: cfg.RTTBytes}
	mgr.insert(rx)
	mgr.pump()
	if rx.granted-rx.r.Received() > cfg.RTTBytes {
		t.Fatalf("outstanding grants %d exceed RTTbytes %d",
			rx.granted-rx.r.Received(), cfg.RTTBytes)
	}
	// Simulate arrivals; grants must advance but stay bounded.
	rx.r.Add(0, netsim.MSS)
	mgr.pump()
	if rx.granted-rx.r.Received() > cfg.RTTBytes {
		t.Fatalf("outstanding grants %d exceed RTTbytes after arrival",
			rx.granted-rx.r.Received())
	}
}

func TestConfigDefaults(t *testing.T) {
	env := transporttest.NewStarEnv(2)
	cfg := Config{}.withDefaults(env)
	if cfg.RTTBytes != int64(env.BDP()) {
		t.Fatalf("RTTBytes default = %d, want BDP %d", cfg.RTTBytes, env.BDP())
	}
	if cfg.Overcommit != 2 {
		t.Fatalf("Overcommit default = %d", cfg.Overcommit)
	}
}
