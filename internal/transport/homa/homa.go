// Package homa implements the Homa transport [32] at the level of detail
// the PPT paper evaluates it: a receiver-driven protocol in which
// senders blindly transmit RTTbytes of "unscheduled" data at line rate
// when a message starts (the pre-credit phase the paper criticizes), and
// receivers drive the rest with per-packet grants, overcommitting the
// downlink to a configurable number of flows chosen SRPT-style by
// remaining bytes — which requires knowing flow sizes a priori.
// Loss recovery is timeout-based (as in the Aeolus simulator the paper
// uses to evaluate Homa), via receiver RESEND requests.
package homa

import (
	"sort"

	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/transport"
)

// Config tunes Homa.
type Config struct {
	// RTTBytes is the unscheduled allowance and per-flow grant window
	// (Table 3: 50KB testbed, 45KB simulations). Zero derives it from
	// the fabric BDP.
	RTTBytes int64
	// Overcommit is the number of flows granted concurrently (paper
	// setting: 2).
	Overcommit int
}

func (c Config) withDefaults(env *transport.Env) Config {
	if c.RTTBytes == 0 {
		c.RTTBytes = int64(env.BDP())
	}
	if c.Overcommit == 0 {
		c.Overcommit = 2
	}
	return c
}

// dataInfo rides on every data packet so the receiver learns the flow
// size (Homa's prior-knowledge assumption).
type dataInfo struct {
	Size      int64
	Scheduled bool
}

// grantInfo rides on Grant packets.
type grantInfo struct {
	UpTo int64 // sender may transmit bytes below this offset
	Prio int8
}

// resendInfo rides on Ctrl packets: retransmit [Seq, Seq+Len).
type resendInfo struct {
	Seq int64
	Len int64
}

// Proto is the Homa protocol factory. One Proto instance owns the
// per-host receiver managers, so use a single instance per run.
type Proto struct {
	Cfg Config

	managers map[int32]*rxManager
}

// New builds a Homa protocol instance.
func New(cfg Config) *Proto {
	return &Proto{Cfg: cfg, managers: make(map[int32]*rxManager)}
}

// Name implements transport.Protocol.
func (*Proto) Name() string { return "homa" }

// Start implements transport.Protocol.
func (p *Proto) Start(env *transport.Env, f *transport.Flow) {
	cfg := p.Cfg.withDefaults(env)
	mgr := p.managers[f.Dst.ID()]
	if mgr == nil {
		mgr = &rxManager{env: env, cfg: cfg, flows: make(map[uint32]*rxFlow)}
		p.managers[f.Dst.ID()] = mgr
	}
	rx := &rxFlow{mgr: mgr, f: f, r: transport.NewReassembly(f.Size), granted: min64(cfg.RTTBytes, f.Size)}
	mgr.flows[f.ID] = rx
	f.Dst.Bind(f.ID, true, rx)

	s := &sender{env: env, f: f, cfg: cfg}
	f.Src.Bind(f.ID, false, s)
	s.launch()
}

// unschedPrio picks the unscheduled priority from the flow size: short
// messages ride P0, longer ones P1 (Homa's CDF-derived cutoffs, reduced
// to the two unscheduled levels used here).
func unschedPrio(size, rttBytes int64) int8 {
	if size <= rttBytes {
		return 0
	}
	return 1
}

// sender transmits unscheduled bytes blindly, then obeys grants.
type sender struct {
	env *transport.Env
	f   *transport.Flow
	cfg Config

	sentNext int64     // next new byte to transmit
	keep     sim.Timer // pre-grant keepalive
	gotRx    bool      // receiver has spoken (grant or resend arrived)

	// schedInfo/unschedInfo are the only two dataInfo values this sender
	// ever attaches; packets point at one of them instead of allocating a
	// fresh copy per packet. Safe because delivery is a sink: endpoints
	// may not retain Meta past Handle.
	schedInfo   dataInfo
	unschedInfo dataInfo
	// keepFn is keepFired bound once: evaluating the method value inline
	// would allocate a fresh closure on every re-arm.
	keepFn func()
}

func (s *sender) launch() {
	s.schedInfo = dataInfo{Size: s.f.Size, Scheduled: true}
	s.unschedInfo = dataInfo{Size: s.f.Size}
	s.keepFn = s.keepFired
	unsched := min64(s.cfg.RTTBytes, s.f.Size)
	// Line-rate blind transmission: dump the whole unscheduled span on
	// the NIC; it serializes at line rate (the pre-credit burst).
	for s.sentNext < unsched {
		s.sendChunk(s.sentNext, unsched, unschedPrio(s.f.Size, s.cfg.RTTBytes), false, false)
	}
	s.armKeepalive()
}

// sendChunk emits one MSS-bounded packet of [from, limit) and advances
// sentNext when it extends new territory.
func (s *sender) sendChunk(from, limit int64, prio int8, scheduled, retrans bool) {
	end := from + netsim.MSS
	if end > limit {
		end = limit
	}
	if end <= from {
		return
	}
	pkt := s.f.Src.Data(s.f.ID, s.f.Dst.ID(), from, int32(end-from), prio)
	pkt.Retrans = retrans
	if scheduled {
		pkt.Meta = &s.schedInfo
	} else {
		pkt.Meta = &s.unschedInfo
	}
	s.f.Src.Send(pkt)
	if end > s.sentNext {
		s.sentNext = end
	}
}

// armKeepalive guards against the receiver never learning of the flow
// (all unscheduled packets lost): resend the first packet until any
// receiver signal arrives.
func (s *sender) armKeepalive() {
	s.keep = s.env.Sched().After(s.env.RTO(), s.keepFn)
}

func (s *sender) keepFired() {
	if s.f.Done() || s.gotRx {
		return
	}
	s.sendChunk(0, min64(netsim.MSS, s.f.Size), 0, false, true)
	s.armKeepalive()
}

// Handle implements netsim.Endpoint (grants and resend requests).
func (s *sender) Handle(pkt *netsim.Packet) {
	if s.f.Done() {
		return
	}
	s.gotRx = true
	switch pkt.Kind {
	case netsim.Grant:
		gi := pkt.Meta.(*grantInfo)
		limit := min64(gi.UpTo, s.f.Size)
		for s.sentNext < limit {
			s.sendChunk(s.sentNext, limit, gi.Prio, true, false)
		}
	case netsim.Ctrl:
		ri := pkt.Meta.(*resendInfo)
		end := min64(ri.Seq+ri.Len, s.f.Size)
		for seq := ri.Seq; seq < end; seq += netsim.MSS {
			s.sendChunk(seq, end, 0, true, true)
		}
	}
}

// rxManager is the per-host receiver scheduler: it ranks incomplete
// inbound flows by remaining bytes (SRPT) and keeps grants flowing to
// the top Overcommit of them.
type rxManager struct {
	env   *transport.Env
	cfg   Config
	flows map[uint32]*rxFlow

	// active is pump's scratch buffer, reused across calls (pump runs on
	// every data arrival and never escapes the slice).
	active []*rxFlow
}

// pump recomputes the grant schedule after every arrival.
func (m *rxManager) pump() {
	if len(m.flows) == 0 {
		return
	}
	active := m.active[:0]
	for _, rx := range m.flows {
		if rx.granted < rx.f.Size {
			active = append(active, rx)
		}
	}
	m.active = active
	sort.Slice(active, func(i, j int) bool {
		ri := active[i].f.Size - active[i].r.Received()
		rj := active[j].f.Size - active[j].r.Received()
		if ri != rj {
			return ri < rj
		}
		return active[i].f.ID < active[j].f.ID
	})
	k := m.cfg.Overcommit
	if k > len(active) {
		k = len(active)
	}
	for rank := 0; rank < k; rank++ {
		rx := active[rank]
		prio := int8(2 + rank)
		if prio > 7 {
			prio = 7
		}
		// Keep RTTBytes outstanding: granted beyond what has arrived.
		for rx.granted-rx.r.Received() < m.cfg.RTTBytes && rx.granted < rx.f.Size {
			upTo := min64(rx.granted+netsim.MSS, rx.f.Size)
			g := rx.f.Dst.Ctrl(netsim.Grant, rx.f.ID, rx.f.Src.ID(), 0)
			g.Meta = &grantInfo{UpTo: upTo, Prio: prio}
			rx.f.Dst.Send(g)
			rx.granted = upTo
		}
	}
}

// rxFlow is one inbound message.
type rxFlow struct {
	mgr     *rxManager
	f       *transport.Flow
	r       *transport.Reassembly
	granted int64
	retry   sim.Timer
	// retryFn is retryFired bound once (see sender.keepFn).
	retryFn func()
}

// Handle implements netsim.Endpoint (data arrivals).
func (rx *rxFlow) Handle(pkt *netsim.Packet) {
	if pkt.Kind != netsim.Data {
		return
	}
	rx.r.Add(pkt.Seq, pkt.PayloadLen)
	if rx.r.Complete() {
		rx.retry.Stop()
		delete(rx.mgr.flows, rx.f.ID)
		rx.mgr.env.Complete(rx.f)
		rx.mgr.pump()
		return
	}
	rx.armRetry()
	rx.mgr.pump()
}

// armRetry schedules a timeout-based RESEND for the first gap.
func (rx *rxFlow) armRetry() {
	rx.retry.Stop()
	if rx.retryFn == nil {
		rx.retryFn = rx.retryFired
	}
	rx.retry = rx.mgr.env.Sched().After(rx.mgr.env.RTO(), rx.retryFn)
}

func (rx *rxFlow) retryFired() {
	if rx.f.Done() || rx.r.Complete() {
		return
	}
	miss := rx.r.FirstMissing()
	end := rx.r.NextCovered(miss, rx.f.Size)
	if end-miss > rx.mgr.cfg.RTTBytes {
		end = miss + rx.mgr.cfg.RTTBytes
	}
	req := rx.f.Dst.Ctrl(netsim.Ctrl, rx.f.ID, rx.f.Src.ID(), 0)
	req.Meta = &resendInfo{Seq: miss, Len: end - miss}
	rx.f.Dst.Send(req)
	rx.armRetry()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
