// Package homa implements the Homa transport [32] at the level of detail
// the PPT paper evaluates it: a receiver-driven protocol in which
// senders blindly transmit RTTbytes of "unscheduled" data at line rate
// when a message starts (the pre-credit phase the paper criticizes), and
// receivers drive the rest with per-packet grants, overcommitting the
// downlink to a configurable number of flows chosen SRPT-style by
// remaining bytes — which requires knowing flow sizes a priori.
// Loss recovery is timeout-based (as in the Aeolus simulator the paper
// uses to evaluate Homa), via receiver RESEND requests.
package homa

import (
	"sort"

	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/transport"
)

// Config tunes Homa.
type Config struct {
	// RTTBytes is the unscheduled allowance and per-flow grant window
	// (Table 3: 50KB testbed, 45KB simulations). Zero derives it from
	// the fabric BDP.
	RTTBytes int64
	// Overcommit is the number of flows granted concurrently (paper
	// setting: 2).
	Overcommit int
}

func (c Config) withDefaults(env *transport.Env) Config {
	if c.RTTBytes == 0 {
		c.RTTBytes = int64(env.BDP())
	}
	if c.Overcommit == 0 {
		c.Overcommit = 2
	}
	return c
}

// dataInfo rides on every data packet so the receiver learns the flow
// size (Homa's prior-knowledge assumption).
type dataInfo struct {
	Size      int64
	Scheduled bool
}

// grantInfo rides on Grant packets. Instances cycle through an Env pool:
// the receiver manager Gets one per grant, the sender consumes it in
// Handle and Puts it straight back (reuse is dirty, so every producer
// sets both fields).
type grantInfo struct {
	transport.PoolNode
	UpTo int64 // sender may transmit bytes below this offset
	Prio int8
}

// resendInfo rides on Ctrl packets: retransmit [Seq, Seq+Len).
type resendInfo struct {
	Seq int64
	Len int64
}

// Proto is the Homa protocol factory. One Proto instance owns the
// per-host receiver managers, so use a single instance per run.
type Proto struct {
	Cfg Config

	managers map[int32]*rxManager
}

// New builds a Homa protocol instance.
func New(cfg Config) *Proto {
	return &Proto{Cfg: cfg, managers: make(map[int32]*rxManager)}
}

// Name implements transport.Protocol.
func (*Proto) Name() string { return "homa" }

// RecyclesFlows implements transport.FlowRecycler: Recycle stops the
// keepalive and retry timers — the only callbacks that could reach a
// recycled Flow.
func (*Proto) RecyclesFlows() {}

// Pool keys for the per-flow objects Start draws from the Env.
var (
	senderPool    = transport.NewPoolKey("homa.sender")
	rxFlowPool    = transport.NewPoolKey("homa.rxflow")
	grantInfoPool = transport.NewPoolKey("homa.grantinfo")
)

func newGrantInfo() *grantInfo { return &grantInfo{} }

// Start implements transport.Protocol.
func (p *Proto) Start(env *transport.Env, f *transport.Flow) {
	cfg := p.Cfg.withDefaults(env)
	mgr := p.managers[f.Dst.ID()]
	if mgr == nil {
		mgr = &rxManager{env: env, cfg: cfg,
			grants: transport.PoolFor(env, grantInfoPool, newGrantInfo)}
		p.managers[f.Dst.ID()] = mgr
	}
	rx := transport.PoolFor(env, rxFlowPool, newIdleRxFlow).Get()
	rx.init(mgr, f)
	rx.pooled = true
	mgr.insert(rx)
	f.Dst.Bind(f.ID, true, rx)

	s := transport.PoolFor(env, senderPool, newIdleSender).Get()
	s.init(env, f, cfg)
	s.pooled = true
	f.Src.Bind(f.ID, false, s)
	s.launch()
}

// unschedPrio picks the unscheduled priority from the flow size: short
// messages ride P0, longer ones P1 (Homa's CDF-derived cutoffs, reduced
// to the two unscheduled levels used here).
func unschedPrio(size, rttBytes int64) int8 {
	if size <= rttBytes {
		return 0
	}
	return 1
}

// sender transmits unscheduled bytes blindly, then obeys grants.
type sender struct {
	transport.PoolNode
	env *transport.Env
	f   *transport.Flow
	cfg Config

	sentNext int64     // next new byte to transmit
	keep     sim.Timer // pre-grant keepalive
	gotRx    bool      // receiver has spoken (grant or resend arrived)
	pooled   bool      // drawn from the Env pool (Start)

	// grants is the Env grant-meta pool, cached to skip the registry
	// lookup on every consumed grant.
	grants *transport.Pool[*grantInfo]

	// schedInfo/unschedInfo are the only two dataInfo values this sender
	// ever attaches; packets point at one of them instead of allocating a
	// fresh copy per packet. Safe because delivery is a sink: endpoints
	// may not retain Meta past Handle.
	schedInfo   dataInfo
	unschedInfo dataInfo
	// keepFn is keepFired bound once: evaluating the method value inline
	// would allocate a fresh closure on every re-arm.
	keepFn func()
}

// newIdleSender builds an unbound sender shell for the pool.
func newIdleSender() *sender {
	s := &sender{}
	s.keepFn = s.keepFired
	return s
}

// init (re)targets the sender at a flow.
func (s *sender) init(env *transport.Env, f *transport.Flow, cfg Config) {
	s.env, s.f, s.cfg = env, f, cfg
	s.sentNext = 0
	s.keep = sim.Timer{}
	s.gotRx = false
	s.grants = transport.PoolFor(env, grantInfoPool, newGrantInfo)
	s.schedInfo = dataInfo{Size: f.Size, Scheduled: true}
	s.unschedInfo = dataInfo{Size: f.Size}
}

// Recycle implements transport.EndpointRecycler.
func (s *sender) Recycle(env *transport.Env) {
	s.keep.Stop()
	if !s.pooled {
		return
	}
	s.pooled = false
	s.f = nil
	transport.PoolFor(env, senderPool, newIdleSender).Put(s)
}

func (s *sender) launch() {
	unsched := min64(s.cfg.RTTBytes, s.f.Size)
	// Line-rate blind transmission: dump the whole unscheduled span on
	// the NIC; it serializes at line rate (the pre-credit burst).
	for s.sentNext < unsched {
		s.sendChunk(s.sentNext, unsched, unschedPrio(s.f.Size, s.cfg.RTTBytes), false, false)
	}
	s.armKeepalive()
}

// sendChunk emits one MSS-bounded packet of [from, limit) and advances
// sentNext when it extends new territory.
func (s *sender) sendChunk(from, limit int64, prio int8, scheduled, retrans bool) {
	end := from + netsim.MSS
	if end > limit {
		end = limit
	}
	if end <= from {
		return
	}
	pkt := s.f.Src.Data(s.f.ID, s.f.Dst.ID(), from, int32(end-from), prio)
	pkt.Retrans = retrans
	if scheduled {
		pkt.Meta = &s.schedInfo
	} else {
		pkt.Meta = &s.unschedInfo
	}
	s.f.Src.Send(pkt)
	if end > s.sentNext {
		s.sentNext = end
	}
}

// armKeepalive guards against the receiver never learning of the flow
// (all unscheduled packets lost): resend the first packet until any
// receiver signal arrives.
func (s *sender) armKeepalive() {
	s.keep = s.env.Sched().After(s.env.RTO(), s.keepFn)
}

func (s *sender) keepFired() {
	if s.f.Done() || s.gotRx {
		return
	}
	s.sendChunk(0, min64(netsim.MSS, s.f.Size), 0, false, true)
	s.armKeepalive()
}

// Handle implements netsim.Endpoint (grants and resend requests).
func (s *sender) Handle(pkt *netsim.Packet) {
	if s.f.Done() {
		return
	}
	s.gotRx = true
	switch pkt.Kind {
	case netsim.Grant:
		gi := pkt.Meta.(*grantInfo)
		upTo, prio := gi.UpTo, gi.Prio
		pkt.Meta = nil
		s.grants.Put(gi)
		limit := min64(upTo, s.f.Size)
		for s.sentNext < limit {
			s.sendChunk(s.sentNext, limit, prio, true, false)
		}
	case netsim.Ctrl:
		ri := pkt.Meta.(*resendInfo)
		end := min64(ri.Seq+ri.Len, s.f.Size)
		for seq := ri.Seq; seq < end; seq += netsim.MSS {
			s.sendChunk(seq, end, 0, true, true)
		}
	}
}

// rxManager is the per-host receiver scheduler: it ranks incomplete
// inbound flows by remaining bytes (SRPT) and keeps grants flowing to
// the top Overcommit of them.
type rxManager struct {
	env *transport.Env
	cfg Config

	// order holds the inbound flows sorted by (remaining bytes, flow ID)
	// — the SRPT ranking pump used to recompute with a full sort on every
	// arrival. An arrival can only shrink its flow's remaining bytes, so
	// reposition restores the invariant with a leftward bubble; insert
	// and remove shift the tail. Each rxFlow caches its index in pos.
	order []*rxFlow

	// grants is the Env grant-meta pool (senders return consumed metas).
	grants *transport.Pool[*grantInfo]
}

// rxLess orders a before b under SRPT with flow-ID tie-break — exactly
// the comparator of the sort.Slice this ordering replaced.
func rxLess(a, b *rxFlow) bool {
	ra := a.f.Size - a.r.Received()
	rb := b.f.Size - b.r.Received()
	if ra != rb {
		return ra < rb
	}
	return a.f.ID < b.f.ID
}

// insert places rx at its sorted position.
func (m *rxManager) insert(rx *rxFlow) {
	i := sort.Search(len(m.order), func(i int) bool { return rxLess(rx, m.order[i]) })
	m.order = append(m.order, nil)
	copy(m.order[i+1:], m.order[i:])
	m.order[i] = rx
	for j := i; j < len(m.order); j++ {
		m.order[j].pos = j
	}
}

// remove splices rx out of the order.
func (m *rxManager) remove(rx *rxFlow) {
	i := rx.pos
	copy(m.order[i:], m.order[i+1:])
	m.order[len(m.order)-1] = nil
	m.order = m.order[:len(m.order)-1]
	for j := i; j < len(m.order); j++ {
		m.order[j].pos = j
	}
}

// reposition bubbles rx leftward after an arrival shrank its key.
func (m *rxManager) reposition(rx *rxFlow) {
	for rx.pos > 0 && rxLess(rx, m.order[rx.pos-1]) {
		prev := m.order[rx.pos-1]
		m.order[rx.pos-1], m.order[rx.pos] = rx, prev
		prev.pos = rx.pos
		rx.pos--
	}
}

// pump tops up grants for the first Overcommit ungranted flows in SRPT
// order after every arrival.
func (m *rxManager) pump() {
	k := m.cfg.Overcommit
	rank := 0
	for _, rx := range m.order {
		if rank >= k {
			break
		}
		if rx.granted >= rx.f.Size {
			// Fully granted but not yet fully received: it holds no
			// downlink credit, so it does not consume an overcommit slot.
			continue
		}
		prio := int8(2 + rank)
		if prio > 7 {
			prio = 7
		}
		// Keep RTTBytes outstanding: granted beyond what has arrived.
		for rx.granted-rx.r.Received() < m.cfg.RTTBytes && rx.granted < rx.f.Size {
			upTo := min64(rx.granted+netsim.MSS, rx.f.Size)
			g := rx.f.Dst.Ctrl(netsim.Grant, rx.f.ID, rx.f.Src.ID(), 0)
			gi := m.grants.Get()
			gi.UpTo, gi.Prio = upTo, prio
			g.Meta = gi
			rx.f.Dst.Send(g)
			rx.granted = upTo
		}
		rank++
	}
}

// rxFlow is one inbound message.
type rxFlow struct {
	transport.PoolNode
	mgr     *rxManager
	f       *transport.Flow
	r       *transport.Reassembly
	granted int64
	pos     int // index in mgr.order
	pooled  bool
	retry   sim.Timer
	// retryFn is retryFired bound once (see sender.keepFn).
	retryFn func()
	// resend is the stable RESEND meta in-flight requests point at (the
	// schedInfo pattern: delivery is a sink, so one value per flow
	// suffices).
	resend resendInfo
}

// newIdleRxFlow builds an unbound receiver shell for the pool.
func newIdleRxFlow() *rxFlow {
	rx := &rxFlow{r: transport.NewReassembly(0)}
	rx.retryFn = rx.retryFired
	return rx
}

// init (re)targets the receiver at a flow.
func (rx *rxFlow) init(mgr *rxManager, f *transport.Flow) {
	rx.mgr, rx.f = mgr, f
	rx.r.Reset(f.Size)
	rx.granted = min64(mgr.cfg.RTTBytes, f.Size)
	rx.retry = sim.Timer{}
	rx.resend = resendInfo{}
}

// Recycle implements transport.EndpointRecycler.
func (rx *rxFlow) Recycle(env *transport.Env) {
	rx.retry.Stop()
	if !rx.pooled {
		return
	}
	rx.pooled = false
	rx.f = nil
	rx.mgr = nil
	transport.PoolFor(env, rxFlowPool, newIdleRxFlow).Put(rx)
}

// Handle implements netsim.Endpoint (data arrivals).
func (rx *rxFlow) Handle(pkt *netsim.Packet) {
	if pkt.Kind != netsim.Data {
		return
	}
	rx.r.Add(pkt.Seq, pkt.PayloadLen)
	mgr := rx.mgr // survives the Recycle inside Complete
	if rx.r.Complete() {
		rx.retry.Stop()
		mgr.remove(rx)
		mgr.env.Complete(rx.f)
		mgr.pump()
		return
	}
	mgr.reposition(rx)
	rx.armRetry()
	mgr.pump()
}

// armRetry schedules a timeout-based RESEND for the first gap.
func (rx *rxFlow) armRetry() {
	rx.retry.Stop()
	if rx.retryFn == nil {
		rx.retryFn = rx.retryFired
	}
	rx.retry = rx.mgr.env.Sched().After(rx.mgr.env.RTO(), rx.retryFn)
}

func (rx *rxFlow) retryFired() {
	if rx.f.Done() || rx.r.Complete() {
		return
	}
	miss := rx.r.FirstMissing()
	end := rx.r.NextCovered(miss, rx.f.Size)
	if end-miss > rx.mgr.cfg.RTTBytes {
		end = miss + rx.mgr.cfg.RTTBytes
	}
	req := rx.f.Dst.Ctrl(netsim.Ctrl, rx.f.ID, rx.f.Src.ID(), 0)
	rx.resend = resendInfo{Seq: miss, Len: end - miss}
	req.Meta = &rx.resend
	rx.f.Dst.Send(req)
	rx.armRetry()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
