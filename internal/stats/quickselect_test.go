package stats

import (
	"math/rand"
	"sort"
	"testing"

	"ppt/internal/sim"
)

// sortKth is the reference implementation selectKth replaced: sort a
// copy, read off index k. Every test below demands bit-identity against
// it — the contract Summarize's golden outputs rest on.
func sortKth(xs []float64, k int) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return sorted[k]
}

func TestSelectKthDuplicateHeavy(t *testing.T) {
	// Duplicate-heavy inputs are quickselect's classic weak spot: a
	// three-way-tied partition must still land k in its final position.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		distinct := 1 + rng.Intn(4) // at most 4 distinct values
		vals := make([]float64, distinct)
		for i := range vals {
			vals[i] = float64(rng.Intn(10)) * 1e3
		}
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = vals[rng.Intn(distinct)]
		}
		k := rng.Intn(n)
		want := sortKth(xs, k)
		got := selectKth(append([]float64(nil), xs...), k)
		if got != want {
			t.Fatalf("trial %d: selectKth(n=%d dup-heavy, k=%d) = %v, sort path gives %v", trial, n, k, got, want)
		}
	}
}

func TestSelectKthAllEqual(t *testing.T) {
	for _, n := range []int{1, 2, 11, 12, 13, 100, 1000} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 42.5
		}
		for _, k := range []int{0, n / 2, n - 1} {
			if got := selectKth(append([]float64(nil), xs...), k); got != 42.5 {
				t.Fatalf("all-equal n=%d k=%d: got %v", n, k, got)
			}
		}
	}
}

func TestSelectKthRandomBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(500)
		xs := make([]float64, n)
		for i := range xs {
			// A mix of magnitudes, including exact ties at full precision.
			switch rng.Intn(3) {
			case 0:
				xs[i] = float64(rng.Intn(50))
			case 1:
				xs[i] = rng.Float64() * 1e9
			default:
				xs[i] = rng.NormFloat64()
			}
		}
		k := rng.Intn(n)
		want := sortKth(xs, k)
		got := selectKth(append([]float64(nil), xs...), k)
		if got != want {
			t.Fatalf("trial %d: selectKth(n=%d, k=%d) = %v, sort path gives %v", trial, n, k, got, want)
		}
	}
}

// TestSummarizeP99CollapsesBelow100 pins the nearest-rank behaviour for
// small samples: with fewer than 100 small flows, ceil(0.99·n) == n, so
// the reported P99 is exactly the maximum small-flow FCT.
func TestSummarizeP99CollapsesBelow100(t *testing.T) {
	for _, n := range []int{1, 2, 13, 50, 99} {
		c := NewCollector()
		var maxFCT sim.Time
		for i := 0; i < n; i++ {
			fct := sim.Time((i*7919)%1000+1) * sim.Microsecond
			if fct > maxFCT {
				maxFCT = fct
			}
			c.Complete(uint32(i), 1000, 0, fct)
		}
		s := c.Summarize()
		if s.SmallP99 != maxFCT {
			t.Fatalf("n=%d: SmallP99 = %v, want max %v", n, s.SmallP99, maxFCT)
		}
	}
	// At exactly 100 the rank steps back off the maximum.
	c := NewCollector()
	for i := 0; i < 100; i++ {
		c.Complete(uint32(i), 1000, 0, sim.Time(i+1)*sim.Microsecond)
	}
	if s := c.Summarize(); s.SmallP99 != 99*sim.Microsecond {
		t.Fatalf("n=100: SmallP99 = %v, want 99us (second-largest)", s.SmallP99)
	}
}

// TestSummarizeDuplicateHeavyMatchesSortPath runs the full Summarize
// pipeline on tie-heavy completions and checks the percentile against
// the independent sort-based Percentile helper.
func TestSummarizeDuplicateHeavyMatchesSortPath(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewCollector()
	var fcts []float64
	for i := 0; i < 500; i++ {
		fct := sim.Time(1+rng.Intn(5)) * 10 * sim.Microsecond // 5 distinct values
		c.Complete(uint32(i), 1000, 0, fct)
		fcts = append(fcts, float64(fct))
	}
	s := c.Summarize()
	if want := sim.Time(Percentile(fcts, 0.99)); s.SmallP99 != want {
		t.Fatalf("duplicate-heavy SmallP99 = %v, sort path gives %v", s.SmallP99, want)
	}
	// Summarize must be repeatable on the same collector (scratch reuse).
	if again := c.Summarize(); again != s {
		t.Fatalf("second Summarize differs: %+v vs %+v", again, s)
	}
}

// TestMergeCanonicalOrderInvariant pins the property the windowed
// engine relies on: however completions are distributed across source
// collectors, the merged log — and the Summary computed from it — is
// identical, bit for bit.
func TestMergeCanonicalOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	records := make([]FCTRecord, 400)
	for i := range records {
		start := sim.Time(rng.Intn(1000)) * sim.Microsecond
		records[i] = FCTRecord{
			FlowID: uint32(i),
			Size:   int64(1000 + rng.Intn(200_000)),
			Start:  start,
			End:    start + sim.Time(1+rng.Intn(5000))*sim.Microsecond,
		}
	}
	merge := func(shards int, perm []int) (*Collector, Summary) {
		srcs := make([]*Collector, shards)
		for i := range srcs {
			srcs[i] = NewCollector()
		}
		for _, idx := range perm {
			r := records[idx]
			srcs[idx%shards].Complete(r.FlowID, r.Size, r.Start, r.End)
		}
		c := NewCollector()
		c.MergeCanonical(srcs...)
		return c, c.Summarize()
	}
	ident := rng.Perm(len(records))
	baseC, baseS := merge(1, ident)
	for _, shards := range []int{2, 3, 7} {
		c, s := merge(shards, rng.Perm(len(records)))
		if s != baseS {
			t.Fatalf("shards=%d summary differs: %+v vs %+v", shards, s, baseS)
		}
		for i, r := range c.Records() {
			if r != baseC.Records()[i] {
				t.Fatalf("shards=%d merged record %d differs: %+v vs %+v", shards, i, r, baseC.Records()[i])
			}
		}
	}
}
