package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ppt/internal/netsim"
	"ppt/internal/sim"
)

func TestIdealFCT(t *testing.T) {
	// 100KB at 10G = 80us serialization + 80us RTT.
	got := IdealFCT(100_000, 10*netsim.Gbps, 80*sim.Microsecond)
	if got != 160*sim.Microsecond {
		t.Fatalf("ideal = %v", got)
	}
}

func TestSlowdowns(t *testing.T) {
	c := NewCollector()
	rate := 10 * netsim.Gbps
	rtt := 80 * sim.Microsecond
	// A flow finishing exactly at its ideal time: slowdown 1.
	c.Complete(1, 100_000, 0, IdealFCT(100_000, rate, rtt))
	// A flow 3x slower.
	c.Complete(2, 100_000, 0, 3*IdealFCT(100_000, rate, rtt))
	s := c.Slowdowns(rate, rtt)
	if math.Abs(s.Mean-2.0) > 1e-9 {
		t.Fatalf("mean slowdown = %v", s.Mean)
	}
	if s.Max != 3.0 || s.P99 != 3.0 {
		t.Fatalf("max/p99 = %v/%v", s.Max, s.P99)
	}
	if s.P50 != 1.0 {
		t.Fatalf("p50 = %v", s.P50)
	}
}

func TestSlowdownsEmpty(t *testing.T) {
	if s := NewCollector().Slowdowns(10*netsim.Gbps, sim.Microsecond); s.Mean != 0 {
		t.Fatalf("empty = %+v", s)
	}
}

func TestBuckets(t *testing.T) {
	c := NewCollector()
	c.Complete(1, 500, 0, 10*sim.Microsecond)        // (0,1KB]
	c.Complete(2, 1_000, 0, 20*sim.Microsecond)      // (0,1KB] boundary
	c.Complete(3, 50_000, 0, 100*sim.Microsecond)    // (10KB,100KB]
	c.Complete(4, 5_000_000, 0, 5*sim.Millisecond)   // (1MB,10MB]
	c.Complete(5, 50_000_000, 0, 50*sim.Millisecond) // (10MB,inf]
	bks := c.Buckets(DefaultBucketBounds)
	if len(bks) != len(DefaultBucketBounds)+1 {
		t.Fatalf("buckets = %d", len(bks))
	}
	if bks[0].Count != 2 {
		t.Fatalf("(0,1KB] count = %d", bks[0].Count)
	}
	if bks[0].Avg != 15*sim.Microsecond {
		t.Fatalf("(0,1KB] avg = %v", bks[0].Avg)
	}
	if bks[2].Count != 1 || bks[4].Count != 1 || bks[5].Count != 1 {
		t.Fatalf("counts = %v %v %v", bks[2].Count, bks[4].Count, bks[5].Count)
	}
	if bks[1].Count != 0 {
		t.Fatalf("(1KB,10KB] should be empty: %d", bks[1].Count)
	}
}

func TestBucketLabels(t *testing.T) {
	b := Bucket{Lo: 10_000, Hi: 100_000}
	if b.String() != "(10KB,100KB]" {
		t.Fatalf("label = %q", b.String())
	}
	last := Bucket{Lo: 10_000_000}
	if last.String() != "(10MB,inf]" {
		t.Fatalf("label = %q", last.String())
	}
}

func TestBucketTable(t *testing.T) {
	c := NewCollector()
	c.Complete(1, 500, 0, 10*sim.Microsecond)
	out := BucketTable(c.Buckets(DefaultBucketBounds))
	if !strings.Contains(out, "(0B,1KB]") || !strings.Contains(out, "10us") {
		t.Fatalf("table:\n%s", out)
	}
}

func TestBucketsPanicsOnUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewCollector().Buckets([]int64{100, 10})
}

func TestJainIndexPerfectFairness(t *testing.T) {
	c := NewCollector()
	for i := uint32(1); i <= 5; i++ {
		c.Complete(i, 1_000_000, 0, sim.Millisecond) // identical throughput
	}
	if j := JainIndex(c.Records()); math.Abs(j-1.0) > 1e-9 {
		t.Fatalf("jain = %v, want 1", j)
	}
}

func TestJainIndexUnfairness(t *testing.T) {
	c := NewCollector()
	c.Complete(1, 1_000_000, 0, sim.Millisecond)     // fast
	c.Complete(2, 1_000_000, 0, 100*sim.Millisecond) // 100x slower
	j := JainIndex(c.Records())
	if j > 0.6 {
		t.Fatalf("jain = %v for a 100x split", j)
	}
	if JainIndex(nil) != 0 {
		t.Fatal("empty jain != 0")
	}
}

func TestGini(t *testing.T) {
	c := NewCollector()
	for i := uint32(1); i <= 4; i++ {
		c.Complete(i, 1_000_000, 0, sim.Millisecond)
	}
	if g := Gini(c.Records()); g > 1e-9 {
		t.Fatalf("equal throughput gini = %v", g)
	}
	u := NewCollector()
	u.Complete(1, 1_000_000, 0, sim.Millisecond)
	u.Complete(2, 1_000_000, 0, 1000*sim.Millisecond)
	if g := Gini(u.Records()); g < 0.3 {
		t.Fatalf("unequal gini = %v", g)
	}
}

// Property: Jain's index is always in (0, 1] for nonempty inputs.
func TestPropertyJainBounds(t *testing.T) {
	prop := func(fcts []uint32) bool {
		if len(fcts) == 0 {
			return true
		}
		c := NewCollector()
		for i, f := range fcts {
			c.Complete(uint32(i), 1000, 0, sim.Time(f%1_000_000+1)*sim.Nanosecond)
		}
		j := JainIndex(c.Records())
		return j > 0 && j <= 1.0000001
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	c := NewCollector()
	c.Complete(1, 50_000, 10*sim.Microsecond, 60*sim.Microsecond)
	c.Complete(2, 5_000_000, 0, 3*sim.Millisecond)
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != 2 {
		t.Fatalf("round trip count = %d", got.Count())
	}
	a, b := c.Summarize(), got.Summarize()
	if a.OverallAvg != b.OverallAvg || a.SmallCount != b.SmallCount {
		t.Fatalf("summaries differ: %v vs %v", a, b)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("flow,size_bytes,start_ns,end_ns,fct_us\nx,1,2,3,4\n")); err == nil {
		t.Fatal("bad flow id accepted")
	}
	c, err := ReadCSV(strings.NewReader(""))
	if err != nil || c.Count() != 0 {
		t.Fatalf("empty read: %v %d", err, c.Count())
	}
}
