package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"ppt/internal/sim"
)

// WriteCSV dumps raw completions as CSV (flow id, size, start/end in
// nanoseconds, fct in microseconds) for external analysis/plotting.
func (c *Collector) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"flow", "size_bytes", "start_ns", "end_ns", "fct_us"}); err != nil {
		return err
	}
	for _, r := range c.records {
		rec := []string{
			strconv.FormatUint(uint64(r.FlowID), 10),
			strconv.FormatInt(r.Size, 10),
			strconv.FormatInt(int64(r.Start)/1000, 10),
			strconv.FormatInt(int64(r.End)/1000, 10),
			strconv.FormatFloat(r.FCT().Micros(), 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses completions previously written by WriteCSV.
func ReadCSV(r io.Reader) (*Collector, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return NewCollector(), nil
	}
	c := NewCollector()
	for i, row := range rows[1:] {
		if len(row) < 4 {
			return nil, fmt.Errorf("stats: csv row %d has %d fields", i+2, len(row))
		}
		flow, err1 := strconv.ParseUint(row[0], 10, 32)
		size, err2 := strconv.ParseInt(row[1], 10, 64)
		start, err3 := strconv.ParseInt(row[2], 10, 64)
		end, err4 := strconv.ParseInt(row[3], 10, 64)
		for _, e := range []error{err1, err2, err3, err4} {
			if e != nil {
				return nil, fmt.Errorf("stats: csv row %d: %w", i+2, e)
			}
		}
		c.Complete(uint32(flow), size, sim.Time(start*1000), sim.Time(end*1000))
	}
	return c, nil
}
