package stats

import "ppt/internal/sim"

// WindowFold folds per-shard completion logs into one spilling master
// collector at windowed-run barriers, replacing the old "spill implies
// monolithic" restriction: bounded-memory million-flow runs now compose
// with the sharded engine.
//
// The windowed driver calls Fold with the round's granted safe bound
// (the minimum of the new per-shard floors): every record whose End
// precedes the bound is final — future completions in shard d happen at
// or after floors[d] — while later records stay in their shard's log
// for a later fold. Each drained batch is sorted in the canonical
// (End, Start, FlowID) order and fed to the master record by record.
//
// Determinism argument (DESIGN.md §7.7): per-shard logs are
// nondecreasing in End (completions append in execution order), and the
// safe bounds strictly time-partition the batches — records with equal
// End always land in the same batch. The concatenation of canonically
// sorted, time-partitioned batches is therefore exactly the globally
// sorted sequence MergeCanonical would produce, so the master's fold
// order — and with it every running float sum and the small-FCT
// multiset the radix P99 selection reads — is bit-identical to the
// in-memory windowed path at every shard count and chunk size.
type WindowFold struct {
	master *Collector
	batch  []FCTRecord
}

// NewWindowFold wraps an empty spilling master collector.
func NewWindowFold(master *Collector) *WindowFold {
	if !master.Spilling() {
		panic("stats: NewWindowFold needs a spilling master collector")
	}
	if master.Count() > 0 {
		panic("stats: NewWindowFold on a non-empty collector")
	}
	return &WindowFold{master: master}
}

// Fold drains every record with End < safe from the shard collectors
// into the master, in canonical order. Caller guarantees no shard can
// complete a flow before safe from here on.
func (w *WindowFold) Fold(safe sim.Time, shards []*Collector) {
	w.fold(shards, safe, false)
}

// FoldAll drains everything that remains — the run is over.
func (w *WindowFold) FoldAll(shards []*Collector) {
	w.fold(shards, 0, true)
}

func (w *WindowFold) fold(shards []*Collector, safe sim.Time, all bool) {
	batch := w.batch[:0]
	for _, c := range shards {
		if c.sp != nil {
			panic("stats: WindowFold from a spilling shard collector")
		}
		recs := c.records
		k := len(recs)
		if !all {
			// The log is nondecreasing in End, so the final records are a
			// contiguous prefix.
			k = 0
			for k < len(recs) && recs[k].End < safe {
				k++
			}
		}
		if k == 0 {
			continue
		}
		batch = append(batch, recs[:k]...)
		m := copy(recs, recs[k:])
		c.records = recs[:m]
	}
	w.batch = batch
	if len(batch) == 0 {
		return
	}
	sortCanonical(batch)
	// Keep the master's resident log inside its chunk across the feed: a
	// partial early spill folds the very same prefix in the very same
	// order a boundary-aligned spill would, so flushing here changes no
	// sum, no spilled byte, and no selection input — only the moment the
	// fold happens.
	if sp := w.master.sp; len(w.master.records) > 0 && len(w.master.records)+len(batch) > sp.chunk {
		w.master.spillChunk()
	}
	for i := range batch {
		r := &batch[i]
		w.master.Complete(r.FlowID, r.Size, r.Start, r.End)
	}
	w.batch = batch[:0]
}

// sortCanonical orders records by canonLess without allocating: an
// insertion sort for window-sized batches, heapsort beyond (same shape
// as netsim's cross-window sort). canonLess is a strict total order, so
// the output sequence is the unique sorted order whatever the
// algorithm.
func sortCanonical(p []FCTRecord) {
	if len(p) <= 24 {
		for i := 1; i < len(p); i++ {
			for j := i; j > 0 && canonLess(&p[j], &p[j-1]); j-- {
				p[j], p[j-1] = p[j-1], p[j]
			}
		}
		return
	}
	n := len(p)
	for i := n/2 - 1; i >= 0; i-- {
		siftCanonical(p, i, n)
	}
	for end := n - 1; end > 0; end-- {
		p[0], p[end] = p[end], p[0]
		siftCanonical(p, 0, end)
	}
}

func siftCanonical(p []FCTRecord, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && canonLess(&p[child], &p[child+1]) {
			child++
		}
		if !canonLess(&p[root], &p[child]) {
			return
		}
		p[root], p[child] = p[child], p[root]
		root = child
	}
}
