package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ppt/internal/netsim"
	"ppt/internal/sim"
)

// Slowdown analysis: FCT normalized by the flow's ideal completion time
// on an unloaded fabric (one base RTT plus serialization at the
// bottleneck rate). This is how the Homa and pFabric lines of work
// report latency, and it makes flows of different sizes comparable.

// IdealFCT returns the unloaded completion time for a flow of the given
// size.
func IdealFCT(size int64, rate netsim.Rate, baseRTT sim.Time) sim.Time {
	return baseRTT + rate.TxTime(int(size))
}

// SlowdownSummary holds normalized-FCT statistics.
type SlowdownSummary struct {
	Mean float64
	P50  float64
	P99  float64
	Max  float64
}

// Slowdowns computes the slowdown distribution of all completions.
func (c *Collector) Slowdowns(rate netsim.Rate, baseRTT sim.Time) SlowdownSummary {
	if len(c.records) == 0 {
		return SlowdownSummary{}
	}
	xs := make([]float64, 0, len(c.records))
	var sum, max float64
	for _, r := range c.records {
		ideal := IdealFCT(r.Size, rate, baseRTT)
		s := float64(r.FCT()) / float64(ideal)
		xs = append(xs, s)
		sum += s
		if s > max {
			max = s
		}
	}
	return SlowdownSummary{
		Mean: sum / float64(len(xs)),
		P50:  Percentile(xs, 0.50),
		P99:  Percentile(xs, 0.99),
		Max:  max,
	}
}

// Bucket is one flow-size class of a bucketed FCT breakdown.
type Bucket struct {
	Lo, Hi int64 // (Lo, Hi] in bytes; Hi == 0 means unbounded
	Count  int
	Avg    sim.Time
	P50    sim.Time
	P99    sim.Time
}

// DefaultBucketBounds follow the paper's figures: (0,100KB] small flows,
// plus finer classes used in the appendix-style breakdowns.
var DefaultBucketBounds = []int64{1_000, 10_000, 100_000, 1_000_000, 10_000_000}

// Buckets splits completions into size classes with per-class FCT
// statistics. bounds must be ascending; a final unbounded class is
// appended automatically.
func (c *Collector) Buckets(bounds []int64) []Bucket {
	if !sort.SliceIsSorted(bounds, func(i, j int) bool { return bounds[i] < bounds[j] }) {
		panic("stats: bucket bounds must ascend")
	}
	buckets := make([]Bucket, len(bounds)+1)
	lo := int64(0)
	for i, b := range bounds {
		buckets[i] = Bucket{Lo: lo, Hi: b}
		lo = b
	}
	buckets[len(bounds)] = Bucket{Lo: lo, Hi: 0}
	fcts := make([][]float64, len(buckets))
	for _, r := range c.records {
		i := searchInts64(bounds, r.Size)
		fcts[i] = append(fcts[i], float64(r.FCT()))
	}
	for i := range buckets {
		xs := fcts[i]
		buckets[i].Count = len(xs)
		if len(xs) == 0 {
			continue
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		buckets[i].Avg = sim.Time(sum / float64(len(xs)))
		buckets[i].P50 = sim.Time(Percentile(xs, 0.50))
		buckets[i].P99 = sim.Time(Percentile(xs, 0.99))
	}
	return buckets
}

// String renders a bucket label like "(10KB,100KB]".
func (b Bucket) String() string {
	hi := "inf"
	if b.Hi > 0 {
		hi = byteLabel(b.Hi)
	}
	return fmt.Sprintf("(%s,%s]", byteLabel(b.Lo), hi)
}

func byteLabel(n int64) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%dMB", n/1_000_000)
	case n >= 1_000 && n%1_000 == 0:
		return fmt.Sprintf("%dKB", n/1_000)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// BucketTable renders the bucketed breakdown.
func BucketTable(buckets []Bucket) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %8s %12s %12s %12s\n", "size-class", "flows", "avg", "p50", "p99")
	for _, bk := range buckets {
		if bk.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-16s %8d %12s %12s %12s\n", bk.String(), bk.Count, bk.Avg, bk.P50, bk.P99)
	}
	return b.String()
}

// JainIndex computes Jain's fairness index over the per-flow average
// throughputs of the given completions: (Σx)² / (n·Σx²), in (0, 1],
// where 1 is perfectly fair.
func JainIndex(records []FCTRecord) float64 {
	if len(records) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, r := range records {
		fct := float64(r.FCT())
		if fct <= 0 {
			continue
		}
		x := float64(r.Size) / fct // bytes per picosecond; units cancel
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	n := float64(len(records))
	return sum * sum / (n * sumSq)
}

// searchInts64 returns the index of the first bound >= v, giving the
// (Lo, Hi] bucket semantics used above.
func searchInts64(bounds []int64, v int64) int {
	return sort.Search(len(bounds), func(i int) bool { return bounds[i] >= v })
}

// Gini computes the Gini coefficient of per-flow throughput (0 = equal).
func Gini(records []FCTRecord) float64 {
	n := len(records)
	if n == 0 {
		return 0
	}
	xs := make([]float64, 0, n)
	for _, r := range records {
		if r.FCT() > 0 {
			xs = append(xs, float64(r.Size)/float64(r.FCT()))
		}
	}
	sort.Float64s(xs)
	var cum, total float64
	for i, x := range xs {
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0
	}
	nn := float64(len(xs))
	g := (2*cum)/(nn*total) - (nn+1)/nn
	return math.Max(0, g)
}
