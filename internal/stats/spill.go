package stats

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"ppt/internal/sim"
)

// Spill-and-merge: bounded-memory FCT collection for million-flow runs.
//
// In spill mode the collector keeps at most `chunk` resident records.
// When the log fills, the chunk is folded — in completion order — into
// running sums (overall/small/large totals and counts), and each small
// flow's FCT is appended to an anonymous temp file as raw float64 bits.
// Resident memory is therefore capped at chunk×32 bytes of records no
// matter how many flows complete; the only per-flow growth is 8 bytes
// of *file* per small flow, which the OS pages out.
//
// Determinism argument (why the spilled Summary is bit-identical to the
// in-memory one):
//
//  1. Means. The in-memory Summarize accumulates `overall += f` (and
//     small/large likewise) over records in completion order. Spill
//     folds whole chunks in that same order, then Summarize folds the
//     resident tail — the float additions happen in exactly the same
//     sequence, so the sums, and the means derived from them, are the
//     same float64s bit for bit.
//  2. P99. The nearest-rank percentile is the k-th order statistic of
//     the small-FCT multiset — a value, independent of how it is
//     located. The in-memory path quickselects; the spill path runs a
//     4-pass 16-bit radix selection over the float bit patterns
//     (nonnegative float64s order identically to their unsigned bit
//     patterns, and FCTs are nonnegative by the Complete precondition).
//     Both return exactly the element a full sort would put at index k.
type spillState struct {
	chunk int      // resident-record cap
	f     *os.File // unlinked temp file of small-FCT float64 bits
	w     *bufio.Writer

	// Folded running sums, accumulated in completion order.
	flows      int
	smallCount int
	largeCount int
	overall    float64
	small      float64
	large      float64

	spilled     int64 // small FCTs on file
	maxResident int   // high-water mark of len(records)
	counts      []int64
}

// SetSpill switches the collector to bounded-memory mode: at most chunk
// completed records stay resident; older chunks are folded into running
// sums and their small FCTs spilled to an unlinked temp file. Must be
// called before the first Complete. Records and MergeCanonical are
// unavailable in spill mode (the raw log no longer exists); Summarize
// remains bit-identical to the in-memory path. Call Close to release
// the spill file.
func (c *Collector) SetSpill(chunk int) error {
	if chunk <= 0 {
		return fmt.Errorf("stats: spill chunk must be positive, got %d", chunk)
	}
	if len(c.records) > 0 || c.sp != nil {
		return fmt.Errorf("stats: SetSpill on a non-empty collector")
	}
	f, err := os.CreateTemp("", "ppt-fct-spill-*")
	if err != nil {
		return err
	}
	// Unlink immediately: the file lives only as our descriptor and
	// vanishes even if the process dies.
	os.Remove(f.Name())
	c.sp = &spillState{
		chunk: chunk,
		f:     f,
		w:     bufio.NewWriterSize(f, 1<<16),
	}
	if cap(c.records) < chunk {
		c.records = make([]FCTRecord, 0, chunk)
	}
	return nil
}

// Spilling reports whether the collector is in bounded-memory mode.
func (c *Collector) Spilling() bool { return c.sp != nil }

// ResidentPeak reports the largest number of FCT records ever resident
// at once — in spill mode this is capped at the chunk size; otherwise
// it is simply the record count.
func (c *Collector) ResidentPeak() int {
	if c.sp != nil && c.sp.maxResident > len(c.records) {
		return c.sp.maxResident
	}
	return len(c.records)
}

// SpilledRecords reports how many small-flow FCTs have been written to
// the spill file.
func (c *Collector) SpilledRecords() int64 {
	if c.sp == nil {
		return 0
	}
	return c.sp.spilled
}

// Close releases the spill file, if any. The collector must not be used
// afterwards.
func (c *Collector) Close() error {
	if c.sp == nil || c.sp.f == nil {
		return nil
	}
	err := c.sp.f.Close()
	c.sp.f = nil
	return err
}

// spillChunk folds every resident record into the running sums, writes
// small FCT bits to the file, and empties the log. Completion order is
// preserved: records fold head to tail, exactly as the in-memory
// Summarize would have visited them.
func (c *Collector) spillChunk() {
	sp := c.sp
	var buf [8]byte
	for _, r := range c.records {
		f := float64(r.FCT())
		sp.overall += f
		if r.Size <= SmallFlowMax {
			sp.small += f
			sp.smallCount++
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
			if _, err := sp.w.Write(buf[:]); err != nil {
				panic("stats: spill write failed: " + err.Error())
			}
			sp.spilled++
		} else {
			sp.large += f
			sp.largeCount++
		}
	}
	sp.flows += len(c.records)
	c.records = c.records[:0]
}

// summarizeSpill is Summarize for a spilling collector.
func (c *Collector) summarizeSpill() Summary {
	sp := c.sp
	var s Summary
	s.Flows = sp.flows + len(c.records)
	if s.Flows == 0 {
		return s
	}
	// Fold the resident tail into copies of the running sums — same
	// addition sequence as the monolithic loop, without consuming the
	// records (Summarize must stay idempotent).
	overall, small, large := sp.overall, sp.small, sp.large
	smallCount, largeCount := sp.smallCount, sp.largeCount
	for _, r := range c.records {
		f := float64(r.FCT())
		overall += f
		if r.Size <= SmallFlowMax {
			small += f
			smallCount++
		} else {
			large += f
			largeCount++
		}
	}
	s.OverallAvg = sim.Time(overall / float64(s.Flows))
	s.SmallCount = smallCount
	s.LargeCount = largeCount
	if smallCount > 0 {
		s.SmallAvg = sim.Time(small / float64(smallCount))
		rank := int(math.Ceil(0.99*float64(smallCount))) - 1
		if rank < 0 {
			rank = 0
		}
		s.SmallP99 = sim.Time(c.selectKthSpilled(int64(rank)))
	}
	if largeCount > 0 {
		s.LargeAvg = sim.Time(large / float64(largeCount))
	}
	return s
}

// forEachSmallBits streams the bit pattern of every small FCT — spilled
// file first, then the resident tail. Visit order is irrelevant to
// selection (a multiset operation), only membership matters.
func (c *Collector) forEachSmallBits(visit func(uint64)) {
	sp := c.sp
	if sp.spilled > 0 {
		if err := sp.w.Flush(); err != nil {
			panic("stats: spill flush failed: " + err.Error())
		}
		// ReadAt via a section reader leaves the append offset alone, so
		// completions may continue after a mid-run Summarize.
		r := bufio.NewReaderSize(io.NewSectionReader(sp.f, 0, sp.spilled*8), 1<<16)
		var buf [8]byte
		for i := int64(0); i < sp.spilled; i++ {
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				panic("stats: spill read failed: " + err.Error())
			}
			visit(binary.LittleEndian.Uint64(buf[:]))
		}
	}
	for _, rec := range c.records {
		if rec.Size <= SmallFlowMax {
			visit(math.Float64bits(float64(rec.FCT())))
		}
	}
}

// selectKthSpilled returns the k-th smallest small FCT (0-based) across
// the spill file and the resident records, by 4-pass most-significant-
// first 16-bit radix counting over the float bit patterns. Nonnegative
// float64s compare identically as values and as uint64 bit patterns, so
// the result is exactly the k-th order statistic — the same float64
// selectKth returns on the in-memory path.
func (c *Collector) selectKthSpilled(k int64) float64 {
	sp := c.sp
	if sp.counts == nil {
		sp.counts = make([]int64, 1<<16)
	}
	var prefix uint64
	for pass := 3; pass >= 0; pass-- {
		shift := uint(pass) * 16
		clear(sp.counts)
		// Values must match the prefix on every bit above this field.
		// pass 3 makes the mask shift 64, which Go defines as 0 — i.e.
		// no constraint yet.
		mask := uint64(0)
		if pass < 3 {
			mask = ^uint64(0) << (shift + 16)
		}
		c.forEachSmallBits(func(b uint64) {
			if b&mask == prefix {
				sp.counts[(b>>shift)&0xFFFF]++
			}
		})
		var cum int64
		found := false
		for v, n := range sp.counts {
			if cum+n > k {
				prefix |= uint64(v) << shift
				k -= cum
				found = true
				break
			}
			cum += n
		}
		if !found {
			panic("stats: spill selection rank out of range")
		}
	}
	return math.Float64frombits(prefix)
}
