package stats

import (
	"math/rand"
	"testing"

	"ppt/internal/sim"
)

// feedSynthetic drives n completions with a realistic size/FCT mix —
// ~70% small flows, FCTs spanning several orders of magnitude, frequent
// exact duplicates — through every collector in cs, in the same order.
func feedSynthetic(t *testing.T, n int, seed int64, cs ...*Collector) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	start := sim.Time(0)
	for i := 0; i < n; i++ {
		start += sim.Time(rng.Int63n(50_000))
		size := int64(rng.Int63n(80_000) + 1)
		if rng.Intn(10) < 3 {
			size = SmallFlowMax + rng.Int63n(10_000_000) + 1
		}
		fct := sim.Time(rng.Int63n(int64(1) << uint(10+rng.Intn(30))))
		if rng.Intn(5) == 0 {
			fct = sim.Time(1 << 20) // exact-duplicate FCTs stress selection ties
		}
		for _, c := range cs {
			c.Complete(uint32(i+1), size, start, start+fct)
		}
	}
}

// TestSpillSummaryBitIdentical is the differential the spill design
// hangs on: a spilling collector's Summary must equal the in-memory
// one field for field — float means bit for bit — at 100k+ flows and
// across awkward chunk sizes.
func TestSpillSummaryBitIdentical(t *testing.T) {
	n := 120_000
	if testing.Short() {
		n = 20_000
	}
	for _, chunk := range []int{1, 7, 1024, 65_536, n + 1} {
		mem := NewCollector()
		sp := NewCollector()
		if err := sp.SetSpill(chunk); err != nil {
			t.Fatal(err)
		}
		feedSynthetic(t, n, 42, mem, sp)
		got, want := sp.Summarize(), mem.Summarize()
		if got != want {
			t.Fatalf("chunk %d: spilled summary %+v != in-memory %+v", chunk, got, want)
		}
		// Summarize is idempotent and non-destructive mid-run: complete
		// more flows, compare again.
		feedSynthetic(t, 500, 43, mem, sp)
		if got, want := sp.Summarize(), mem.Summarize(); got != want {
			t.Fatalf("chunk %d after resume: %+v != %+v", chunk, got, want)
		}
		if err := sp.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSpillResidentBound pins the memory bound: across a large run the
// resident record count never exceeds the chunk size.
func TestSpillResidentBound(t *testing.T) {
	n := 1_000_000
	if testing.Short() {
		n = 100_000
	}
	const chunk = 4096
	c := NewCollector()
	if err := c.SetSpill(chunk); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Reserve must not break the bound (transport.Run calls it with the
	// full flow count).
	c.Reserve(n)
	if cap(c.records) > chunk {
		t.Fatalf("Reserve grew a spilling collector to %d records", cap(c.records))
	}
	feedSynthetic(t, n, 7, c)
	if c.Count() != n {
		t.Fatalf("Count = %d, want %d", c.Count(), n)
	}
	if peak := c.ResidentPeak(); peak > chunk {
		t.Fatalf("resident peak %d exceeds chunk %d", peak, chunk)
	}
	if c.SpilledRecords() == 0 {
		t.Fatal("nothing spilled in a 1M-flow run")
	}
	s := c.Summarize()
	if s.Flows != n || s.SmallCount+s.LargeCount != n {
		t.Fatalf("summary lost flows: %+v", s)
	}
	if s.SmallP99 < s.SmallAvg/10 {
		t.Fatalf("implausible P99 %v vs avg %v", s.SmallP99, s.SmallAvg)
	}
}

// TestSpillEdgeCases covers the degenerate shapes: empty, fewer records
// than one chunk, all-small, all-large, single flow.
func TestSpillEdgeCases(t *testing.T) {
	check := func(name string, feed func(*Collector)) {
		mem, sp := NewCollector(), NewCollector()
		if err := sp.SetSpill(8); err != nil {
			t.Fatal(err)
		}
		defer sp.Close()
		feed(mem)
		feed(sp)
		if got, want := sp.Summarize(), mem.Summarize(); got != want {
			t.Fatalf("%s: %+v != %+v", name, got, want)
		}
	}
	check("empty", func(c *Collector) {})
	check("below one chunk", func(c *Collector) {
		for i := 0; i < 5; i++ {
			c.Complete(uint32(i+1), 1000, 0, sim.Time(100+i))
		}
	})
	check("all small", func(c *Collector) {
		for i := 0; i < 100; i++ {
			c.Complete(uint32(i+1), 50, sim.Time(i), sim.Time(i+1000+i*i))
		}
	})
	check("all large", func(c *Collector) {
		for i := 0; i < 100; i++ {
			c.Complete(uint32(i+1), SmallFlowMax+1, sim.Time(i), sim.Time(i+77777))
		}
	})
	check("single", func(c *Collector) {
		c.Complete(1, 10, 5, 5) // zero FCT exercises the +0.0 bit pattern
	})
}

// TestSpillGuards pins the mode's API guards: misuse panics or errors
// instead of silently returning wrong data.
func TestSpillGuards(t *testing.T) {
	c := NewCollector()
	if err := c.SetSpill(0); err == nil {
		t.Fatal("chunk 0 accepted")
	}
	c.Complete(1, 10, 0, 1)
	if err := c.SetSpill(8); err == nil {
		t.Fatal("SetSpill on a non-empty collector accepted")
	}

	sp := NewCollector()
	if err := sp.SetSpill(2); err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if !sp.Spilling() {
		t.Fatal("Spilling() false after SetSpill")
	}
	sp.Complete(1, 10, 0, 1)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic in spill mode", name)
			}
		}()
		f()
	}
	mustPanic("Records", func() { sp.Records() })
	mustPanic("MergeCanonical", func() { NewCollector().MergeCanonical(sp) })
	mustPanic("MergeCanonical dst", func() { sp.MergeCanonical(NewCollector()) })
}
