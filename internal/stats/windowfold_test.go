package stats

import (
	"math/rand"
	"testing"

	"ppt/internal/sim"
)

// feedWindowed models the windowed run driver: completions with
// globally nondecreasing End times land in per-shard logs (so each log
// is nondecreasing in End, as execution order guarantees), and every
// ~window records the fold is granted a safe bound that trails the
// newest completion — exactly the shape of barrier-time folding. Each
// record is mirrored into ref so the caller can build the canonical
// in-memory reference.
func feedWindowed(t *testing.T, n, shardCount, window int, seed int64,
	fold *WindowFold, shards []*Collector, ref []*Collector) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	end := sim.Time(1)
	for i := 0; i < n; i++ {
		if rng.Intn(4) != 0 {
			// End ties — within and across shards — are the canonical
			// sort's hard case; leave end unchanged 1 in 4 times.
			end += sim.Time(rng.Int63n(30_000))
		}
		fct := sim.Time(rng.Int63n(int64(end))) + 1
		if fct > end {
			fct = end
		}
		start := end - fct
		size := int64(rng.Int63n(80_000) + 1)
		if rng.Intn(10) < 3 {
			size = SmallFlowMax + rng.Int63n(10_000_000) + 1
		}
		s := rng.Intn(shardCount)
		shards[s].Complete(uint32(i+1), size, start, end)
		ref[s].Complete(uint32(i+1), size, start, end)
		if i%window == window-1 {
			// The granted bound trails the newest completion, so some
			// records always straddle the fold.
			safe := end - sim.Time(rng.Int63n(20_000))
			fold.Fold(safe, shards)
		}
	}
}

// TestWindowFoldBitIdentical is the differential the windowed spill
// fold hangs on: folding per-shard completion logs into a spilling
// master at window boundaries must produce the same Summary — float
// means bit for bit — as MergeCanonical into an in-memory master,
// whatever the chunk size, shard count, or fold cadence.
func TestWindowFoldBitIdentical(t *testing.T) {
	n := 60_000
	if testing.Short() {
		n = 12_000
	}
	for _, chunk := range []int{1, 7, 1024, 65_536} {
		for _, shardCount := range []int{1, 2, 4} {
			for _, window := range []int{1, 64, 4096} {
				master := NewCollector()
				if err := master.SetSpill(chunk); err != nil {
					t.Fatal(err)
				}
				fold := NewWindowFold(master)
				shards := make([]*Collector, shardCount)
				ref := make([]*Collector, shardCount)
				for i := range shards {
					shards[i] = NewCollector()
					ref[i] = NewCollector()
				}
				feedWindowed(t, n, shardCount, window, 17, fold, shards, ref)
				fold.FoldAll(shards)
				mem := NewCollector()
				mem.MergeCanonical(ref...)
				got, want := master.Summarize(), mem.Summarize()
				if got != want {
					t.Fatalf("chunk=%d shards=%d window=%d: folded %+v != canonical %+v",
						chunk, shardCount, window, got, want)
				}
				if peak := master.ResidentPeak(); peak > chunk {
					t.Fatalf("chunk=%d shards=%d window=%d: resident peak %d exceeds chunk",
						chunk, shardCount, window, peak)
				}
				for i, c := range shards {
					if len(c.records) != 0 {
						t.Fatalf("FoldAll left %d records in shard %d", len(c.records), i)
					}
				}
				if err := master.Close(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestWindowFoldResidentBoundMillion pins the acceptance bound at
// scale: a million records folded through window batches never push the
// master's resident log past the spill chunk, including batches larger
// than the chunk itself (the fold pre-spills rather than letting the
// feed overshoot).
func TestWindowFoldResidentBoundMillion(t *testing.T) {
	n := 1_000_000
	if testing.Short() {
		n = 150_000
	}
	const chunk = 1 << 16
	master := NewCollector()
	if err := master.SetSpill(chunk); err != nil {
		t.Fatal(err)
	}
	fold := NewWindowFold(master)
	shards := []*Collector{NewCollector(), NewCollector(), NewCollector(), NewCollector()}
	ref := []*Collector{NewCollector(), NewCollector(), NewCollector(), NewCollector()}
	// Window of 100k records per fold: single batches exceed the chunk.
	feedWindowed(t, n, len(shards), 100_000, 23, fold, shards, ref)
	fold.FoldAll(shards)
	if peak := master.ResidentPeak(); peak > chunk {
		t.Fatalf("resident peak %d exceeds chunk %d over %d records", peak, chunk, n)
	}
	if master.Count() != n {
		t.Fatalf("folded %d records, want %d", master.Count(), n)
	}
	if master.SpilledRecords() == 0 {
		t.Fatal("spill never engaged at 1M records")
	}
	mem := NewCollector()
	mem.MergeCanonical(ref...)
	if got, want := master.Summarize(), mem.Summarize(); got != want {
		t.Fatalf("folded summary %+v != canonical %+v", got, want)
	}
	if err := master.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWindowFoldGuards pins the constructor and feed preconditions.
func TestWindowFoldGuards(t *testing.T) {
	if f := func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		NewWindowFold(NewCollector())
		return
	}(); !f {
		t.Fatal("NewWindowFold accepted a non-spilling master")
	}
	sp := NewCollector()
	if err := sp.SetSpill(4); err != nil {
		t.Fatal(err)
	}
	sp.Complete(1, 10, 0, 5)
	if f := func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		NewWindowFold(sp)
		return
	}(); !f {
		t.Fatal("NewWindowFold accepted a non-empty master")
	}
	sp.Close()

	master := NewCollector()
	if err := master.SetSpill(4); err != nil {
		t.Fatal(err)
	}
	fold := NewWindowFold(master)
	bad := NewCollector()
	if err := bad.SetSpill(4); err != nil {
		t.Fatal(err)
	}
	if f := func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		fold.FoldAll([]*Collector{bad})
		return
	}(); !f {
		t.Fatal("fold accepted a spilling shard collector")
	}
	bad.Close()
	master.Close()
}
