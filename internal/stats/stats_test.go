package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"ppt/internal/netsim"
	"ppt/internal/sim"
)

func TestSummarizeSplitsAtBoundary(t *testing.T) {
	c := NewCollector()
	c.Complete(1, 50_000, 0, 10*sim.Microsecond)     // small
	c.Complete(2, 100_000, 0, 20*sim.Microsecond)    // small (boundary inclusive)
	c.Complete(3, 100_001, 0, 100*sim.Microsecond)   // large
	c.Complete(4, 5_000_000, 0, 200*sim.Microsecond) // large
	s := c.Summarize()
	if s.Flows != 4 || s.SmallCount != 2 || s.LargeCount != 2 {
		t.Fatalf("counts = %+v", s)
	}
	if s.SmallAvg != 15*sim.Microsecond {
		t.Fatalf("small avg = %v", s.SmallAvg)
	}
	if s.LargeAvg != 150*sim.Microsecond {
		t.Fatalf("large avg = %v", s.LargeAvg)
	}
	if s.OverallAvg != 82500*sim.Nanosecond {
		t.Fatalf("overall = %v", s.OverallAvg)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := NewCollector().Summarize()
	if s.Flows != 0 || s.OverallAvg != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestCompletePanicsOnNegativeFCT(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewCollector().Complete(1, 10, 5*sim.Microsecond, 1*sim.Microsecond)
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := Percentile(xs, 0.5); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(xs, 1.0); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 0.01); got != 1 {
		t.Fatalf("p1 = %v", got)
	}
	if got := Percentile(nil, 0.99); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	// Input must not be mutated.
	if !sort.Float64sAreSorted([]float64{1, 2, 3, 4, 5}) || xs[0] != 5 {
		t.Fatal("Percentile mutated input")
	}
}

func TestPercentileP99(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	if got := Percentile(xs, 0.99); got != 99 {
		t.Fatalf("p99 of 1..100 = %v", got)
	}
}

// Property: percentile is monotonic in p and bounded by min/max.
func TestPropertyPercentileMonotonic(t *testing.T) {
	prop := func(vals []float64, a, b float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		pa := math.Abs(math.Mod(a, 1))
		pb := math.Abs(math.Mod(b, 1))
		if pa == 0 {
			pa = 0.01
		}
		if pb == 0 {
			pb = 0.01
		}
		if pa > pb {
			pa, pb = pb, pa
		}
		lo, hi := Percentile(vals, pa), Percentile(vals, pb)
		mn, mx := vals[0], vals[0]
		for _, v := range vals {
			mn = math.Min(mn, v)
			mx = math.Max(mx, v)
		}
		return lo <= hi && lo >= mn && hi <= mx
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// trafficSink generates constant-rate traffic through a port so the
// utilization sampler has something to observe.
func TestUtilSampler(t *testing.T) {
	s := sim.NewScheduler()
	dst := dropSink{}
	port := netsim.NewPort("p", s, netsim.PortConfig{Rate: 10 * netsim.Gbps}, dst, nil)
	// Saturate the port for 1ms: 10G = 1.25e9 B/s -> 1.25MB in 1ms.
	var feed func()
	feed = func() {
		if s.Now() >= sim.Millisecond {
			return
		}
		if port.Queued() < 20_000 {
			for i := 0; i < 10; i++ {
				port.Enqueue(netsim.DataPacket(1, 0, 1, 0, netsim.MSS, 0))
			}
		}
		s.After(5*sim.Microsecond, feed)
	}
	feed()
	us := SampleUtilization(s, port, 100*sim.Microsecond)
	s.RunUntil(sim.Millisecond)
	us.Stop()
	if len(us.Samples) < 9 {
		t.Fatalf("samples = %d", len(us.Samples))
	}
	if m := us.Mean(100*sim.Microsecond, sim.Millisecond); m < 0.95 || m > 1.05 {
		t.Fatalf("mean util = %v, want ~1.0", m)
	}
}

func TestUtilSamplerIdleIsZero(t *testing.T) {
	s := sim.NewScheduler()
	port := netsim.NewPort("p", s, netsim.PortConfig{Rate: 10 * netsim.Gbps}, dropSink{}, nil)
	us := SampleUtilization(s, port, 100*sim.Microsecond)
	s.RunUntil(sim.Millisecond)
	us.Stop()
	if m := us.Mean(0, sim.Millisecond); m != 0 {
		t.Fatalf("idle util = %v", m)
	}
	if mn := us.Min(0, sim.Millisecond); mn != 0 {
		t.Fatalf("idle min = %v", mn)
	}
}

type dropSink struct{}

func (dropSink) Name() string           { return "drop" }
func (dropSink) Receive(*netsim.Packet) {}

func TestBufferSampler(t *testing.T) {
	s := sim.NewScheduler()
	port := netsim.NewPort("p", s, netsim.PortConfig{Rate: 10 * netsim.Gbps}, dropSink{}, nil)
	// Queue a burst: 10 high, 10 low.
	for i := 0; i < 10; i++ {
		port.Enqueue(netsim.DataPacket(1, 0, 1, 0, netsim.MSS, 0))
		port.Enqueue(netsim.DataPacket(2, 0, 1, 0, netsim.MSS, 6))
	}
	bs := SampleBuffers(s, port, 1*sim.Microsecond)
	s.RunUntil(3 * sim.Microsecond)
	bs.Stop()
	s.Run()
	if len(bs.Samples) == 0 {
		t.Fatal("no samples")
	}
	first := bs.Samples[0]
	if first.HighBytes == 0 || first.LowBytes == 0 {
		t.Fatalf("first sample = %+v", first)
	}
	// High class drains first under strict priority.
	hi, lo := bs.MeanOccupancy()
	if hi >= lo {
		t.Fatalf("high mean %v should drain faster than low mean %v", hi, lo)
	}
}

func TestEfficiency(t *testing.T) {
	e := Efficiency{SentPayload: 1000, SentLowPayload: 400, UsefulDelivered: 900, UsefulLow: 300}
	if got := e.Overall(); got != 0.9 {
		t.Fatalf("overall = %v", got)
	}
	if got := e.LowLoop(); got != 0.75 {
		t.Fatalf("low = %v", got)
	}
	var zero Efficiency
	if zero.Overall() != 0 || zero.LowLoop() != 0 {
		t.Fatal("zero division not guarded")
	}
}

func TestTableRendering(t *testing.T) {
	rows := []struct {
		Label string
		Sum   Summary
	}{
		{"ppt", Summary{Flows: 10, OverallAvg: sim.Millisecond}},
		{"dctcp", Summary{Flows: 10, OverallAvg: 2 * sim.Millisecond}},
	}
	out := Table("fig12", rows)
	for _, want := range []string{"fig12", "ppt", "dctcp", "overall-avg", "1ms", "2ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
