// Package stats collects the measurements every figure in the paper
// reports: flow completion times split at the 100KB small/large boundary
// (mean and tail), link utilization sampled on a fixed period, per-class
// switch buffer occupancy, and transfer efficiency (received vs sent
// bytes).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ppt/internal/netsim"
	"ppt/internal/sim"
)

// SmallFlowMax is the paper's small/large boundary: flows of (0, 100KB]
// are "small".
const SmallFlowMax = 100_000

// FCTRecord is one completed flow.
type FCTRecord struct {
	FlowID uint32
	Size   int64
	Start  sim.Time
	End    sim.Time
}

// FCT returns the flow completion time.
func (r FCTRecord) FCT() sim.Time { return r.End - r.Start }

// Collector accumulates flow completions. By default every record stays
// resident; SetSpill bounds resident memory for million-flow runs (see
// spill.go).
type Collector struct {
	records []FCTRecord

	// scratch is Summarize's small-FCT workspace, reused across calls so
	// summarizing is allocation-free once the run's flow count is known.
	scratch []float64

	// sp, when non-nil, holds the bounded-memory spill state.
	sp *spillState
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Reserve pre-sizes the collector for n upcoming completions so the
// record log (and Summarize's workspace) never reallocates mid-run.
func (c *Collector) Reserve(n int) {
	if n <= 0 {
		return
	}
	if c.sp != nil {
		// Spill mode already owns a chunk-sized buffer; growing to the
		// full flow count would defeat the memory bound.
		return
	}
	if need := len(c.records) + n; need > cap(c.records) {
		grown := make([]FCTRecord, len(c.records), need)
		copy(grown, c.records)
		c.records = grown
	}
	if n > cap(c.scratch) {
		c.scratch = make([]float64, 0, n)
	}
}

// Complete records one finished flow.
func (c *Collector) Complete(flowID uint32, size int64, start, end sim.Time) {
	if end < start {
		panic("stats: flow completed before it started")
	}
	c.records = append(c.records, FCTRecord{flowID, size, start, end})
	if sp := c.sp; sp != nil {
		if len(c.records) > sp.maxResident {
			sp.maxResident = len(c.records)
		}
		if len(c.records) >= sp.chunk {
			c.spillChunk()
		}
	}
}

// Count reports completed flows.
func (c *Collector) Count() int {
	if c.sp != nil {
		return c.sp.flows + len(c.records)
	}
	return len(c.records)
}

// canonLess is the canonical (End, Start, FlowID) record order shared
// by MergeCanonical and the windowed spill fold (windowfold.go). Flow
// IDs are unique per run, so it is a strict total order: any sorting
// procedure produces the same sequence, which is what makes the float
// accumulation order — and every reported mean, bit for bit —
// independent of shard count.
func canonLess(a, b *FCTRecord) bool {
	if a.End != b.End {
		return a.End < b.End
	}
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.FlowID < b.FlowID
}

// MergeCanonical appends every record of srcs into c and sorts the
// combined log by (End, Start, FlowID). The windowed (sharded) run
// driver merges its per-shard collectors through this: per-shard
// completion order depends on the partition, so the merged log is
// re-ordered by a total order (flow IDs are unique per run) to make
// Summarize's float accumulation sequence — and therefore every
// reported mean, bit for bit — independent of shard count. Monolithic
// runs never call this and keep their historical completion order;
// spilling masters fold incrementally through WindowFold instead, which
// feeds the same canonical sequence under a bounded-memory cap.
func (c *Collector) MergeCanonical(srcs ...*Collector) {
	if c.sp != nil {
		panic("stats: MergeCanonical on a spilling collector (use WindowFold for windowed spill runs)")
	}
	for _, s := range srcs {
		if s.sp != nil {
			panic("stats: MergeCanonical from a spilling collector")
		}
	}
	n := 0
	for _, s := range srcs {
		n += len(s.records)
	}
	c.Reserve(n)
	for _, s := range srcs {
		c.records = append(c.records, s.records...)
	}
	r := c.records
	sort.Slice(r, func(i, j int) bool { return canonLess(&r[i], &r[j]) })
}

// Records returns the raw completions. Unavailable in spill mode: the
// full log no longer exists.
func (c *Collector) Records() []FCTRecord {
	if c.sp != nil {
		panic("stats: Records on a spilling collector")
	}
	return c.records
}

// Summary is the per-figure FCT breakdown.
type Summary struct {
	Flows int

	OverallAvg sim.Time // mean FCT, all flows

	SmallCount int
	SmallAvg   sim.Time // mean FCT, (0, 100KB]
	SmallP99   sim.Time // 99th percentile FCT, (0, 100KB]

	LargeCount int
	LargeAvg   sim.Time // mean FCT, (100KB, inf)

	// Truncated reports that the run hit its MaxEvents or Deadline bound
	// before every flow completed, so the numbers above cover only the
	// Unfinished-short subset and understate tail behaviour.
	Truncated  bool
	Unfinished int // flows still open when the bound tripped
}

// Summarize computes the standard breakdown. In spill mode the result
// is bit-identical to what the in-memory path would report over the
// same completion sequence (see spill.go for the argument).
func (c *Collector) Summarize() Summary {
	if c.sp != nil {
		return c.summarizeSpill()
	}
	var s Summary
	s.Flows = len(c.records)
	if s.Flows == 0 {
		return s
	}
	var overall, small, large float64
	smallFCTs := c.scratch[:0]
	for _, r := range c.records {
		f := float64(r.FCT())
		overall += f
		if r.Size <= SmallFlowMax {
			small += f
			smallFCTs = append(smallFCTs, f)
		} else {
			large += f
		}
	}
	c.scratch = smallFCTs[:0]
	s.OverallAvg = sim.Time(overall / float64(s.Flows))
	s.SmallCount = len(smallFCTs)
	s.LargeCount = s.Flows - s.SmallCount
	if s.SmallCount > 0 {
		s.SmallAvg = sim.Time(small / float64(s.SmallCount))
		// Nearest-rank P99 by in-place selection: the kth order statistic
		// is the same float64 a sort-then-index would produce, without
		// copying or fully ordering the slice.
		rank := int(math.Ceil(0.99*float64(s.SmallCount))) - 1
		if rank < 0 {
			rank = 0
		}
		s.SmallP99 = sim.Time(selectKth(smallFCTs, rank))
	}
	if s.LargeCount > 0 {
		s.LargeAvg = sim.Time(large / float64(s.LargeCount))
	}
	return s
}

func (s Summary) String() string {
	out := fmt.Sprintf("flows=%d overall=%v small(avg=%v p99=%v n=%d) large(avg=%v n=%d)",
		s.Flows, s.OverallAvg, s.SmallAvg, s.SmallP99, s.SmallCount, s.LargeAvg, s.LargeCount)
	if s.Truncated {
		out += fmt.Sprintf(" TRUNCATED(unfinished=%d)", s.Unfinished)
	}
	return out
}

// selectKth returns the k-th smallest element of xs (0-based),
// partially reordering xs in place — quickselect with median-of-three
// pivoting. Whatever the pivot choices, the value returned is exactly
// the element a full sort would put at index k, so results are
// bit-identical to the sort-based path it replaced.
func selectKth(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		if hi-lo < 12 {
			// Insertion-sort the stub and read off the answer.
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && xs[j] < xs[j-1]; j-- {
					xs[j], xs[j-1] = xs[j-1], xs[j]
				}
			}
			break
		}
		// Median-of-three pivot, parked at lo.
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break // xs[k] == pivot, already in final position
		}
	}
	return xs[k]
}

// Percentile returns the p-quantile (0 < p <= 1) of xs by
// nearest-rank on a sorted copy. Returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// UtilSample is one utilization observation.
type UtilSample struct {
	At   sim.Time
	Util float64 // fraction of line rate over the last period
}

// UtilSampler periodically samples the utilization of a port (Fig 1/20:
// 100µs bins on the bottleneck link).
type UtilSampler struct {
	Samples []UtilSample
	stop    bool
}

// SampleUtilization arms a sampler on port every period until the
// returned stop function is called (or the scheduler drains).
func SampleUtilization(s *sim.Scheduler, port *netsim.Port, period sim.Time) *UtilSampler {
	us := &UtilSampler{}
	rate := port.Config().Rate
	bytesPerPeriod := float64(rate) / 8 * period.Seconds()
	port.SettleTx(s.Now() - 1) // match the per-tick settle for a mid-run arm
	last := port.Stats.TxBytes
	var tick func()
	tick = func() {
		if us.stop {
			return
		}
		// The fused port pipeline defers tx accounting; settle every
		// serialization strictly before this instant so the counter read
		// matches the classic pipeline's finishTx-driven bookkeeping
		// (DESIGN.md §7.6).
		port.SettleTx(s.Now() - 1)
		cur := port.Stats.TxBytes
		us.Samples = append(us.Samples, UtilSample{
			At:   s.Now(),
			Util: float64(cur-last) / bytesPerPeriod,
		})
		last = cur
		s.After(period, tick)
	}
	s.After(period, tick)
	return us
}

// Stop halts future sampling.
func (u *UtilSampler) Stop() { u.stop = true }

// Mean returns the average utilization across samples in [from, to).
func (u *UtilSampler) Mean(from, to sim.Time) float64 {
	var sum float64
	var n int
	for _, s := range u.Samples {
		if s.At >= from && s.At < to {
			sum += s.Util
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Min returns the lowest utilization across samples in [from, to).
func (u *UtilSampler) Min(from, to sim.Time) float64 {
	min := math.Inf(1)
	for _, s := range u.Samples {
		if s.At >= from && s.At < to {
			min = math.Min(min, s.Util)
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// BufferSample is one occupancy observation of a port, split by class.
type BufferSample struct {
	At        sim.Time
	HighBytes int64
	LowBytes  int64
}

// BufferSampler periodically samples a port's queue occupancy (Fig 28).
type BufferSampler struct {
	Samples []BufferSample
	stop    bool
}

// SampleBuffers arms an occupancy sampler on port every period.
func SampleBuffers(s *sim.Scheduler, port *netsim.Port, period sim.Time) *BufferSampler {
	bs := &BufferSampler{}
	var tick func()
	tick = func() {
		if bs.stop {
			return
		}
		bs.Samples = append(bs.Samples, BufferSample{
			At:        s.Now(),
			HighBytes: port.QueuedHigh(),
			LowBytes:  port.QueuedLow(),
		})
		s.After(period, tick)
	}
	s.After(period, tick)
	return bs
}

// Stop halts future sampling.
func (b *BufferSampler) Stop() { b.stop = true }

// MeanOccupancy returns the average (high, low) occupancy in bytes.
func (b *BufferSampler) MeanOccupancy() (high, low float64) {
	if len(b.Samples) == 0 {
		return 0, 0
	}
	for _, s := range b.Samples {
		high += float64(s.HighBytes)
		low += float64(s.LowBytes)
	}
	n := float64(len(b.Samples))
	return high / n, low / n
}

// Efficiency summarizes transfer efficiency (Fig 29): the ratio of
// distinct payload bytes delivered to payload bytes put on the wire.
type Efficiency struct {
	SentPayload     int64 // payload bytes transmitted by host NICs
	SentLowPayload  int64 // of which low-loop (LCP) bytes
	UsefulDelivered int64 // distinct application bytes completed
	UsefulLow       int64 // distinct bytes delivered by the low loop
}

// Overall returns delivered/sent, in [0,1] when no accounting bugs.
func (e Efficiency) Overall() float64 {
	if e.SentPayload == 0 {
		return 0
	}
	return float64(e.UsefulDelivered) / float64(e.SentPayload)
}

// LowLoop returns the low-priority loop's efficiency.
func (e Efficiency) LowLoop() float64 {
	if e.SentLowPayload == 0 {
		return 0
	}
	return float64(e.UsefulLow) / float64(e.SentLowPayload)
}

// Table renders rows of labelled summaries as an aligned text table —
// the form every experiment prints.
func Table(title string, rows []struct {
	Label string
	Sum   Summary
}) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-18s %12s %12s %12s %12s %8s\n", "scheme", "overall-avg", "small-avg", "small-p99", "large-avg", "flows")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %12s %12s %12s %12s %8d\n",
			r.Label, r.Sum.OverallAvg, r.Sum.SmallAvg, r.Sum.SmallP99, r.Sum.LargeAvg, r.Sum.Flows)
	}
	return b.String()
}
