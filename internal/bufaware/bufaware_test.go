package bufaware

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ppt/internal/workload"
)

func TestFirstCallWholeMessage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Bulk writes everything at once, bounded by the buffer.
	if got := Bulk.FirstCall(rng, 5_000, 16_384); got != 5_000 {
		t.Fatalf("first call = %d", got)
	}
	if got := Bulk.FirstCall(rng, 50_000, 16_384); got != 16_384 {
		t.Fatalf("buffer-capped first call = %d", got)
	}
	if got := Bulk.FirstCall(rng, 50_000, 0); got != 50_000 {
		t.Fatalf("unbounded buffer first call = %d", got)
	}
}

func TestFirstCallChunked(t *testing.T) {
	chunky := AppModel{Name: "chunky", WholeMsgProb: 0, ChunkBytes: 512}
	rng := rand.New(rand.NewSource(1))
	if got := chunky.FirstCall(rng, 50_000, 16_384); got != 512 {
		t.Fatalf("chunked first call = %d", got)
	}
	// Chunk larger than the message: clamp.
	if got := chunky.FirstCall(rng, 100, 16_384); got != 100 {
		t.Fatalf("clamped chunk = %d", got)
	}
}

func TestClassifier(t *testing.T) {
	c := Classifier{Threshold: 1_000}
	if c.IdentifyLarge(1_000) {
		t.Fatal("threshold is exclusive")
	}
	if !c.IdentifyLarge(1_001) {
		t.Fatal("above threshold not flagged")
	}
}

func TestMemcachedAccuracyMatchesPaper(t *testing.T) {
	// §4.1: 86.7% of >1KB flows identified, 16KB send buffer.
	res := Experiment(workload.MemcachedETC, Memcached, 1_000, 16_384, 50_000, 42)
	if res.ActualLarge == 0 {
		t.Fatal("distribution produced no large flows")
	}
	if math.Abs(res.Recall-0.867) > 0.02 {
		t.Fatalf("recall = %.3f, want ~0.867", res.Recall)
	}
}

func TestWebServerAccuracyMatchesPaper(t *testing.T) {
	// §4.1: 84.3% of >10KB flows identified.
	res := Experiment(workload.YoutubeHTTP, WebServer, 10_000, 16_384, 50_000, 42)
	if math.Abs(res.Recall-0.843) > 0.02 {
		t.Fatalf("recall = %.3f, want ~0.843", res.Recall)
	}
}

func TestBulkModelPerfectRecallWithBigBuffer(t *testing.T) {
	res := Experiment(workload.WebSearch, Bulk, 100_000, 2<<30, 20_000, 7)
	if res.Recall != 1.0 {
		t.Fatalf("bulk recall = %v", res.Recall)
	}
	if res.FalsePositives != 0 {
		t.Fatalf("false positives = %d", res.FalsePositives)
	}
}

func TestSmallBufferNeverFlagsBelowThreshold(t *testing.T) {
	// With the send buffer at the threshold, nothing can be flagged.
	res := Experiment(workload.WebSearch, Bulk, 100_000, 100_000, 10_000, 7)
	if res.Identified != 0 || res.FalsePositives != 0 {
		t.Fatalf("flags with buffer == threshold: %+v", res)
	}
}

func TestAssignFirstCalls(t *testing.T) {
	sizes := []int64{100, 200_000, 3_000_000}
	fc := AssignFirstCalls(sizes, Bulk, 1<<30, 1)
	for i, f := range fc {
		if f != sizes[i] {
			t.Fatalf("bulk first call %d = %d", i, f)
		}
	}
	capped := AssignFirstCalls(sizes, Bulk, 16_384, 1)
	if capped[0] != 100 || capped[1] != 16_384 || capped[2] != 16_384 {
		t.Fatalf("capped = %v", capped)
	}
}

// Property: first call never exceeds message size or buffer space, and
// is always positive for positive messages.
func TestPropertyFirstCallBounds(t *testing.T) {
	prop := func(seed int64, msg uint32, buf uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int64(msg%10_000_000) + 1
		sndbuf := int64(buf%1_000_000) + 1
		for _, app := range []AppModel{Memcached, WebServer, Bulk} {
			fc := app.FirstCall(rng, size, sndbuf)
			if fc < 1 || fc > size || fc > sndbuf {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: precision and recall are valid probabilities and the counts
// are consistent.
func TestPropertyExperimentConsistent(t *testing.T) {
	prop := func(seed int64) bool {
		res := Experiment(workload.MemcachedETC, Memcached, 1_000, 16_384, 2_000, seed)
		if res.Identified > res.ActualLarge || res.ActualLarge > res.Flows {
			return false
		}
		return res.Recall >= 0 && res.Recall <= 1 && res.Precision >= 0 && res.Precision <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
