// Package bufaware models §4.1: buffer-aware flow identification. An
// application generates a message and copies it into the kernel TCP send
// buffer through one or more send() syscalls; the classifier inspects
// the *first* syscall's size and declares the flow large when it exceeds
// a threshold.
//
// The paper validates this on two real applications (Memcached with the
// ETC trace at a 1KB threshold — 86.7% of >1KB flows identified — and a
// web server with the YouTube HTTP trace at a 10KB threshold — 84.3%).
// We have neither trace nor application binaries, so this package
// substitutes a synthetic write-pattern model: most messages are written
// in a single syscall, while a calibrated fraction of flows is streamed
// in sub-threshold chunks (incremental response construction), which is
// exactly the behaviour that costs the paper's classifier its missing
// ~14%. The calibration constants reproduce the published accuracies;
// the *mechanism* under test — first-syscall size predicts flow size
// when the send buffer is large enough — is identical.
package bufaware

import (
	"math/rand"

	"ppt/internal/workload"
)

// AppModel describes how an application writes a message into the send
// buffer.
type AppModel struct {
	Name string
	// WholeMsgProb is the probability a message is written with a
	// single syscall (up to send-buffer space).
	WholeMsgProb float64
	// ChunkBytes is the first-syscall size when the application streams
	// the message incrementally instead.
	ChunkBytes int64
}

// Calibrated application models (see package comment).
var (
	// Memcached serves ETC-style key-value responses; calibrated to the
	// paper's 86.7% identification accuracy at a 1KB threshold.
	Memcached = AppModel{Name: "memcached", WholeMsgProb: 0.867, ChunkBytes: 512}
	// WebServer serves YouTube-HTTP-style responses; calibrated to the
	// paper's 84.3% accuracy at a 10KB threshold.
	WebServer = AppModel{Name: "webserver", WholeMsgProb: 0.843, ChunkBytes: 4096}
	// Bulk writes every message in one syscall (the large-send-buffer
	// ideal assumed by the simulation experiments).
	Bulk = AppModel{Name: "bulk", WholeMsgProb: 1.0, ChunkBytes: 1 << 20}
)

// FirstCall returns the size of the first send() syscall for a message
// of the given size under this application model and free send-buffer
// space.
func (a AppModel) FirstCall(rng *rand.Rand, msgSize, sendBuf int64) int64 {
	if sendBuf <= 0 {
		sendBuf = 1 << 62
	}
	first := msgSize
	if rng.Float64() >= a.WholeMsgProb {
		first = a.ChunkBytes
		if first > msgSize {
			first = msgSize
		}
	}
	if first > sendBuf {
		first = sendBuf
	}
	return first
}

// Classifier is the §4.1 identifier.
type Classifier struct {
	// Threshold in bytes: a first syscall above it flags the flow
	// large (Table 3 default: 100KB; the §4.1 validation uses 1KB and
	// 10KB).
	Threshold int64
}

// IdentifyLarge applies the first-syscall test.
func (c Classifier) IdentifyLarge(firstCall int64) bool {
	return firstCall > c.Threshold
}

// Result summarizes one identification experiment.
type Result struct {
	Flows          int
	ActualLarge    int     // flows truly above the threshold
	Identified     int     // of those, flagged by the first syscall
	FalsePositives int     // small flows wrongly flagged
	Recall         float64 // Identified / ActualLarge
	Precision      float64
}

// Experiment runs the §4.1 validation: draw flows from dist, write them
// through the app model into a send buffer, classify on first-syscall
// size, and score against true sizes.
func Experiment(dist *workload.Dist, app AppModel, threshold, sendBuf int64, flows int, seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	cl := Classifier{Threshold: threshold}
	var res Result
	res.Flows = flows
	var flaggedTrue int
	for i := 0; i < flows; i++ {
		size := dist.Sample(rng)
		first := app.FirstCall(rng, size, sendBuf)
		flagged := cl.IdentifyLarge(first)
		if size > threshold {
			res.ActualLarge++
			if flagged {
				res.Identified++
				flaggedTrue++
			}
		} else if flagged {
			res.FalsePositives++
		}
	}
	if res.ActualLarge > 0 {
		res.Recall = float64(res.Identified) / float64(res.ActualLarge)
	}
	if total := res.Identified + res.FalsePositives; total > 0 {
		res.Precision = float64(res.Identified) / float64(total)
	}
	return res
}

// AssignFirstCalls fills in the first-syscall size for a batch of flow
// sizes, for wiring workloads into transports that consume
// transport.SimpleFlow.FirstCall.
func AssignFirstCalls(sizes []int64, app AppModel, sendBuf int64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, len(sizes))
	for i, sz := range sizes {
		out[i] = app.FirstCall(rng, sz, sendBuf)
	}
	return out
}
