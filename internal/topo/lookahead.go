package topo

import "ppt/internal/sim"

// Lookahead is the per-shard-pair lookahead matrix of a partitioned
// fabric. At(s, d) is the minimum propagation delay along any
// cross-shard wire path from shard s to shard d: a packet finishing
// serialization in s at time t cannot influence d before t + At(s, d).
// Intra-shard hops are free (they cost only serialization, which is
// non-negative), so each entry is a lower bound on real influence
// latency — the conservative direction.
//
// The diagonal At(d, d) is the minimum *cycle* delay through some other
// shard (d -> u -> d), not zero: a shard's own transmissions can come
// back to influence it after a round trip, and the windowed driver must
// bound a shard's advance by that reflection. Unreachable pairs hold
// sim.MaxTime.
//
// The matrix is a pure function of the wire graph — never of
// Config.Shards or worker count — so every simulated outcome derived
// from it is identical for every Shards >= 1.
type Lookahead struct {
	n int
	d []sim.Time // row-major n×n; sim.MaxTime = unreachable
}

// NewLookahead returns an n-shard matrix with every pair (including the
// diagonal) unreachable. Builders add wires, then call Close.
func NewLookahead(n int) *Lookahead {
	l := &Lookahead{n: n, d: make([]sim.Time, n*n)}
	for i := range l.d {
		l.d[i] = sim.MaxTime
	}
	return l
}

// N returns the shard count.
func (l *Lookahead) N() int { return l.n }

// AddWire records a directed cross-shard wire of the given propagation
// delay, keeping the minimum when parallel wires connect the same pair.
func (l *Lookahead) AddWire(src, dst int, delay sim.Time) {
	if src == dst {
		return // intra-shard wires don't constrain the matrix
	}
	if i := src*l.n + dst; delay < l.d[i] {
		l.d[i] = delay
	}
}

// Close computes the min-plus transitive closure (Floyd–Warshall) over
// the recorded wires: after it, At(s, d) is the min total wire delay of
// any path s -> d with at least one edge. Because every delay is
// positive the closure satisfies the triangle inequality
// At(s, d) <= At(s, u) + At(u, d), which is exactly what the windowed
// driver's inductive safety argument needs (DESIGN.md §7.5).
func (l *Lookahead) Close() {
	n := l.n
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			ik := l.d[i*n+k]
			if ik == sim.MaxTime {
				continue
			}
			for j := 0; j < n; j++ {
				if via := satAdd(ik, l.d[k*n+j]); via < l.d[i*n+j] {
					l.d[i*n+j] = via
				}
			}
		}
	}
}

// At returns the matrix entry for the ordered pair (src, dst).
func (l *Lookahead) At(src, dst int) sim.Time { return l.d[src*l.n+dst] }

// Min returns the smallest finite entry — the classic single global
// lock-step window width — or sim.MaxTime if no shard reaches another.
func (l *Lookahead) Min() sim.Time {
	m := sim.MaxTime
	for _, v := range l.d {
		if v < m {
			m = v
		}
	}
	return m
}

// satAdd adds two times, saturating at sim.MaxTime so "unreachable"
// plus anything stays unreachable instead of overflowing.
func satAdd(a, b sim.Time) sim.Time {
	if a == sim.MaxTime || b == sim.MaxTime || a > sim.MaxTime-b {
		return sim.MaxTime
	}
	return a + b
}

// AssignWorkers maps each shard to one of `workers` worker slots with a
// deterministic longest-processing-time bin packing over the given
// weights. Builders call it with static expected loads (host count for
// a leaf shard, 1 for a switch-only shard); the windowed run driver
// re-runs it mid-run over measured executed-event counts to rebalance.
// Heavier shards are placed first, each onto the currently lightest
// worker; every tie — equal weights, equal worker loads — breaks by
// lowest index, so the assignment is a pure function of
// (weights, workers), never of timing. Worker assignment only decides
// which goroutine executes a shard's window; it is invisible to
// simulated outcomes.
func AssignWorkers(weights []uint64, workers int) []int {
	n := len(weights)
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	// Shard indices sorted by descending weight, index ascending on
	// ties (stable insertion sort: n is the switch count, tiny).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && weights[order[j]] > weights[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	load := make([]uint64, workers)
	out := make([]int, n)
	for _, s := range order {
		w := 0
		for v := 1; v < workers; v++ {
			if load[v] < load[w] {
				w = v
			}
		}
		out[s] = w
		load[w] += weights[s]
	}
	return out
}
