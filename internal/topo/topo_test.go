package topo

import (
	"testing"

	"ppt/internal/netsim"
	"ppt/internal/sim"
)

// deliverProbe sends one data packet between two hosts and returns the
// one-way latency observed.
func deliverProbe(t *testing.T, net *Network, src, dst int) sim.Time {
	t.Helper()
	var arrived sim.Time
	h := net.Hosts[dst]
	h.Bind(12345, true, probeEP(func(p *netsim.Packet) { arrived = net.Sched.Now() }))
	defer h.Unbind(12345, true)
	net.Hosts[src].Send(netsim.DataPacket(12345, int32(src), int32(dst), 0, netsim.MSS, 0))
	net.Sched.Run()
	if arrived == 0 {
		t.Fatalf("probe %d->%d never arrived", src, dst)
	}
	return arrived
}

type probeEP func(*netsim.Packet)

func (f probeEP) Handle(p *netsim.Packet) { f(p) }

func TestStarLatencyFirstProbe(t *testing.T) {
	net := Star(4, Config{})
	lat := deliverProbe(t, net, 0, 1)
	want := 40*sim.Microsecond + 2*(10*netsim.Gbps).TxTime(netsim.MSS+netsim.HeaderBytes)
	if lat != want {
		t.Fatalf("latency = %v, want %v", lat, want)
	}
}

func TestTestbedProfile(t *testing.T) {
	net := TestbedProfile()
	if len(net.Hosts) != 15 || len(net.Switches) != 1 {
		t.Fatalf("hosts=%d switches=%d", len(net.Hosts), len(net.Switches))
	}
	// Base RTT should be near the paper's 80us.
	if net.BaseRTT < 80*sim.Microsecond || net.BaseRTT > 85*sim.Microsecond {
		t.Fatalf("base RTT = %v", net.BaseRTT)
	}
	// 10G * ~80us = ~100KB BDP.
	if bdp := net.BDP(); bdp < 95_000 || bdp > 110_000 {
		t.Fatalf("BDP = %d", bdp)
	}
	pc := net.Switches[0].Port(0).Config()
	if pc.ECNHighK != 100_000 || pc.ECNLowK != 80_000 {
		t.Fatalf("ECN thresholds = %d/%d", pc.ECNHighK, pc.ECNLowK)
	}
}

func TestSimProfileShape(t *testing.T) {
	net := SimProfile()
	if len(net.Hosts) != 144 {
		t.Fatalf("hosts = %d", len(net.Hosts))
	}
	if len(net.Switches) != 13 {
		t.Fatalf("switches = %d", len(net.Switches))
	}
	if net.BottleneckRate != 40*netsim.Gbps {
		t.Fatalf("bottleneck = %v", net.BottleneckRate)
	}
	// Each leaf has 16 downlinks + 4 uplinks.
	if got := len(net.Switches[0].Ports()); got != 20 {
		t.Fatalf("leaf ports = %d", got)
	}
	// Each spine has 9 downlinks.
	if got := len(net.Switches[9].Ports()); got != 9 {
		t.Fatalf("spine ports = %d", got)
	}
}

func TestLeafSpineCrossLeafConnectivity(t *testing.T) {
	net := LeafSpine(3, 2, 2, Config{})
	// host 0 (leaf 0) to host 5 (leaf 2).
	lat := deliverProbe(t, net, 0, 5)
	if lat <= 0 {
		t.Fatal("no latency")
	}
	// Same-leaf path must be shorter than cross-leaf.
	net2 := LeafSpine(3, 2, 2, Config{})
	same := deliverProbe(t, net2, 0, 1)
	if same >= lat {
		t.Fatalf("same-leaf %v not faster than cross-leaf %v", same, lat)
	}
}

func TestLeafSpineAllPairs(t *testing.T) {
	net := LeafSpine(3, 2, 2, Config{})
	n := len(net.Hosts)
	flow := uint32(1)
	got := make(map[[2]int]bool)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			s, d := s, d
			net.Hosts[d].Bind(flow, true, probeEP(func(p *netsim.Packet) { got[[2]int{s, d}] = true }))
			net.Hosts[s].Send(netsim.DataPacket(flow, int32(s), int32(d), 0, 100, 0))
			flow++
		}
	}
	net.Sched.Run()
	if len(got) != n*(n-1) {
		t.Fatalf("delivered %d of %d pairs", len(got), n*(n-1))
	}
}

func TestOversubscriptionRatio(t *testing.T) {
	net := SimProfile()
	// 16 hosts × 40G vs 4 uplinks × 100G per leaf = 1.6:1 raw; paper
	// calls it 1.4:1 with their accounting — assert it is oversubscribed.
	hostBW := 16 * 40
	coreBW := 4 * 100
	if hostBW <= coreBW {
		t.Fatal("fabric not oversubscribed")
	}
	_ = net
}

func TestNonOversubscribedProfile(t *testing.T) {
	net := NonOversubscribedProfile()
	if net.BottleneckRate != 10*netsim.Gbps {
		t.Fatalf("bottleneck = %v", net.BottleneckRate)
	}
	// 16×10G == 4×40G.
	if 16*10 != 4*40 {
		t.Fatal("ratio wrong")
	}
}

func TestFastSimProfile(t *testing.T) {
	net := FastSimProfile()
	if net.BottleneckRate != 100*netsim.Gbps {
		t.Fatalf("bottleneck = %v", net.BottleneckRate)
	}
	if net.BDP() <= SimProfile().BDP() {
		t.Fatal("faster fabric should have larger BDP")
	}
}

func TestSwitchPortsEnumeration(t *testing.T) {
	net := LeafSpine(2, 2, 2, Config{})
	// leaves: 2×(2 down + 2 up) = 8; spines: 2×2 down = 4.
	if got := len(net.SwitchPorts()); got != 12 {
		t.Fatalf("switch ports = %d", got)
	}
}

func TestDumbbellBottleneck(t *testing.T) {
	net := Dumbbell(2, Config{PerPortBuffer: 120_000, ECNHighK: 120_000})
	if len(net.Hosts) != 3 {
		t.Fatalf("hosts = %d", len(net.Hosts))
	}
	if net.Hosts[0].Rate() != 40*netsim.Gbps {
		t.Fatalf("rate = %v", net.Hosts[0].Rate())
	}
}

func TestNICMarksECN(t *testing.T) {
	// When the host's own line rate is the first bottleneck, the queue
	// forms at the NIC; it must mark there or a sender facing an
	// equal-rate path would grow its window without bound.
	net := TestbedProfile()
	nic := net.Hosts[0].NIC().Config()
	if nic.ECNHighK != net.Cfg.ECNHighK || nic.ECNLowK != net.Cfg.ECNLowK {
		t.Fatalf("NIC ECN thresholds = %d/%d, want %d/%d",
			nic.ECNHighK, nic.ECNLowK, net.Cfg.ECNHighK, net.Cfg.ECNLowK)
	}
}

func TestLossProbPassthrough(t *testing.T) {
	net := Star(3, Config{LossProb: 0.01})
	for _, p := range net.SwitchPorts() {
		if p.Config().LossProb != 0.01 {
			t.Fatalf("switch port LossProb = %v", p.Config().LossProb)
		}
	}
}
