package topo

import (
	"math/rand"
	"testing"

	"ppt/internal/sim"
)

// bruteMinWalk computes, by repeated relaxation over the raw adjacency,
// the minimum total delay of any walk with at least one edge between
// every ordered pair (including i -> i cycles). With positive weights
// the minimum walk is a simple path (or simple cycle on the diagonal),
// so n relaxation rounds suffice. Independent of the Floyd–Warshall
// code under test.
func bruteMinWalk(n int, adj [][]sim.Time) [][]sim.Time {
	dist := make([][]sim.Time, n)
	for i := range dist {
		dist[i] = append([]sim.Time(nil), adj[i]...)
	}
	for step := 0; step < n; step++ {
		next := make([][]sim.Time, n)
		for i := range next {
			next[i] = append([]sim.Time(nil), dist[i]...)
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					if dist[i][k] == sim.MaxTime || adj[k][j] == sim.MaxTime {
						continue
					}
					if v := dist[i][k] + adj[k][j]; v < next[i][j] {
						next[i][j] = v
					}
				}
			}
		}
		dist = next
	}
	return dist
}

// TestLookaheadBruteForce checks the closed matrix of random directed
// wire graphs against the independent brute-force walk minimum, and
// that the result satisfies the triangle inequality the windowed
// driver's safety induction relies on.
func TestLookaheadBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(7)
		adj := make([][]sim.Time, n)
		for i := range adj {
			adj[i] = make([]sim.Time, n)
			for j := range adj[i] {
				adj[i][j] = sim.MaxTime
			}
		}
		la := NewLookahead(n)
		wires := rng.Intn(3 * n)
		for w := 0; w < wires; w++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			if src == dst {
				continue
			}
			d := sim.Time(1 + rng.Intn(1000))
			la.AddWire(src, dst, d)
			if d < adj[src][dst] {
				adj[src][dst] = d
			}
		}
		la.Close()
		want := bruteMinWalk(n, adj)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got := la.At(i, j); got != want[i][j] {
					t.Fatalf("trial %d: At(%d,%d) = %v, brute force = %v", trial, i, j, got, want[i][j])
				}
			}
		}
		for i := 0; i < n; i++ {
			for k := 0; k < n; k++ {
				for j := 0; j < n; j++ {
					if via := satAdd(la.At(i, k), la.At(k, j)); la.At(i, j) > via {
						t.Fatalf("trial %d: triangle violated: At(%d,%d)=%v > At(%d,%d)+At(%d,%d)=%v",
							trial, i, j, la.At(i, j), i, k, k, j, via)
					}
				}
			}
		}
	}
}

// TestLeafSpineLookahead pins the matrix a built fabric carries:
// adjacent pairs (leaf<->spine) at one wire delay, distant pairs
// (leaf<->leaf, spine<->spine) and every self-cycle at two, the global
// minimum equal to the legacy Window, and each entry no larger than
// the true minimum path delay computed brute-force from the wire set
// the builder installs.
func TestLeafSpineLookahead(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		leaves, spines, perLeaf := 1+rng.Intn(5), 1+rng.Intn(3), 1+rng.Intn(4)
		delay := sim.Time(1+rng.Intn(20)) * sim.Microsecond
		net := LeafSpine(leaves, spines, perLeaf, Config{LinkDelay: delay, Shards: 1 + rng.Intn(8)})
		part := net.Part
		if part == nil || part.Lookahead == nil {
			t.Fatal("partitioned LeafSpine without a lookahead matrix")
		}
		la := part.Lookahead
		n := leaves + spines
		adj := make([][]sim.Time, n)
		for i := range adj {
			adj[i] = make([]sim.Time, n)
			for j := range adj[i] {
				adj[i][j] = sim.MaxTime
			}
		}
		for li := 0; li < leaves; li++ {
			for si := 0; si < spines; si++ {
				adj[li][leaves+si] = delay
				adj[leaves+si][li] = delay
			}
		}
		want := bruteMinWalk(n, adj)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got := la.At(i, j); got != want[i][j] {
					t.Fatalf("leaves=%d spines=%d: At(%d,%d) = %v, want %v", leaves, spines, i, j, got, want[i][j])
				}
				if got := la.At(i, j); got > want[i][j] {
					t.Fatalf("matrix entry above true min path delay")
				}
			}
		}
		if la.Min() != part.Window {
			t.Fatalf("matrix min %v != legacy window %v", la.Min(), part.Window)
		}
		if spines > 0 {
			if got := la.At(0, leaves); got != delay {
				t.Fatalf("leaf->spine = %v, want %v", got, delay)
			}
			if got := la.At(0, 0); got != 2*delay {
				t.Fatalf("self-cycle = %v, want %v", got, 2*delay)
			}
		}
	}
}

// TestAssignWorkers pins the partitioner's determinism and balance: a
// pure function of (weights, workers), every shard assigned a slot in
// range, and no worker carrying more than the LPT bound of the total.
func TestAssignWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(16)
		workers := 1 + rng.Intn(8)
		weights := make([]uint64, n)
		total := uint64(0)
		for i := range weights {
			weights[i] = uint64(1 + rng.Intn(20))
			total += weights[i]
		}
		a := AssignWorkers(weights, workers)
		b := AssignWorkers(weights, workers)
		if len(a) != n {
			t.Fatalf("assignment length %d, want %d", len(a), n)
		}
		eff := workers
		if eff > n {
			eff = n
		}
		load := make([]uint64, eff)
		for i, w := range a {
			if w != b[i] {
				t.Fatal("AssignWorkers is not deterministic")
			}
			if w < 0 || w >= eff {
				t.Fatalf("shard %d assigned out-of-range worker %d", i, w)
			}
			load[w] += weights[i]
		}
		// LPT guarantee: max load <= avg + max single weight.
		maxLoad, maxW := uint64(0), uint64(0)
		for _, l := range load {
			if l > maxLoad {
				maxLoad = l
			}
		}
		for _, w := range weights {
			if w > maxW {
				maxW = w
			}
		}
		if bound := total/uint64(eff) + maxW; maxLoad > bound {
			t.Fatalf("max worker load %d exceeds LPT bound %d (total %d over %d workers)", maxLoad, bound, total, eff)
		}
	}
	// The leaf-spine case the engine cares about: 4 heavy leaves + 2
	// light spines over 2 workers must split the leaves evenly instead
	// of stranding them round-robin.
	got := AssignWorkers([]uint64{17, 17, 17, 17, 1, 1}, 2)
	perWorker := [2]int{}
	for i := 0; i < 4; i++ {
		perWorker[got[i]]++
	}
	if perWorker[0] != 2 || perWorker[1] != 2 {
		t.Fatalf("4 equal leaves over 2 workers split %v, want 2+2 (assignment %v)", perWorker, got)
	}
}
