// Package topo builds the three fabric shapes the paper evaluates on:
// the CloudLab-style single-switch testbed (15 hosts, 10G, 80µs RTT), the
// 144-server leaf–spine simulation fabric (40/100G oversubscribed 1.4:1,
// 100/400G variant, and the non-oversubscribed 10/40G variant), and a
// 2-sender dumbbell used for the link-utilization microbenchmarks.
package topo

import (
	"fmt"

	"ppt/internal/netsim"
	"ppt/internal/sim"
)

// Config parameterizes a fabric build. Zero values get sensible defaults
// from each builder.
type Config struct {
	HostRate netsim.Rate // edge link speed
	CoreRate netsim.Rate // leaf–spine link speed

	// LinkDelay is the one-way propagation delay of every wire.
	LinkDelay sim.Time

	// ECNHighK / ECNLowK are switch marking thresholds in bytes for the
	// high (P0–P3) and low (P4–P7) classes. Zero disables marking.
	ECNHighK int64
	ECNLowK  int64

	// PerPortBuffer caps each switch port's occupancy (simulation
	// profile: 120KB/port). Zero means uncapped per port.
	PerPortBuffer int64

	// SharedBuffer, when non-zero, creates one shared pool per switch
	// (testbed profile: 50MB for the whole S4048).
	SharedBuffer int64

	// TrimToHeader, DroppableThresh, LowClassCap, EnableINT and
	// DynamicLowThreshold pass through to every switch port (see
	// netsim.PortConfig).
	TrimToHeader        bool
	DroppableThresh     int64
	LowClassCap         int64
	EnableINT           bool
	DynamicLowThreshold bool

	// LossProb injects random per-packet data loss at every switch
	// egress (failure injection; 0 in all paper experiments).
	LossProb float64

	// NoFastPath disables the cut-through fused port pipeline on every
	// port (the -fastpath=off escape hatch; see netsim.PortConfig).
	NoFastPath bool

	// LegacyPipeline runs every port on the pre-fusion inline pipeline
	// (set by LeafSpine when partitioning; see netsim.PortConfig).
	LegacyPipeline bool

	// Sched selects the event-queue implementation of the fabric's
	// scheduler (timing wheel by default, min-heap for A/B runs). Both
	// produce identical event orders; see internal/sim.
	Sched sim.Impl

	// Shards, when >= 1, asks multi-switch builders (LeafSpine) for a
	// partitioned fabric: one logical shard per switch (leaf shards own
	// their hosts), each with its own scheduler and packet pool, wired
	// for the conservative time-windowed parallel engine (DESIGN.md
	// §7.3). The value caps the number of worker goroutines; the
	// logical partition — and therefore every simulated outcome — is
	// topology-determined and identical for every Shards >= 1. Zero (the
	// zero value) builds the classic monolithic single-scheduler fabric.
	// Star ignores this: a single switch has no useful partition.
	Shards int
}

// Partition describes a sharded fabric: the per-shard schedulers and
// packet pools, the cross-shard mailboxes, and the host-to-shard map
// the windowed run driver needs. Shard indices are topology-determined:
// leaf i (plus its hosts) is shard i, spine j is shard leaves+j.
type Partition struct {
	// N is the logical shard count (leaves + spines).
	N int
	// Workers caps the worker goroutines driving the shards each
	// window: min(Config.Shards, N). Worker count never affects
	// outcomes — shards only interact at barriers, in canonical order.
	Workers int
	// Window is the single global lock-step window width: the minimum
	// propagation delay over cross-shard wires. Kept as the coarse
	// fallback lookahead; the driver prefers the per-pair matrix below.
	Window sim.Time
	// Lookahead is the per-shard-pair lookahead matrix (closed under
	// min-plus composition); see the Lookahead type. Derived from the
	// same wires that get SetCross, so the two views always agree.
	Lookahead *Lookahead
	// ShardWorker maps each shard to the worker slot that executes its
	// windows: a deterministic host-count-weighted LPT packing
	// (assignWorkers) so Workers < N doesn't strand heavy leaf shards
	// on one goroutine. Purely an execution detail — outcomes are
	// identical for any assignment.
	ShardWorker []int

	Scheds   []*sim.Scheduler
	Pools    []*netsim.PacketPool
	Outboxes []*netsim.Outbox
	Inboxes  []*netsim.Inbox
	// HostShard maps host id to its ToR's shard.
	HostShard []int
}

// Network is a built fabric: hosts wired through switches, sharing one
// scheduler (or, when partitioned, one scheduler per shard).
type Network struct {
	// Sched is the fabric scheduler of a monolithic build; nil when the
	// fabric is partitioned (use Part.Scheds and the windowed driver).
	Sched    *sim.Scheduler
	Hosts    []*netsim.Host
	Switches []*netsim.Switch
	Cfg      Config

	// Part is non-nil for a partitioned (sharded) fabric.
	Part *Partition

	// Pool is the run-scoped packet freelist shared by every host and
	// port of this fabric. One pool per Network keeps runs deterministic
	// and race-free under the experiment worker pool. Partitioned
	// fabrics use Part.Pools (one per shard) instead and leave this nil.
	Pool *netsim.PacketPool

	// BaseRTT is the zero-load round-trip time between the two most
	// distant hosts, including per-hop serialization of one MSS packet.
	BaseRTT sim.Time

	// BottleneckRate is the slowest link a flow can traverse.
	BottleneckRate netsim.Rate
}

// BDP returns the bandwidth-delay product of the fabric in bytes.
func (n *Network) BDP() int {
	return netsim.BDPBytes(n.BottleneckRate, n.BaseRTT)
}

// Executed reports the total scheduler events run on this fabric,
// summed over shards when partitioned.
func (n *Network) Executed() uint64 {
	if n.Part == nil {
		return n.Sched.Executed
	}
	var total uint64
	for _, s := range n.Part.Scheds {
		total += s.Executed
	}
	return total
}

// SwitchPorts returns every switch egress port (for buffer sampling).
func (n *Network) SwitchPorts() []*netsim.Port {
	var out []*netsim.Port
	for _, sw := range n.Switches {
		out = append(out, sw.Ports()...)
	}
	return out
}

// SettleTx applies every port's deferred fused-transmit accounting with
// serialize-complete time <= limit (netsim.Port.SettleTx). Run drivers
// call it once at end of run, before reading Tx counters, so both
// pipeline modes count exactly the serializations that physically
// completed within the run. Partitioned fabrics pass per-shard limits
// through the callback (each port settles at its own shard's horizon);
// monolithic callers return one fabric-wide limit.
func (n *Network) SettleTx(limit func(*sim.Scheduler) sim.Time) {
	for _, h := range n.Hosts {
		nic := h.NIC()
		nic.SettleTx(limit(nic.Scheduler()))
	}
	for _, p := range n.SwitchPorts() {
		p.SettleTx(limit(p.Scheduler()))
	}
}

// attachPool gives every host and every port (NICs included) the run's
// packet pool, completing the Get-at-source / Free-at-sink cycle.
func (n *Network) attachPool() {
	n.Pool = netsim.NewPacketPool()
	for _, h := range n.Hosts {
		h.SetPool(n.Pool)
		h.NIC().SetPacketPool(n.Pool)
	}
	for _, p := range n.SwitchPorts() {
		p.SetPacketPool(n.Pool)
	}
}

// switchPortCfg derives the netsim.PortConfig for a switch egress.
func (c Config) switchPortCfg(rate netsim.Rate) netsim.PortConfig {
	return netsim.PortConfig{
		Rate:                rate,
		Delay:               c.LinkDelay,
		ECNHighK:            c.ECNHighK,
		ECNLowK:             c.ECNLowK,
		QueueCap:            c.PerPortBuffer,
		TrimToHeader:        c.TrimToHeader,
		DroppableThresh:     c.DroppableThresh,
		LowClassCap:         c.LowClassCap,
		EnableINT:           c.EnableINT,
		DynamicLowThreshold: c.DynamicLowThreshold,
		LossProb:            c.LossProb,
		NoFastPath:          c.NoFastPath,
		LegacyPipeline:      c.LegacyPipeline,
	}
}

// nicCfg configures host egress. NICs mark ECN at the same thresholds
// as switches: when the first bottleneck is the host's own line rate,
// the queue forms in the host (where a real kernel's qdisc/TSQ applies
// backpressure); without marking there, a sender facing an equal-rate
// path would inflate its window without bound.
func (c Config) nicCfg(rate netsim.Rate) netsim.PortConfig {
	return netsim.PortConfig{
		Rate:       rate,
		Delay:      c.LinkDelay,
		EnableINT:      c.EnableINT,
		ECNHighK:       c.ECNHighK,
		ECNLowK:        c.ECNLowK,
		NoFastPath:     c.NoFastPath,
		LegacyPipeline: c.LegacyPipeline,
	}
}

// Star builds n hosts hanging off a single switch — the paper's testbed
// shape. Defaults: 10G links, 20µs wire delay (80µs base RTT), 50MB
// shared buffer.
func Star(n int, cfg Config) *Network {
	if cfg.HostRate == 0 {
		cfg.HostRate = 10 * netsim.Gbps
	}
	if cfg.LinkDelay == 0 {
		cfg.LinkDelay = 20 * sim.Microsecond
	}
	s := sim.NewSchedulerImpl(cfg.Sched)
	net := &Network{Sched: s, Cfg: cfg, BottleneckRate: cfg.HostRate}
	sw := netsim.NewSwitch("sw0", 1)
	net.Switches = []*netsim.Switch{sw}
	var pool *netsim.BufferPool
	if cfg.SharedBuffer > 0 {
		pool = netsim.NewBufferPool(cfg.SharedBuffer)
	}
	for i := 0; i < n; i++ {
		h := netsim.NewHost(int32(i), s)
		nic := netsim.NewPort(fmt.Sprintf("h%d-nic", i), s, cfg.nicCfg(cfg.HostRate), sw, nil)
		h.SetNIC(nic)
		down := netsim.NewPort(fmt.Sprintf("sw0-p%d", i), s, cfg.switchPortCfg(cfg.HostRate), h, pool)
		sw.AddRoute(int32(i), sw.AddPort(down))
		net.Hosts = append(net.Hosts, h)
	}
	// host -> switch -> host: 2 wires each way plus serialization.
	net.BaseRTT = 4*cfg.LinkDelay + 2*cfg.HostRate.TxTime(netsim.MSS+netsim.HeaderBytes) + 2*cfg.HostRate.TxTime(netsim.HeaderBytes)
	net.attachPool()
	return net
}

// LeafSpine builds hostsPerLeaf×leaves hosts under `leaves` leaf switches
// fully meshed to `spines` spine switches. The paper's oversubscribed
// fabric is LeafSpine(9, 4, 16) at 40/100G: 16×40G = 640G of host
// bandwidth vs 4×100G = 400G of uplink per leaf († 1.4:1 hidden in the
// paper's "144 servers, 9 leaf, 4 spine" with 40/100G links). Defaults:
// 40G/100G, 1µs wires, 120KB per-port buffer.
func LeafSpine(leaves, spines, hostsPerLeaf int, cfg Config) *Network {
	if cfg.HostRate == 0 {
		cfg.HostRate = 40 * netsim.Gbps
	}
	if cfg.CoreRate == 0 {
		cfg.CoreRate = 100 * netsim.Gbps
	}
	if cfg.LinkDelay == 0 {
		cfg.LinkDelay = 1 * sim.Microsecond
	}
	net := &Network{Cfg: cfg, BottleneckRate: cfg.HostRate}
	if cfg.CoreRate < cfg.HostRate {
		net.BottleneckRate = cfg.CoreRate
	}

	// Partitioning (Config.Shards >= 1): leaf i and its hosts form shard
	// i, spine j forms shard leaves+j. The only cross-shard wires are
	// leaf<->spine (a host's NIC peers with its own leaf), so the
	// conservative window width is exactly LinkDelay.
	var part *Partition
	var mono *sim.Scheduler
	if cfg.Shards >= 1 {
		// Partitioned fabrics run the pre-fusion legacy pipeline on
		// every port: the windowed engine's inbox delivery timers get
		// their same-instant position from *when* each window barrier
		// merged the deposits, and the window trajectory is a function
		// of each shard's pending event set — which event fusion
		// changes. Forcing the legacy pipeline keeps outcomes identical
		// whichever -fastpath setting built the run, and skips the
		// deferred-pop resume events the fused/off A-B needs on
		// monolithic fabrics (DESIGN.md §7.6); the fused path's win
		// targets the monolithic fabrics.
		cfg.LegacyPipeline = true
		net.Cfg.LegacyPipeline = true
		n := leaves + spines
		part = &Partition{
			N:         n,
			Workers:   min(cfg.Shards, n),
			Window:    cfg.LinkDelay,
			Scheds:    make([]*sim.Scheduler, n),
			Pools:     make([]*netsim.PacketPool, n),
			Outboxes:  make([]*netsim.Outbox, n),
			Inboxes:   make([]*netsim.Inbox, n),
			HostShard: make([]int, leaves*hostsPerLeaf),
		}
		for i := 0; i < n; i++ {
			part.Scheds[i] = sim.NewSchedulerImpl(cfg.Sched)
			part.Pools[i] = netsim.NewPacketPool()
			part.Outboxes[i] = netsim.NewOutbox(i)
			part.Inboxes[i] = netsim.NewInbox(part.Scheds[i])
		}
		// Per-pair lookahead: one directed wire per leaf<->spine link at
		// LinkDelay, closed under min-plus so distant pairs (leaf->leaf
		// via a spine) get their true 2×LinkDelay bound instead of the
		// global minimum. Load-balanced worker assignment weights each
		// leaf shard by its hosts (plus the switch itself) and each
		// spine shard by the switch alone.
		la := NewLookahead(n)
		weights := make([]uint64, n)
		for li := 0; li < leaves; li++ {
			for si := 0; si < spines; si++ {
				la.AddWire(li, leaves+si, cfg.LinkDelay)
				la.AddWire(leaves+si, li, cfg.LinkDelay)
			}
			weights[li] = uint64(hostsPerLeaf) + 1
		}
		for si := 0; si < spines; si++ {
			weights[leaves+si] = 1
		}
		la.Close()
		part.Lookahead = la
		part.ShardWorker = AssignWorkers(weights, part.Workers)
		net.Part = part
	} else {
		mono = sim.NewSchedulerImpl(cfg.Sched)
		net.Sched = mono
	}
	sched := func(shard int) *sim.Scheduler {
		if part != nil {
			return part.Scheds[shard]
		}
		return mono
	}
	leafSW := make([]*netsim.Switch, leaves)
	spineSW := make([]*netsim.Switch, spines)
	for i := range leafSW {
		leafSW[i] = netsim.NewSwitch(fmt.Sprintf("leaf%d", i), uint32(i+1))
		net.Switches = append(net.Switches, leafSW[i])
	}
	for i := range spineSW {
		spineSW[i] = netsim.NewSwitch(fmt.Sprintf("spine%d", i), uint32(100+i))
		net.Switches = append(net.Switches, spineSW[i])
	}

	for li, leaf := range leafSW {
		var pool *netsim.BufferPool
		if cfg.SharedBuffer > 0 {
			pool = netsim.NewBufferPool(cfg.SharedBuffer)
		}
		// Downlinks to hosts.
		for hi := 0; hi < hostsPerLeaf; hi++ {
			id := int32(li*hostsPerLeaf + hi)
			h := netsim.NewHost(id, sched(li))
			nic := netsim.NewPort(fmt.Sprintf("h%d-nic", id), sched(li), cfg.nicCfg(cfg.HostRate), leaf, nil)
			h.SetNIC(nic)
			down := netsim.NewPort(fmt.Sprintf("leaf%d-h%d", li, hi), sched(li), cfg.switchPortCfg(cfg.HostRate), h, pool)
			leaf.AddRoute(id, leaf.AddPort(down))
			net.Hosts = append(net.Hosts, h)
			if part != nil {
				part.HostShard[id] = li
				h.SetPool(part.Pools[li])
				nic.SetPacketPool(part.Pools[li])
				down.SetPacketPool(part.Pools[li])
			}
		}
		// Uplinks to every spine; remote hosts ECMP across them.
		var uplinks []int
		for si, spine := range spineSW {
			up := netsim.NewPort(fmt.Sprintf("leaf%d-spine%d", li, si), sched(li), cfg.switchPortCfg(cfg.CoreRate), spine, pool)
			uplinks = append(uplinks, leaf.AddPort(up))
			if part != nil {
				up.SetPacketPool(part.Pools[li])
				up.SetCross(part.Outboxes[li], leaves+si)
			}
		}
		for other := 0; other < leaves; other++ {
			if other == li {
				continue
			}
			for hi := 0; hi < hostsPerLeaf; hi++ {
				leaf.AddRoute(int32(other*hostsPerLeaf+hi), uplinks...)
			}
		}
	}
	// Spine downlinks: one port per leaf, routing that leaf's hosts.
	for si, spine := range spineSW {
		var pool *netsim.BufferPool
		if cfg.SharedBuffer > 0 {
			pool = netsim.NewBufferPool(cfg.SharedBuffer)
		}
		shard := leaves + si
		for li, leaf := range leafSW {
			down := netsim.NewPort(fmt.Sprintf("%s-%s", spine.Name(), leaf.Name()), sched(shard), cfg.switchPortCfg(cfg.CoreRate), leaf, pool)
			idx := spine.AddPort(down)
			for hi := 0; hi < hostsPerLeaf; hi++ {
				spine.AddRoute(int32(li*hostsPerLeaf+hi), idx)
			}
			if part != nil {
				down.SetPacketPool(part.Pools[shard])
				down.SetCross(part.Outboxes[shard], li)
			}
		}
	}
	// Worst case: host→leaf→spine→leaf→host, 4 wires each way.
	mtu := netsim.MSS + netsim.HeaderBytes
	net.BaseRTT = 8*cfg.LinkDelay +
		2*cfg.HostRate.TxTime(mtu) + 2*cfg.CoreRate.TxTime(mtu) +
		2*cfg.HostRate.TxTime(netsim.HeaderBytes) + 2*cfg.CoreRate.TxTime(netsim.HeaderBytes)
	if part == nil {
		net.attachPool()
	}
	return net
}

// Dumbbell builds `senders` hosts plus one receiver on a single switch;
// the receiver downlink is the bottleneck. Used by the Fig 1/20/28/29
// microbenchmarks (2 senders, 40G, 120KB buffer).
func Dumbbell(senders int, cfg Config) *Network {
	if cfg.HostRate == 0 {
		cfg.HostRate = 40 * netsim.Gbps
	}
	if cfg.LinkDelay == 0 {
		cfg.LinkDelay = 1 * sim.Microsecond
	}
	return Star(senders+1, cfg)
}

// Paper-profile helpers ------------------------------------------------

// TestbedProfile reproduces Table 3: 15 hosts on a 10G switch with 50MB
// shared buffer, 80µs base RTT, K_H=100KB, K_L=80KB.
func TestbedProfile() *Network {
	return Star(15, Config{
		HostRate:     10 * netsim.Gbps,
		LinkDelay:    20 * sim.Microsecond,
		SharedBuffer: 50 << 20,
		ECNHighK:     100_000,
		ECNLowK:      80_000,
	})
}

// SimProfile reproduces §6.2: 144 servers, 9 leaves, 4 spines, 40/100G,
// 120KB per-port buffer, K_H=96KB, K_L=86KB.
func SimProfile() *Network {
	return LeafSpine(9, 4, 16, Config{
		HostRate:      40 * netsim.Gbps,
		CoreRate:      100 * netsim.Gbps,
		PerPortBuffer: 120_000,
		ECNHighK:      96_000,
		ECNLowK:       86_000,
	})
}

// FastSimProfile is the 100/400G variant of Fig 22. ECN thresholds scale
// with the 2.5× higher line rate at equal base RTT.
func FastSimProfile() *Network {
	return LeafSpine(9, 4, 16, Config{
		HostRate:      100 * netsim.Gbps,
		CoreRate:      400 * netsim.Gbps,
		PerPortBuffer: 300_000,
		ECNHighK:      240_000,
		ECNLowK:       215_000,
	})
}

// NonOversubscribedProfile reproduces appendix E: 9 leaves × 16 hosts at
// 10G with 4 spines at 40G (16×10G = 4×40G, 1:1).
func NonOversubscribedProfile() *Network {
	return LeafSpine(9, 4, 16, Config{
		HostRate:      10 * netsim.Gbps,
		CoreRate:      40 * netsim.Gbps,
		PerPortBuffer: 120_000,
		ECNHighK:      30_000,
		ECNLowK:       25_000,
	})
}
