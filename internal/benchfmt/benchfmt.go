// Package benchfmt defines the schema of the checked-in BENCH_*.json
// perf-trajectory files, shared by the writer (pptsim -benchjson) and
// the regression gate (cmd/benchcmp, scripts/benchcmp.sh).
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
)

// Entry is one experiment's measurement.
type Entry struct {
	Name         string  // experiment id
	NsPerOp      int64   // wall-clock ns for one full experiment run
	AllocsPerOp  uint64  // heap allocations during the run
	BytesPerOp   uint64  // heap bytes allocated during the run
	Events       uint64  // scheduler events executed across all cells
	EventsPerSec float64 // Events / wall-clock seconds

	// Windowed-engine extras, present only on sharded entries. They
	// let benchcmp's speedup report say *why* parallelism changed:
	// rounds are barrier synchronizations; windows run/skipped count
	// per-shard window executions vs idle skips; barrier-frac is the
	// share of engine wall-clock spent at barriers; event-min/max-share
	// bound each shard's share of the executed events (spread = load
	// imbalance, deterministic on any machine — unlike the wall-clock
	// busy fractions they replaced, which degenerated to 1/shards on
	// time-shared CPUs); rebalances counts runtime event-load worker
	// reassignments and worker-spread is the final per-worker event-load
	// spread ((max-min)/total) under the last assignment.
	Rounds         uint64  `json:",omitempty"`
	WindowsRun     uint64  `json:",omitempty"`
	WindowsSkipped uint64  `json:",omitempty"`
	CrossPackets   uint64  `json:",omitempty"`
	BarrierFrac    float64 `json:",omitempty"`
	EventMinShare  float64 `json:",omitempty"`
	EventMaxShare  float64 `json:",omitempty"`
	Rebalances     uint64  `json:",omitempty"`
	WorkerSpread   float64 `json:",omitempty"`

	// Result-cache accounting, present only when -benchjson ran with
	// -cache. A hit-dominated entry measured replay latency rather than
	// engine throughput, so benchcmp drops it from the ns/op gate (its
	// timing would "improve" by whatever factor the cache saved and mask
	// a real engine regression underneath).
	CacheHits   uint64 `json:",omitempty"`
	CacheMisses uint64 `json:",omitempty"`
}

// File is a full BENCH_<date>.json: machine identification plus one
// entry per benchmarked experiment, recorded so the repo's perf
// trajectory is diffable across PRs.
type File struct {
	Date      string
	GoVersion string
	GOOS      string
	GOARCH    string
	NumCPU    int
	Flows     int    // workload size every entry ran with
	Sched     string `json:",omitempty"` // scheduler impl ("" = wheel default)
	Entries   []Entry
}

// Read loads and decodes one bench file.
func Read(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// Write encodes f to path, indented, with a trailing newline.
func (f *File) Write(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// ByName indexes the entries.
func (f *File) ByName() map[string]Entry {
	m := make(map[string]Entry, len(f.Entries))
	for _, e := range f.Entries {
		m[e.Name] = e
	}
	return m
}
