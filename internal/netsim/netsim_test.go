package netsim

import (
	"testing"
	"testing/quick"

	"ppt/internal/sim"
)

// sink records delivered packets with timestamps.
type sink struct {
	s    *sim.Scheduler
	pkts []*Packet
	at   []sim.Time
}

func (k *sink) Name() string { return "sink" }
func (k *sink) Receive(p *Packet) {
	k.pkts = append(k.pkts, p)
	k.at = append(k.at, k.s.Now())
}

func newTestPort(s *sim.Scheduler, cfg PortConfig, pool *BufferPool) (*Port, *sink) {
	k := &sink{s: s}
	if cfg.Rate == 0 {
		cfg.Rate = 10 * Gbps
	}
	return NewPort("p0", s, cfg, k, pool), k
}

func TestRateTxTime(t *testing.T) {
	cases := []struct {
		r    Rate
		n    int
		want sim.Time
	}{
		{10 * Gbps, 1000, 800 * sim.Nanosecond},
		{40 * Gbps, 1500, 300 * sim.Nanosecond},
		{100 * Gbps, 1500, 120 * sim.Nanosecond},
		{400 * Gbps, 1500, 30 * sim.Nanosecond},
	}
	for _, c := range cases {
		if got := c.r.TxTime(c.n); got != c.want {
			t.Errorf("%v.TxTime(%d) = %v, want %v", c.r, c.n, got, c.want)
		}
	}
}

func TestBDPBytes(t *testing.T) {
	// 10Gbps * 80us = 100KB.
	if got := BDPBytes(10*Gbps, 80*sim.Microsecond); got != 100000 {
		t.Fatalf("BDP = %d", got)
	}
}

func TestPortSerialization(t *testing.T) {
	s := sim.NewScheduler()
	p, k := newTestPort(s, PortConfig{Rate: 10 * Gbps, Delay: 1 * sim.Microsecond}, nil)
	pkt := DataPacket(1, 0, 1, 0, 1000, 0)
	p.Enqueue(pkt)
	s.Run()
	if len(k.pkts) != 1 {
		t.Fatalf("delivered %d packets", len(k.pkts))
	}
	// 1064 wire bytes at 10G = 851.2ns + 1us prop.
	want := (10 * Gbps).TxTime(1064) + 1*sim.Microsecond
	if k.at[0] != want {
		t.Fatalf("delivered at %v, want %v", k.at[0], want)
	}
	if p.Stats.TxBytes != 1064 || p.Stats.TxPackets != 1 {
		t.Fatalf("stats = %+v", p.Stats)
	}
}

func TestStrictPriorityOrder(t *testing.T) {
	s := sim.NewScheduler()
	p, k := newTestPort(s, PortConfig{Rate: 10 * Gbps}, nil)
	// First packet ties up the transmitter; then a low-prio and a
	// high-prio packet queue behind it. High must come out first.
	p.Enqueue(DataPacket(1, 0, 1, 0, 1000, 3))
	p.Enqueue(DataPacket(2, 0, 1, 0, 1000, 7))
	p.Enqueue(DataPacket(3, 0, 1, 0, 1000, 0))
	s.Run()
	if len(k.pkts) != 3 {
		t.Fatalf("delivered %d", len(k.pkts))
	}
	gotOrder := []uint32{k.pkts[0].FlowID, k.pkts[1].FlowID, k.pkts[2].FlowID}
	want := []uint32{1, 3, 2}
	for i := range want {
		if gotOrder[i] != want[i] {
			t.Fatalf("order = %v, want %v", gotOrder, want)
		}
	}
}

func TestQueueCapDrops(t *testing.T) {
	s := sim.NewScheduler()
	p, k := newTestPort(s, PortConfig{Rate: 10 * Gbps, QueueCap: 3000}, nil)
	for i := 0; i < 5; i++ {
		p.Enqueue(DataPacket(uint32(i), 0, 1, 0, 1400, 0))
	}
	s.Run()
	// One transmits immediately (not queued), two fit the 3000B cap.
	if len(k.pkts) != 3 {
		t.Fatalf("delivered %d, want 3", len(k.pkts))
	}
	if p.Stats.Drops != 2 {
		t.Fatalf("drops = %d, want 2", p.Stats.Drops)
	}
}

func TestSharedPoolDropsAndRelease(t *testing.T) {
	s := sim.NewScheduler()
	pool := NewBufferPool(2000)
	p, k := newTestPort(s, PortConfig{Rate: 10 * Gbps}, pool)
	for i := 0; i < 4; i++ {
		p.Enqueue(DataPacket(uint32(i), 0, 1, 0, 900, 0))
	}
	// 964B each; two fit in 2000.
	if pool.Used() != 1928 {
		t.Fatalf("pool used = %d", pool.Used())
	}
	s.Run()
	if len(k.pkts) != 2 || pool.Drops != 2 {
		t.Fatalf("delivered=%d poolDrops=%d", len(k.pkts), pool.Drops)
	}
	if pool.Used() != 0 {
		t.Fatalf("pool not drained: %d", pool.Used())
	}
}

func TestECNHighClassMarking(t *testing.T) {
	s := sim.NewScheduler()
	p, k := newTestPort(s, PortConfig{Rate: 10 * Gbps, ECNHighK: 2000}, nil)
	for i := 0; i < 5; i++ {
		pkt := DataPacket(uint32(i), 0, 1, 0, 1400, 0)
		pkt.ECT = true
		p.Enqueue(pkt)
	}
	s.Run()
	// Packet 0 transmits immediately (queue empty: no mark). Packets 1,2
	// arrive at occupancies 0 and 1464 (<2000): no mark. Packets 3,4 see
	// 2928 and 4392: marked.
	var marked int
	for _, pkt := range k.pkts {
		if pkt.CE {
			marked++
		}
	}
	if marked != 2 || p.Stats.MarksHigh != 2 {
		t.Fatalf("marked = %d (stats %d), want 2", marked, p.Stats.MarksHigh)
	}
}

func TestECNLowClassUsesTotalOccupancy(t *testing.T) {
	s := sim.NewScheduler()
	p, k := newTestPort(s, PortConfig{Rate: 10 * Gbps, ECNHighK: 1 << 30, ECNLowK: 2000}, nil)
	// Fill the high class; low-class arrival must see it.
	p.Enqueue(DataPacket(1, 0, 1, 0, 1400, 0))
	p.Enqueue(DataPacket(2, 0, 1, 0, 1400, 0))
	p.Enqueue(DataPacket(3, 0, 1, 0, 1400, 0))
	low := DataPacket(4, 0, 1, 0, 1400, 5)
	low.ECT = true
	p.Enqueue(low)
	s.Run()
	var lowPkt *Packet
	for _, pkt := range k.pkts {
		if pkt.Prio == 5 {
			lowPkt = pkt
		}
	}
	if lowPkt == nil || !lowPkt.CE {
		t.Fatalf("low-class packet not marked against total occupancy")
	}
}

func TestHighClassIgnoresLowOccupancy(t *testing.T) {
	s := sim.NewScheduler()
	p, k := newTestPort(s, PortConfig{Rate: 10 * Gbps, ECNHighK: 2000}, nil)
	// Stack up low-class bytes beyond K.
	p.Enqueue(DataPacket(1, 0, 1, 0, 1400, 7))
	p.Enqueue(DataPacket(2, 0, 1, 0, 1400, 7))
	p.Enqueue(DataPacket(3, 0, 1, 0, 1400, 7))
	hi := DataPacket(4, 0, 1, 0, 1400, 0)
	hi.ECT = true
	p.Enqueue(hi)
	s.Run()
	for _, pkt := range k.pkts {
		if pkt.Prio == 0 && pkt.CE {
			t.Fatal("high-class packet marked by low-class occupancy")
		}
	}
}

func TestNDPTrimming(t *testing.T) {
	s := sim.NewScheduler()
	p, k := newTestPort(s, PortConfig{Rate: 10 * Gbps, QueueCap: 3100, TrimToHeader: true}, nil)
	for i := 0; i < 5; i++ {
		p.Enqueue(DataPacket(uint32(i), 0, 1, 0, 1400, 3))
	}
	s.Run()
	if len(k.pkts) != 5 {
		t.Fatalf("delivered %d, want all 5 (two trimmed)", len(k.pkts))
	}
	var trimmed int
	for _, pkt := range k.pkts {
		if pkt.Trimmed {
			trimmed++
			if pkt.WireLen != HeaderBytes || pkt.Prio != 0 {
				t.Fatalf("trimmed packet: wire=%d prio=%d", pkt.WireLen, pkt.Prio)
			}
		}
	}
	if trimmed != 2 || p.Stats.Trims != 2 {
		t.Fatalf("trimmed = %d (stats %d)", trimmed, p.Stats.Trims)
	}
}

func TestAeolusSelectiveDrop(t *testing.T) {
	s := sim.NewScheduler()
	p, k := newTestPort(s, PortConfig{Rate: 10 * Gbps, DroppableThresh: 2000}, nil)
	for i := 0; i < 5; i++ {
		pkt := DataPacket(uint32(i), 0, 1, 0, 1400, 6)
		pkt.Droppable = true
		p.Enqueue(pkt)
	}
	s.Run()
	// pkt0 transmits; pkt1 queues at 0B, pkt2 at 1464B (<2000); pkt3,4
	// see >=2000 queued and are selectively dropped.
	if len(k.pkts) != 3 {
		t.Fatalf("delivered %d, want 3", len(k.pkts))
	}
	if p.Stats.Drops != 2 || p.Stats.DropsLow != 2 {
		t.Fatalf("drops = %+v", p.Stats)
	}
}

func TestRandomLossCountedSeparately(t *testing.T) {
	// Regression: injected losses must land in RandomDrops only — they
	// used to also bump Drops/DropsLow, overstating congestion loss under
	// fault injection.
	s := sim.NewScheduler()
	p, k := newTestPort(s, PortConfig{Rate: 10 * Gbps, LossProb: 1.0, LossSeed: 1}, nil)
	for i := 0; i < 5; i++ {
		p.Enqueue(DataPacket(uint32(i), 0, 1, 0, 1400, 6))
	}
	s.Run()
	if len(k.pkts) != 0 {
		t.Fatalf("delivered %d, want 0 at LossProb=1", len(k.pkts))
	}
	if p.Stats.RandomDrops != 5 {
		t.Fatalf("random drops = %d, want 5", p.Stats.RandomDrops)
	}
	if p.Stats.Drops != 0 || p.Stats.DropsLow != 0 {
		t.Fatalf("injected losses leaked into congestion counters: %+v", p.Stats)
	}
}

func TestLowClassCap(t *testing.T) {
	s := sim.NewScheduler()
	p, k := newTestPort(s, PortConfig{Rate: 10 * Gbps, LowClassCap: 2000}, nil)
	// High class unaffected.
	for i := 0; i < 3; i++ {
		p.Enqueue(DataPacket(uint32(i), 0, 1, 0, 1400, 0))
	}
	for i := 3; i < 8; i++ {
		p.Enqueue(DataPacket(uint32(i), 0, 1, 0, 1400, 6))
	}
	s.Run()
	var low int
	for _, pkt := range k.pkts {
		if pkt.Prio == 6 {
			low++
		}
	}
	if low != 1 {
		t.Fatalf("low-class delivered %d, want 1 (cap 2000 holds one 1464B pkt)", low)
	}
	if p.Stats.DropsLow != 4 {
		t.Fatalf("low drops = %d", p.Stats.DropsLow)
	}
}

func TestINTAppending(t *testing.T) {
	s := sim.NewScheduler()
	p, k := newTestPort(s, PortConfig{Rate: 10 * Gbps, EnableINT: true}, nil)
	pkt := DataPacket(1, 0, 1, 0, 1000, 0)
	pkt.INT = make([]INTHop, 0, 4)
	p.Enqueue(pkt)
	noINT := DataPacket(2, 0, 1, 0, 1000, 0)
	p.Enqueue(noINT)
	s.Run()
	if len(k.pkts[0].INT) != 1 {
		t.Fatalf("INT hops = %d", len(k.pkts[0].INT))
	}
	rec := k.pkts[0].INT[0]
	if rec.Rate != 10*Gbps || rec.TxBytes != 1064 {
		t.Fatalf("INT record = %+v", rec)
	}
	if k.pkts[1].INT != nil {
		t.Fatal("INT appended to non-INT packet")
	}
}

func TestSwitchRoutingAndECMP(t *testing.T) {
	s := sim.NewScheduler()
	sw := NewSwitch("leaf0", 7)
	k1 := &sink{s: s}
	k2 := &sink{s: s}
	p1 := NewPort("p1", s, PortConfig{Rate: 40 * Gbps}, k1, nil)
	p2 := NewPort("p2", s, PortConfig{Rate: 40 * Gbps}, k2, nil)
	i1 := sw.AddPort(p1)
	i2 := sw.AddPort(p2)
	sw.AddRoute(9, i1, i2)
	for f := uint32(0); f < 64; f++ {
		sw.Receive(DataPacket(f, 0, 9, 0, 100, 0))
	}
	s.Run()
	if len(k1.pkts)+len(k2.pkts) != 64 {
		t.Fatalf("lost packets: %d+%d", len(k1.pkts), len(k2.pkts))
	}
	if len(k1.pkts) == 0 || len(k2.pkts) == 0 {
		t.Fatalf("ECMP did not spread: %d/%d", len(k1.pkts), len(k2.pkts))
	}
	// Same flow always hashes to the same port.
	sw2 := NewSwitch("leaf1", 7)
	kA := &sink{s: s}
	pA := NewPort("pa", s, PortConfig{Rate: 40 * Gbps}, kA, nil)
	kB := &sink{s: s}
	pB := NewPort("pb", s, PortConfig{Rate: 40 * Gbps}, kB, nil)
	sw2.AddRoute(9, sw2.AddPort(pA), sw2.AddPort(pB))
	for i := 0; i < 10; i++ {
		sw2.Receive(DataPacket(42, 0, 9, 0, 100, 0))
	}
	s.Run()
	if len(kA.pkts) != 0 && len(kB.pkts) != 0 {
		t.Fatal("one flow split across ECMP paths")
	}
}

func TestHostDemux(t *testing.T) {
	s := sim.NewScheduler()
	h := NewHost(3, s)
	nic, _ := newTestPort(s, PortConfig{Rate: 10 * Gbps}, nil)
	h.SetNIC(nic)

	var dataGot, ackGot int
	h.Bind(1, true, endpointFunc(func(p *Packet) { dataGot++ }))
	h.Bind(1, false, endpointFunc(func(p *Packet) { ackGot++ }))

	h.Receive(DataPacket(1, 0, 3, 0, 100, 0))
	h.Receive(CtrlPacket(Ack, 1, 0, 3, 0))
	h.Receive(CtrlPacket(Grant, 1, 0, 3, 0))
	// Unknown flow: silently dropped.
	h.Receive(DataPacket(99, 0, 3, 0, 100, 0))

	if dataGot != 1 || ackGot != 2 {
		t.Fatalf("data=%d ack=%d", dataGot, ackGot)
	}
	if h.Delivered != 200 {
		t.Fatalf("delivered bytes = %d", h.Delivered)
	}
	h.Unbind(1, true)
	h.Receive(DataPacket(1, 0, 3, 0, 100, 0))
	if dataGot != 1 {
		t.Fatal("unbound endpoint still reached")
	}
}

type endpointFunc func(*Packet)

func (f endpointFunc) Handle(p *Packet) { f(p) }

func TestHostSendStampsTime(t *testing.T) {
	s := sim.NewScheduler()
	h := NewHost(0, s)
	nic, k := newTestPort(s, PortConfig{Rate: 10 * Gbps}, nil)
	h.SetNIC(nic)
	s.At(5*sim.Microsecond, func() {
		h.Send(DataPacket(1, 0, 1, 0, 100, 0))
	})
	s.Run()
	if k.pkts[0].SentAt != 5*sim.Microsecond {
		t.Fatalf("SentAt = %v", k.pkts[0].SentAt)
	}
}

// Property: work conservation — for any arrival pattern that fits the
// buffer, total delivered bytes equal total enqueued bytes, and the port
// is never idle while packets wait.
func TestPropertyWorkConservation(t *testing.T) {
	prop := func(sizes []uint16, prios []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		s := sim.NewScheduler()
		p, k := newTestPort(s, PortConfig{Rate: 10 * Gbps}, nil)
		var want int64
		for i, sz := range sizes {
			payload := int32(sz%MSS) + 1
			prio := int8(0)
			if i < len(prios) {
				prio = int8(prios[i] % NumPriorities)
			}
			p.Enqueue(DataPacket(uint32(i), 0, 1, 0, payload, prio))
			want += int64(payload) + HeaderBytes
		}
		s.Run()
		var got int64
		for _, pkt := range k.pkts {
			got += int64(pkt.WireLen)
		}
		// Delivery must complete in exactly the serialization time of
		// all bytes (work conservation, no prop delay configured).
		if s.Now() != (10 * Gbps).TxTime(int(want)) {
			return false
		}
		return got == want && p.Stats.Drops == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: queue byte accounting returns to zero after draining,
// whatever mix of priorities/drops/caps was applied.
func TestPropertyAccountingDrainsToZero(t *testing.T) {
	prop := func(sizes []uint16, capSel uint8) bool {
		s := sim.NewScheduler()
		cfg := PortConfig{Rate: 40 * Gbps, QueueCap: int64(capSel)*100 + 1500}
		p, _ := newTestPort(s, cfg, nil)
		for i, sz := range sizes {
			p.Enqueue(DataPacket(uint32(i), 0, 1, 0, int32(sz%MSS)+1, int8(i%NumPriorities)))
		}
		s.Run()
		if p.Queued() != 0 || p.QueuedLow() != 0 || p.QueuedHigh() != 0 {
			return false
		}
		for prio := int8(0); prio < NumPriorities; prio++ {
			if p.QueuedAt(prio) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPortEnqueueDequeue(b *testing.B) {
	s := sim.NewScheduler()
	p, _ := newTestPort(s, PortConfig{Rate: 40 * Gbps, ECNHighK: 96_000, QueueCap: 120_000}, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := DataPacket(uint32(i), 0, 1, 0, MSS, int8(i%NumPriorities))
		pkt.ECT = true
		p.Enqueue(pkt)
		if i%8 == 7 {
			s.Run() // drain periodically
		}
	}
	s.Run()
}

func BenchmarkSwitchForwarding(b *testing.B) {
	s := sim.NewScheduler()
	sw := NewSwitch("bench", 3)
	sinks := make([]*sink, 4)
	var idx []int
	for i := range sinks {
		sinks[i] = &sink{s: s}
		idx = append(idx, sw.AddPort(NewPort("p", s, PortConfig{Rate: 100 * Gbps}, sinks[i], nil)))
	}
	sw.AddRoute(1, idx...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Receive(DataPacket(uint32(i), 0, 1, 0, MSS, 0))
		if i%16 == 15 {
			s.Run()
		}
	}
	s.Run()
}
