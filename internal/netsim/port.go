package netsim

import (
	"fmt"

	"ppt/internal/sim"
)

// NumPriorities is the number of strict-priority queues per port, the
// eight classes commodity switches expose via DSCP.
const NumPriorities = 8

// Device is anything that can accept a packet from a wire: a switch or a
// host.
type Device interface {
	Name() string
	Receive(pkt *Packet)
}

// BufferPool models a switch's shared packet memory. Ports that share a
// pool drop (or trim) arrivals once the pool is exhausted, matching the
// shared-buffer architecture of the Dell S4048 used in the paper's
// testbed.
//
// With the cut-through fast path (see Port), member ports release their
// bytes lazily: the release is deferred in the port's pend queue and
// applied by settle() at every observation point — tryReserve, Used —
// so admission and dynamic-threshold decisions see the same occupancy
// the eager per-packet release gave them (DESIGN.md §7.6).
type BufferPool struct {
	Cap  int64
	used int64
	// Drops counts pool-exhaustion losses across all member ports.
	Drops int64
	// members are the ports drawing from this pool; settle() flushes
	// their deferred releases before any occupancy read. All members of
	// one pool share one scheduler (pools are per-switch), so the
	// strict now-1 settle bound is well defined.
	members []*Port
}

// NewBufferPool returns a pool of the given byte capacity.
func NewBufferPool(capBytes int64) *BufferPool {
	return &BufferPool{Cap: capBytes}
}

// settle applies every member port's deferred transmit accounting that
// is strictly in the past, so occupancy reads match the eager engine:
// an old-engine release at finishTx(T) was visible to any event after
// T, and events at exactly T ordered before finishTx (every admission
// is delivery-driven, armed one wire delay earlier — before the
// releasing packet even started serializing whenever Delay > TxTime)
// saw it unapplied, which is exactly the strict bound.
func (b *BufferPool) settle() {
	for _, p := range b.members {
		if p.pendHead < len(p.pend) {
			p.SettleTx(p.sched.Now() - 1)
		}
	}
}

// Used reports the bytes currently held.
func (b *BufferPool) Used() int64 {
	b.settle()
	return b.used
}

func (b *BufferPool) tryReserve(n int64) bool {
	b.settle()
	if b.used+n > b.Cap {
		return false
	}
	b.used += n
	return true
}

func (b *BufferPool) release(n int64) {
	b.used -= n
	if b.used < 0 {
		panic("netsim: buffer pool underflow")
	}
}

// PortConfig parameterizes one egress port.
type PortConfig struct {
	Rate  Rate
	Delay sim.Time // propagation delay of the attached wire

	// ECNHighK / ECNLowK are instantaneous marking thresholds in bytes
	// for the high class (priorities < LowClassStart) and low class.
	// Zero disables marking for that class. High-class marking compares
	// against high-class occupancy only (lower classes cannot delay it
	// under SP); low-class marking compares against total occupancy.
	ECNHighK int64
	ECNLowK  int64

	// LowClassStart is the first priority belonging to the low class
	// (default 4, the PPT split). Only used for marking decisions.
	LowClassStart int8

	// QueueCap bounds this port's total occupancy in bytes. Zero means
	// the port is limited only by its shared pool (if any).
	QueueCap int64

	// LowClassCap, when non-zero, bounds the bytes the low class may
	// occupy (the RC3 limited-buffer variant of Fig 24).
	LowClassCap int64

	// TrimToHeader enables NDP behaviour: a data packet that would be
	// dropped for lack of buffer is truncated to HeaderBytes and
	// enqueued at the highest priority instead.
	TrimToHeader bool

	// DroppableThresh, when non-zero, drops packets flagged Droppable
	// (Aeolus unscheduled) whenever the packet's own queue already
	// holds at least this many bytes.
	DroppableThresh int64

	// EnableINT makes the port append an INTHop record to packets that
	// carry a non-nil INT slice (HPCC).
	EnableINT bool

	// DynamicLowThreshold enables dynamic-threshold admission for the
	// low class (modern shared-buffer switches): a low-class packet is
	// admitted only while the class occupies less than the remaining
	// free buffer. The paper's evaluation models plain shared drop-tail
	// buffers, so this is off by default.
	DynamicLowThreshold bool

	// LossProb, when non-zero, drops each arriving data packet with
	// this probability (deterministic per-port PRNG seeded by LossSeed)
	// — failure injection for robustness testing, modeling corruption
	// or gray-failure loss rather than congestion.
	LossProb float64
	LossSeed uint64

	// NoFastPath disables the fused cut-through pipeline and keeps the
	// classic two-event (serialize-complete, propagation-end) chain per
	// hop. Outcomes are identical either way (the -fastpath=off escape
	// hatch and A/B baseline); INT-enabled ports always run the classic
	// path because INTHop samples queue state at tx-complete.
	NoFastPath bool

	// LegacyPipeline restores the pre-fusion pipeline wholesale:
	// finishTx arms the delivery and pops the next packet inline, with
	// no resume events and no startTx-armed delivery. Partitioned
	// fabrics set it on every port (topo.LeafSpine): the fast path
	// never engages there, so they skip the deferred-pop bookkeeping
	// the fused/off A-B needs on monolithic fabrics and keep the old
	// per-packet event count. Implies NoFastPath.
	LegacyPipeline bool
}

// PortStats are the monotonically increasing counters a port maintains;
// the stats package samples them.
type PortStats struct {
	TxBytes      int64 // bytes fully serialized out
	TxPackets    int64
	RxPackets    int64 // packets offered to Enqueue
	Drops        int64 // congestion/admission drops (excludes injected losses)
	DropsLow     int64 // of Drops, low-class packets
	Trims        int64
	RandomDrops  int64 // injected (non-congestion) losses; disjoint from Drops
	MarksHigh    int64
	MarksLow     int64
	TxDataBytes  int64 // payload bytes of Data packets sent
	TxFreshBytes int64 // payload bytes excluding retransmissions
}

// Port is one egress: eight FIFO queues drained in strict priority onto a
// wire of fixed rate and propagation delay.
type Port struct {
	name    string
	sched   *sim.Scheduler
	cfg     PortConfig
	peer    Device
	pool    *BufferPool
	pktPool *PacketPool
	queues  [NumPriorities]pktRing

	bytesQueued [NumPriorities]int64
	totalQueued int64
	lowQueued   int64
	lossState   uint64

	// The transmit and delivery callbacks are bound once at construction
	// so the per-packet hot path schedules them without allocating a
	// closure. txPkt is the packet currently serializing (at most one,
	// classic path only); wire holds packets propagating toward the peer
	// — the delay is one constant per port, so deliveries are strictly
	// FIFO and the next delivery call always takes the head.
	txPkt  *Packet
	onTx   func()
	wire   pktRing
	onRecv func()

	// Cut-through fast path (DESIGN.md §7.6). When fast, starting a
	// packet schedules ONE delivery event at now+TxTime+Delay instead of
	// the onTx/onRecv pair, and the transmit-side accounting (TxBytes,
	// pool release, ...) is deferred in pend and applied lazily:
	// inclusively through the packet's own serialize-complete time by
	// its delivery event, strictly (now-1) at every observation point.
	// busyUntil is the serialize-complete cursor of the in-flight fused
	// packet; a packet queued behind it arms one resume timer at
	// busyUntil, which pops in exact slow-path (strict priority) order.
	fast        bool
	legacy      bool
	busyUntil   sim.Time
	resume      sim.Timer
	onResume    func()
	onFusedRecv func()
	pend        []pendTx
	pendHead    int

	// cross, when set, marks the wire as crossing a shard boundary in a
	// partitioned fabric: finished transmissions are deposited into the
	// outbox (due at now+Delay) instead of propagating through the local
	// scheduler, and the destination shard's Inbox calls deliverCross at
	// the due time. crossDst is the peer device's shard.
	cross    *Outbox
	crossDst int32

	Stats PortStats
}

// pendTx is one deferred fused-transmit accounting record: the counter
// deltas of a packet whose serialization completes at txDone. Fields
// are captured at transmit start (never a *Packet — cross-shard
// deposits hand the packet to another shard's event loop immediately).
// Entries are appended in strictly increasing txDone order.
type pendTx struct {
	txDone sim.Time
	wire   int32 // WireLen: pool release + TxBytes delta
	data   int32 // PayloadLen when Kind == Data, else 0
	fresh  int32 // data excluding retransmissions
}

// NewPort builds a port; peer is the device at the far end of its wire,
// pool the (optional) shared buffer it draws from.
func NewPort(name string, s *sim.Scheduler, cfg PortConfig, peer Device, pool *BufferPool) *Port {
	if cfg.Rate <= 0 {
		panic("netsim: port needs a rate")
	}
	if cfg.LowClassStart == 0 {
		cfg.LowClassStart = 4
	}
	p := &Port{name: name, sched: s, cfg: cfg, peer: peer, pool: pool}
	// busyUntil == now means "the pop at this instant goes through a
	// same-instant resume event" (see kick); -1 marks a never-used link
	// so the very first packet starts inline.
	p.busyUntil = -1
	p.lossState = cfg.LossSeed*2654435761 + 0x9e3779b97f4a7c15
	p.onTx = p.finishTx
	p.onRecv = p.deliver
	p.legacy = cfg.LegacyPipeline
	p.fast = !cfg.NoFastPath && !cfg.EnableINT && !p.legacy
	p.onResume = p.resumeTx
	p.onFusedRecv = p.deliverFused
	if pool != nil {
		pool.members = append(pool.members, p)
	}
	return p
}

// Name identifies the port in diagnostics.
func (p *Port) Name() string { return p.name }

// Config returns the port's configuration.
func (p *Port) Config() PortConfig { return p.cfg }

// Scheduler returns the event scheduler this port runs on. Sharded run
// drivers use it to settle each port at its own shard's horizon.
func (p *Port) Scheduler() *sim.Scheduler { return p.sched }

// SetPacketPool attaches the run's packet pool so dropped packets are
// recycled at the sink instead of leaking to the garbage collector.
// Optional: without a pool, drops simply become garbage.
func (p *Port) SetPacketPool(pp *PacketPool) { p.pktPool = pp }

// Peer returns the device at the far end of the wire.
func (p *Port) Peer() Device { return p.peer }

// Queued reports the bytes currently buffered at this port.
func (p *Port) Queued() int64 { return p.totalQueued }

// QueuedLow reports the buffered bytes in the low class.
func (p *Port) QueuedLow() int64 { return p.lowQueued }

// QueuedHigh reports the buffered bytes in the high class.
func (p *Port) QueuedHigh() int64 { return p.totalQueued - p.lowQueued }

// QueuedAt reports the buffered bytes of one priority queue.
func (p *Port) QueuedAt(prio int8) int64 { return p.bytesQueued[prio] }

func (p *Port) isLow(prio int8) bool { return prio >= p.cfg.LowClassStart }

// Enqueue offers pkt to the port, applying (in order) Aeolus selective
// drop, buffer admission with optional NDP trimming, and ECN marking,
// then kicks the transmitter.
func (p *Port) Enqueue(pkt *Packet) {
	p.Stats.RxPackets++
	prio := pkt.Prio
	if prio < 0 || prio >= NumPriorities {
		panic(fmt.Sprintf("netsim: priority %d out of range", prio))
	}

	if p.cfg.DroppableThresh > 0 && pkt.Droppable && p.bytesQueued[prio] >= p.cfg.DroppableThresh {
		p.drop(pkt)
		return
	}
	if p.cfg.LossProb > 0 && pkt.Kind == Data && p.randomLoss() {
		// Injected losses are counted on their own: folding them into
		// Drops/DropsLow via drop() would overstate congestion loss under
		// fault injection.
		p.Stats.RandomDrops++
		p.pktPool.Free(pkt)
		return
	}
	// Header-sized control packets (ACKs, grants, pulls, NACKs) are
	// never dropped: commodity switches keep headroom for them, and a
	// simulated control-plane loss would measure an artifact none of
	// the modeled protocols guards against. Their backlog is bounded by
	// the control-to-data ratio of the protocols themselves.
	if pkt.Kind != Data {
		p.forceAdmit(pkt)
		p.mark(pkt)
		p.push(pkt)
		return
	}
	if p.cfg.LowClassCap > 0 && p.isLow(prio) && p.lowQueued+int64(pkt.WireLen) > p.cfg.LowClassCap {
		p.drop(pkt)
		return
	}
	// Dynamic-threshold admission (optional): under pressure the
	// scavenger class's share collapses toward zero.
	if p.cfg.DynamicLowThreshold && p.isLow(prio) {
		free := p.freeBuffer()
		if free >= 0 && p.lowQueued+int64(pkt.WireLen) > free {
			p.drop(pkt)
			return
		}
	}

	if !p.admit(pkt) {
		if p.cfg.TrimToHeader && pkt.Kind == Data && !pkt.Trimmed {
			// NDP semantics: headers are (nearly) never lost. Trimmed
			// headers are admitted unconditionally — their backlog is
			// bounded by the trim ratio (64B per dropped MTU), which is
			// how NDP switches reserve header space.
			pkt.Trimmed = true
			pkt.WireLen = HeaderBytes
			pkt.Prio = 0
			p.Stats.Trims++
			p.forceAdmit(pkt)
			p.mark(pkt)
			p.push(pkt)
			return
		}
		p.drop(pkt)
		return
	}
	p.mark(pkt)
	p.push(pkt)
}

// admit reserves buffer space, returning false if the packet must be
// dropped (or trimmed).
func (p *Port) admit(pkt *Packet) bool {
	n := int64(pkt.WireLen)
	if p.cfg.QueueCap > 0 && p.totalQueued+n > p.cfg.QueueCap {
		return false
	}
	if p.pool != nil && !p.pool.tryReserve(n) {
		p.pool.Drops++
		return false
	}
	return true
}

// forceAdmit reserves buffer space unconditionally (trimmed headers),
// letting the pool overshoot its cap by the header backlog.
func (p *Port) forceAdmit(pkt *Packet) {
	if p.pool != nil {
		p.pool.used += int64(pkt.WireLen)
	}
}

// randomLoss advances the port's xorshift PRNG and reports whether the
// packet should be lost.
func (p *Port) randomLoss() bool {
	x := p.lossState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	p.lossState = x
	return float64(x>>11)/float64(1<<53) < p.cfg.LossProb
}

// freeBuffer reports the remaining buffer headroom governing low-class
// admission, or -1 when the port is unbuffered (unlimited).
func (p *Port) freeBuffer() int64 {
	free := int64(-1)
	if p.cfg.QueueCap > 0 {
		free = p.cfg.QueueCap - p.totalQueued
	}
	if p.pool != nil {
		if pf := p.pool.Cap - p.pool.Used(); free < 0 || pf < free {
			free = pf
		}
	}
	if free < 0 && (p.cfg.QueueCap > 0 || p.pool != nil) {
		free = 0
	}
	return free
}

func (p *Port) mark(pkt *Packet) {
	if !pkt.ECT || pkt.CE {
		return
	}
	if p.isLow(pkt.Prio) {
		if p.cfg.ECNLowK > 0 && p.totalQueued >= p.cfg.ECNLowK {
			pkt.CE = true
			p.Stats.MarksLow++
		}
	} else {
		if p.cfg.ECNHighK > 0 && p.totalQueued-p.lowQueued >= p.cfg.ECNHighK {
			pkt.CE = true
			p.Stats.MarksHigh++
		}
	}
}

func (p *Port) push(pkt *Packet) {
	prio := pkt.Prio
	p.queues[prio].push(pkt)
	n := int64(pkt.WireLen)
	p.bytesQueued[prio] += n
	p.totalQueued += n
	if p.isLow(prio) {
		p.lowQueued += n
	}
	p.kick()
}

// drop is a packet sink: the packet is dead and recycled here.
func (p *Port) drop(pkt *Packet) {
	p.Stats.Drops++
	if p.isLow(pkt.Prio) {
		p.Stats.DropsLow++
	}
	p.pktPool.Free(pkt)
}

// kick starts the transmitter if it is idle and a packet is waiting.
// A serialization in flight is represented by the busyUntil cursor in
// BOTH modes: a packet that cannot start yet arms one resume timer at
// busyUntil, and the resume pops in exact strict-priority order. The
// >= now comparison is deliberate — at the serialize-complete instant
// itself the pop goes through a same-instant resume event (fresh seq,
// so it runs after every event already due at this instant) instead of
// happening inline, which makes the pop's position in the same-instant
// order a pure function of the physical schedule rather than of which
// mode armed which bookkeeping event (DESIGN.md §7.6).
func (p *Port) kick() {
	if p.legacy {
		// Pre-fusion behaviour: a busy transmitter just leaves the
		// packet queued; finishTx pops inline.
		if p.txPkt == nil {
			if pkt := p.pop(); pkt != nil {
				p.startTx(pkt)
			}
		}
		return
	}
	if p.resume.Pending() {
		return
	}
	if p.busyUntil >= p.sched.Now() {
		p.resume = p.sched.At(p.busyUntil, p.onResume)
		return
	}
	pkt := p.pop()
	if pkt == nil {
		return
	}
	p.startTx(pkt)
}

// startTx begins serializing pkt on an idle link. Both modes arm the
// delivery event here, at transmit start (the deterministic arrival
// tie-break of DESIGN.md §7.6: an arrival's position among same-instant
// events no longer depends on the mode's event chaining). The classic
// path additionally arms finishTx at serialize-complete for the
// transmit-side effects (accounting, INT, wire push / cross deposit);
// the fast path defers the accounting into pend (settled lazily — see
// SettleTx) and pushes/deposits immediately, so the delivery is the
// packet's only event.
func (p *Port) startTx(pkt *Packet) {
	now := p.sched.Now()
	txTime := p.cfg.Rate.TxTime(int(pkt.WireLen))
	txDone := now + txTime
	p.busyUntil = txDone
	if p.legacy {
		// Pre-fusion chain: finishTx arms the delivery and pops.
		p.txPkt = pkt
		p.sched.After(txTime, p.onTx)
		return
	}
	if !p.fast {
		p.txPkt = pkt
		p.sched.After(txTime, p.onTx)
		if p.cross == nil {
			p.sched.At(txDone+p.cfg.Delay, p.onRecv)
		}
	} else {
		// Settle strictly behind now before appending: every earlier
		// entry has txDone <= now here (back-to-back starts happen at
		// the previous packet's serialize-complete), so pend stays O(1).
		// Cross-shard ports never take this branch (see SetCross).
		if p.pendHead < len(p.pend) {
			p.SettleTx(now - 1)
		}
		var data, fresh int32
		if pkt.Kind == Data {
			data = pkt.PayloadLen
			if !pkt.Retrans {
				fresh = pkt.PayloadLen
			}
		}
		p.pend = append(p.pend, pendTx{txDone: txDone, wire: pkt.WireLen, data: data, fresh: fresh})
		p.wire.push(pkt)
		p.sched.At(txDone+p.cfg.Delay, p.onFusedRecv)
	}
	if p.totalQueued > 0 && !p.resume.Pending() {
		p.resume = p.sched.At(txDone, p.onResume)
	}
}

// resumeTx fires at busyUntil: it pops the next packet in exact
// strict-priority order, identically in both modes. The queue can have
// drained meanwhile only through drops; a nil pop simply waits for the
// next Enqueue's kick.
func (p *Port) resumeTx() {
	if pkt := p.pop(); pkt != nil {
		p.startTx(pkt)
	}
}

// finishTx is the classic path's serialize-complete event: transmit
// accounting, INT append, and handing the packet to its wire (the
// delivery event was already armed at transmit start). Popping the next
// packet is not its job in either fused-capable mode — that goes
// through the resume timer (see kick). Legacy-pipeline ports instead
// arm the delivery and pop inline here, reproducing the pre-fusion
// engine exactly.
func (p *Port) finishTx() {
	pkt := p.txPkt
	p.txPkt = nil
	n := int64(pkt.WireLen)
	if p.pool != nil {
		p.pool.release(n)
	}
	p.Stats.TxBytes += n
	p.Stats.TxPackets++
	if pkt.Kind == Data {
		p.Stats.TxDataBytes += int64(pkt.PayloadLen)
		if !pkt.Retrans {
			p.Stats.TxFreshBytes += int64(pkt.PayloadLen)
		}
	}
	if p.cfg.EnableINT && pkt.INT != nil {
		pkt.INT = append(pkt.INT, INTHop{
			QLen:    p.totalQueued,
			TxBytes: p.Stats.TxBytes,
			TS:      p.sched.Now(),
			Rate:    p.cfg.Rate,
		})
	}
	if p.cross != nil {
		p.cross.deposit(p.sched.Now()+p.cfg.Delay, pkt, p, p.crossDst)
	} else {
		p.wire.push(pkt)
		if p.legacy {
			p.sched.At(p.sched.Now()+p.cfg.Delay, p.onRecv)
		}
	}
	if p.legacy {
		// Pre-fusion inline pop, in the old arming order (delivery
		// first, then the next packet's serialize-complete event).
		if nxt := p.pop(); nxt != nil {
			p.startTx(nxt)
		}
	}
}

// deliver hands the oldest in-flight packet to the peer.
func (p *Port) deliver() {
	p.peer.Receive(p.wire.pop())
}

// deliverFused is the fast path's single per-packet event: settle the
// transmit-side accounting through this packet's own serialize-complete
// time (now - Delay; pend txDone values are strictly increasing, so
// that is exactly the prefix ending at this packet's entry — correct
// even at Delay == 0), then hand the wire head to the peer.
func (p *Port) deliverFused() {
	if p.pendHead < len(p.pend) {
		p.SettleTx(p.sched.Now() - p.cfg.Delay)
	}
	p.peer.Receive(p.wire.pop())
}

// SettleTx applies every deferred fused-transmit accounting entry with
// txDone <= limit — shared-pool release, TxBytes/TxPackets and the
// payload counters — plus, at end of run, a classic-mode serialization
// that completed by limit but whose finishTx event was cut off by a
// same-instant Stop. Observation points (pool admission, samplers) call
// it with the strictly-past bound now-1, which reproduces the classic
// engine's visibility exactly on every pooled fabric (admissions are
// delivery-driven and armed at least one wire delay back, so at a tied
// instant the classic finishTx always had the larger seq); the run
// drivers call it once more at the final executed horizon, inclusively,
// so both modes count exactly the serializations that physically
// completed within the run (DESIGN.md §7.6).
func (p *Port) SettleTx(limit sim.Time) {
	i := p.pendHead
	for i < len(p.pend) && p.pend[i].txDone <= limit {
		e := &p.pend[i]
		n := int64(e.wire)
		if p.pool != nil {
			p.pool.release(n)
		}
		p.Stats.TxBytes += n
		p.Stats.TxPackets++
		p.Stats.TxDataBytes += int64(e.data)
		p.Stats.TxFreshBytes += int64(e.fresh)
		i++
	}
	p.pendHead = i
	if i == len(p.pend) {
		p.pend = p.pend[:0]
		p.pendHead = 0
	} else if i > 32 && 2*i >= len(p.pend) {
		// Compact once the settled prefix dominates: a port that stays
		// busy for a long stretch never fully drains pend (each delivery
		// settles through its own txDone while later packets keep
		// appending), and without this the slice would grow with every
		// packet sent — O(run length) memory on a saturated port instead
		// of O(Delay/TxTime) in-flight entries.
		n := copy(p.pend, p.pend[i:])
		p.pend = p.pend[:n]
		p.pendHead = 0
	}
	if p.txPkt != nil && p.busyUntil <= limit {
		// Classic mode, end of run only: the serialization finished at
		// busyUntil <= limit but Stop cut off its finishTx event.
		// During a run this is unreachable: observers pass limit < now
		// and a pending finishTx implies busyUntil >= now.
		pkt := p.txPkt
		p.txPkt = nil
		n := int64(pkt.WireLen)
		if p.pool != nil {
			p.pool.release(n)
		}
		p.Stats.TxBytes += n
		p.Stats.TxPackets++
		if pkt.Kind == Data {
			p.Stats.TxDataBytes += int64(pkt.PayloadLen)
			if !pkt.Retrans {
				p.Stats.TxFreshBytes += int64(pkt.PayloadLen)
			}
		}
	}
}

// SetCross marks this port's wire as crossing into shard dstShard of a
// partitioned fabric, routing transmissions through the outbox (see
// cross.go). Called by topo builders only.
//
// Cross-boundary ports always run the classic pipeline: the inbox
// delivery timer's position among same-instant events depends on which
// window barrier merged each deposit, so deposits must happen at
// serialize-complete (finishTx) exactly as in -fastpath=off — a
// transmit-start deposit can merge one barrier earlier and flip
// same-instant tie order in the destination shard (DESIGN.md §7.6).
// The fused win was marginal here anyway: a cross wire has no local
// delivery event, so classic is already one event per packet.
func (p *Port) SetCross(o *Outbox, dstShard int) {
	p.cross = o
	p.crossDst = int32(dstShard)
	p.fast = false
}

// deliverCross hands a cross-shard packet to the peer at its stamped
// delivery time (invoked by the destination shard's Inbox).
func (p *Port) deliverCross(pkt *Packet) {
	p.peer.Receive(pkt)
}

// pop removes and returns the head of the highest-priority nonempty
// queue, or nil.
func (p *Port) pop() *Packet {
	for prio := 0; prio < NumPriorities; prio++ {
		if p.queues[prio].len() == 0 {
			continue
		}
		pkt := p.queues[prio].pop()
		n := int64(pkt.WireLen)
		p.bytesQueued[prio] -= n
		p.totalQueued -= n
		if p.isLow(int8(prio)) {
			p.lowQueued -= n
		}
		return pkt
	}
	return nil
}
