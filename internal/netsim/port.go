package netsim

import (
	"fmt"

	"ppt/internal/sim"
)

// NumPriorities is the number of strict-priority queues per port, the
// eight classes commodity switches expose via DSCP.
const NumPriorities = 8

// Device is anything that can accept a packet from a wire: a switch or a
// host.
type Device interface {
	Name() string
	Receive(pkt *Packet)
}

// BufferPool models a switch's shared packet memory. Ports that share a
// pool drop (or trim) arrivals once the pool is exhausted, matching the
// shared-buffer architecture of the Dell S4048 used in the paper's
// testbed.
type BufferPool struct {
	Cap  int64
	used int64
	// Drops counts pool-exhaustion losses across all member ports.
	Drops int64
}

// NewBufferPool returns a pool of the given byte capacity.
func NewBufferPool(capBytes int64) *BufferPool {
	return &BufferPool{Cap: capBytes}
}

// Used reports the bytes currently held.
func (b *BufferPool) Used() int64 { return b.used }

func (b *BufferPool) tryReserve(n int64) bool {
	if b.used+n > b.Cap {
		return false
	}
	b.used += n
	return true
}

func (b *BufferPool) release(n int64) {
	b.used -= n
	if b.used < 0 {
		panic("netsim: buffer pool underflow")
	}
}

// PortConfig parameterizes one egress port.
type PortConfig struct {
	Rate  Rate
	Delay sim.Time // propagation delay of the attached wire

	// ECNHighK / ECNLowK are instantaneous marking thresholds in bytes
	// for the high class (priorities < LowClassStart) and low class.
	// Zero disables marking for that class. High-class marking compares
	// against high-class occupancy only (lower classes cannot delay it
	// under SP); low-class marking compares against total occupancy.
	ECNHighK int64
	ECNLowK  int64

	// LowClassStart is the first priority belonging to the low class
	// (default 4, the PPT split). Only used for marking decisions.
	LowClassStart int8

	// QueueCap bounds this port's total occupancy in bytes. Zero means
	// the port is limited only by its shared pool (if any).
	QueueCap int64

	// LowClassCap, when non-zero, bounds the bytes the low class may
	// occupy (the RC3 limited-buffer variant of Fig 24).
	LowClassCap int64

	// TrimToHeader enables NDP behaviour: a data packet that would be
	// dropped for lack of buffer is truncated to HeaderBytes and
	// enqueued at the highest priority instead.
	TrimToHeader bool

	// DroppableThresh, when non-zero, drops packets flagged Droppable
	// (Aeolus unscheduled) whenever the packet's own queue already
	// holds at least this many bytes.
	DroppableThresh int64

	// EnableINT makes the port append an INTHop record to packets that
	// carry a non-nil INT slice (HPCC).
	EnableINT bool

	// DynamicLowThreshold enables dynamic-threshold admission for the
	// low class (modern shared-buffer switches): a low-class packet is
	// admitted only while the class occupies less than the remaining
	// free buffer. The paper's evaluation models plain shared drop-tail
	// buffers, so this is off by default.
	DynamicLowThreshold bool

	// LossProb, when non-zero, drops each arriving data packet with
	// this probability (deterministic per-port PRNG seeded by LossSeed)
	// — failure injection for robustness testing, modeling corruption
	// or gray-failure loss rather than congestion.
	LossProb float64
	LossSeed uint64
}

// PortStats are the monotonically increasing counters a port maintains;
// the stats package samples them.
type PortStats struct {
	TxBytes      int64 // bytes fully serialized out
	TxPackets    int64
	RxPackets    int64 // packets offered to Enqueue
	Drops        int64 // congestion/admission drops (excludes injected losses)
	DropsLow     int64 // of Drops, low-class packets
	Trims        int64
	RandomDrops  int64 // injected (non-congestion) losses; disjoint from Drops
	MarksHigh    int64
	MarksLow     int64
	TxDataBytes  int64 // payload bytes of Data packets sent
	TxFreshBytes int64 // payload bytes excluding retransmissions
}

// Port is one egress: eight FIFO queues drained in strict priority onto a
// wire of fixed rate and propagation delay.
type Port struct {
	name    string
	sched   *sim.Scheduler
	cfg     PortConfig
	peer    Device
	pool    *BufferPool
	pktPool *PacketPool
	queues  [NumPriorities]pktRing

	bytesQueued [NumPriorities]int64
	totalQueued int64
	lowQueued   int64
	busy        bool
	lossState   uint64

	// The transmit and delivery callbacks are bound once at construction
	// so the per-packet hot path schedules them without allocating a
	// closure. txPkt is the packet currently serializing (at most one);
	// wire holds packets propagating toward the peer — the delay is one
	// constant per port, so deliveries are strictly FIFO and the next
	// onDelivered call always takes the head.
	txPkt  *Packet
	onTx   func()
	wire   pktRing
	onRecv func()

	// cross, when set, marks the wire as crossing a shard boundary in a
	// partitioned fabric: finished transmissions are deposited into the
	// outbox (due at now+Delay) instead of propagating through the local
	// scheduler, and the destination shard's Inbox calls deliverCross at
	// the due time. crossDst is the peer device's shard.
	cross    *Outbox
	crossDst int32

	Stats PortStats
}

// NewPort builds a port; peer is the device at the far end of its wire,
// pool the (optional) shared buffer it draws from.
func NewPort(name string, s *sim.Scheduler, cfg PortConfig, peer Device, pool *BufferPool) *Port {
	if cfg.Rate <= 0 {
		panic("netsim: port needs a rate")
	}
	if cfg.LowClassStart == 0 {
		cfg.LowClassStart = 4
	}
	p := &Port{name: name, sched: s, cfg: cfg, peer: peer, pool: pool}
	p.lossState = cfg.LossSeed*2654435761 + 0x9e3779b97f4a7c15
	p.onTx = p.finishTx
	p.onRecv = p.deliver
	return p
}

// Name identifies the port in diagnostics.
func (p *Port) Name() string { return p.name }

// Config returns the port's configuration.
func (p *Port) Config() PortConfig { return p.cfg }

// SetPacketPool attaches the run's packet pool so dropped packets are
// recycled at the sink instead of leaking to the garbage collector.
// Optional: without a pool, drops simply become garbage.
func (p *Port) SetPacketPool(pp *PacketPool) { p.pktPool = pp }

// Peer returns the device at the far end of the wire.
func (p *Port) Peer() Device { return p.peer }

// Queued reports the bytes currently buffered at this port.
func (p *Port) Queued() int64 { return p.totalQueued }

// QueuedLow reports the buffered bytes in the low class.
func (p *Port) QueuedLow() int64 { return p.lowQueued }

// QueuedHigh reports the buffered bytes in the high class.
func (p *Port) QueuedHigh() int64 { return p.totalQueued - p.lowQueued }

// QueuedAt reports the buffered bytes of one priority queue.
func (p *Port) QueuedAt(prio int8) int64 { return p.bytesQueued[prio] }

func (p *Port) isLow(prio int8) bool { return prio >= p.cfg.LowClassStart }

// Enqueue offers pkt to the port, applying (in order) Aeolus selective
// drop, buffer admission with optional NDP trimming, and ECN marking,
// then kicks the transmitter.
func (p *Port) Enqueue(pkt *Packet) {
	p.Stats.RxPackets++
	prio := pkt.Prio
	if prio < 0 || prio >= NumPriorities {
		panic(fmt.Sprintf("netsim: priority %d out of range", prio))
	}

	if p.cfg.DroppableThresh > 0 && pkt.Droppable && p.bytesQueued[prio] >= p.cfg.DroppableThresh {
		p.drop(pkt)
		return
	}
	if p.cfg.LossProb > 0 && pkt.Kind == Data && p.randomLoss() {
		// Injected losses are counted on their own: folding them into
		// Drops/DropsLow via drop() would overstate congestion loss under
		// fault injection.
		p.Stats.RandomDrops++
		p.pktPool.Free(pkt)
		return
	}
	// Header-sized control packets (ACKs, grants, pulls, NACKs) are
	// never dropped: commodity switches keep headroom for them, and a
	// simulated control-plane loss would measure an artifact none of
	// the modeled protocols guards against. Their backlog is bounded by
	// the control-to-data ratio of the protocols themselves.
	if pkt.Kind != Data {
		p.forceAdmit(pkt)
		p.mark(pkt)
		p.push(pkt)
		return
	}
	if p.cfg.LowClassCap > 0 && p.isLow(prio) && p.lowQueued+int64(pkt.WireLen) > p.cfg.LowClassCap {
		p.drop(pkt)
		return
	}
	// Dynamic-threshold admission (optional): under pressure the
	// scavenger class's share collapses toward zero.
	if p.cfg.DynamicLowThreshold && p.isLow(prio) {
		if free := p.freeBuffer(); free >= 0 && p.lowQueued+int64(pkt.WireLen) > free {
			p.drop(pkt)
			return
		}
	}

	if !p.admit(pkt) {
		if p.cfg.TrimToHeader && pkt.Kind == Data && !pkt.Trimmed {
			// NDP semantics: headers are (nearly) never lost. Trimmed
			// headers are admitted unconditionally — their backlog is
			// bounded by the trim ratio (64B per dropped MTU), which is
			// how NDP switches reserve header space.
			pkt.Trimmed = true
			pkt.WireLen = HeaderBytes
			pkt.Prio = 0
			p.Stats.Trims++
			p.forceAdmit(pkt)
			p.mark(pkt)
			p.push(pkt)
			return
		}
		p.drop(pkt)
		return
	}
	p.mark(pkt)
	p.push(pkt)
}

// admit reserves buffer space, returning false if the packet must be
// dropped (or trimmed).
func (p *Port) admit(pkt *Packet) bool {
	n := int64(pkt.WireLen)
	if p.cfg.QueueCap > 0 && p.totalQueued+n > p.cfg.QueueCap {
		return false
	}
	if p.pool != nil && !p.pool.tryReserve(n) {
		p.pool.Drops++
		return false
	}
	return true
}

// forceAdmit reserves buffer space unconditionally (trimmed headers),
// letting the pool overshoot its cap by the header backlog.
func (p *Port) forceAdmit(pkt *Packet) {
	if p.pool != nil {
		p.pool.used += int64(pkt.WireLen)
	}
}

// randomLoss advances the port's xorshift PRNG and reports whether the
// packet should be lost.
func (p *Port) randomLoss() bool {
	x := p.lossState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	p.lossState = x
	return float64(x>>11)/float64(1<<53) < p.cfg.LossProb
}

// freeBuffer reports the remaining buffer headroom governing low-class
// admission, or -1 when the port is unbuffered (unlimited).
func (p *Port) freeBuffer() int64 {
	free := int64(-1)
	if p.cfg.QueueCap > 0 {
		free = p.cfg.QueueCap - p.totalQueued
	}
	if p.pool != nil {
		if pf := p.pool.Cap - p.pool.Used(); free < 0 || pf < free {
			free = pf
		}
	}
	if free < 0 && (p.cfg.QueueCap > 0 || p.pool != nil) {
		free = 0
	}
	return free
}

func (p *Port) mark(pkt *Packet) {
	if !pkt.ECT || pkt.CE {
		return
	}
	if p.isLow(pkt.Prio) {
		if p.cfg.ECNLowK > 0 && p.totalQueued >= p.cfg.ECNLowK {
			pkt.CE = true
			p.Stats.MarksLow++
		}
	} else {
		if p.cfg.ECNHighK > 0 && p.totalQueued-p.lowQueued >= p.cfg.ECNHighK {
			pkt.CE = true
			p.Stats.MarksHigh++
		}
	}
}

func (p *Port) push(pkt *Packet) {
	prio := pkt.Prio
	p.queues[prio].push(pkt)
	n := int64(pkt.WireLen)
	p.bytesQueued[prio] += n
	p.totalQueued += n
	if p.isLow(prio) {
		p.lowQueued += n
	}
	p.kick()
}

// drop is a packet sink: the packet is dead and recycled here.
func (p *Port) drop(pkt *Packet) {
	p.Stats.Drops++
	if p.isLow(pkt.Prio) {
		p.Stats.DropsLow++
	}
	p.pktPool.Free(pkt)
}

// kick starts the transmitter if it is idle and a packet is waiting.
func (p *Port) kick() {
	if p.busy {
		return
	}
	pkt := p.pop()
	if pkt == nil {
		return
	}
	p.busy = true
	p.txPkt = pkt
	txTime := p.cfg.Rate.TxTime(int(pkt.WireLen))
	p.sched.After(txTime, p.onTx)
}

func (p *Port) finishTx() {
	pkt := p.txPkt
	p.txPkt = nil
	n := int64(pkt.WireLen)
	if p.pool != nil {
		p.pool.release(n)
	}
	p.Stats.TxBytes += n
	p.Stats.TxPackets++
	if pkt.Kind == Data {
		p.Stats.TxDataBytes += int64(pkt.PayloadLen)
		if !pkt.Retrans {
			p.Stats.TxFreshBytes += int64(pkt.PayloadLen)
		}
	}
	if p.cfg.EnableINT && pkt.INT != nil {
		pkt.INT = append(pkt.INT, INTHop{
			QLen:    p.totalQueued,
			TxBytes: p.Stats.TxBytes,
			TS:      p.sched.Now(),
			Rate:    p.cfg.Rate,
		})
	}
	if p.cross != nil {
		p.cross.deposit(p.sched.Now()+p.cfg.Delay, pkt, p, p.crossDst)
	} else {
		p.wire.push(pkt)
		p.sched.After(p.cfg.Delay, p.onRecv)
	}
	p.busy = false
	p.kick()
}

// deliver hands the oldest in-flight packet to the peer.
func (p *Port) deliver() {
	p.peer.Receive(p.wire.pop())
}

// SetCross marks this port's wire as crossing into shard dstShard of a
// partitioned fabric, routing transmissions through the outbox (see
// cross.go). Called by topo builders only.
func (p *Port) SetCross(o *Outbox, dstShard int) {
	p.cross = o
	p.crossDst = int32(dstShard)
}

// deliverCross hands a cross-shard packet to the peer at its stamped
// delivery time (invoked by the destination shard's Inbox).
func (p *Port) deliverCross(pkt *Packet) {
	p.peer.Receive(pkt)
}

// pop removes and returns the head of the highest-priority nonempty
// queue, or nil.
func (p *Port) pop() *Packet {
	for prio := 0; prio < NumPriorities; prio++ {
		if p.queues[prio].len() == 0 {
			continue
		}
		pkt := p.queues[prio].pop()
		n := int64(pkt.WireLen)
		p.bytesQueued[prio] -= n
		p.totalQueued -= n
		if p.isLow(int8(prio)) {
			p.lowQueued -= n
		}
		return pkt
	}
	return nil
}
