package netsim

// ringInitCap is the initial capacity of a priority queue's ring, chosen
// so a port under ordinary congestion never regrows: at 64 packets of up
// to MTU size a single ring covers ~97KB of backlog, beyond typical
// per-class ECN thresholds. Must be a power of two.
const ringInitCap = 64

// pktRing is a FIFO ring buffer of packets — one per priority queue.
// Unlike the previous append/re-slice scheme it never allocates in
// steady state: slots are reused in place, and the backing array only
// grows (doubling) when the instantaneous backlog exceeds every previous
// peak. Capacity is kept a power of two so the index wrap is a mask.
type pktRing struct {
	buf  []*Packet
	head int
	n    int
}

// push appends pkt at the tail.
func (r *pktRing) push(pkt *Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = pkt
	r.n++
}

// pop removes and returns the head packet. Call only when len() > 0.
func (r *pktRing) pop() *Packet {
	pkt := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return pkt
}

// len reports the number of queued packets.
func (r *pktRing) len() int { return r.n }

func (r *pktRing) grow() {
	newCap := ringInitCap
	if len(r.buf) > 0 {
		newCap = len(r.buf) * 2
	}
	nb := make([]*Packet, newCap)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = nb, 0
}
