package netsim

import (
	"fmt"

	"ppt/internal/sim"
)

// Endpoint is one side of a transport flow living on a host. Data-plane
// packets reach the receiver endpoint; control packets (ACK/grant/pull)
// reach the sender endpoint.
type Endpoint interface {
	Handle(pkt *Packet)
}

// endpointKey demuxes by flow and direction: a flow's sender and receiver
// live on different hosts, but a host can terminate both roles of
// different flows concurrently. Packed into a uint64 (flow<<1 | dir) so
// the per-packet delivery lookup takes the runtime's fast fixed-64 map
// path instead of a hash-function call.
func endpointKey(flow uint32, receiver bool) uint64 {
	k := uint64(flow) << 1
	if receiver {
		k |= 1
	}
	return k
}

// Host is an end system: a NIC egress port plus a per-flow endpoint
// table.
type Host struct {
	id    int32
	name  string
	sched *sim.Scheduler
	nic   *Port
	pool  *PacketPool

	endpoints map[uint64]Endpoint
	// peak tracks the high-water endpoint count since the map was last
	// (re)built: Go maps never shrink, so after a burst of concurrent
	// flows the bucket array would pin peak-size memory for the rest of
	// the run. Unbind swaps in a fresh map once the table empties.
	peak int

	// Delivered counts payload bytes handed to receiver endpoints
	// (including duplicates), for transfer-efficiency accounting.
	Delivered int64

	// Orphans counts data payload bytes that arrived for a flow with no
	// bound endpoint (stragglers after completion).
	Orphans int64
	// OrphansLow is the low-loop share of Orphans.
	OrphansLow int64
}

// NewHost creates host id; topo builders attach the NIC with SetNIC.
func NewHost(id int32, s *sim.Scheduler) *Host {
	return &Host{
		id:        id,
		name:      fmt.Sprintf("h%d", id),
		sched:     s,
		endpoints: make(map[uint64]Endpoint),
	}
}

// ID returns the host id used in packet headers.
func (h *Host) ID() int32 { return h.id }

// Name implements Device.
func (h *Host) Name() string { return h.name }

// Sched returns the host's scheduler.
func (h *Host) Sched() *sim.Scheduler { return h.sched }

// SetNIC installs the egress port toward the first-hop switch.
func (h *Host) SetNIC(p *Port) { h.nic = p }

// SetPool attaches the run's packet pool: packets built with Data/Ctrl
// come from it, and delivered packets return to it after their endpoint
// handles them. Optional — without a pool the host plain-allocates.
func (h *Host) SetPool(pp *PacketPool) { h.pool = pp }

// Pool returns the host's packet pool (possibly nil; PacketPool methods
// are nil-safe).
func (h *Host) Pool() *PacketPool { return h.pool }

// Data builds a payload-carrying packet from this host, drawn from its
// pool. The endpoint-facing contract: once the packet is Sent it belongs
// to the network, which recycles it at a sink — the builder must not
// touch it again.
func (h *Host) Data(flow uint32, dst int32, seq int64, payload int32, prio int8) *Packet {
	return h.pool.Data(flow, h.id, dst, seq, payload, prio)
}

// Ctrl builds a header-only packet from this host, drawn from its pool.
// Same ownership contract as Data.
func (h *Host) Ctrl(kind Kind, flow uint32, dst int32, prio int8) *Packet {
	return h.pool.Ctrl(kind, flow, h.id, dst, prio)
}

// NIC returns the host's egress port.
func (h *Host) NIC() *Port { return h.nic }

// Rate returns the NIC line rate.
func (h *Host) Rate() Rate { return h.nic.Config().Rate }

// Bind registers an endpoint for one direction of a flow. Binding the
// same key twice is a programming error.
func (h *Host) Bind(flow uint32, receiver bool, ep Endpoint) {
	k := endpointKey(flow, receiver)
	if _, dup := h.endpoints[k]; dup {
		panic(fmt.Sprintf("netsim: host %s: duplicate endpoint for flow %d (receiver=%v)", h.name, flow, receiver))
	}
	h.endpoints[k] = ep
	if n := len(h.endpoints); n > h.peak {
		h.peak = n
	}
}

// Endpoint returns the endpoint bound for one direction of a flow
// without removing it, or nil when the key is not bound. The windowed
// run driver uses this to quiesce a completed flow's sender timers at a
// barrier while deferring the Unbind/recycle to the shard's next window.
func (h *Host) Endpoint(flow uint32, receiver bool) Endpoint {
	return h.endpoints[endpointKey(flow, receiver)]
}

// endpointShrinkAt is the peak table size beyond which an emptied
// endpoint map is released rather than kept for reuse.
const endpointShrinkAt = 64

// Unbind removes a flow endpoint (called when a flow completes) and
// returns it so the caller can recycle the struct; nil when the key was
// not bound. When the table empties after a large burst, the map is
// rebuilt small so long runs do not hold peak-size buckets.
func (h *Host) Unbind(flow uint32, receiver bool) Endpoint {
	k := endpointKey(flow, receiver)
	ep, ok := h.endpoints[k]
	if !ok {
		return nil
	}
	delete(h.endpoints, k)
	if len(h.endpoints) == 0 && h.peak > endpointShrinkAt {
		h.endpoints = make(map[uint64]Endpoint)
		h.peak = 0
	}
	return ep
}

// Send stamps and enqueues a packet on the NIC.
func (h *Host) Send(pkt *Packet) {
	if pkt.SentAt == 0 {
		pkt.SentAt = h.sched.Now()
	}
	h.nic.Enqueue(pkt)
}

// Receive implements Device: demux to the flow endpoint. Packets for
// flows that have already completed and unbound are dropped silently —
// stragglers (late retransmissions, duplicate ACKs) are expected.
//
// Delivery is a packet sink: the packet is recycled as soon as Handle
// returns. Endpoints therefore must not retain pkt (or pkt.INT, unless
// they take ownership by nilling the field) beyond the Handle call —
// they copy out what they need, which every transport here already does.
func (h *Host) Receive(pkt *Packet) {
	if pkt.Dst != h.id {
		panic(fmt.Sprintf("netsim: host %s got packet for %d", h.name, pkt.Dst))
	}
	if pkt.Kind == Data {
		h.Delivered += int64(pkt.PayloadLen)
	}
	ep := h.endpoints[endpointKey(pkt.FlowID, pkt.Kind.ToReceiver())]
	if ep == nil {
		if pkt.Kind == Data {
			h.Orphans += int64(pkt.PayloadLen)
			if pkt.LowLoop {
				h.OrphansLow += int64(pkt.PayloadLen)
			}
		}
		h.pool.Free(pkt)
		return
	}
	ep.Handle(pkt)
	h.pool.Free(pkt)
}
