package netsim

import "fmt"

// Switch is an output-queued device: arriving packets are immediately
// placed on the egress port chosen by the forwarding table, with ECMP
// hashing across equal-cost ports.
type Switch struct {
	name  string
	salt  uint32
	ports []*Port
	// routes maps destination host id -> candidate egress port indexes.
	routes map[int32][]int
}

// NewSwitch creates a switch with no ports; topo builders attach ports
// and install routes.
func NewSwitch(name string, salt uint32) *Switch {
	return &Switch{name: name, salt: salt, routes: make(map[int32][]int)}
}

// Name implements Device.
func (sw *Switch) Name() string { return sw.name }

// AddPort attaches an egress port and returns its index.
func (sw *Switch) AddPort(p *Port) int {
	sw.ports = append(sw.ports, p)
	return len(sw.ports) - 1
}

// Port returns the i-th egress port.
func (sw *Switch) Port(i int) *Port { return sw.ports[i] }

// Ports returns all egress ports.
func (sw *Switch) Ports() []*Port { return sw.ports }

// AddRoute appends candidate egress ports for a destination host.
func (sw *Switch) AddRoute(dst int32, portIdx ...int) {
	sw.routes[dst] = append(sw.routes[dst], portIdx...)
}

// Receive implements Device: route, ECMP-hash, enqueue.
func (sw *Switch) Receive(pkt *Packet) {
	cands := sw.routes[pkt.Dst]
	if len(cands) == 0 {
		panic(fmt.Sprintf("netsim: switch %s has no route to host %d", sw.name, pkt.Dst))
	}
	pkt.Hops++
	idx := 0
	if len(cands) > 1 {
		idx = int(ecmpHash(pkt.FlowID, sw.salt) % uint32(len(cands)))
	}
	sw.ports[cands[idx]].Enqueue(pkt)
}

// ecmpHash spreads flows over equal-cost paths. The low-loop bit is not
// hashed: a flow's HCP and LCP packets take the same path, as they would
// with identical 5-tuples in a real fabric.
func ecmpHash(flow, salt uint32) uint32 {
	x := flow*2654435761 + salt
	x ^= x >> 16
	x *= 2246822519
	x ^= x >> 13
	return x
}
