package netsim

import (
	"testing"

	"ppt/internal/sim"
)

// The fast-path tests pit a fused port against an identically configured
// -fastpath=off port driven by the same packet script and assert the two
// are observationally identical: same deliveries at the same times in the
// same order, same counters, same pool behaviour. The only permitted
// difference is the event count (DESIGN.md §7.6).

// pairRun drives the same script through a fused and a classic port and
// returns both ports, their sinks, their pools (nil when poolCap == 0)
// and the events each scheduler executed.
func pairRun(t *testing.T, cfg PortConfig, poolCap int64, script func(s *sim.Scheduler, p *Port)) (pf, pc *Port, kf, kc *sink, bf, bc *BufferPool, ef, ec uint64) {
	t.Helper()
	run := func(noFast bool) (*Port, *sink, *BufferPool, uint64) {
		s := sim.NewScheduler()
		var pool *BufferPool
		if poolCap > 0 {
			pool = NewBufferPool(poolCap)
		}
		c := cfg
		c.NoFastPath = noFast
		p, k := newTestPort(s, c, pool)
		script(s, p)
		s.Run()
		// Mirror the run drivers: settle deferred accounting at the final
		// executed horizon, inclusively.
		p.SettleTx(s.Now())
		return p, k, pool, s.Executed
	}
	pf, kf, bf, ef = run(false)
	pc, kc, bc, ec = run(true)
	return
}

// assertSameOutcome fails unless both runs delivered the same packets at
// the same times with the same markings, and the ports (and pools) ended
// with identical counters.
func assertSameOutcome(t *testing.T, pf, pc *Port, kf, kc *sink, bf, bc *BufferPool) {
	t.Helper()
	if len(kf.pkts) != len(kc.pkts) {
		t.Fatalf("fused delivered %d packets, classic %d", len(kf.pkts), len(kc.pkts))
	}
	for i := range kf.pkts {
		a, b := kf.pkts[i], kc.pkts[i]
		if kf.at[i] != kc.at[i] {
			t.Fatalf("delivery %d: fused at %v, classic at %v", i, kf.at[i], kc.at[i])
		}
		if a.FlowID != b.FlowID || a.Seq != b.Seq || a.WireLen != b.WireLen ||
			a.Prio != b.Prio || a.CE != b.CE || a.Trimmed != b.Trimmed {
			t.Fatalf("delivery %d differs: fused %+v, classic %+v", i, a, b)
		}
	}
	if pf.Stats != pc.Stats {
		t.Fatalf("stats differ:\nfused   %+v\nclassic %+v", pf.Stats, pc.Stats)
	}
	if (bf == nil) != (bc == nil) {
		t.Fatalf("pool presence differs")
	}
	if bf != nil {
		if bf.Drops != bc.Drops {
			t.Fatalf("pool drops: fused %d, classic %d", bf.Drops, bc.Drops)
		}
		if u1, u2 := bf.Used(), bc.Used(); u1 != u2 {
			t.Fatalf("pool used: fused %d, classic %d", u1, u2)
		}
	}
}

// An uncongested hop costs one event per packet fused (the delivery)
// versus two classic (serialize-complete + delivery) — the tentpole's
// whole point.
func TestFastPathSingleEventPerHop(t *testing.T) {
	cfg := PortConfig{Delay: 1 * sim.Microsecond}
	script := func(s *sim.Scheduler, p *Port) {
		p.Enqueue(DataPacket(1, 0, 1, 0, 1000, 0))
	}
	pf, pc, kf, kc, bf, bc, ef, ec := pairRun(t, cfg, 0, script)
	assertSameOutcome(t, pf, pc, kf, kc, bf, bc)
	if ef != 1 || ec != 2 {
		t.Fatalf("events: fused %d (want 1), classic %d (want 2)", ef, ec)
	}
}

// A back-to-back burst still saves one event per packet: both modes pay
// the resume pops, only classic pays serialize-complete events on top.
func TestFastPathBurstEventSavings(t *testing.T) {
	const n = 8
	cfg := PortConfig{Delay: 500 * sim.Nanosecond}
	script := func(s *sim.Scheduler, p *Port) {
		for i := 0; i < n; i++ {
			p.Enqueue(DataPacket(uint32(i), 0, 1, 0, 1200, 0))
		}
	}
	pf, pc, kf, kc, bf, bc, ef, ec := pairRun(t, cfg, 0, script)
	assertSameOutcome(t, pf, pc, kf, kc, bf, bc)
	if len(kf.pkts) != n {
		t.Fatalf("delivered %d, want %d", len(kf.pkts), n)
	}
	if ec-ef != n {
		t.Fatalf("classic executed %d events, fused %d; want exactly %d fewer fused", ec, ef, n)
	}
}

// Packets enqueued while a fused transmission is in flight must wait for
// the resume timer and pop in strict-priority order — the arrival cannot
// jump onto the wire mid-serialization just because no serialize-complete
// event exists on the fast path.
func TestFastPathEnqueueDuringSerialization(t *testing.T) {
	cfg := PortConfig{Delay: 1 * sim.Microsecond}
	script := func(s *sim.Scheduler, p *Port) {
		p.Enqueue(DataPacket(1, 0, 1, 0, 1400, 3)) // occupies the link
		// Mid-serialization: low prio first, then high. High must pop
		// first at serialize-complete.
		s.At(200*sim.Nanosecond, func() { p.Enqueue(DataPacket(2, 0, 1, 0, 1000, 6)) })
		s.At(300*sim.Nanosecond, func() { p.Enqueue(DataPacket(3, 0, 1, 0, 1000, 1)) })
	}
	pf, pc, kf, kc, bf, bc, _, _ := pairRun(t, cfg, 0, script)
	assertSameOutcome(t, pf, pc, kf, kc, bf, bc)
	want := []uint32{1, 3, 2}
	for i, w := range want {
		if kf.pkts[i].FlowID != w {
			t.Fatalf("fused pop order: got flow %d at %d, want %d", kf.pkts[i].FlowID, i, w)
		}
	}
	// The second packet starts exactly when the first finishes
	// serializing, not earlier and not at its own enqueue time.
	txFirst := (10 * Gbps).TxTime(1464)
	wantAt := txFirst + (10*Gbps).TxTime(1064) + cfg.Delay
	if kf.at[1] != wantAt {
		t.Fatalf("second delivery at %v, want %v", kf.at[1], wantAt)
	}
}

// ECN marking consults queue occupancy at enqueue time; with the resume
// pop keeping occupancy trajectories identical, marks must match.
func TestFastPathECNMarking(t *testing.T) {
	cfg := PortConfig{ECNHighK: 2000, ECNLowK: 4000, Delay: 1 * sim.Microsecond}
	script := func(s *sim.Scheduler, p *Port) {
		for i := 0; i < 6; i++ {
			pkt := DataPacket(uint32(i), 0, 1, 0, 1400, 0)
			pkt.ECT = true
			p.Enqueue(pkt)
		}
		for i := 6; i < 10; i++ {
			pkt := DataPacket(uint32(i), 0, 1, 0, 1400, 6)
			pkt.ECT = true
			p.Enqueue(pkt)
		}
	}
	pf, pc, kf, kc, bf, bc, _, _ := pairRun(t, cfg, 0, script)
	assertSameOutcome(t, pf, pc, kf, kc, bf, bc)
	if pf.Stats.MarksHigh == 0 || pf.Stats.MarksLow == 0 {
		t.Fatalf("expected marks in both classes, got %+v", pf.Stats)
	}
}

// NDP trimming on the fast path: the trimmed header is what serializes
// (64B), so the fused delivery time must reflect the post-trim wire
// length.
func TestFastPathTrimToHeader(t *testing.T) {
	cfg := PortConfig{QueueCap: 3100, TrimToHeader: true, Delay: 1 * sim.Microsecond}
	script := func(s *sim.Scheduler, p *Port) {
		for i := 0; i < 5; i++ {
			p.Enqueue(DataPacket(uint32(i), 0, 1, 0, 1400, 3))
		}
	}
	pf, pc, kf, kc, bf, bc, _, _ := pairRun(t, cfg, 0, script)
	assertSameOutcome(t, pf, pc, kf, kc, bf, bc)
	if pf.Stats.Trims != 2 {
		t.Fatalf("trims = %d, want 2", pf.Stats.Trims)
	}
}

// Aeolus selective drop and injected random loss both decide at Enqueue;
// the per-port PRNG must advance identically in both modes.
func TestFastPathDroppableAndLoss(t *testing.T) {
	cfg := PortConfig{DroppableThresh: 2000, LossProb: 0.3, LossSeed: 7, Delay: 1 * sim.Microsecond}
	script := func(s *sim.Scheduler, p *Port) {
		for i := 0; i < 12; i++ {
			pkt := DataPacket(uint32(i), 0, 1, 0, 1400, 6)
			pkt.Droppable = i%2 == 0
			p.Enqueue(pkt)
		}
	}
	pf, pc, kf, kc, bf, bc, _, _ := pairRun(t, cfg, 0, script)
	assertSameOutcome(t, pf, pc, kf, kc, bf, bc)
	if pf.Stats.RandomDrops == 0 {
		t.Fatalf("expected injected losses at LossProb=0.3, got %+v", pf.Stats)
	}
}

// Lazy pool release visibility: a fused transmit's buffer bytes are
// released strictly after its serialize-complete instant. An observer AT
// txDone still sees them reserved (strict now-1 settle); one picosecond
// later they are gone, and a tryReserve needing the full pool succeeds.
func TestFastPathLazyPoolRelease(t *testing.T) {
	s := sim.NewScheduler()
	pool := NewBufferPool(964)
	p, _ := newTestPort(s, PortConfig{Delay: 2 * sim.Microsecond}, pool)
	kq := &sink{s: s}
	q := NewPort("p1", s, PortConfig{Rate: 10 * Gbps, Delay: 2 * sim.Microsecond}, kq, pool)

	txDone := (10 * Gbps).TxTime(964)
	var atDone, afterDone int64
	// Observers are armed before the Enqueue so their same-instant seqs
	// precede the transmit bookkeeping — the delivery-driven-admission
	// shape every pooled fabric has (DESIGN.md §7.6).
	s.At(txDone, func() { atDone = pool.Used() })
	// Same instant: a reservation needing the full pool must NOT see the
	// release yet, exactly like the eager engine where finishTx at txDone
	// ordered after events armed earlier.
	s.At(txDone, func() { q.Enqueue(DataPacket(2, 0, 1, 0, 900, 0)) })
	s.At(txDone+1, func() { afterDone = pool.Used() })
	s.At(txDone+1, func() { q.Enqueue(DataPacket(3, 0, 1, 0, 900, 0)) })
	p.Enqueue(DataPacket(1, 0, 1, 0, 900, 0))
	s.Run()

	if atDone != 964 {
		t.Fatalf("pool at txDone = %d, want 964 (release must stay invisible at the tied instant)", atDone)
	}
	if pool.Drops != 1 || q.Stats.Drops != 1 {
		t.Fatalf("same-instant reservation should have failed: poolDrops=%d qDrops=%d", pool.Drops, q.Stats.Drops)
	}
	if afterDone != 0 {
		// This observer runs before flow 3's enqueue at the same instant:
		// flow 1's release is settled (txDone <= now-1) and nothing has
		// re-reserved yet.
		t.Fatalf("pool after txDone = %d, want 0 (release settled)", afterDone)
	}
	// Flow 3's reservation one picosecond after txDone needed the whole
	// pool — only the lazy release makes it fit.
	if len(kq.pkts) != 1 || kq.pkts[0].FlowID != 3 {
		t.Fatalf("q delivered %d packets, want exactly flow 3", len(kq.pkts))
	}
	if pool.Used() != 0 {
		t.Fatalf("pool not drained at end of run: %d", pool.Used())
	}
}

// INT-enabled ports must stay on the classic chain: INTHop samples queue
// state at serialize-complete, which the fused path has no event for.
func TestFastPathINTStaysClassic(t *testing.T) {
	s := sim.NewScheduler()
	p, k := newTestPort(s, PortConfig{EnableINT: true, Delay: 1 * sim.Microsecond}, nil)
	if p.fast {
		t.Fatal("INT-enabled port took the fast path")
	}
	pkt := DataPacket(1, 0, 1, 0, 1000, 0)
	pkt.INT = make([]INTHop, 0, 4)
	p.Enqueue(pkt)
	s.Run()
	if s.Executed != 2 {
		t.Fatalf("executed %d events, want the classic 2 (finishTx + deliver)", s.Executed)
	}
	if len(k.pkts) != 1 || len(k.pkts[0].INT) != 1 {
		t.Fatalf("INT record missing: %d pkts", len(k.pkts))
	}
	if rec := k.pkts[0].INT[0]; rec.TxBytes != 1064 || rec.Rate != 10*Gbps {
		t.Fatalf("INT record = %+v", rec)
	}
}

// Cross-shard ports are forced classic regardless of config (DESIGN.md
// §7.6: deposits must happen at serialize-complete so window barriers
// merge them identically in both modes).
func TestFastPathCrossPortForcedClassic(t *testing.T) {
	s := sim.NewScheduler()
	p, _ := newTestPort(s, PortConfig{Delay: 1 * sim.Microsecond}, nil)
	if !p.fast {
		t.Fatal("plain port should be fast by default")
	}
	p.SetCross(&Outbox{}, 1)
	if p.fast {
		t.Fatal("cross-shard port must run the classic pipeline")
	}
}

// A saturated fused port never fully drains its deferred-accounting
// queue — every resume pop appends a new pendTx while at least the
// in-flight entry stays unsettled — so without the midstream compaction
// in SettleTx the slice would grow with every packet transmitted. This
// pins the bound: across thousands of back-to-back packets, the pend
// queue stays O(settled prefix) (compaction trips once the settled head
// passes 32 entries and half the slice), never O(packets).
func TestFastPathPendCompactionUnderSaturation(t *testing.T) {
	s := sim.NewScheduler()
	p, k := newTestPort(s, PortConfig{Delay: 1 * sim.Microsecond}, nil)
	const n = 4096
	for i := 0; i < n; i++ {
		p.Enqueue(DataPacket(uint32(i), 0, 1, 0, 1000, 0))
	}
	// Sample the queue at every serialize-complete instant for the whole
	// saturated span; the samples interleave with the resume pops that
	// append (and settle) entries, catching any between-compaction peak.
	txTime := (10 * Gbps).TxTime(1064)
	maxLen := 0
	for i := 1; i <= n; i++ {
		s.At(sim.Time(i)*txTime, func() {
			if len(p.pend) > maxLen {
				maxLen = len(p.pend)
			}
		})
	}
	s.Run()
	if len(k.pkts) != n {
		t.Fatalf("delivered %d packets, want %d", len(k.pkts), n)
	}
	if maxLen == 0 {
		t.Fatal("pend queue never held an entry; the port did not take the fused path")
	}
	// The compaction threshold (settled head > 32 and >= half the slice)
	// bounds the slice at ~2x the trip point; anything near n means the
	// compaction regressed.
	if maxLen > 128 {
		t.Fatalf("pend queue peaked at %d entries over %d packets; compaction is not holding the O(settled prefix) bound", maxLen, n)
	}
	p.SettleTx(s.Now())
	if len(p.pend) != 0 || p.pendHead != 0 {
		t.Fatalf("pend not drained after final settle: len=%d head=%d", len(p.pend), p.pendHead)
	}
}

// Randomized differential: a deterministic pseudo-random script of mixed
// sizes, priorities, classes, ECT/droppable flags and arrival times,
// under ECN + shared pool + selective drop + injected loss at once. The
// fused run must be observationally identical and strictly cheaper in
// events.
func TestFastPathRandomizedDifferential(t *testing.T) {
	cfg := PortConfig{
		Rate:            40 * Gbps,
		Delay:           1500 * sim.Nanosecond,
		ECNHighK:        3000,
		ECNLowK:         6000,
		DroppableThresh: 2500,
		LossProb:        0.05,
		LossSeed:        11,
	}
	script := func(s *sim.Scheduler, p *Port) {
		rng := uint64(42)
		next := func(n uint64) uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng % n
		}
		for i := 0; i < 300; i++ {
			pkt := DataPacket(uint32(i), 0, 1, int64(i), int32(1+next(MSS)), int8(next(NumPriorities)))
			pkt.ECT = next(2) == 0
			pkt.Droppable = next(4) == 0
			at := sim.Time(next(uint64(40 * sim.Microsecond)))
			s.At(at, func() { p.Enqueue(pkt) })
		}
	}
	pf, pc, kf, kc, bf, bc, ef, ec := pairRun(t, cfg, 30000, script)
	assertSameOutcome(t, pf, pc, kf, kc, bf, bc)
	if len(kf.pkts) == 0 {
		t.Fatal("differential delivered nothing")
	}
	if ef >= ec {
		t.Fatalf("fused executed %d events, classic %d; fused must be cheaper", ef, ec)
	}
}
