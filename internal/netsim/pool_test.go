package netsim

import "testing"

func TestPacketPoolRecycles(t *testing.T) {
	pp := NewPacketPool()
	pkt := pp.Data(7, 1, 2, 4096, MSS, 3)
	pkt.Meta = "payload"
	pp.Free(pkt)
	got := pp.Get()
	if got != pkt {
		t.Fatal("freed packet not recycled")
	}
	if got.FlowID != 0 || got.Seq != 0 || got.PayloadLen != 0 || got.WireLen != 0 ||
		got.Kind != Data || got.Prio != 0 || got.Meta != nil || got.INT != nil {
		t.Fatalf("recycled packet not zeroed: %+v", got)
	}
	if pp.Allocs != 1 || pp.Frees != 1 || pp.Reuses != 1 {
		t.Fatalf("counters = %d/%d/%d, want 1/1/1", pp.Allocs, pp.Frees, pp.Reuses)
	}
}

func TestPacketPoolDoubleFreePanics(t *testing.T) {
	pp := NewPacketPool()
	pkt := pp.Ctrl(Ack, 1, 1, 2, 0)
	pp.Free(pkt)
	defer func() {
		if recover() == nil {
			t.Error("double-free did not panic")
		}
	}()
	pp.Free(pkt)
}

func TestPacketPoolNilSafe(t *testing.T) {
	var pp *PacketPool
	pkt := pp.Data(1, 1, 2, 100, 100, 0)
	if pkt == nil || pkt.WireLen != 100+HeaderBytes {
		t.Fatalf("nil pool Data = %+v", pkt)
	}
	pp.Free(pkt) // no-op, must not crash
	if s := pp.GetINT(); cap(s) == 0 {
		t.Fatal("nil pool GetINT returned zero-cap slice")
	}
	pp.PutINT(nil)
}

func TestPacketPoolRecyclesINT(t *testing.T) {
	pp := NewPacketPool()
	pkt := pp.Data(1, 1, 2, 100, 100, 0)
	pkt.INT = pp.GetINT()
	pkt.INT = append(pkt.INT, INTHop{QLen: 42})
	backing := &pkt.INT[0]
	pp.Free(pkt)
	if pkt.INT != nil {
		t.Fatal("Free left INT attached")
	}
	got := pp.GetINT()
	if len(got) != 0 {
		t.Fatalf("recycled INT slice not empty: len=%d", len(got))
	}
	if &got[:1][0] != backing {
		t.Fatal("INT backing array not recycled")
	}
}

// A run-scoped pool must keep live allocations at the high-water mark:
// churning one packet at a time through the port/host cycle must not
// allocate more than once.
func TestPacketPoolSteadyState(t *testing.T) {
	pp := NewPacketPool()
	for i := 0; i < 1000; i++ {
		pp.Free(pp.Ctrl(Ack, 1, 1, 2, 0))
	}
	if pp.Allocs != 1 {
		t.Fatalf("steady-state churn allocated %d packets, want 1", pp.Allocs)
	}
}

func TestPktRingFIFOAcrossWrapAndGrow(t *testing.T) {
	var r pktRing
	mk := func(i int) *Packet { return &Packet{Seq: int64(i)} }
	// Staggered pushes and pops make the head wander, exercising the
	// wraparound mask and mid-flight grows.
	in, out := 0, 0
	for step := 0; step < 10_000; step++ {
		if step%3 != 2 {
			r.push(mk(in))
			in++
		} else if r.len() > 0 {
			pkt := r.pop()
			if pkt.Seq != int64(out) {
				t.Fatalf("step %d: popped seq %d, want %d", step, pkt.Seq, out)
			}
			out++
		}
	}
	// Drain: every packet must come out exactly once, in order.
	for r.len() > 0 {
		if pkt := r.pop(); pkt.Seq != int64(out) {
			t.Fatalf("drain: popped seq %d, want %d", pkt.Seq, out)
		} else {
			out++
		}
	}
	if out != in {
		t.Fatalf("pushed %d packets, popped %d", in, out)
	}
}
