package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ppt/internal/sim"
)

// Dynamic-threshold admission tests: the low class may only occupy the
// remaining free buffer.

func dtPort(s *sim.Scheduler, cap int64) (*Port, *sink) {
	k := &sink{s: s}
	p := NewPort("dt", s, PortConfig{
		Rate: 10 * Gbps, QueueCap: cap, DynamicLowThreshold: true,
	}, k, nil)
	return p, k
}

func TestDTLowClassBoundedByFreeSpace(t *testing.T) {
	s := sim.NewScheduler()
	p, _ := dtPort(s, 12_000)
	// Fill ~half with high class (these queue behind the transmitting
	// packet).
	for i := 0; i < 5; i++ {
		p.Enqueue(DataPacket(1, 0, 1, 0, MSS, 0))
	}
	highQ := p.QueuedHigh() // ~4*1512 = 6048 queued (one transmitting)
	free := 12_000 - highQ
	// Low class arrivals: admitted only while lowQueued <= free.
	var admitted int64
	for i := 0; i < 10; i++ {
		before := p.QueuedLow()
		p.Enqueue(DataPacket(2, 0, 1, 0, MSS, 6))
		if p.QueuedLow() > before {
			admitted++
		}
	}
	if p.QueuedLow() > free {
		t.Fatalf("low class %d exceeds free space %d", p.QueuedLow(), free)
	}
	if admitted == 0 {
		t.Fatal("no low packets admitted despite free space")
	}
	if admitted == 10 {
		t.Fatal("DT never rejected")
	}
}

func TestDTHighClassUnaffected(t *testing.T) {
	s := sim.NewScheduler()
	p, _ := dtPort(s, 12_000)
	// Fill the low class to its DT bound.
	for i := 0; i < 10; i++ {
		p.Enqueue(DataPacket(2, 0, 1, 0, MSS, 6))
	}
	dropsBefore := p.Stats.Drops
	// High-class packets still admitted up to the queue cap.
	var admitted int
	for i := 0; i < 4; i++ {
		before := p.QueuedHigh()
		p.Enqueue(DataPacket(1, 0, 1, 0, MSS, 0))
		if p.QueuedHigh() > before || p.Queued() == before {
			admitted++
		}
	}
	if admitted == 0 {
		t.Fatalf("high class starved by DT (drops %d -> %d)", dropsBefore, p.Stats.Drops)
	}
}

func TestDTDisabledByDefault(t *testing.T) {
	s := sim.NewScheduler()
	k := &sink{s: s}
	p := NewPort("plain", s, PortConfig{Rate: 10 * Gbps, QueueCap: 12_000}, k, nil)
	// Without DT the low class may fill the whole buffer.
	for i := 0; i < 10; i++ {
		p.Enqueue(DataPacket(2, 0, 1, 0, MSS, 6))
	}
	if p.QueuedLow() < 7_000 {
		t.Fatalf("plain port rejected low packets early: %d", p.QueuedLow())
	}
}

func TestDTWithSharedPool(t *testing.T) {
	s := sim.NewScheduler()
	pool := NewBufferPool(12_000)
	k := &sink{s: s}
	p := NewPort("dtpool", s, PortConfig{Rate: 10 * Gbps, DynamicLowThreshold: true}, k, pool)
	for i := 0; i < 10; i++ {
		p.Enqueue(DataPacket(2, 0, 1, 0, MSS, 6))
	}
	// lowQueued must stay within the pool's free headroom.
	if p.QueuedLow() > 12_000-p.QueuedLow()+MSS+HeaderBytes {
		t.Fatalf("low class %d exceeded pool DT bound", p.QueuedLow())
	}
	if p.Stats.DropsLow == 0 {
		t.Fatal("DT with pool never rejected")
	}
}

func TestFreeBufferUnlimitedPort(t *testing.T) {
	s := sim.NewScheduler()
	k := &sink{s: s}
	p := NewPort("unbuffered", s, PortConfig{Rate: 10 * Gbps, DynamicLowThreshold: true}, k, nil)
	// No cap and no pool: DT must not reject anything.
	for i := 0; i < 50; i++ {
		p.Enqueue(DataPacket(2, 0, 1, 0, MSS, 6))
	}
	if p.Stats.Drops != 0 {
		t.Fatalf("unbuffered port dropped %d", p.Stats.Drops)
	}
}

// Property: under any arrival mix, a DT port never lets the low class
// exceed the remaining free space at admission time, and accounting
// drains to zero.
func TestPropertyDTInvariant(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := sim.NewScheduler()
		k := &sink{s: s}
		cap := int64(rng.Intn(40_000) + 8_000)
		p := NewPort("dtp", s, PortConfig{
			Rate: 10 * Gbps, QueueCap: cap, DynamicLowThreshold: true,
		}, k, nil)
		violated := false
		for i := 0; i < int(n%80)+5; i++ {
			prio := int8(rng.Intn(NumPriorities))
			pay := int32(rng.Intn(MSS) + 1)
			p.Enqueue(DataPacket(uint32(i), 0, 1, 0, pay, prio))
			if p.QueuedLow() > cap-p.QueuedHigh() {
				violated = true
			}
			if p.Queued() > cap {
				violated = true
			}
			// Occasionally let the port drain a little.
			if rng.Intn(4) == 0 {
				s.RunUntil(s.Now() + 2*sim.Microsecond)
			}
		}
		s.Run()
		return !violated && p.Queued() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
