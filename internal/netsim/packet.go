// Package netsim models the datacenter fabric: packets, egress ports with
// eight strict-priority queues, shared switch buffers with RED/ECN
// marking, ECMP switches, and hosts with per-flow endpoint demux.
//
// The model matches what the PPT paper assumes of commodity switches:
// strict-priority (SP) dequeueing, a shared packet buffer, and per-class
// instantaneous ECN marking. Two optional behaviours cover the baselines:
// NDP-style payload trimming and Aeolus-style selective dropping of
// first-RTT unscheduled packets.
package netsim

import (
	"fmt"

	"ppt/internal/sim"
)

// HeaderBytes is the wire overhead per packet (Ethernet + IP + TCP-ish),
// and also the size of a trimmed NDP header or a bare control packet.
const HeaderBytes = 64

// MSS is the maximum payload carried by one data packet.
const MSS = 1448

// Kind classifies a packet for endpoint demux. Data-plane packets flow
// toward a flow's receiver; control packets (ACK/grant/pull) flow back
// toward the sender.
type Kind uint8

const (
	// Data carries payload bytes from sender to receiver.
	Data Kind = iota
	// Ack is a (possibly ECN-echoing) acknowledgment.
	Ack
	// Grant is a Homa/Aeolus receiver credit.
	Grant
	// Pull is an NDP receiver pull.
	Pull
	// Ctrl is any other transport-specific control packet.
	Ctrl
)

func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	case Grant:
		return "grant"
	case Pull:
		return "pull"
	default:
		return "ctrl"
	}
}

// ToReceiver reports whether packets of this kind are delivered to the
// flow's receiver endpoint (true) or its sender endpoint (false).
func (k Kind) ToReceiver() bool { return k == Data }

// INTHop is one in-band telemetry record appended by a port when INT is
// enabled; HPCC's window computation consumes these.
type INTHop struct {
	QLen    int64    // queue bytes at this hop on departure
	TxBytes int64    // cumulative bytes transmitted by the port
	TS      sim.Time // departure time
	Rate    Rate     // port line rate
}

// Packet is the single wire unit of the simulator. One struct covers all
// transports; transport-specific extras ride in Meta.
type Packet struct {
	FlowID uint32
	Src    int32 // source host id
	Dst    int32 // destination host id
	Kind   Kind

	// Seq is the byte offset of the first payload byte (Data), or the
	// transport-defined acknowledgment value (Ack).
	Seq        int64
	PayloadLen int32 // application bytes carried (0 for control)
	WireLen    int32 // bytes occupying buffers and wires

	Prio int8 // 0 (highest) .. 7 (lowest); SP dequeue order

	ECT bool // ECN-capable transport
	CE  bool // congestion experienced (set by a marking port)
	ECE bool // echo of CE on an ACK

	// LowLoop marks PPT/RC3 opportunistic traffic (data or its ACKs).
	LowLoop bool
	// Droppable marks Aeolus first-RTT unscheduled packets that the
	// switch may discard early.
	Droppable bool
	// Trimmed is set by an NDP-mode port that cut the payload.
	Trimmed bool
	// Retrans marks retransmissions (excluded from goodput accounting).
	Retrans bool

	Hops   int8     // incremented per switch traversal
	SentAt sim.Time // stamped by the sending host on first enqueue
	EchoTS sim.Time // on ACKs: the acknowledged data's SentAt (RTT probe)

	INT  []INTHop // telemetry, nil unless the sender enabled it
	Meta any      // transport-specific payload

	// inPool guards against double-free: set while the packet sits in a
	// PacketPool freelist.
	inPool bool
}

func (p *Packet) String() string {
	return fmt.Sprintf("%s flow=%d %d->%d seq=%d len=%d prio=%d", p.Kind, p.FlowID, p.Src, p.Dst, p.Seq, p.PayloadLen, p.Prio)
}

// DataPacket builds a payload-carrying packet with the wire length filled
// in. Payload must be in (0, MSS].
func DataPacket(flow uint32, src, dst int32, seq int64, payload int32, prio int8) *Packet {
	if payload <= 0 || payload > MSS {
		panic(fmt.Sprintf("netsim: bad payload %d", payload))
	}
	return &Packet{
		FlowID:     flow,
		Src:        src,
		Dst:        dst,
		Kind:       Data,
		Seq:        seq,
		PayloadLen: payload,
		WireLen:    payload + HeaderBytes,
		Prio:       prio,
	}
}

// CtrlPacket builds a header-only packet of the given kind.
func CtrlPacket(kind Kind, flow uint32, src, dst int32, prio int8) *Packet {
	return &Packet{
		FlowID:  flow,
		Src:     src,
		Dst:     dst,
		Kind:    kind,
		WireLen: HeaderBytes,
		Prio:    prio,
	}
}

// Rate is a link speed in bits per second.
type Rate int64

// Common line rates.
const (
	Mbps Rate = 1_000_000
	Gbps Rate = 1_000_000_000
)

func (r Rate) String() string {
	if r >= Gbps && r%Gbps == 0 {
		return fmt.Sprintf("%dGbps", r/Gbps)
	}
	return fmt.Sprintf("%dMbps", r/Mbps)
}

// TxTime is the serialization delay of n bytes at rate r.
func (r Rate) TxTime(n int) sim.Time {
	if r <= 0 {
		panic("netsim: non-positive rate")
	}
	// 8e12 ps per second of bit time; for every rate used in the paper
	// (10/25/40/100/400G) this division is exact per byte.
	return sim.Time(float64(n) * 8e12 / float64(r))
}

// BDPBytes is the bandwidth-delay product of rate r over rtt, in bytes.
func BDPBytes(r Rate, rtt sim.Time) int {
	return int(float64(r) / 8 * rtt.Seconds())
}
