package netsim

import (
	"testing"

	"ppt/internal/sim"
)

type epStub struct{ got int }

func (e *epStub) Handle(pkt *Packet) { e.got++ }

// TestUnbindReturnsEndpointAndAllowsRebind pins the flow-ID reuse
// contract: after a flow completes and unbinds, the same flow ID can be
// bound again (pooled Flow structs recycle IDs within a run).
func TestUnbindReturnsEndpointAndAllowsRebind(t *testing.T) {
	h := NewHost(0, sim.NewScheduler())
	ep1 := &epStub{}
	h.Bind(7, true, ep1)
	if got := h.Unbind(7, true); got != Endpoint(ep1) {
		t.Fatalf("Unbind returned %v, want the bound endpoint", got)
	}
	if got := h.Unbind(7, true); got != nil {
		t.Fatalf("second Unbind returned %v, want nil", got)
	}
	// Same flow ID, fresh endpoint: must not trip the duplicate-bind
	// panic, and delivery must reach the new endpoint.
	ep2 := &epStub{}
	h.Bind(7, true, ep2)
	if h.endpoints[endpointKey(7, true)] != Endpoint(ep2) {
		t.Fatal("rebind did not install the new endpoint")
	}
}

// TestEndpointMapShrinksAfterBurst: once a burst larger than
// endpointShrinkAt drains, the endpoint table is rebuilt so the run
// does not pin peak-size map buckets; small tables are kept as-is.
func TestEndpointMapShrinksAfterBurst(t *testing.T) {
	h := NewHost(0, sim.NewScheduler())
	n := endpointShrinkAt + 36
	for i := 0; i < n; i++ {
		h.Bind(uint32(i), true, &epStub{})
	}
	if h.peak != n {
		t.Fatalf("peak = %d, want %d", h.peak, n)
	}
	for i := 0; i < n; i++ {
		h.Unbind(uint32(i), true)
	}
	if len(h.endpoints) != 0 {
		t.Fatalf("%d endpoints left after unbinding all", len(h.endpoints))
	}
	// peak == 0 only on the rebuild path: the map was replaced, releasing
	// the burst-size bucket array.
	if h.peak != 0 {
		t.Fatalf("peak = %d after drain, want 0 (map rebuilt)", h.peak)
	}

	// Below the threshold the map is kept for reuse: peak survives.
	small := endpointShrinkAt / 2
	for i := 0; i < small; i++ {
		h.Bind(uint32(i), true, &epStub{})
	}
	for i := 0; i < small; i++ {
		h.Unbind(uint32(i), true)
	}
	if h.peak != small {
		t.Fatalf("peak = %d after small drain, want %d (map kept)", h.peak, small)
	}
}

// TestBindUnbindSteadyStateAllocFree is the heap assertion for the
// endpoint table: once a host has seen its working-set size, a
// bind/unbind cycle must not allocate (the map's buckets are reused, no
// rebuild below the shrink threshold).
func TestBindUnbindSteadyStateAllocFree(t *testing.T) {
	h := NewHost(0, sim.NewScheduler())
	eps := make([]*epStub, 16)
	for i := range eps {
		eps[i] = &epStub{}
	}
	// Warm the map to its working-set capacity.
	for i := range eps {
		h.Bind(uint32(i), true, eps[i])
	}
	for i := range eps {
		h.Unbind(uint32(i), true)
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := range eps {
			h.Bind(uint32(i), true, eps[i])
		}
		for i := range eps {
			h.Unbind(uint32(i), true)
		}
	})
	if avg != 0 {
		t.Fatalf("bind/unbind cycle allocates %.1f objects at steady state, want 0", avg)
	}
}
