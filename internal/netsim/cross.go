package netsim

import (
	"ppt/internal/sim"
)

// Cross-shard wires for the conservative time-windowed parallel engine
// (see DESIGN.md §7.3). A partitioned fabric gives every shard its own
// scheduler; a wire whose two ends live in different shards cannot use
// the normal Port wire/After propagation path, because the receiving
// device belongs to another shard's event loop. Instead the sending
// port deposits the packet into its shard's Outbox, stamped with the
// absolute delivery time now+Delay, and the run driver moves deposits
// into the destination shards' Inboxes at the next window barrier.
//
// Conservativeness: windows are at most min(Delay over cross-shard
// wires) wide, so a packet transmitted inside window k is always
// delivered at or after the k+1 barrier — the merge never has to insert
// an event into a shard's past.
//
// Determinism: delivery order within a shard is the canonical
// (At, Src, Seq) total order, where Src is the depositing shard and Seq
// a per-source deposit counter that never resets. The key is a total
// order (Seq never repeats within a Src), so the sorted merge result is
// independent of outbox iteration order and of how many worker threads
// executed the window.

// CrossEntry is one packet in flight across a shard boundary.
type CrossEntry struct {
	At   sim.Time // absolute delivery time at the far end of the wire
	Src  int32    // depositing shard
	Seq  uint64   // per-source deposit counter (merge tie-break)
	Dst  int32    // destination shard
	Pkt  *Packet
	Port *Port // the cross-shard port; its peer receives Pkt
}

// Outbox collects the packets one shard sent across its boundary during
// the current window. It is written only by that shard's event loop and
// drained only by the driver at the barrier, so it needs no locking.
type Outbox struct {
	shard   int32
	seq     uint64
	entries []CrossEntry
}

// NewOutbox returns the outbox for the given source shard.
func NewOutbox(shard int) *Outbox { return &Outbox{shard: int32(shard)} }

// deposit records a packet leaving the shard on port p, due at the
// far end at time at.
func (o *Outbox) deposit(at sim.Time, pkt *Packet, p *Port, dst int32) {
	o.entries = append(o.entries, CrossEntry{At: at, Src: o.shard, Seq: o.seq, Dst: dst, Pkt: pkt, Port: p})
	o.seq++
}

// Inbox holds the cross-shard packets due for delivery inside one
// shard, sorted by the canonical order. The driver appends and sorts at
// barriers (while the shard is quiescent); the shard's own event loop
// pops due entries via the armed timer.
type Inbox struct {
	sched   *sim.Scheduler
	pending []CrossEntry
	timer   sim.Timer
	armedAt sim.Time
	dirty   bool
	fireFn  func()
	// sorted is the length of the already-canonical prefix of pending
	// when a barrier merge begins (everything outside MergeWindows is
	// fully sorted, so this is just len(pending) at first append);
	// scratch is the reusable suffix buffer of the batched merge.
	sorted  int
	scratch []CrossEntry
}

// NewInbox returns an inbox delivering into the given shard scheduler.
func NewInbox(s *sim.Scheduler) *Inbox {
	in := &Inbox{sched: s}
	in.fireFn = in.fire
	return in
}

// fire delivers every pending entry due now (already in canonical
// order) and re-arms for the next one.
func (in *Inbox) fire() {
	now := in.sched.Now()
	n := 0
	for n < len(in.pending) && in.pending[n].At == now {
		e := &in.pending[n]
		e.Port.deliverCross(e.Pkt)
		n++
	}
	rem := copy(in.pending, in.pending[n:])
	for i := rem; i < len(in.pending); i++ {
		in.pending[i] = CrossEntry{}
	}
	in.pending = in.pending[:rem]
	if rem > 0 {
		in.armedAt = in.pending[0].At
		in.timer = in.sched.At(in.armedAt, in.fireFn)
	}
}

// MergeWindows moves every outbox deposit into the destination inboxes,
// restores each touched inbox's canonical (At, Src, Seq) order, and
// (re-)arms delivery timers. It must run at a window barrier, when
// every shard's event loop is quiescent; every merged entry's At lies
// at or beyond the destination's next horizon, so arming is never in a
// shard's past. Returns the number of entries moved.
//
// The drain is batched: each inbox's pending set is a sorted prefix
// (everything that survived earlier barriers — the invariant outside
// this function) plus this barrier's appended suffix. Only the suffix
// is sorted; when the suffix doesn't already follow the prefix (rare —
// deposits are usually later than everything still pending) the two
// runs are merged backward in place through a reused per-inbox scratch
// buffer. That replaces the old full re-sort per dirty inbox per
// barrier, which was the dominant barrier cost at high shard counts.
func MergeWindows(outboxes []*Outbox, inboxes []*Inbox) int {
	moved := 0
	for _, o := range outboxes {
		moved += len(o.entries)
		for i := range o.entries {
			e := &o.entries[i]
			in := inboxes[e.Dst]
			if !in.dirty {
				in.dirty = true
				in.sorted = len(in.pending)
			}
			in.pending = append(in.pending, *e)
			*e = CrossEntry{}
		}
		o.entries = o.entries[:0]
	}
	for _, in := range inboxes {
		if !in.dirty {
			continue
		}
		in.dirty = false
		p := in.pending
		suffix := p[in.sorted:]
		sortCross(suffix)
		if in.sorted > 0 && crossLess(&suffix[0], &p[in.sorted-1]) {
			in.mergeRuns()
		}
		head := p[0].At
		if !in.timer.Pending() || head < in.armedAt {
			in.timer.Stop()
			in.armedAt = head
			in.timer = in.sched.At(head, in.fireFn)
		}
	}
	return moved
}

// mergeRuns merges pending's sorted prefix [0:sorted) and sorted
// suffix [sorted:] in place, backward, staging the suffix in the
// reusable scratch buffer (suffix-sized — merges only pay for what the
// barrier appended, not for the whole pending set).
func (in *Inbox) mergeRuns() {
	p := in.pending
	in.scratch = append(in.scratch[:0], p[in.sorted:]...)
	i, j := in.sorted-1, len(in.scratch)-1
	for k := len(p) - 1; j >= 0; k-- {
		if i >= 0 && crossLess(&in.scratch[j], &p[i]) {
			p[k] = p[i]
			i--
		} else {
			p[k] = in.scratch[j]
			j--
		}
	}
}

// crossLess is the canonical merge order. (At, Src, Seq) is a strict
// total order — Seq never repeats within a Src — so every comparison
// sort produces the same permutation and stability is irrelevant.
func crossLess(a, b *CrossEntry) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Seq < b.Seq
}

// sortCross sorts entries into canonical order in place without
// allocating: sort.Slice builds a reflect-based swapper (two heap
// objects) per call, and at one call per dirty inbox per window
// barrier that dominated the windowed engine's allocation profile.
// Pending batches are small most windows — insertion sort handles
// those in near-linear time on the mostly-sorted appends — with an
// in-place heapsort above the cutoff to keep worst-case incast
// windows O(n log n).
func sortCross(p []CrossEntry) {
	if len(p) <= 24 {
		for i := 1; i < len(p); i++ {
			for j := i; j > 0 && crossLess(&p[j], &p[j-1]); j-- {
				p[j], p[j-1] = p[j-1], p[j]
			}
		}
		return
	}
	for i := len(p)/2 - 1; i >= 0; i-- {
		siftCross(p, i)
	}
	for end := len(p) - 1; end > 0; end-- {
		p[0], p[end] = p[end], p[0]
		siftCross(p[:end], 0)
	}
}

// siftCross restores the max-heap property below root i.
func siftCross(p []CrossEntry, i int) {
	for {
		l := 2*i + 1
		if l >= len(p) {
			return
		}
		big := l
		if r := l + 1; r < len(p) && crossLess(&p[l], &p[r]) {
			big = r
		}
		if !crossLess(&p[i], &p[big]) {
			return
		}
		p[i], p[big] = p[big], p[i]
		i = big
	}
}
