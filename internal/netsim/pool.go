package netsim

import "fmt"

// PacketPool is a run-scoped packet freelist. Every experiment cell owns
// exactly one pool shared by its hosts and ports, so the steady-state
// datapath recycles packets instead of allocating them: a pool.Get per
// wire transfer is balanced by a Free at one of the three packet sinks
// (congestion drop, deliver-and-consume, injected loss; a trim is an
// in-place transform, so the trimmed header is freed at delivery like
// any other packet).
//
// This is deliberately NOT a sync.Pool. A sync.Pool is shared between
// goroutines and drained by GC, which would make allocation reuse — and
// therefore any latent aliasing bug — depend on scheduling and memory
// pressure. A plain per-run freelist keeps the simulation a pure
// function of its inputs: runs are byte-identical at any worker-pool
// width, and the race detector sees each pool touched by one goroutine
// only.
//
// All methods are nil-receiver safe and degrade to plain allocation, so
// unit tests that wire up hosts and ports by hand need no pool.
type PacketPool struct {
	free    []*Packet
	intFree [][]INTHop

	// Allocs counts packets that had to be heap-allocated; Reuses counts
	// packets served from the freelist; Frees counts packets returned.
	// In steady state Reuses dominates and Allocs stays at the high-water
	// mark of concurrently-live packets.
	Allocs int64
	Reuses int64
	Frees  int64
}

// NewPacketPool returns an empty pool.
func NewPacketPool() *PacketPool { return &PacketPool{} }

// Get returns a zeroed packet, recycling a freed one when possible.
func (pp *PacketPool) Get() *Packet {
	if pp == nil {
		return &Packet{}
	}
	if n := len(pp.free); n > 0 {
		pkt := pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		pkt.inPool = false
		pp.Reuses++
		return pkt
	}
	pp.Allocs++
	return &Packet{}
}

// Free returns pkt to the pool. The packet must not be referenced again:
// its fields are zeroed (releasing Meta and INT for reuse or collection)
// and the struct will be handed out by a future Get. Freeing the same
// packet twice panics — it means two owners think they hold it, which
// would silently corrupt a later, unrelated packet. Freeing nil is a
// no-op.
func (pp *PacketPool) Free(pkt *Packet) {
	if pp == nil || pkt == nil {
		return
	}
	if pkt.inPool {
		panic("netsim: packet double-free: " + pkt.String())
	}
	if pkt.INT != nil {
		pp.intFree = append(pp.intFree, pkt.INT[:0])
	}
	*pkt = Packet{inPool: true}
	pp.free = append(pp.free, pkt)
	pp.Frees++
}

// GetINT returns an empty telemetry slice with some capacity, recycling
// a previously returned backing array when possible. Attaching it to a
// packet (pkt.INT) marks the packet as INT-capable: ports with INT
// enabled append a hop record per traversal.
func (pp *PacketPool) GetINT() []INTHop {
	if pp == nil {
		return make([]INTHop, 0, 8)
	}
	if n := len(pp.intFree); n > 0 {
		s := pp.intFree[n-1]
		pp.intFree[n-1] = nil
		pp.intFree = pp.intFree[:n-1]
		return s
	}
	return make([]INTHop, 0, 8)
}

// PutINT recycles a telemetry slice whose records have been consumed.
// The caller must not use s afterwards.
func (pp *PacketPool) PutINT(s []INTHop) {
	if pp == nil || cap(s) == 0 {
		return
	}
	pp.intFree = append(pp.intFree, s[:0])
}

// Data builds a pooled payload-carrying packet with the wire length
// filled in. Payload must be in (0, MSS].
func (pp *PacketPool) Data(flow uint32, src, dst int32, seq int64, payload int32, prio int8) *Packet {
	if payload <= 0 || payload > MSS {
		panic(fmt.Sprintf("netsim: bad payload %d", payload))
	}
	pkt := pp.Get()
	pkt.FlowID = flow
	pkt.Src = src
	pkt.Dst = dst
	pkt.Kind = Data
	pkt.Seq = seq
	pkt.PayloadLen = payload
	pkt.WireLen = payload + HeaderBytes
	pkt.Prio = prio
	return pkt
}

// Ctrl builds a pooled header-only packet of the given kind.
func (pp *PacketPool) Ctrl(kind Kind, flow uint32, src, dst int32, prio int8) *Packet {
	pkt := pp.Get()
	pkt.FlowID = flow
	pkt.Src = src
	pkt.Dst = dst
	pkt.Kind = kind
	pkt.WireLen = HeaderBytes
	pkt.Prio = prio
	return pkt
}
