package exp

import (
	"strings"
	"testing"

	"ppt/internal/cache"
	"ppt/internal/workload"
)

func testExpCache(t *testing.T) *cache.Cache {
	t.Helper()
	c, err := cache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCacheKeyExcludesEngineKnobs pins the key construction contract:
// the engine knobs the golden matrix proves outcome-invisible (sched,
// shards, stream, spill chunk, fast path) MUST NOT reach the cell
// descriptor, while every outcome-relevant input MUST.
func TestCacheKeyExcludesEngineKnobs(t *testing.T) {
	base := runSpec{
		fab: simFabric(3, 2, 8), sc: baseSchemes()["ppt"],
		dist: workload.WebSearch, pattern: workload.AllToAll{N: 24},
		load: 0.5, flows: 100, seed: 3,
	}
	baseDesc := specDesc(base)

	// Outcome-invisible: descriptor unchanged.
	invisible := map[string]func(*runSpec){
		"sched":      func(s *runSpec) { s.sched = 1 },
		"shards":     func(s *runSpec) { s.shards = 4 },
		"stream":     func(s *runSpec) { s.stream = true },
		"spillChunk": func(s *runSpec) { s.spillChunk = 1 << 14 },
		"noFastPath": func(s *runSpec) { s.noFastPath = true },
	}
	for name, mutate := range invisible {
		spec := base
		mutate(&spec)
		if got := specDesc(spec); got != baseDesc {
			t.Errorf("engine knob %q leaked into the cell descriptor:\n%s", name, got)
		}
	}

	// Outcome-relevant: descriptor must change.
	relevant := map[string]func(*runSpec){
		"seed":    func(s *runSpec) { s.seed = 4 },
		"flows":   func(s *runSpec) { s.flows = 101 },
		"load":    func(s *runSpec) { s.load = 0.6 },
		"scheme":  func(s *runSpec) { s.sc = baseSchemes()["dctcp"] },
		"dist":    func(s *runSpec) { s.dist = workload.DataMining },
		"pattern": func(s *runSpec) { s.pattern = workload.Incast{N: 3, Target: 0} },
		"sendBuf": func(s *runSpec) { s.sendBuf = 128 << 10 },
		"fabric":  func(s *runSpec) { s.fab = fastFabric(3, 2, 8) },
		"shape":   func(s *runSpec) { s.fab = simFabric(4, 2, 6) }, // same hosts, different wiring
	}
	for name, mutate := range relevant {
		spec := base
		mutate(&spec)
		if got := specDesc(spec); got == baseDesc {
			t.Errorf("outcome-relevant input %q does not reach the cell descriptor", name)
		}
	}

	// A scheme whose tweak changes the switch config must differ from
	// the same name without it (fig24-style parameterized schemes).
	tweaked := base
	tweaked.sc = scheme{name: "ppt", tweak: tweakINT, make: base.sc.make}
	if specDesc(tweaked) == baseDesc {
		t.Error("scheme tweak (post-tweak switch config) does not reach the descriptor")
	}
}

// TestCacheCrossEngineHit is the acceptance criterion: a cell computed
// at -sched=heap -shards=1 must HIT when replayed at -sched=wheel
// -shards=4 -stream, with byte-identical rendered output. This is the
// cache banking the golden matrix's engine-equivalence guarantee.
func TestCacheCrossEngineHit(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fig12 twice")
	}
	c := testExpCache(t)
	run := func(sched string, shards, parallel int, stream bool) (*Result, string) {
		res, err := RunByID("fig12", Options{
			Flows: 24, Seed: 1, Cache: c,
			Sched: sched, Shards: shards, Parallel: parallel, Stream: stream,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, res.Render() + "\n--- csv ---\n" + res.CSV()
	}
	cold, coldOut := run("heap", 1, 1, false)
	if cold.Cache == nil || cold.Cache.Misses == 0 || cold.Cache.Hits != 0 {
		t.Fatalf("cold run cache stats: %+v", cold.Cache)
	}
	warm, warmOut := run("wheel", 4, 4, true)
	if warm.Cache == nil {
		t.Fatal("warm run reported no cache stats")
	}
	if warm.Cache.Misses != 0 || warm.Cache.Hits+warm.Cache.Shared != cold.Cache.Misses {
		t.Fatalf("cross-engine replay was not a full hit: cold %+v, warm %+v", cold.Cache, warm.Cache)
	}
	if coldOut != warmOut {
		t.Fatalf("cached replay differs from fresh run:\n--- cold ---\n%s\n--- warm ---\n%s", coldOut, warmOut)
	}
	if warm.Events != 0 {
		t.Fatalf("warm run executed %d scheduler events; a full-hit run must simulate nothing", warm.Events)
	}
}

// TestCacheReplaysExtras covers the cells whose rows carry extras
// computed from the environment: on a hit there is no environment, so
// the extras must replay from the stored value, byte-identically.
func TestCacheReplaysExtras(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three experiments twice")
	}
	// fig15: ablation extras (low-eff/low-drops/...); fig3: oracle cells
	// with switch-drops; scale1M: spill extras (resident_peak/spilled).
	for _, tc := range []struct {
		id    string
		flows int
	}{
		{"fig15", 20},
		{"fig3", 12},
		{"scale1M", 2_000},
	} {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			t.Parallel()
			c := testExpCache(t)
			run := func() (*Result, string) {
				res, err := RunByID(tc.id, Options{Flows: tc.flows, Seed: 1, Cache: c})
				if err != nil {
					t.Fatal(err)
				}
				return res, res.Render() + "\n--- csv ---\n" + res.CSV()
			}
			cold, coldOut := run()
			warm, warmOut := run()
			if warm.Cache.Misses != 0 || warm.Cache.Hits+warm.Cache.Shared == 0 {
				t.Fatalf("warm run missed: cold %+v, warm %+v", cold.Cache, warm.Cache)
			}
			if coldOut != warmOut {
				t.Fatalf("replayed extras differ:\n--- cold ---\n%s\n--- warm ---\n%s", coldOut, warmOut)
			}
			for _, row := range warm.Rows {
				if len(row.Extra) == 0 {
					t.Fatalf("row %q lost its extras on replay", row.Label)
				}
			}
		})
	}
}

// TestCacheVerifyMatrix runs a warm cache in verify mode across the
// engine matrix: every hit recomputes and byte-compares against the
// stored entry. Any divergence — cross-scheduler, cross-shard-count,
// cross-worker-count — fails here before it can poison a sweep.
func TestCacheVerifyMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fig12 across the engine matrix")
	}
	c := testExpCache(t)
	o := Options{Flows: 24, Seed: 1, Cache: c}
	if _, err := RunByID("fig12", o); err != nil {
		t.Fatal(err)
	}
	for _, combo := range []struct {
		sched            string
		shards, parallel int
	}{
		{"heap", 1, 1},
		{"wheel", 4, 1},
		{"heap", 4, 4},
		{"wheel", 2, 4},
	} {
		v := o
		v.Sched, v.Shards, v.Parallel = combo.sched, combo.shards, combo.parallel
		v.CacheVerify = true
		res, err := RunByID("fig12", v)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cache.Mismatches != 0 {
			t.Fatalf("verify mismatch at sched=%s shards=%d parallel=%d: %+v\nnotes: %v",
				combo.sched, combo.shards, combo.parallel, res.Cache, res.Notes)
		}
		if res.Cache.Verified == 0 {
			t.Fatalf("verify mode did not verify anything at %+v: %+v", combo, res.Cache)
		}
		for _, n := range res.Notes {
			if strings.Contains(n, "cell failed") {
				t.Fatalf("verify run failed a cell: %v", res.Notes)
			}
		}
	}
}

// TestCacheVerifyWithoutCacheRejected pins the API-level validation
// mirrored by the pptsim flag check.
func TestCacheVerifyWithoutCacheRejected(t *testing.T) {
	if _, err := RunByID("table2", Options{CacheVerify: true}); err == nil {
		t.Fatal("CacheVerify without Cache was accepted")
	}
}
