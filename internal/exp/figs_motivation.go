package exp

import (
	"fmt"

	"ppt/internal/bufaware"
	"ppt/internal/sim"
	"ppt/internal/stats"
	"ppt/internal/topo"
	"ppt/internal/transport"
	"ppt/internal/transport/ppt"
	"ppt/internal/workload"
)

// makeFlows generates a workload for a fabric (shared by the oracle's
// two passes, which must see identical flows).
func makeFlows(cfg topo.Config, dist *workload.Dist, pattern workload.Pattern, load float64, n int, seed int64) []transport.SimpleFlow {
	wf := workload.Generate(workload.GenConfig{
		Dist: dist, Pattern: pattern, Load: load,
		HostRate: cfg.HostRate, NumFlows: n, Seed: seed,
	})
	flows := make([]transport.SimpleFlow, len(wf))
	for i, f := range wf {
		flows[i] = transport.SimpleFlow{ID: f.ID, Src: f.Src, Dst: f.Dst, Size: f.Size, Arrive: f.Arrive}
	}
	return flows
}

// runOracle runs the two-pass hypothetical DCTCP (§2.3) and returns the
// second-pass summary. Both passes run on o's scheduler implementation
// and count toward the experiment's event total.
func runOracle(o Options, fab fabric, flows []transport.SimpleFlow, frac float64) (stats.Summary, *transport.Env) {
	cfg := fab.cfg
	cfg.Sched = o.schedImpl()
	rec := ppt.NewMWRecorder()
	env1 := transport.NewEnv(fab.build(cfg))
	env1.RTOMin = fab.rtoMin
	transport.Run(env1, rec, flows, transport.RunConfig{})
	env2 := transport.NewEnv(fab.build(cfg))
	env2.RTOMin = fab.rtoMin
	sum := transport.Run(env2, ppt.Oracle{MW: rec.MW(), FillFraction: frac}, flows, transport.RunConfig{})
	o.addEvents(env1.Sched().Executed + env2.Sched().Executed)
	return sum, env2
}

// utilizationRun drives one scheme (named in baseSchemes, or the
// two-pass oracle when oracleFrac > 0) on the Fig 1/20 dumbbell and
// samples the bottleneck downlink every 100µs. The whole cell —
// summary and utilization extras — runs through the result cache.
func utilizationRun(o Options, load float64, schemeName string, oracleFrac float64) (Row, error) {
	fab := dumbbellFabric(2, 120_000)
	label := "hypothetical"
	var sc scheme
	if oracleFrac <= 0 {
		sc = baseSchemes()[schemeName]
		label = sc.make(nil).Name()
	}
	sum, extra, err := o.cachedCell(
		utilDesc(fab, load, o.Flows, o.Seed, schemeName, oracleFrac),
		func() (stats.Summary, map[string]float64) {
			cfg := fab.cfg
			cfg.Sched = o.schedImpl()
			flows := makeFlows(cfg, workload.WebSearch, workload.Incast{N: 3, Target: 0}, load, o.Flows, o.Seed)
			net := fab.build(cfg)
			env := transport.NewEnv(net)
			env.RTOMin = fab.rtoMin
			us := stats.SampleUtilization(env.Sched(), net.Switches[0].Port(0), 100*sim.Microsecond)
			var sum stats.Summary
			if oracleFrac > 0 {
				// Oracle runs its own two passes on fresh fabrics; the sampler
				// above is replaced by one on the second-pass fabric.
				rec := ppt.NewMWRecorder()
				transport.Run(env, rec, flows, transport.RunConfig{})
				net2 := fab.build(cfg)
				env2 := transport.NewEnv(net2)
				env2.RTOMin = fab.rtoMin
				us = stats.SampleUtilization(env2.Sched(), net2.Switches[0].Port(0), 100*sim.Microsecond)
				sum = transport.Run(env2, ppt.Oracle{MW: rec.MW(), FillFraction: oracleFrac}, flows, transport.RunConfig{})
				o.addEvents(env2.Sched().Executed)
			} else {
				sum = transport.Run(env, sc.make(env), flows, transport.RunConfig{})
			}
			o.addEvents(env.Sched().Executed)
			us.Stop()
			// Steady state: skip the first 10% of samples.
			n := len(us.Samples)
			var from sim.Time
			if n > 0 {
				from = us.Samples[n/10].At
			}
			to := sim.MaxTime
			return sum, map[string]float64{
				"util-mean": us.Mean(from, to),
				"util-min":  us.Min(from, to),
			}
		})
	return Row{Label: label, Sum: sum, Extra: extra}, err
}

func init() {
	register(&Experiment{
		ID:       "fig1",
		Title:    "DCTCP link utilization fluctuates under Web Search at load 0.5 (ideal 0.5)",
		DefFlows: 400,
		Run: func(o Options) *Result {
			row, err := utilizationRun(o, 0.5, "dctcp", 0)
			if err != nil {
				o.errs.add(fmt.Sprintf("fig1 dctcp: %v", err))
			}
			return &Result{ID: "fig1", Title: "DCTCP link utilization (dumbbell 2->1, 40G)",
				Rows:  []Row{row},
				Notes: []string{"paper: DCTCP fluctuates between ~25% and ~50%; util-min well below 0.5 reproduces the drop"}}
		},
	})

	register(&Experiment{
		ID:       "fig2",
		Title:    "Hypothetical DCTCP (fill to MW) vs DCTCP/Homa/NDP, Web Search load 0.5",
		DefFlows: 400,
		Run: func(o Options) *Result {
			fab := simFabric(3, 2, 8)
			pattern := workload.AllToAll{N: fab.hosts}
			p := newPool(o)
			baseRows := compareCells(p, o, fab, workload.WebSearch, pattern, 0.5, []string{"ndp", "homa", "dctcp"})
			var oracleSum stats.Summary
			wantOracle := o.wants("hypothetical")
			if wantOracle {
				p.submit("hypothetical", func() error {
					var err error
					oracleSum, _, err = o.cachedCell(
						oracleDesc(fab, workload.WebSearch, pattern, 0.5, o.Flows, o.Seed, 1.0),
						func() (stats.Summary, map[string]float64) {
							flows := makeFlows(fab.cfg, workload.WebSearch, pattern, 0.5, o.Flows, o.Seed)
							sum, _ := runOracle(o, fab, flows, 1.0)
							return sum, nil
						})
					return err
				})
			}
			p.run()
			rows := baseRows()
			if wantOracle {
				rows = append(rows, Row{Label: "hypothetical", Sum: oracleSum})
			}
			return &Result{ID: "fig2", Title: "overall avg FCT, hypothetical DCTCP vs baselines",
				Rows:  rows,
				Notes: []string{"paper: hypothetical DCTCP beats Homa by ~33% and NDP by ~40% on overall avg FCT"}}
		},
	})

	register(&Experiment{
		ID:       "fig3",
		Title:    "Filling the gap to f x MW, Data Mining load 0.6 (f = 0.5..1.5)",
		DefFlows: 300,
		Run: func(o Options) *Result {
			fab := simFabric(3, 2, 8)
			pattern := workload.AllToAll{N: fab.hosts}
			// flows is shared read-only by every cell: each oracle pass
			// copies what it needs into its own fabric.
			flows := makeFlows(fab.cfg, workload.DataMining, pattern, 0.6, o.Flows, o.Seed)
			fracs := []float64{0.5, 0.75, 1.0, 1.25, 1.5}
			p := newPool(o)
			rows := make([]Row, len(fracs))
			for i, frac := range fracs {
				i, frac := i, frac
				label := fmt.Sprintf("fill-%.2fxMW", frac)
				rows[i] = Row{Label: label}
				p.submit(label, func() error {
					sum, extra, err := o.cachedCell(
						oracleDesc(fab, workload.DataMining, pattern, 0.6, o.Flows, o.Seed, frac)+"extras=switch-drops\n",
						func() (stats.Summary, map[string]float64) {
							sum, env := runOracle(o, fab, flows, frac)
							var drops int64
							for _, sp := range env.Net.SwitchPorts() {
								drops += sp.Stats.Drops
							}
							return sum, map[string]float64{"switch-drops": float64(drops)}
						})
					if err != nil {
						return err
					}
					rows[i] = Row{Label: label, Sum: sum, Extra: extra}
					return nil
				})
			}
			p.run()
			return &Result{ID: "fig3", Title: "FCT vs fill fraction of MW",
				Rows:  rows,
				Notes: []string{"paper: under-filling (0.5xMW) wastes capacity; over-filling (1.5xMW) bursts and loses packets; 1.0xMW is the sweet spot"}}
		},
	})

	register(&Experiment{
		ID:       "table1",
		Title:    "Qualitative comparison of transports (Table 1)",
		DefFlows: 1,
		Run: func(o Options) *Result {
			mk := func(name, pattern, sched, commodity, tcpip, apps string) Row {
				return Row{Label: name, Extra: nil, Sum: stats.Summary{}}
			}
			_ = mk
			rows := []Row{}
			for _, line := range []string{
				"dctcp      spare-bw=passive     sched=no   commodity=yes tcpip=yes app-ok=yes",
				"tcp-10     spare-bw=passive     sched=no   commodity=yes tcpip=yes app-ok=yes",
				"halfback   spare-bw=passive     sched=no   commodity=yes tcpip=yes app-ok=yes",
				"rc3        spare-bw=aggressive  sched=no   commodity=yes tcpip=yes app-ok=yes",
				"pias       spare-bw=passive     sched=yes  commodity=yes tcpip=yes app-ok=yes",
				"hpcc       spare-bw=graceful*   sched=no   commodity=no  tcpip=no  app-ok=yes",
				"homa       spare-bw=aggressive  sched=size commodity=yes tcpip=no  app-ok=no",
				"aeolus     spare-bw=aggressive  sched=size commodity=yes tcpip=no  app-ok=no",
				"expresspass spare-bw=passive    sched=no   commodity=yes tcpip=no  app-ok=no",
				"ndp        spare-bw=passive     sched=no   commodity=no  tcpip=no  app-ok=no",
				"ppt        spare-bw=graceful    sched=yes  commodity=yes tcpip=yes app-ok=yes",
			} {
				rows = append(rows, Row{Label: line})
			}
			return &Result{ID: "table1", Title: "Table 1 (qualitative; * = INT required)", Rows: rows}
		},
	})

	register(&Experiment{
		ID:       "table2",
		Title:    "Flow size distributions of realistic workloads (Table 2)",
		DefFlows: 1,
		Run: func(o Options) *Result {
			var rows []Row
			for _, d := range []*workload.Dist{workload.WebSearch, workload.DataMining, workload.MemcachedW1} {
				small := d.FractionBelow(stats.SmallFlowMax)
				rows = append(rows, Row{
					Label: d.Name,
					Extra: map[string]float64{
						"short(0-100KB)": small,
						"large(>100KB)":  1 - small,
						"avg-size-MB":    d.Mean() / 1e6,
					},
				})
			}
			return &Result{ID: "table2", Title: "workload shape vs Table 2 (websearch 62%/1.6MB, datamining 83%/7.41MB)",
				Rows: rows}
		},
	})

	register(&Experiment{
		ID:       "table3",
		Title:    "Testbed parameter settings (Table 3)",
		DefFlows: 1,
		Run: func(o Options) *Result {
			fab := testbedFabric()
			net := fab.build(fab.cfg)
			return &Result{ID: "table3", Title: "testbed profile", Rows: []Row{
				{Label: "switch-buffer-MB", Extra: map[string]float64{"value": float64(fab.cfg.SharedBuffer) / (1 << 20)}},
				{Label: "ports", Extra: map[string]float64{"value": float64(len(net.Switches[0].Ports()))}},
				{Label: "base-rtt-us", Extra: map[string]float64{"value": net.BaseRTT.Micros()}},
				{Label: "rto-min-ms", Extra: map[string]float64{"value": fab.rtoMin.Millis()}},
				{Label: "hcp-ecn-KB", Extra: map[string]float64{"value": float64(fab.cfg.ECNHighK) / 1000}},
				{Label: "lcp-ecn-KB", Extra: map[string]float64{"value": float64(fab.cfg.ECNLowK) / 1000}},
				{Label: "ident-threshold-KB", Extra: map[string]float64{"value": 100}},
				{Label: "bdp-KB", Extra: map[string]float64{"value": float64(net.BDP()) / 1000}},
			}}
		},
	})

	register(&Experiment{
		ID:       "ident",
		Title:    "Buffer-aware flow identification accuracy (§4.1)",
		DefFlows: 50_000,
		Run: func(o Options) *Result {
			mem := bufaware.Experiment(workload.MemcachedETC, bufaware.Memcached, 1_000, 16_384, o.Flows, o.Seed)
			web := bufaware.Experiment(workload.YoutubeHTTP, bufaware.WebServer, 10_000, 16_384, o.Flows, o.Seed)
			return &Result{ID: "ident", Title: "first-syscall identification vs §4.1 (86.7% / 84.3%)", Rows: []Row{
				{Label: "memcached@1KB", Extra: map[string]float64{
					"recall": mem.Recall, "precision": mem.Precision, "large-flows": float64(mem.ActualLarge)}},
				{Label: "webserver@10KB", Extra: map[string]float64{
					"recall": web.Recall, "precision": web.Precision, "large-flows": float64(web.ActualLarge)}},
			}}
		},
	})
}
