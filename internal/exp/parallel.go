package exp

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"ppt/internal/stats"
	"ppt/internal/transport"
)

// This file is the parallel experiment runner. Every simulation cell —
// one (scheme × repeat × load point) execution — is a pure function of
// its runSpec: it builds a private fabric, scheduler, and Env, so cells
// are independent and can run on separate goroutines. Experiments submit
// their cells to a pool, run it, and then reduce the index-addressed
// outputs in program order, which makes the assembled rows (and hence
// Render()/CSV() output) byte-identical at any worker count.

// errSink collects cell failures across one experiment run; Options
// carries it (by pointer) into every nested compare/sweep so RunByID can
// surface failures as result notes. A nil sink logs to stderr instead.
type errSink struct {
	mu   sync.Mutex
	msgs []string
}

func (s *errSink) add(msg string) {
	if s == nil {
		fmt.Fprintln(os.Stderr, "exp: "+msg)
		return
	}
	s.mu.Lock()
	s.msgs = append(s.msgs, msg)
	s.mu.Unlock()
}

func (s *errSink) drain() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := s.msgs
	s.msgs = nil
	s.mu.Unlock()
	return out
}

// poolJob is one submitted cell. A non-nil return from fn fails the
// cell (reported through the error sink in submission order).
type poolJob struct {
	label string
	fn    func() error
	err   error
}

// cellOut is the landing slot for one execute() cell: the summary plus
// any extras the cell's extractor computed. Deliberately no *Env — a
// cache hit replays a cell without ever building an environment, so
// everything a caller needs must land here (via the extras extractor)
// during the compute itself.
type cellOut struct {
	sum   stats.Summary
	extra map[string]float64
	job   *poolJob
}

func (c *cellOut) failed() bool { return c.job.err != nil }

// pool fans submitted cells across worker goroutines. Submission order
// is preserved: each job writes only its own slot, and failures are
// reported in submission order after the run, so output never depends on
// goroutine scheduling.
type pool struct {
	opts Options
	jobs []*poolJob
}

func newPool(o Options) *pool { return &pool{opts: o} }

// submit registers fn as one cell. fn runs exactly once during run(),
// possibly on another goroutine; a panic inside it — or a returned
// error — fails the cell (the job's err) instead of the process.
func (p *pool) submit(label string, fn func() error) *poolJob {
	j := &poolJob{label: label, fn: fn}
	p.jobs = append(p.jobs, j)
	return j
}

// submitSpec registers one execute() cell and returns its output slot,
// valid after run().
func (p *pool) submitSpec(label string, spec runSpec) *cellOut {
	return p.submitSpecExtra(label, spec, "", nil)
}

// submitSpecExtra is submitSpec for cells that report extra metrics:
// extras (when non-nil) runs against the cell's environment right
// after execute, inside the cached computation — so the extras are
// part of the stored value and replay on a hit, when no environment
// exists. extrasKind tags the cache descriptor so a cell with extras
// never shares an entry with a summary-only cell over the same spec
// (same simulation, different stored value). Event/sharding accounting
// stays inside the computation too: a hit deliberately contributes
// zero events (nothing was simulated).
func (p *pool) submitSpecExtra(label string, spec runSpec, extrasKind string, extras func(*transport.Env) map[string]float64) *cellOut {
	out := &cellOut{}
	spec.sched = p.opts.schedImpl()
	spec.shards = p.opts.Shards
	spec.noFastPath = p.opts.NoFastPath
	// Force-on only: experiments that always stream (the scale family)
	// set spec.stream themselves; Options.Stream additionally streams
	// every other cell.
	if p.opts.Stream {
		spec.stream = true
	}
	opts := p.opts
	desc := specDesc(spec)
	if extrasKind != "" {
		desc += "extras=" + extrasKind + "\n"
	}
	out.job = p.submit(label, func() error {
		sum, extra, err := opts.cachedCell(desc, func() (stats.Summary, map[string]float64) {
			sum, env := execute(spec)
			if opts.events != nil {
				atomic.AddUint64(opts.events, env.Net.Executed())
			}
			opts.sharding.add(env.ShardStats)
			if extras == nil {
				return sum, nil
			}
			return sum, extras(env)
		})
		if err != nil {
			return err
		}
		out.sum, out.extra = sum, extra
		return nil
	})
	if p.opts.StrictShards && p.opts.Shards > 1 && !spec.fab.partitionable {
		// Fail the cell up front with an error naming the topology:
		// a single-switch fabric would otherwise silently ignore the
		// shard request and run monolithic.
		out.job.err = fmt.Errorf(
			"topology %q does not partition: -shards %d needs a multi-switch fabric (topo.LeafSpine partitions; topo.Star and topo.Dumbbell are single-switch)",
			spec.fab.name, p.opts.Shards)
	}
	return out
}

// workers resolves the concurrency: Options.Parallel, defaulting to
// GOMAXPROCS, never more than there are jobs.
func (p *pool) workers() int {
	w := p.opts.Parallel
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(p.jobs) {
		w = len(p.jobs)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// run executes every submitted job and blocks until all are done.
func (p *pool) run() {
	total := len(p.jobs)
	if total == 0 {
		return
	}
	var mu sync.Mutex
	var done int
	finished := func() {
		if p.opts.OnProgress == nil {
			return
		}
		mu.Lock()
		done++
		p.opts.OnProgress(done, total)
		mu.Unlock()
	}
	if w := p.workers(); w == 1 {
		for _, j := range p.jobs {
			j.runOne()
			finished()
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(w)
		for i := 0; i < w; i++ {
			go func() {
				defer wg.Done()
				for k := range idx {
					p.jobs[k].runOne()
					finished()
				}
			}()
		}
		for k := range p.jobs {
			idx <- k
		}
		close(idx)
		wg.Wait()
	}
	// Report failures in submission order, not completion order.
	for _, j := range p.jobs {
		if j.err != nil {
			p.opts.errs.add(fmt.Sprintf("%s: %v", j.label, j.err))
		}
	}
}

func (j *poolJob) runOne() {
	if j.err != nil {
		// Pre-failed at submission (e.g. a strict-shards topology
		// mismatch): keep the error, skip the work.
		return
	}
	defer func() {
		if r := recover(); r != nil {
			j.err = fmt.Errorf("panic: %v", r)
		}
	}()
	j.err = j.fn()
}
