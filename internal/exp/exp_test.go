package exp

import (
	"strings"
	"testing"
)

// TestEveryExperimentRunsAtSmokeScale is the registry's integration
// test: every registered table/figure must run to completion at a tiny
// workload size and produce at least one row.
func TestEveryExperimentRunsAtSmokeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	for _, e := range List() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			flows := 25
			if e.ID == "ident" {
				flows = 5000
			}
			res := e.Run(Options{Flows: flows, Seed: 2}.withDefaults(e.DefFlows))
			if res == nil || len(res.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			if res.ID != e.ID {
				t.Fatalf("result id %q != %q", res.ID, e.ID)
			}
			out := res.Render()
			if !strings.Contains(out, e.ID) {
				t.Fatalf("render missing id:\n%s", out)
			}
		})
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
	if _, err := RunByID("nope", Options{}); err == nil {
		t.Fatal("RunByID accepted unknown id")
	}
}

func TestListSortedNaturally(t *testing.T) {
	ids := List()
	for i, e := range ids {
		if i == 0 {
			continue
		}
		if !natLess(ids[i-1].ID, e.ID) && ids[i-1].ID != e.ID {
			t.Fatalf("order broken: %s before %s", ids[i-1].ID, e.ID)
		}
	}
	// fig2 must come before fig10 (natural, not lexicographic).
	var i2, i10 int
	for i, e := range ids {
		if e.ID == "fig2" {
			i2 = i
		}
		if e.ID == "fig10" {
			i10 = i
		}
	}
	if i2 > i10 {
		t.Fatal("fig2 sorted after fig10")
	}
}

func TestOptionsSchemeFilter(t *testing.T) {
	o := Options{Schemes: []string{"ppt", "dctcp"}}
	if !o.wants("ppt") || !o.wants("dctcp") {
		t.Fatal("filter rejects listed schemes")
	}
	if o.wants("homa") {
		t.Fatal("filter accepts unlisted scheme")
	}
	var all Options
	if !all.wants("anything") {
		t.Fatal("empty filter must accept everything")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults(123)
	if o.Flows != 123 || o.Seed != 1 {
		t.Fatalf("defaults = %+v", o)
	}
	o = Options{Flows: 7, Seed: 9}.withDefaults(123)
	if o.Flows != 7 || o.Seed != 9 {
		t.Fatalf("overrides lost: %+v", o)
	}
}

func TestCompareRespectsFilter(t *testing.T) {
	fab := testbedFabric()
	rows := compare(Options{Flows: 10, Seed: 1, Schemes: []string{"dctcp"}},
		fab, nil, nil, 0, nil)
	_ = rows // compare with nil dist/pattern and no names returns empty
	if len(rows) != 0 {
		t.Fatal("expected no rows")
	}
}

func TestNatLess(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"fig2", "fig10", true},
		{"fig10", "fig2", false},
		{"fig1", "table1", true},
		{"ident", "table1", true},
	}
	for _, c := range cases {
		if got := natLess(c.a, c.b); got != c.want {
			t.Errorf("natLess(%q,%q) = %v", c.a, c.b, got)
		}
	}
}
