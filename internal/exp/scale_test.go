package exp

import "testing"

// TestScaleFamilyParallelIdentical is the test-sized twin of the
// `scale` bench family (fig12 restricted to the pooled ppt/dctcp cells
// at high flow count, see cmd/pptsim): it drives the pooled
// flow/endpoint lifecycle through thousands of Get/Recycle cycles per
// cell and requires a 4-wide parallel run to stay byte-identical to the
// serial one. Run under -race (CI does) this is also the proof that
// per-Env pools never leak across worker goroutines.
func TestScaleFamilyParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a high-flow-count fig12 twice")
	}
	run := func(parallel int) (string, string) {
		res, err := RunByID("fig12", Options{
			Flows:    500,
			Seed:     1,
			Parallel: parallel,
			Schemes:  []string{"ppt", "dctcp"},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Render(), res.CSV()
	}
	serialTable, serialCSV := run(1)
	parTable, parCSV := run(4)
	if serialTable != parTable {
		t.Fatalf("Render() differs between serial and parallel scale runs:\n--- serial ---\n%s\n--- parallel ---\n%s", serialTable, parTable)
	}
	if serialCSV != parCSV {
		t.Fatalf("CSV() differs between serial and parallel scale runs:\n--- serial ---\n%s\n--- parallel ---\n%s", serialCSV, parCSV)
	}
}
