//go:build !race

package exp

// raceEnabled reports whether this test binary was built with the race
// detector; long randomized tests shrink their workloads under it.
const raceEnabled = false
