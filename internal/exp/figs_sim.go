package exp

import (
	"fmt"

	"ppt/internal/workload"
)

// simSchemes are the six transports of the large-scale comparison
// (§6.2).
var simSchemes = []string{"ndp", "aeolus", "homa", "rc3", "dctcp", "ppt"}

func simComparison(o Options, fab fabric, dist *workload.Dist, defLoad float64, schemes []string) []Row {
	load := defLoad
	if o.Load != 0 {
		load = o.Load
	}
	return compare(o, fab, dist, workload.AllToAll{N: fab.hosts}, load, schemes)
}

func init() {
	register(&Experiment{
		ID:       "fig12",
		Title:    "[Simulation] oversubscribed 40/100G leaf-spine, Web Search, load 0.5",
		DefFlows: 600,
		Run: func(o Options) *Result {
			return &Result{ID: "fig12", Title: "large-scale sim, web search",
				Rows: simComparison(o, simFabric(3, 2, 8), workload.WebSearch, 0.5, simSchemes),
				Notes: []string{
					"paper: PPT cuts overall avg FCT by 38.5/40.8/46.3/69.3/87.5% vs NDP/Aeolus/Homa/RC3/DCTCP",
					"run with -flows 3000 on the full 9x4x16 fabric (edit leaves/spines via source) for closer statistics",
				}}
		},
	})
	register(&Experiment{
		ID:       "fig13",
		Title:    "[Simulation] oversubscribed 40/100G leaf-spine, Data Mining, load 0.5",
		DefFlows: 400,
		Run: func(o Options) *Result {
			return &Result{ID: "fig13", Title: "large-scale sim, data mining",
				Rows:  simComparison(o, simFabric(3, 2, 8), workload.DataMining, 0.5, simSchemes),
				Notes: []string{"paper: PPT cuts overall avg FCT by 47.1/47.1/45.3/67.8/67.4% vs NDP/Aeolus/Homa/RC3/DCTCP"}}
		},
	})
	register(&Experiment{
		ID:       "fig14",
		Title:    "[Simulation] PPT's design on a delay-based (Swift-like) transport",
		DefFlows: 500,
		Run: func(o Options) *Result {
			return &Result{ID: "fig14", Title: "delay-based transport with and without PPT's dual loop",
				Rows:  simComparison(o, simFabric(3, 2, 8), workload.WebSearch, 0.5, []string{"swift", "swift+ppt"}),
				Notes: []string{"paper: +PPT cuts overall avg FCT 16.7%, small avg/tail 56.5%/72.1%, large avg 11%"}}
		},
	})
	register(&Experiment{
		ID:       "fig21",
		Title:    "[Simulation] Facebook Memcached W1 (all flows <=100KB), load 0.5",
		DefFlows: 2000,
		Run: func(o Options) *Result {
			return &Result{ID: "fig21", Title: "memcached workload",
				Rows:  simComparison(o, simFabric(3, 2, 8), workload.MemcachedW1, 0.5, simSchemes),
				Notes: []string{"paper: PPT cuts small avg/tail FCT by >=25%/55.6% vs every baseline"}}
		},
	})
	register(&Experiment{
		ID:       "fig22",
		Title:    "[Simulation] 100/400G topology, Web Search, load 0.5",
		DefFlows: 600,
		Run: func(o Options) *Result {
			return &Result{ID: "fig22", Title: "100/400G fabric",
				Rows:  simComparison(o, fastFabric(3, 2, 8), workload.WebSearch, 0.5, simSchemes),
				Notes: []string{"paper: PPT cuts overall avg FCT by 43.5/56/42.8/59.1/84.2% vs NDP/Aeolus/Homa/RC3/DCTCP; small-flow tail may exceed Homa/Aeolus at this BDP"}}
		},
	})
	register(&Experiment{
		ID:       "fig23",
		Title:    "[Simulation] N-to-1 incast sweep (RC3 omitted: cannot sustain heavy incast)",
		DefFlows: 200,
		Run: func(o Options) *Result {
			fab := simFabric(3, 2, 8)
			load := 0.6
			if o.Load != 0 {
				load = o.Load
			}
			schemes := []string{"ndp", "aeolus", "homa", "dctcp", "ppt"}
			p := newPool(o)
			type point struct {
				n      int
				reduce func() []Row
			}
			var points []point
			for _, n := range []int{4, 8, 16, fab.hosts - 1} {
				pattern := workload.Incast{N: fab.hosts, Target: 0, Senders: n}
				points = append(points, point{n,
					compareCells(p, o, fab, workload.WebSearch, pattern, load, schemes)})
			}
			p.run()
			var rows []Row
			for _, pt := range points {
				for _, r := range pt.reduce() {
					r.Label = fmt.Sprintf("%s-N%d", r.Label, pt.n)
					rows = append(rows, r)
				}
			}
			return &Result{ID: "fig23", Title: "incast ratio sweep",
				Rows: rows,
				Notes: []string{
					"paper: under heavy incast PPT ~ DCTCP ~ NDP, all better than Homa/Aeolus",
					"sender counts scale with the reduced default fabric; grow -flows and the fabric for the paper's 32..256",
				}}
		},
	})
	register(&Experiment{
		ID:       "fig26",
		Title:    "[Simulation] non-oversubscribed 10/40G topology, Web Search, load 0.5",
		DefFlows: 600,
		Run: func(o Options) *Result {
			return &Result{ID: "fig26", Title: "non-oversubscribed fabric",
				Rows:  simComparison(o, nonOverFabric(3, 2, 8), workload.WebSearch, 0.5, simSchemes),
				Notes: []string{"paper: PPT still best on overall and large-flow avg; small-flow tail can trail the proactive schemes by up to 37.5%"}}
		},
	})
}
