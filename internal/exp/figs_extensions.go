package exp

import "ppt/internal/workload"

func init() {
	register(&Experiment{
		ID:       "extb",
		Title:    "[Extension] Appendix B: PPT's dual loop on an INT-based transport (HPCC)",
		DefFlows: 400,
		Run: func(o Options) *Result {
			return &Result{ID: "extb", Title: "HPCC with and without PPT's low-priority loop",
				Rows: simComparison(o, simFabric(3, 2, 8), workload.WebSearch, 0.5, []string{"hpcc", "hpcc+ppt"}),
				Notes: []string{
					"appendix B: open an LCP loop whenever HPCC's telemetry-estimated inflight is below BDP",
					"expected: lower small-flow FCT at equal or better overall average",
				}}
		},
	})
	register(&Experiment{
		ID:       "reactive",
		Title:    "[Extension] All reactive baselines of Table 1 head-to-head",
		DefFlows: 400,
		Run: func(o Options) *Result {
			return &Result{ID: "reactive", Title: "reactive transports, web search at 0.5",
				Rows: simComparison(o, simFabric(3, 2, 8), workload.WebSearch, 0.5,
					[]string{"tcp10", "halfback", "dctcp", "rc3", "pias", "hpcc", "ppt"}),
				Notes: []string{"TCP-10 and Halfback only address the startup phase; PPT also fills queue-buildup gaps"}}
		},
	})
	register(&Experiment{
		ID:       "proactive",
		Title:    "[Extension] All proactive baselines of Table 1 head-to-head",
		DefFlows: 400,
		Run: func(o Options) *Result {
			return &Result{ID: "proactive", Title: "proactive transports vs PPT, web search at 0.5",
				Rows: simComparison(o, simFabric(3, 2, 8), workload.WebSearch, 0.5,
					[]string{"expresspass", "ndp", "homa", "aeolus", "ppt"}),
				Notes: []string{"ExpressPass wastes the first RTT on credits; Homa/Aeolus burst at line rate"}}
		},
	})
}
