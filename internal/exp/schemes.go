package exp

import (
	"fmt"
	"math/rand"

	"ppt/internal/bufaware"
	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/stats"
	"ppt/internal/topo"
	"ppt/internal/transport"
	"ppt/internal/transport/aeolus"
	"ppt/internal/transport/dctcp"
	"ppt/internal/transport/expresspass"
	"ppt/internal/transport/halfback"
	"ppt/internal/transport/homa"
	"ppt/internal/transport/hpcc"
	"ppt/internal/transport/ndp"
	"ppt/internal/transport/pias"
	"ppt/internal/transport/ppt"
	"ppt/internal/transport/rc3"
	"ppt/internal/transport/swift"
	"ppt/internal/workload"
)

// fabric describes how an experiment builds its network.
type fabric struct {
	name   string
	build  func(cfg topo.Config) *topo.Network
	cfg    topo.Config
	rtoMin sim.Time
	hosts  int
	// shape names the wiring the build closure produces (builder kind +
	// dimensions). Part of the cell cache key: two fabrics can share
	// name and config yet wire different topologies (e.g. a wider
	// leaf-spine), and a closure can't be hashed.
	shape string
	// partitionable marks builders that honor Config.Shards with a real
	// multi-switch partition (topo.LeafSpine). Single-switch builders
	// (topo.Star, topo.Dumbbell) have nothing to shard and silently run
	// monolithic; Options.StrictShards turns that into a cell error.
	partitionable bool
}

// simFabric is the §6.2 profile: 144 hosts, 9 leaves, 4 spines, 40/100G
// oversubscribed, 120KB/port, K_H=96KB, K_L=86KB, plain drop-tail shared
// buffers (the paper's ns-3 switch model; the testbed profile keeps
// dynamic thresholds, as real shared-buffer silicon does). Experiments
// default to a smaller 3-leaf slice (24 hosts) so runs stay tractable;
// the full topology is a -flows-scaled pptsim run away.
func simFabric(leaves, spines, perLeaf int) fabric {
	return fabric{
		name:  "leafspine-40/100G",
		shape: fmt.Sprintf("leafspine/%d-%d-%d", leaves, spines, perLeaf),
		build: func(cfg topo.Config) *topo.Network { return topo.LeafSpine(leaves, spines, perLeaf, cfg) },
		cfg: topo.Config{
			HostRate:      40 * netsim.Gbps,
			CoreRate:      100 * netsim.Gbps,
			PerPortBuffer: 120_000,
			ECNHighK:      96_000,
			ECNLowK:       86_000,
		},
		rtoMin:        1 * sim.Millisecond,
		hosts:         leaves * perLeaf,
		partitionable: true,
	}
}

// fastFabric is the 100/400G variant of Fig 22.
func fastFabric(leaves, spines, perLeaf int) fabric {
	f := simFabric(leaves, spines, perLeaf)
	f.name = "leafspine-100/400G"
	f.cfg.HostRate = 100 * netsim.Gbps
	f.cfg.CoreRate = 400 * netsim.Gbps
	f.cfg.PerPortBuffer = 300_000
	f.cfg.ECNHighK = 240_000
	f.cfg.ECNLowK = 215_000
	return f
}

// nonOverFabric is the appendix E 1:1 fabric.
func nonOverFabric(leaves, spines, perLeaf int) fabric {
	f := simFabric(leaves, spines, perLeaf)
	f.name = "leafspine-10/40G-1:1"
	f.cfg.HostRate = 10 * netsim.Gbps
	f.cfg.CoreRate = 40 * netsim.Gbps
	f.cfg.ECNHighK = 30_000
	f.cfg.ECNLowK = 25_000
	return f
}

// testbedFabric is the Table 3 CloudLab profile: 15 hosts, 10G, 80µs
// RTT, 50MB shared buffer, RTO_min 10ms.
func testbedFabric() fabric {
	return fabric{
		name:  "testbed-star-10G",
		shape: "star/15",
		build: func(cfg topo.Config) *topo.Network { return topo.Star(15, cfg) },
		cfg: topo.Config{
			HostRate:            10 * netsim.Gbps,
			LinkDelay:           20 * sim.Microsecond,
			SharedBuffer:        50 << 20,
			ECNHighK:            100_000,
			ECNLowK:             80_000,
			DynamicLowThreshold: true,
		},
		rtoMin: 10 * sim.Millisecond,
		hosts:  15,
	}
}

// dumbbellFabric is the Fig 1/20/28/29 microbenchmark: senders + one
// receiver on a 40G switch with a 120KB buffer.
func dumbbellFabric(senders int, ecnK int64) fabric {
	return fabric{
		name:  "dumbbell-40G",
		shape: fmt.Sprintf("star/%d", senders+1),
		build: func(cfg topo.Config) *topo.Network { return topo.Star(senders+1, cfg) },
		cfg: topo.Config{
			HostRate:     40 * netsim.Gbps,
			LinkDelay:    1 * sim.Microsecond,
			SharedBuffer: 120_000,
			ECNHighK:     ecnK,
			ECNLowK:      ecnK * 5 / 6,
		},
		rtoMin: 1 * sim.Millisecond,
		hosts:  senders + 1,
	}
}

// scheme is one comparable transport.
type scheme struct {
	name string
	// tweak adapts the fabric for the scheme's switch requirements
	// (trimming, INT, selective drop).
	tweak func(*topo.Config)
	// make builds a fresh protocol instance for one run.
	make func(env *transport.Env) transport.Protocol
}

func tweakTrim(c *topo.Config) { c.TrimToHeader = true }
func tweakINT(c *topo.Config)  { c.EnableINT = true }
func tweakDrop(c *topo.Config) {
	if c.PerPortBuffer > 0 {
		c.DroppableThresh = c.PerPortBuffer / 8
	} else {
		c.DroppableThresh = 24_000
	}
}

// pptScheme builds a PPT scheme with the given config tweaks.
func pptScheme(name string, cfg ppt.Config) scheme {
	return scheme{
		name: name,
		make: func(env *transport.Env) transport.Protocol { return ppt.Proto{Cfg: cfg} },
	}
}

func baseSchemes() map[string]scheme {
	return map[string]scheme{
		"dctcp": {name: "dctcp", make: func(*transport.Env) transport.Protocol { return dctcp.Proto{} }},
		"rc3":   {name: "rc3", make: func(*transport.Env) transport.Protocol { return rc3.Proto{} }},
		// PIAS uses all eight priorities for demotion, so every queue
		// marks like the high class (one per-port DCTCP threshold).
		"pias": {name: "pias", tweak: func(c *topo.Config) { c.ECNLowK = c.ECNHighK },
			make: func(*transport.Env) transport.Protocol { return pias.Proto{} }},
		"hpcc": {name: "hpcc", tweak: tweakINT, make: func(*transport.Env) transport.Protocol { return hpcc.Proto{} }},
		"homa": {name: "homa", make: func(*transport.Env) transport.Protocol { return homa.New(homa.Config{}) }},
		"aeolus": {name: "aeolus", tweak: tweakDrop,
			make: func(*transport.Env) transport.Protocol { return aeolus.New(aeolus.Config{}) }},
		"ndp": {name: "ndp", tweak: tweakTrim,
			make: func(*transport.Env) transport.Protocol { return ndp.New(ndp.Config{}) }},
		"ppt":       pptScheme("ppt", ppt.Config{}),
		"swift":     {name: "swift", make: func(*transport.Env) transport.Protocol { return swift.Proto{} }},
		"swift+ppt": {name: "swift+ppt", make: func(*transport.Env) transport.Protocol { return swift.Proto{Cfg: swift.Config{WithPPT: true}} }},
		"hpcc+ppt": {name: "hpcc+ppt", tweak: tweakINT,
			make: func(*transport.Env) transport.Protocol { return hpcc.PPTVariant{} }},
		// tcp10 is the TCP-10 row of Table 1: loss-driven TCP with an
		// initial window of 10 (no ECN reaction).
		"tcp10": {name: "tcp10", make: func(*transport.Env) transport.Protocol {
			return dctcp.Proto{Cfg: dctcp.Config{NoECN: true}}
		}},
		"halfback": {name: "halfback", make: func(*transport.Env) transport.Protocol { return halfback.Proto{} }},
		"expresspass": {name: "expresspass",
			make: func(*transport.Env) transport.Protocol { return expresspass.New(expresspass.Config{}) }},
	}
}

// runSpec is one scheme execution.
type runSpec struct {
	fab     fabric
	sc      scheme
	dist    *workload.Dist
	pattern workload.Pattern
	load    float64
	flows   int
	seed    int64
	// sendBuf models the TCP send buffer for first-call identification
	// and LCP reach (0 = unbounded / 2GB).
	sendBuf int64
	app     bufaware.AppModel
	// sched is the event-queue implementation for this cell's scheduler
	// (from Options.Sched; zero value = wheel).
	sched sim.Impl
	// shards is the partition hint for this cell (from Options.Shards;
	// applied only when the fabric partitions and the protocol is
	// shardable, so non-windowed cells stay byte-for-byte on the legacy
	// monolithic path).
	shards int
	// stream feeds the workload through a lazy FlowSource instead of a
	// materialized slice (from Options.Stream, or forced on by the scale
	// experiments). Byte-identical outcomes either way.
	stream bool
	// spillChunk, when > 0, bounds the FCT collector to this many
	// resident records (stats spill mode). It implies stream and
	// composes with the windowed engine: per-shard completions fold
	// into the spilling collector at round barriers in canonical order
	// (stats.WindowFold), bit-identical to the in-memory merge.
	spillChunk int
	// noFastPath runs every port on the classic two-event pipeline
	// (from Options.NoFastPath). Byte-identical outcomes either way.
	noFastPath bool
}

// streamSource adapts a lazy workload generator into transport's
// FlowSource, assigning each flow its first-syscall size on the fly.
// It draws from the classifier RNG exactly once per flow in generation
// order — the same consumption sequence as bufaware.AssignFirstCalls
// over the materialized trace — so a streamed cell releases
// bit-identical flows to a materialized one.
type streamSource struct {
	gen     *workload.Generator
	rng     *rand.Rand
	app     bufaware.AppModel
	sendBuf int64
}

func (s *streamSource) Next() (transport.SimpleFlow, bool) {
	f, ok := s.gen.Next()
	if !ok {
		return transport.SimpleFlow{}, false
	}
	return transport.SimpleFlow{
		ID: f.ID, Src: f.Src, Dst: f.Dst, Size: f.Size,
		Arrive: f.Arrive, FirstCall: s.app.FirstCall(s.rng, f.Size, s.sendBuf),
	}, true
}

// execute builds the fabric, generates flows, and runs to completion,
// returning the summary and the environment for extra metrics.
func execute(spec runSpec) (stats.Summary, *transport.Env) {
	cfg := spec.fab.cfg
	cfg.Sched = spec.sched
	cfg.NoFastPath = spec.noFastPath
	if spec.sc.tweak != nil {
		spec.sc.tweak(&cfg)
	}
	// Partition only for protocols that implement the windowed engine's
	// split start; every maker ignores its env argument, so probing with
	// nil is safe and the probe doubles as the run's protocol instance.
	proto := spec.sc.make(nil)
	if _, ok := proto.(transport.ShardableProtocol); ok && spec.shards >= 1 {
		cfg.Shards = spec.shards
	}
	net := spec.fab.build(cfg)
	env := transport.NewEnv(net)
	env.RTOMin = spec.fab.rtoMin

	app := spec.app
	if app.Name == "" {
		app = bufaware.Bulk
	}
	genCfg := workload.GenConfig{
		Dist:     spec.dist,
		Pattern:  spec.pattern,
		Load:     spec.load,
		HostRate: cfg.HostRate,
		NumFlows: spec.flows,
		Seed:     spec.seed,
	}
	if spec.stream || spec.spillChunk > 0 {
		if spec.spillChunk > 0 {
			if err := env.Collector.SetSpill(spec.spillChunk); err != nil {
				panic(err)
			}
			// The spill file is unlinked at creation; Close just releases
			// the descriptor. The counters callers read afterwards
			// (ResidentPeak, SpilledRecords) survive Close.
			defer env.Collector.Close()
		}
		src := &streamSource{
			gen:     workload.NewGenerator(genCfg),
			rng:     rand.New(rand.NewSource(spec.seed + 7)),
			app:     app,
			sendBuf: spec.sendBuf,
		}
		return transport.RunSource(env, proto, src, transport.RunConfig{}), env
	}
	wf := workload.Generate(genCfg)
	flows := make([]transport.SimpleFlow, len(wf))
	sizes := make([]int64, len(wf))
	for i, f := range wf {
		sizes[i] = f.Size
	}
	firstCalls := bufaware.AssignFirstCalls(sizes, app, spec.sendBuf, spec.seed+7)
	for i, f := range wf {
		flows[i] = transport.SimpleFlow{
			ID: f.ID, Src: f.Src, Dst: f.Dst, Size: f.Size,
			Arrive: f.Arrive, FirstCall: firstCalls[i],
		}
	}
	sum := transport.Run(env, proto, flows, transport.RunConfig{})
	return sum, env
}

// compare runs the given schemes over one workload and assembles rows,
// averaging over Options.Repeats seeds. Cells run on the worker pool
// (Options.Parallel wide).
func compare(o Options, fab fabric, dist *workload.Dist, pattern workload.Pattern, load float64, names []string) []Row {
	p := newPool(o)
	rows := compareCells(p, o, fab, dist, pattern, load, names)
	p.run()
	return rows()
}

// compareCells submits one cell per (scheme × repeat) to p and returns
// the reducer that assembles the rows once p.run() has completed.
// Splitting submission from reduction lets multi-load/multi-N sweeps
// flatten every cell into one pool instead of running one pool per
// sweep point.
func compareCells(p *pool, o Options, fab fabric, dist *workload.Dist, pattern workload.Pattern, load float64, names []string) func() []Row {
	all := baseSchemes()
	repeats := o.Repeats
	if repeats < 1 {
		repeats = 1
	}
	type schemeCells struct {
		name string
		outs []*cellOut
	}
	var cells []schemeCells
	for _, name := range names {
		if !o.wants(name) {
			continue
		}
		sc, ok := all[name]
		if !ok {
			continue
		}
		outs := make([]*cellOut, repeats)
		for rep := 0; rep < repeats; rep++ {
			outs[rep] = p.submitSpec(
				fmt.Sprintf("%s load=%g seed=%d", name, load, o.Seed+int64(rep)),
				runSpec{
					fab: fab, sc: sc, dist: dist, pattern: pattern,
					load: load, flows: o.Flows, seed: o.Seed + int64(rep),
				})
		}
		cells = append(cells, schemeCells{name, outs})
	}
	return func() []Row {
		rows := make([]Row, 0, len(cells))
		for _, c := range cells {
			sums := make([]stats.Summary, 0, len(c.outs))
			for _, out := range c.outs {
				if !out.failed() {
					sums = append(sums, out.sum)
				}
			}
			if len(sums) == 0 {
				// Every repeat failed (and was reported via the error
				// sink): keep the row so the table shape is stable.
				rows = append(rows, Row{Label: c.name})
				continue
			}
			rows = append(rows, Row{Label: c.name, Sum: meanSummary(sums)})
		}
		return rows
	}
}

// meanSummary averages summaries across repeats (metric-wise).
func meanSummary(sums []stats.Summary) stats.Summary {
	if len(sums) == 1 {
		return sums[0]
	}
	var out stats.Summary
	n := sim.Time(len(sums))
	for _, s := range sums {
		out.Flows += s.Flows
		out.SmallCount += s.SmallCount
		out.LargeCount += s.LargeCount
		out.OverallAvg += s.OverallAvg
		out.SmallAvg += s.SmallAvg
		out.SmallP99 += s.SmallP99
		out.LargeAvg += s.LargeAvg
		if s.Truncated {
			out.Truncated = true
		}
		out.Unfinished += s.Unfinished
	}
	out.Flows /= len(sums)
	out.SmallCount /= len(sums)
	out.LargeCount /= len(sums)
	out.Unfinished /= len(sums)
	out.OverallAvg /= n
	out.SmallAvg /= n
	out.SmallP99 /= n
	out.LargeAvg /= n
	return out
}
