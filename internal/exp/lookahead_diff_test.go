package exp

import (
	"math/rand"
	"testing"

	"ppt/internal/sim"
	"ppt/internal/workload"
)

// TestLookaheadMatrixDifferential is the randomized-shape companion to
// TestShardedDifferential: where that test fixes the fabric and sweeps
// schemes, this one sweeps the *topology* — random leaf-spine shapes,
// so the per-pair lookahead matrix (leaf↔spine at one wire delay,
// leaf↔leaf and the self-cycles at two) and the load-balanced worker
// assignment differ every trial — and asserts the windowed output is
// byte-identical at every shard count and queue implementation. It
// also cross-checks the built matrix against an independent
// brute-force bound: every entry must not exceed the true minimum path
// delay over the wires the builder installs (the conservative
// direction; topo's own tests pin exact equality).
func TestLookaheadMatrixDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many randomized simulation cells")
	}
	rng := rand.New(rand.NewSource(1729))
	all := baseSchemes()
	schemes := []string{"ppt", "dctcp"}
	dists := []*workload.Dist{workload.WebSearch, workload.MemcachedW1}

	trials := 5
	if raceEnabled {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		leaves, spines, perLeaf := 2+rng.Intn(3), 1+rng.Intn(3), 3+rng.Intn(5)
		fab := simFabric(leaves, spines, perLeaf)
		spec := runSpec{
			fab:     fab,
			sc:      all[schemes[rng.Intn(len(schemes))]],
			dist:    dists[rng.Intn(len(dists))],
			pattern: workload.AllToAll{N: fab.hosts},
			load:    0.3 + 0.1*float64(rng.Intn(4)),
			flows:   120 + rng.Intn(180),
			seed:    1 + rng.Int63n(1000),
		}

		base := spec
		base.shards = 1
		base.sched = sim.Wheel
		baseSum, baseEnv := execute(base)
		part := baseEnv.Net.Part
		if part == nil || part.Lookahead == nil {
			t.Fatalf("trial %d: partitioned build carries no lookahead matrix", trial)
		}
		// Conservative bound: adjacent shards one delay apart, nothing
		// closer than the global window, diagonal bounded by the round
		// trip through a spine.
		n := leaves + spines
		w := part.Window
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				at := part.Lookahead.At(i, j)
				if at < w {
					t.Fatalf("trial %d: matrix entry (%d,%d)=%v below global window %v", trial, i, j, at, w)
				}
				iLeaf, jLeaf := i < leaves, j < leaves
				if iLeaf != jLeaf && at != w {
					t.Fatalf("trial %d: adjacent pair (%d,%d)=%v, want %v", trial, i, j, at, w)
				}
				if iLeaf == jLeaf && at != 2*w {
					t.Fatalf("trial %d: two-hop pair (%d,%d)=%v, want %v", trial, i, j, at, 2*w)
				}
			}
		}

		// Shard hints beyond the shard count, equal to it, and below it
		// (exercising multi-shard-per-worker LPT assignments), across
		// both queue implementations.
		for _, v := range []struct {
			shards int
			sched  sim.Impl
		}{
			{2, sim.Wheel},
			{n, sim.Heap},
			{n + 3, sim.Wheel},
			{1, sim.Heap},
		} {
			alt := spec
			alt.shards = v.shards
			alt.sched = v.sched
			altSum, altEnv := execute(alt)
			if baseSum != altSum {
				t.Errorf("trial %d (leaves=%d spines=%d perLeaf=%d %s flows=%d seed=%d): shards=%d sched=%v summary diverged\nbase: %+v\nalt:  %+v",
					trial, leaves, spines, perLeaf, spec.sc.name, spec.flows, spec.seed, v.shards, v.sched, baseSum, altSum)
			}
			if baseEnv.Eff != altEnv.Eff {
				t.Errorf("trial %d (leaves=%d spines=%d perLeaf=%d %s flows=%d seed=%d): shards=%d sched=%v efficiency diverged\nbase: %+v\nalt:  %+v",
					trial, leaves, spines, perLeaf, spec.sc.name, spec.flows, spec.seed, v.shards, v.sched, baseEnv.Eff, altEnv.Eff)
			}
			if altEnv.ShardStats == nil || altEnv.ShardStats.Rounds == 0 {
				t.Errorf("trial %d: shards=%d run recorded no windowed instrumentation", trial, v.shards)
			}
		}
	}
}

// TestSpilledRepeatsParallel pins two lifted restrictions at once:
// repeats across seeds run concurrently on the worker pool even when
// every cell spills its FCT log, and spilling cells now run the
// windowed engine — Shards no longer drops to the monolithic path when
// spill engages. The serial (shards=1) and wide (parallel, shards=4)
// runs must stay byte-identical, which exercises the windowed spill
// fold's canonical ordering across worker counts.
func TestSpilledRepeatsParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four 70k-flow spilled cells")
	}
	base := Options{Flows: scale1MSpillChunk + 5_000, Repeats: 2, Parallel: 1,
		Schemes: []string{"ppt"}}
	serial, err := RunByID("scale1M", base)
	if err != nil {
		t.Fatal(err)
	}
	wide := base
	wide.Parallel = 2
	wide.Shards = 4 // must not disable spill, must run windowed
	parallel, err := RunByID("scale1M", wide)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := parallel.Render(), serial.Render(); got != want {
		t.Fatalf("parallel spilled repeats diverged from serial:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if len(serial.Rows) != 1 || serial.Rows[0].Extra["spilled_records"] == 0 {
		t.Fatalf("spill did not engage: %+v", serial.Rows)
	}
	if parallel.Sharding == nil || parallel.Sharding.Rounds == 0 {
		t.Fatalf("spilled cells must run the windowed engine, but no windowed instrumentation was recorded: %+v", parallel.Sharding)
	}
}
