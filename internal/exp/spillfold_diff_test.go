package exp

import (
	"testing"

	"ppt/internal/sim"
	"ppt/internal/workload"
)

// TestWindowedSpillDifferential pins the windowed spill fold end to
// end: a streamed cell whose FCT collector spills must report exactly
// the Summary the in-memory windowed path reports — float means bit
// for bit — at every spill chunk size, shard count, and queue
// implementation, while never holding more than a chunk of records
// resident. This is the exp-level companion of the stats-level
// TestWindowFoldBitIdentical, run through the real engine so the
// barrier-time safe bounds (not a synthetic cadence) drive the fold.
func TestWindowedSpillDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a matrix of simulation cells")
	}
	all := baseSchemes()
	flows := 2600
	if raceEnabled {
		flows = 900
	}
	for _, scheme := range []string{"ppt", "dctcp"} {
		fab := simFabric(3, 2, 8)
		spec := runSpec{
			fab:     fab,
			sc:      all[scheme],
			dist:    workload.MemcachedW1,
			pattern: workload.AllToAll{N: fab.hosts},
			load:    0.5,
			flows:   flows,
			seed:    7,
			stream:  true,
		}
		for _, sched := range []sim.Impl{sim.Heap, sim.Wheel} {
			ref := spec
			ref.sched = sched
			ref.shards = 1
			refSum, _ := execute(ref)
			for _, chunk := range []int{1, 7, 1024, 1 << 16} {
				for _, shards := range []int{1, 2, 4} {
					alt := spec
					alt.sched = sched
					alt.shards = shards
					alt.spillChunk = chunk
					altSum, altEnv := execute(alt)
					if altSum != refSum {
						t.Errorf("%s sched=%v chunk=%d shards=%d: spilled summary diverged\nref: %+v\ngot: %+v",
							scheme, sched, chunk, shards, refSum, altSum)
					}
					if peak := altEnv.Collector.ResidentPeak(); peak > chunk {
						t.Errorf("%s sched=%v chunk=%d shards=%d: resident peak %d exceeds chunk",
							scheme, sched, chunk, shards, peak)
					}
					if altEnv.ShardStats == nil || altEnv.ShardStats.Rounds == 0 {
						t.Errorf("%s sched=%v chunk=%d shards=%d: spilled cell did not run the windowed engine",
							scheme, sched, chunk, shards)
					}
				}
			}
		}
	}
}
