package exp

import (
	"fmt"

	"ppt/internal/stats"
	"ppt/internal/workload"
)

// The scale1M experiment is the repo's million-flow capability proof:
// the memcached workload (small messages, ~tens of scheduler events per
// flow — the only published distribution where 1M flows is tractable on
// one core) streamed through a lazy FlowSource into a spilling FCT
// collector, so neither the trace nor the completion log is ever
// resident. It is not a paper figure; it exists so the scale100k/scale1M
// bench pair and the CI smoke have a registered experiment to run, and
// so `pptsim -exp scale1M -flows 1000000` is a one-liner.

// scale1MSchemes are the two hot pooled transports, matching the
// existing scale bench family.
var scale1MSchemes = []string{"ppt", "dctcp"}

// scale1MSpillChunk caps resident FCT records in the streamed cells:
// 64Ki records × 32B ≈ 2MB resident regardless of flow count; the
// overflow lives as 8 bytes per small flow in an unlinked temp file.
const scale1MSpillChunk = 1 << 16

func init() {
	register(&Experiment{
		ID:       "scale1M",
		Title:    "[Scale] streamed Memcached W1 workload, bounded-memory FCT collection (1M-flow capable)",
		DefFlows: 100_000,
		Run:      runScale1M,
	})
}

func runScale1M(o Options) *Result {
	fab := simFabric(3, 2, 8)
	load := 0.5
	if o.Load != 0 {
		load = o.Load
	}
	// Spill mode gives up the raw record log, which the windowed
	// engine's canonical merge needs, so spilling cells always run the
	// monolithic engine (execute() enforces that) — but spill stays on
	// at every -shards setting: multi-core parallelism for this
	// experiment comes from running repeats (independent seeds) and
	// schemes concurrently on the worker pool, each cell with its own
	// bounded collector and unlinked temp file, not from sharding
	// inside a cell.
	spill := scale1MSpillChunk
	all := baseSchemes()
	p := newPool(o)
	type schemeCells struct {
		name string
		outs []*cellOut
	}
	var cells []schemeCells
	for _, name := range scale1MSchemes {
		if !o.wants(name) {
			continue
		}
		outs := make([]*cellOut, o.Repeats)
		for rep := 0; rep < o.Repeats; rep++ {
			outs[rep] = p.submitSpec(
				fmt.Sprintf("%s flows=%d seed=%d", name, o.Flows, o.Seed+int64(rep)),
				runSpec{
					fab: fab, sc: all[name], dist: workload.MemcachedW1,
					pattern: workload.AllToAll{N: fab.hosts},
					load:    load, flows: o.Flows, seed: o.Seed + int64(rep),
					stream: true, spillChunk: spill,
				})
		}
		cells = append(cells, schemeCells{name, outs})
	}
	p.run()
	rows := make([]Row, 0, len(cells))
	for _, c := range cells {
		var sums []stats.Summary
		// resident_peak is the max across repeats (the bound being
		// claimed); spilled_records the mean.
		peak, spilled := 0, 0.0
		for _, out := range c.outs {
			if out.failed() {
				continue
			}
			sums = append(sums, out.sum)
			if p := out.env.Collector.ResidentPeak(); p > peak {
				peak = p
			}
			spilled += float64(out.env.Collector.SpilledRecords())
		}
		if len(sums) == 0 {
			rows = append(rows, Row{Label: c.name})
			continue
		}
		row := Row{Label: c.name, Sum: meanSummary(sums), Extra: map[string]float64{
			"resident_peak": float64(peak),
		}}
		if spill > 0 {
			row.Extra["spilled_records"] = spilled / float64(len(sums))
		}
		rows = append(rows, row)
	}
	return &Result{ID: "scale1M", Title: "streamed + spilled scale run, memcached W1",
		Rows: rows,
		Notes: []string{
			fmt.Sprintf("workload streamed per-flow; FCT collector spill chunk = %d records (cells monolithic; repeats/schemes parallelize on the pool)", spill),
			"resident_peak counts FCT records ever resident at once; spilled_records went to the unlinked temp file",
		}}
}
