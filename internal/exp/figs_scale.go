package exp

import (
	"fmt"

	"ppt/internal/stats"
	"ppt/internal/transport"
	"ppt/internal/workload"
)

// The scale1M experiments are the repo's million-flow capability proof:
// a published workload streamed through a lazy FlowSource into a
// spilling FCT collector, so neither the trace nor the completion log
// is ever resident. scale1M uses memcached W1 (small messages, ~tens of
// scheduler events per flow — tractable on one core);
// scale1M-websearch uses the heavy websearch distribution (~15k
// scheduler events per flow), the workload that actually needs the
// sharded engine's multi-core scale-out. Neither is a paper figure;
// they exist so the scale bench families and the CI smokes have
// registered experiments to run, and so
// `pptsim -exp scale1M-websearch -flows 1000000 -shards 4` is a
// one-liner.

// scale1MSchemes are the two hot pooled transports, matching the
// existing scale bench family.
var scale1MSchemes = []string{"ppt", "dctcp"}

// scale1MSpillChunk caps resident FCT records in the streamed cells:
// 64Ki records × 32B ≈ 2MB resident regardless of flow count; the
// overflow lives as 8 bytes per small flow in an unlinked temp file.
const scale1MSpillChunk = 1 << 16

// scale1MWebSpillChunk is the websearch variant's cap. Smaller (16Ki)
// so the spill path engages even at the reduced default flow count the
// heavy distribution forces.
const scale1MWebSpillChunk = 1 << 14

func init() {
	register(&Experiment{
		ID:       "scale1M",
		Title:    "[Scale] streamed Memcached W1 workload, bounded-memory FCT collection (1M-flow capable)",
		DefFlows: 100_000,
		Run: func(o Options) *Result {
			return runScaleSpill(o, "scale1M", "streamed + spilled scale run, memcached W1",
				workload.MemcachedW1, scale1MSpillChunk)
		},
	})
	register(&Experiment{
		ID:       "scale1M-websearch",
		Title:    "[Scale] streamed websearch workload, bounded-memory FCT collection, sharded-engine scale-out (1M-flow capable)",
		DefFlows: 20_000, // ~15k events/flow: the default stays minutes, not hours; -flows raises it
		Run: func(o Options) *Result {
			return runScaleSpill(o, "scale1M-websearch", "streamed + spilled scale run, websearch",
				workload.WebSearch, scale1MWebSpillChunk)
		},
	})
}

// runScaleSpill is the shared driver of the streamed + spilled scale
// experiments. Spill composes with the windowed engine: per-shard
// completion logs fold into the spilling collector at round barriers in
// canonical order (stats.WindowFold), so `-shards=4` parallelizes
// inside a cell while staying byte-identical to `-shards=1` — and
// repeats/schemes still parallelize across cells on the worker pool,
// each cell with its own bounded collector and unlinked temp file.
func runScaleSpill(o Options, id, title string, dist *workload.Dist, spill int) *Result {
	fab := simFabric(3, 2, 8)
	load := 0.5
	if o.Load != 0 {
		load = o.Load
	}
	all := baseSchemes()
	p := newPool(o)
	type schemeCells struct {
		name string
		outs []*cellOut
	}
	var cells []schemeCells
	for _, name := range scale1MSchemes {
		if !o.wants(name) {
			continue
		}
		outs := make([]*cellOut, o.Repeats)
		for rep := 0; rep < o.Repeats; rep++ {
			// The spill accounting rides in the extras extractor so it can
			// replay from the cache (there is no collector on a hit). The
			// extras tag carries the chunk size: resident_peak/spilled are
			// a function of it, even though the Summary is not.
			outs[rep] = p.submitSpecExtra(
				fmt.Sprintf("%s flows=%d seed=%d", name, o.Flows, o.Seed+int64(rep)),
				runSpec{
					fab: fab, sc: all[name], dist: dist,
					pattern: workload.AllToAll{N: fab.hosts},
					load:    load, flows: o.Flows, seed: o.Seed + int64(rep),
					stream: true, spillChunk: spill,
				},
				fmt.Sprintf("scale-spill/chunk=%d", spill),
				func(env *transport.Env) map[string]float64 {
					return map[string]float64{
						"resident_peak":   float64(env.Collector.ResidentPeak()),
						"spilled_records": float64(env.Collector.SpilledRecords()),
					}
				})
		}
		cells = append(cells, schemeCells{name, outs})
	}
	p.run()
	rows := make([]Row, 0, len(cells))
	for _, c := range cells {
		var sums []stats.Summary
		// resident_peak is the max across repeats (the bound being
		// claimed); spilled_records the mean.
		peak, spilled := 0.0, 0.0
		for _, out := range c.outs {
			if out.failed() {
				continue
			}
			sums = append(sums, out.sum)
			if p := out.extra["resident_peak"]; p > peak {
				peak = p
			}
			spilled += out.extra["spilled_records"]
		}
		if len(sums) == 0 {
			rows = append(rows, Row{Label: c.name})
			continue
		}
		row := Row{Label: c.name, Sum: meanSummary(sums), Extra: map[string]float64{
			"resident_peak": peak,
		}}
		if spill > 0 {
			row.Extra["spilled_records"] = spilled / float64(len(sums))
		}
		rows = append(rows, row)
	}
	return &Result{ID: id, Title: title,
		Rows: rows,
		Notes: []string{
			fmt.Sprintf("workload streamed per-flow; FCT collector spill chunk = %d records (spill composes with -shards via the windowed fold; repeats/schemes parallelize on the pool)", spill),
			"resident_peak counts FCT records ever resident at once; spilled_records went to the unlinked temp file",
		}}
}
