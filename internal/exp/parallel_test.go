package exp

import (
	"sync"
	"testing"
)

// TestSerialAndParallelIdentical is the tentpole guarantee: the worker
// pool must not change results. A multi-scheme, multi-load, multi-repeat
// experiment rendered from a serial run and from a 4-wide parallel run
// must be byte-identical (tables and CSV).
func TestSerialAndParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fig8 twice")
	}
	run := func(parallel int) (string, string) {
		res, err := RunByID("fig8", Options{Flows: 20, Seed: 3, Repeats: 2, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return res.Render(), res.CSV()
	}
	serialTable, serialCSV := run(1)
	parTable, parCSV := run(4)
	if serialTable != parTable {
		t.Fatalf("Render() differs between serial and parallel runs:\n--- serial ---\n%s\n--- parallel ---\n%s", serialTable, parTable)
	}
	if serialCSV != parCSV {
		t.Fatalf("CSV() differs between serial and parallel runs:\n--- serial ---\n%s\n--- parallel ---\n%s", serialCSV, parCSV)
	}
}

// TestPoolPreservesSubmissionOrder checks the index-addressed slot
// design: outputs land by submission order no matter which worker
// finishes first.
func TestPoolPreservesSubmissionOrder(t *testing.T) {
	p := newPool(Options{Parallel: 4})
	const n = 32
	out := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		p.submit("job", func() error { out[i] = i + 1; return nil })
	}
	p.run()
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("slot %d = %d, want %d", i, v, i+1)
		}
	}
}

// TestPoolCapturesPanics: a panicking cell fails that cell — reported
// through the error sink in submission order — without killing the
// process or the sibling cells.
func TestPoolCapturesPanics(t *testing.T) {
	o := Options{Parallel: 2, errs: &errSink{}}
	p := newPool(o)
	ok := make([]bool, 3)
	p.submit("good-0", func() error { ok[0] = true; return nil })
	j := p.submit("bad", func() error { panic("boom") })
	p.submit("good-2", func() error { ok[2] = true; return nil })
	p.run()
	if !ok[0] || !ok[2] {
		t.Fatal("sibling cells did not complete")
	}
	if j.err == nil {
		t.Fatal("panicking job has no error")
	}
	msgs := o.errs.drain()
	if len(msgs) != 1 || msgs[0] != "bad: panic: boom" {
		t.Fatalf("error sink = %q", msgs)
	}
}

// TestPoolFailedCellSurfacesAsNote: end to end, a cell that panics turns
// into a result note, not a crash.
func TestPoolFailedCellSurfacesAsNote(t *testing.T) {
	o := Options{}.withDefaults(1)
	p := newPool(o)
	p.submit("exploding cell", func() error { panic("kaboom") })
	p.run()
	notes := o.errs.drain()
	if len(notes) != 1 {
		t.Fatalf("notes = %q", notes)
	}
}

// TestPoolProgressReporting: every cell is reported exactly once, done
// reaching total.
func TestPoolProgressReporting(t *testing.T) {
	var mu sync.Mutex
	var seen []int
	o := Options{Parallel: 3, OnProgress: func(done, total int) {
		if total != 5 {
			t.Errorf("total = %d, want 5", total)
		}
		mu.Lock()
		seen = append(seen, done)
		mu.Unlock()
	}}
	p := newPool(o)
	for i := 0; i < 5; i++ {
		p.submit("job", func() error { return nil })
	}
	p.run()
	if len(seen) != 5 {
		t.Fatalf("progress calls = %d, want 5", len(seen))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress sequence = %v", seen)
		}
	}
}

// TestPoolSerialWhenParallelOne: Parallel=1 must not spawn workers (the
// jobs run on the calling goroutine, keeping e.g. testing.T usage legal).
func TestPoolSerialWhenParallelOne(t *testing.T) {
	p := newPool(Options{Parallel: 1})
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		p.submit("job", func() error { order = append(order, i); return nil })
	}
	p.run()
	for i, v := range order {
		if v != i {
			t.Fatalf("serial execution order = %v", order)
		}
	}
}
