package exp

import (
	"fmt"
	"time"

	"ppt/internal/sim"
	"ppt/internal/stats"
	"ppt/internal/topo"
	"ppt/internal/transport"
	"ppt/internal/transport/ppt"
	"ppt/internal/transport/rc3"
	"ppt/internal/workload"
)

// ablation compares real PPT against one disabled-component variant on
// the standard web-search sim setup (§6.3.1). plainBuffers runs on
// drop-tail shared buffers without dynamic thresholds — the paper's ns-3
// switch model — where the LCP's own protections (ECN, EWD) are the only
// thing standing between opportunistic floods and normal traffic.
func ablation(id, title, note string, defFlows int, variant ppt.Config, plainBuffers bool) {
	register(&Experiment{
		ID:       id,
		Title:    title,
		DefFlows: defFlows,
		Run: func(o Options) *Result {
			fab := simFabric(3, 2, 8)
			if plainBuffers {
				fab.cfg.DynamicLowThreshold = false
			}
			load := 0.5
			if o.Load != 0 {
				load = o.Load
			}
			pattern := workload.AllToAll{N: fab.hosts}
			p := newPool(o)
			var outs []*cellOut
			var names []string
			for _, cfg := range []ppt.Config{{}, variant} {
				sc := pptScheme((ppt.Proto{Cfg: cfg}).Name(), cfg)
				names = append(names, sc.name)
				// The LCP health extras come from the extractor so they are
				// part of the cached value (an ablation cell and a plain
				// comparison cell over the same spec are different cache
				// entries — the extras tag separates them).
				outs = append(outs, p.submitSpecExtra(sc.name, runSpec{fab: fab, sc: sc,
					dist: workload.WebSearch, pattern: pattern, load: load,
					flows: o.Flows, seed: o.Seed},
					"lcp-ablation", func(env *transport.Env) map[string]float64 {
						var lowDrops, lowMarks int64
						for _, sp := range env.Net.SwitchPorts() {
							lowDrops += sp.Stats.DropsLow
							lowMarks += sp.Stats.MarksLow
						}
						return map[string]float64{
							"low-eff":    env.Eff.LowLoop(),
							"low-drops":  float64(lowDrops),
							"low-marks":  float64(lowMarks),
							"low-sentMB": float64(env.Eff.SentLowPayload) / 1e6,
						}
					}))
			}
			p.run()
			var rows []Row
			for i, out := range outs {
				if out.failed() {
					rows = append(rows, Row{Label: names[i]})
					continue
				}
				rows = append(rows, Row{Label: names[i], Sum: out.sum, Extra: out.extra})
			}
			return &Result{ID: id, Title: title, Rows: rows, Notes: []string{note,
				"with dynamic-threshold switches, the damage of a misbehaving LCP surfaces as wasted low-class traffic (low-eff, low-drops) before it surfaces as FCT"}}
		},
	})
}

func init() {
	ablation("fig15", "Ablation: ECN for the LCP loop (plain shared buffers)",
		"paper: without ECN, overall avg +18.9%, small avg/tail +59.6%/+78.4%; on dynamic-threshold switches the effect vanishes (DT subsumes the protection)",
		500, ppt.Config{DisableECN: true}, true)
	ablation("fig16", "Ablation: exponential window decreasing (EWD, plain shared buffers)",
		"paper: without EWD (line-rate LCP), overall avg +26%, small avg/tail +63.5%/+85.8%",
		500, ppt.Config{DisableEWD: true}, true)
	ablation("fig17", "Ablation: buffer-aware flow scheduling",
		"paper: without scheduling, overall avg +26%, small avg/tail +66%/+51.2%",
		500, ppt.Config{DisableScheduling: true}, false)
	ablation("fig18", "Ablation: buffer-aware flow identification",
		"paper: without identification, small avg/tail +4.3%/+31.9% (overall slightly lower)",
		500, ppt.Config{DisableIdentification: true}, false)

	register(&Experiment{
		ID:       "fig19",
		Title:    "Datapath processing overhead: PPT vs DCTCP (wall-clock per simulated packet)",
		DefFlows: 300,
		Run: func(o Options) *Result {
			fab := testbedFabric()
			load := 0.5
			if o.Load != 0 {
				load = o.Load
			}
			// Deliberately serial: this experiment measures wall-clock per
			// simulated event, which sharing cores with sibling cells would
			// distort. For the same reason it bypasses the result cache —
			// wall-ns-per-event is not a pure function of the spec, so a
			// replayed number would be meaningless and -cache-verify would
			// flag it forever.
			measure := func(sc scheme) Row {
				start := time.Now()
				sum, env := execute(runSpec{fab: fab, sc: sc, dist: workload.WebSearch,
					pattern: workload.AllToAll{N: fab.hosts}, load: load, flows: o.Flows, seed: o.Seed,
					sched: o.schedImpl()})
				elapsed := time.Since(start)
				events := env.Sched().Executed
				o.addEvents(events)
				return Row{Label: sc.name, Sum: sum, Extra: map[string]float64{
					"wall-ns-per-event": float64(elapsed.Nanoseconds()) / float64(events),
					"events":            float64(events),
				}}
			}
			all := baseSchemes()
			rows := []Row{measure(all["dctcp"]), measure(all["ppt"])}
			return &Result{ID: "fig19", Title: "per-event datapath cost (see also BenchmarkFig19*)",
				Rows:  rows,
				Notes: []string{"paper: PPT's kernel CPU overhead is <1% above DCTCP; here the analogous claim is a small per-event cost gap"}}
		},
	})

	register(&Experiment{
		ID:       "fig20",
		Title:    "Link utilization: PPT vs DCTCP vs hypothetical DCTCP (ideal 0.5)",
		DefFlows: 400,
		Run: func(o Options) *Result {
			p := newPool(o)
			rows := make([]Row, 3)
			p.submit("fig20 dctcp", func() (err error) {
				rows[0], err = utilizationRun(o, 0.5, "dctcp", 0)
				return err
			})
			p.submit("fig20 ppt", func() (err error) {
				rows[1], err = utilizationRun(o, 0.5, "ppt", 0)
				return err
			})
			p.submit("fig20 hypothetical", func() (err error) {
				rows[2], err = utilizationRun(o, 0.5, "", 1.0)
				return err
			})
			p.run()
			return &Result{ID: "fig20", Title: "bottleneck utilization under web search at 0.5 load",
				Rows:  rows,
				Notes: []string{"paper: PPT ~ hypothetical, both hold ~50%; DCTCP dips to ~25% (up to 1.8x lower)"}}
		},
	})

	register(&Experiment{
		ID:       "fig24",
		Title:    "RC3 with limited low-priority buffer (20%-80%) vs PPT",
		DefFlows: 400,
		Run: func(o Options) *Result {
			fab := simFabric(3, 2, 8)
			load := 0.5
			if o.Load != 0 {
				load = o.Load
			}
			pattern := workload.AllToAll{N: fab.hosts}
			p := newPool(o)
			var outs []*cellOut
			var names []string
			for _, frac := range []float64{0.2, 0.4, 0.6, 0.8} {
				frac := frac
				sc := scheme{
					name:  fmt.Sprintf("rc3-low%d%%", int(frac*100)),
					tweak: func(c *topo.Config) { c.LowClassCap = int64(frac * float64(c.PerPortBuffer)) },
					make:  func(*transport.Env) transport.Protocol { return rc3.Proto{} },
				}
				names = append(names, sc.name)
				outs = append(outs, p.submitSpec(sc.name, runSpec{fab: fab, sc: sc,
					dist: workload.WebSearch, pattern: pattern, load: load,
					flows: o.Flows, seed: o.Seed}))
			}
			pptRows := compareCells(p, o, fab, workload.WebSearch, pattern, load, []string{"ppt"})
			p.run()
			var rows []Row
			for i, out := range outs {
				rows = append(rows, Row{Label: names[i], Sum: out.sum})
			}
			rows = append(rows, pptRows()...)
			return &Result{ID: "fig24", Title: "RC3 low-priority buffer caps",
				Rows:  rows,
				Notes: []string{"paper: PPT beats RC3 at every cap, by up to 71% overall and 73%/75% small avg/tail"}}
		},
	})

	register(&Experiment{
		ID:       "fig25",
		Title:    "PPT vs PIAS and HPCC, Web Search, load 0.5",
		DefFlows: 500,
		Run: func(o Options) *Result {
			return &Result{ID: "fig25", Title: "vs information-agnostic scheduling and INT-based control",
				Rows:  simComparison(o, simFabric(3, 2, 8), workload.WebSearch, 0.5, []string{"pias", "hpcc", "ppt"}),
				Notes: []string{"paper: PPT beats PIAS by 24.6% overall (28.6%/46.9% small avg/tail) and HPCC by 4.7% (20%/38.2%)"}}
		},
	})

	register(&Experiment{
		ID:       "fig27",
		Title:    "PPT under different TCP send buffer sizes (Fig 27)",
		DefFlows: 400,
		Run: func(o Options) *Result {
			fab := simFabric(3, 2, 8)
			load := 0.5
			if o.Load != 0 {
				load = o.Load
			}
			pattern := workload.AllToAll{N: fab.hosts}
			p := newPool(o)
			var outs []*cellOut
			var names []string
			for _, buf := range []int64{128 << 10, 2 << 20, 4 << 20, 0 /* 2GB: unbounded */} {
				label := "sndbuf-2GB"
				if buf != 0 {
					label = fmt.Sprintf("sndbuf-%dKB", buf>>10)
				}
				cfg := ppt.Config{SendBuf: buf}
				names = append(names, label)
				outs = append(outs, p.submitSpec(label, runSpec{fab: fab, sc: pptScheme(label, cfg),
					dist: workload.WebSearch, pattern: pattern, load: load,
					flows: o.Flows, seed: o.Seed, sendBuf: buf}))
			}
			p.run()
			var rows []Row
			for i, out := range outs {
				rows = append(rows, Row{Label: names[i], Sum: out.sum})
			}
			return &Result{ID: "fig27", Title: "send-buffer sensitivity",
				Rows:  rows,
				Notes: []string{"paper: 128KB still beats proactive schemes on small flows; >=2MB recovers overall/large FCT too"}}
		},
	})

	register(&Experiment{
		ID:       "fig28",
		Title:    "Buffer occupancy by class under 60%/80% ECN thresholds (Fig 28)",
		DefFlows: 300,
		Run:      func(o Options) *Result { return bufferStudy(o, false) },
	})
	register(&Experiment{
		ID:       "fig29",
		Title:    "Transfer efficiency under 60%/80% ECN thresholds (Fig 29)",
		DefFlows: 300,
		Run:      func(o Options) *Result { return bufferStudy(o, true) },
	})
}

// bufferStudy runs the Fig 28/29 dumbbell: 2 senders, 40G, 120KB buffer,
// same ECN threshold for both classes at 60% and 80% of the buffer.
func bufferStudy(o Options, efficiency bool) *Result {
	load := 0.8
	if o.Load != 0 {
		load = o.Load
	}
	type cell struct {
		name, label string
		k           int64
	}
	var cells []cell
	for _, frac := range []float64{0.6, 0.8} {
		k := int64(frac * 120_000)
		for _, name := range []string{"dctcp", "rc3", "ppt"} {
			if !o.wants(name) {
				continue
			}
			cells = append(cells, cell{name, fmt.Sprintf("%s@K=%d%%", name, int(frac*100)), k})
		}
	}
	p := newPool(o)
	rows := make([]Row, len(cells))
	for i, c := range cells {
		i, c := i, c
		rows[i] = Row{Label: c.label}
		p.submit(c.label, func() error {
			sum, extra, err := o.cachedCell(
				bufStudyDesc(c.name, c.k, load, o.Flows, o.Seed, efficiency),
				func() (stats.Summary, map[string]float64) {
					return runBufferCell(o, c.name, c.k, load, efficiency)
				})
			if err != nil {
				return err
			}
			rows[i] = Row{Label: c.label, Sum: sum, Extra: extra}
			return nil
		})
	}
	p.run()
	title := "per-class buffer occupancy"
	notes := []string{"paper: PPT's low-priority queue holds only 2.6-3.1% of occupancy; RC3's holds 17.4-30.2%"}
	id := "fig28"
	if efficiency {
		id = "fig29"
		title = "transfer efficiency (useful/sent)"
		notes = []string{"paper: PPT ~ DCTCP; RC3 loses 14.6-18.4% overall and ~50% on the low-priority loop"}
	}
	return &Result{ID: id, Title: title, Rows: rows, Notes: notes}
}

// runBufferCell is one bufferStudy cell: a fresh dumbbell with the given
// shared ECN threshold, a buffer-occupancy sampler on the bottleneck,
// and one scheme driven to completion. Runs inside the cell cache
// (bufStudyDesc), so everything it returns must come from this one
// computation.
func runBufferCell(o Options, name string, k int64, load float64, efficiency bool) (stats.Summary, map[string]float64) {
	sc := baseSchemes()[name]
	fab := dumbbellFabric(2, k)
	fab.cfg.ECNLowK = k // same threshold for both classes (per the paper)
	cfg := fab.cfg
	cfg.Sched = o.schedImpl()
	if sc.tweak != nil {
		sc.tweak(&cfg)
	}
	net := fab.build(cfg)
	env := transport.NewEnv(net)
	env.RTOMin = fab.rtoMin
	bs := stats.SampleBuffers(env.Sched(), net.Switches[0].Port(0), 20*sim.Microsecond)
	flows := makeFlows(cfg, workload.WebSearch, workload.Incast{N: 3, Target: 0}, load, o.Flows, o.Seed)
	sum := transport.Run(env, sc.make(env), flows, transport.RunConfig{})
	o.addEvents(env.Sched().Executed)
	bs.Stop()
	hi, lo := bs.MeanOccupancy()
	if efficiency {
		return sum, map[string]float64{
			"transfer-eff": env.Eff.Overall(),
			"low-eff":      env.Eff.LowLoop(),
		}
	}
	return sum, map[string]float64{
		"high-occ-KB": hi / 1000,
		"low-occ-KB":  lo / 1000,
	}
}
