package exp

import (
	"fmt"

	"ppt/internal/workload"
)

// testbedSchemes are the four transports the CloudLab experiments
// compare (§6.1).
var testbedSchemes = []string{"homa", "rc3", "dctcp", "ppt"}

// loadSweep runs the 15-to-15 pattern across loads for one workload.
// All (load × scheme × repeat) cells go into one pool.
func loadSweep(o Options, dist *workload.Dist, loads []float64) []Row {
	fab := testbedFabric()
	p := newPool(o)
	type point struct {
		load   float64
		reduce func() []Row
	}
	var points []point
	for _, load := range loads {
		if o.Load != 0 {
			load = o.Load
		}
		points = append(points, point{load,
			compareCells(p, o, fab, dist, workload.AllToAll{N: fab.hosts}, load, testbedSchemes)})
		if o.Load != 0 {
			break
		}
	}
	p.run()
	var rows []Row
	for _, pt := range points {
		for _, r := range pt.reduce() {
			r.Label = fmt.Sprintf("%s@%.1f", r.Label, pt.load)
			rows = append(rows, r)
		}
	}
	return rows
}

func init() {
	register(&Experiment{
		ID:       "fig8",
		Title:    "[Testbed] 15-to-15, Web Search, loads 0.3/0.5/0.8",
		DefFlows: 300,
		Run: func(o Options) *Result {
			return &Result{ID: "fig8", Title: "testbed 15-to-15 web search",
				Rows:  loadSweep(o, workload.WebSearch, []float64{0.3, 0.5, 0.8}),
				Notes: []string{"paper: PPT cuts overall avg FCT by up to 79.7%/82.3%/98.1% vs Homa-Linux/RC3/DCTCP"}}
		},
	})
	register(&Experiment{
		ID:       "fig9",
		Title:    "[Testbed] 15-to-15, Data Mining, loads 0.3/0.5/0.8",
		DefFlows: 200,
		Run: func(o Options) *Result {
			return &Result{ID: "fig9", Title: "testbed 15-to-15 data mining",
				Rows:  loadSweep(o, workload.DataMining, []float64{0.3, 0.5, 0.8}),
				Notes: []string{"paper: PPT cuts overall avg FCT by up to 28.9%/17.6%/96% vs Homa-Linux/RC3/DCTCP"}}
		},
	})
	register(&Experiment{
		ID:       "fig10",
		Title:    "[Testbed] 14-to-1 incast, Web Search, load 0.5",
		DefFlows: 300,
		Run: func(o Options) *Result {
			fab := testbedFabric()
			load := 0.5
			if o.Load != 0 {
				load = o.Load
			}
			rows := compare(o, fab, workload.WebSearch, workload.Incast{N: fab.hosts, Target: 0}, load, testbedSchemes)
			return &Result{ID: "fig10", Title: "testbed 14-to-1 web search",
				Rows:  rows,
				Notes: []string{"paper: PPT cuts overall avg FCT by 74.8%/92.7%/95.5% vs Homa-Linux/RC3/DCTCP"}}
		},
	})
	register(&Experiment{
		ID:       "fig11",
		Title:    "[Testbed] 14-to-1 incast, Data Mining, load 0.5",
		DefFlows: 200,
		Run: func(o Options) *Result {
			fab := testbedFabric()
			load := 0.5
			if o.Load != 0 {
				load = o.Load
			}
			rows := compare(o, fab, workload.DataMining, workload.Incast{N: fab.hosts, Target: 0}, load, testbedSchemes)
			return &Result{ID: "fig11", Title: "testbed 14-to-1 data mining",
				Rows:  rows,
				Notes: []string{"paper: PPT cuts overall avg FCT by 32%/23.4%/94% vs Homa-Linux/RC3/DCTCP"}}
		},
	})
}
