package exp

import (
	"math/rand"
	"testing"

	"ppt/internal/workload"
)

// TestFastPathDifferential is the randomized equivalence proof for the
// fused cut-through port pipeline (DESIGN.md §7.6): for randomly drawn
// (scheme, flows, load, seed) cells on the monolithic pooled fabrics —
// the testbed star and the dumbbell microbenchmark, where the fast path
// actually engages — a fused run and a -fastpath=off run must produce an
// identical summary and identical efficiency counters, while the fused
// run executes strictly fewer scheduler events. Partitioned fabrics are
// deliberately absent: LeafSpine forces the pre-fusion legacy pipeline
// on every port when sharded (see topo.LeafSpine), so a differential
// there would compare the legacy path against itself.
func TestFastPathDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many randomized simulation cells")
	}
	rng := rand.New(rand.NewSource(42))
	all := baseSchemes()
	schemes := []string{"ppt", "dctcp", "tcp10"}
	dists := []*workload.Dist{workload.WebSearch, workload.DataMining}
	fabs := []fabric{testbedFabric(), dumbbellFabric(8, 120_000)}

	var fusedEvents, classicEvents uint64
	trials := 4
	if raceEnabled {
		trials = 1
	}
	for trial := 0; trial < trials; trial++ {
		fab := fabs[trial%len(fabs)]
		spec := runSpec{
			fab:     fab,
			sc:      all[schemes[rng.Intn(len(schemes))]],
			dist:    dists[rng.Intn(len(dists))],
			pattern: workload.AllToAll{N: fab.hosts},
			load:    0.4 + 0.1*float64(rng.Intn(3)),
			flows:   100 + rng.Intn(200),
			seed:    1 + rng.Int63n(1000),
		}

		fusedSum, fusedEnv := execute(spec)
		off := spec
		off.noFastPath = true
		offSum, offEnv := execute(off)

		if fusedSum != offSum {
			t.Errorf("trial %d (%s on %s flows=%d load=%g seed=%d): fused summary diverged from -fastpath=off\nfused: %+v\noff:   %+v",
				trial, spec.sc.name, fab.name, spec.flows, spec.load, spec.seed, fusedSum, offSum)
		}
		if fusedEnv.Eff != offEnv.Eff {
			t.Errorf("trial %d (%s on %s flows=%d load=%g seed=%d): fused efficiency counters diverged from -fastpath=off\nfused: %+v\noff:   %+v",
				trial, spec.sc.name, fab.name, spec.flows, spec.load, spec.seed, fusedEnv.Eff, offEnv.Eff)
		}
		fe, oe := fusedEnv.Net.Executed(), offEnv.Net.Executed()
		if fe >= oe {
			t.Errorf("trial %d (%s on %s): fused run executed %d events, -fastpath=off %d; fusion must cost fewer",
				trial, spec.sc.name, fab.name, fe, oe)
		}
		fusedEvents += fe
		classicEvents += oe
	}
	if classicEvents == 0 {
		t.Fatal("no events executed")
	}
	saved := 1 - float64(fusedEvents)/float64(classicEvents)
	if saved < 0.10 {
		t.Fatalf("fusion saved only %.1f%% of events (%d vs %d); expected a material reduction on monolithic pooled fabrics",
			100*saved, fusedEvents, classicEvents)
	}
	t.Logf("fused %d events vs classic %d (%.1f%% saved)", fusedEvents, classicEvents, 100*saved)
}
