package exp

import (
	"math/rand"
	"testing"

	"ppt/internal/sim"
	"ppt/internal/workload"
)

// TestShardedDifferential is the randomized equivalence proof for the
// conservative windowed engine (DESIGN.md §7.3): for a batch of
// randomly drawn (scheme, flows, load, seed) cells on the
// oversubscribed leaf-spine fabric, every combination of shard hint
// (worker count) and event-queue implementation must produce an
// identical summary and identical efficiency counters — the
// determinism claim behind `-shards` being a pure performance knob.
// The workload is sized so the compared runs execute well over two
// million scheduler events in total, asserted at the end so a silently
// shrunken workload fails loudly instead of hollowing out the
// guarantee.
//
// The monolithic engine (Config.Shards == 0) is deliberately NOT part
// of this matrix: at same-instant cross-shard arrival ties the windowed
// engine merges in canonical (time, srcShard, seq) order while the
// monolithic scheduler uses global insertion order, so the two engines
// are each deterministic but order packets at exact ties differently —
// the standard conservative-PDES property. Agreement at the golden
// workload sizes is pinned by TestGoldenOutputs, whose files predate
// the windowed engine.
func TestShardedDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many randomized simulation cells")
	}
	rng := rand.New(rand.NewSource(42))
	all := baseSchemes()
	schemes := []string{"ppt", "dctcp", "tcp10"}
	dists := []*workload.Dist{workload.WebSearch, workload.DataMining}
	fab := simFabric(3, 2, 8)

	var totalEvents uint64
	trials := 4
	if raceEnabled {
		// The race detector slows these memory-heavy cells 10-20x; one
		// trial still exercises every (shards, sched) combination below
		// on tens of millions of events and keeps `go test -race ./...`
		// inside the default package timeout.
		trials = 1
	}
	for trial := 0; trial < trials; trial++ {
		spec := runSpec{
			fab:     fab,
			sc:      all[schemes[rng.Intn(len(schemes))]],
			dist:    dists[rng.Intn(len(dists))],
			pattern: workload.AllToAll{N: fab.hosts},
			load:    0.4 + 0.1*float64(rng.Intn(3)),
			flows:   100 + rng.Intn(200),
			seed:    1 + rng.Int63n(1000),
		}

		base := spec
		base.shards = 1
		base.sched = sim.Wheel
		baseSum, baseEnv := execute(base)
		totalEvents += baseEnv.Net.Executed()
		if baseEnv.Net.Part == nil {
			t.Fatalf("trial %d: shards=1 did not build a partitioned fabric", trial)
		}

		for _, v := range []struct {
			shards int
			sched  sim.Impl
		}{
			{2, sim.Wheel},
			{4, sim.Heap},
			{8, sim.Wheel},
			{1, sim.Heap},
		} {
			alt := spec
			alt.shards = v.shards
			alt.sched = v.sched
			altSum, altEnv := execute(alt)
			totalEvents += altEnv.Net.Executed()
			if baseSum != altSum {
				t.Errorf("trial %d (%s flows=%d load=%g seed=%d): shards=%d sched=%v summary diverged from shards=1 wheel\nbase: %+v\nalt:  %+v",
					trial, spec.sc.name, spec.flows, spec.load, spec.seed, v.shards, v.sched, baseSum, altSum)
			}
			if baseEnv.Eff != altEnv.Eff {
				t.Errorf("trial %d (%s flows=%d load=%g seed=%d): shards=%d sched=%v efficiency counters diverged from shards=1 wheel\nbase: %+v\nalt:  %+v",
					trial, spec.sc.name, spec.flows, spec.load, spec.seed, v.shards, v.sched, baseEnv.Eff, altEnv.Eff)
			}
		}
	}
	const minEvents = 2_000_000
	if totalEvents < minEvents {
		t.Fatalf("differential compared only %d scheduler events; want >= %d — grow the trial sizes", totalEvents, minEvents)
	}
	t.Logf("compared %d scheduler events across %d trials", totalEvents, trials)
}
