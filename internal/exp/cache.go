package exp

import (
	"fmt"
	"math"

	"ppt/internal/bufaware"
	"ppt/internal/cache"
	"ppt/internal/stats"
	"ppt/internal/topo"
	"ppt/internal/workload"
)

// This file builds the canonical cell descriptors the result cache
// hashes into content addresses (DESIGN.md §7.8). The ground rule:
// a descriptor names every input that can change a cell's Summary or
// extras, and nothing else. Engine knobs — scheduler implementation,
// shard count, worker count, streaming, spill chunk, fast path — are
// deliberately ABSENT: nine PRs of golden-matrix pinning prove them
// outcome-invisible, so a result computed at -shards=4 -sched=heap
// must hit when replayed at -shards=1 -sched=wheel. That exclusion is
// itself pinned by TestCacheKeyExcludesEngineKnobs.
//
// Scheme-name invariant: a scheme's name uniquely determines its
// protocol constructor and parameters (ablation variants carry
// distinct ppt.Proto names, fig24/fig27 bake the swept parameter into
// the label), so name + post-tweak switch config is a complete scheme
// identity. A new scheme whose name doesn't pin its parameters must
// encode them in the name (as fig24/fig27 do) or extend specDesc.

// canonCfg renders the post-tweak switch config with the engine knobs
// zeroed, so the descriptor captures exactly the outcome-relevant
// switch behaviour. %+v over the flat struct is stable because field
// order is source order and every field is a scalar; adding a Config
// field changes every descriptor, which safely invalidates (keys just
// stop matching old entries).
func canonCfg(cfg topo.Config) string {
	cfg.Sched = 0
	cfg.Shards = 0
	cfg.NoFastPath = false
	cfg.LegacyPipeline = false
	return fmt.Sprintf("%+v", cfg)
}

// f64 renders a float64 by its IEEE-754 bits: exact, and distinguishes
// everything == conflates (-0 vs +0, NaN payloads).
func f64(x float64) string { return fmt.Sprintf("%#x", math.Float64bits(x)) }

// fabDesc names a fabric: builder shape (two builders can share name
// and config but wire different topologies), post-tweak config, and
// the RTO floor the transport layer derives from it.
func fabDesc(fab fabric, cfg topo.Config) string {
	return fmt.Sprintf("fabric=%s shape=%s hosts=%d rtoMin=%d cfg={%s}",
		fab.name, fab.shape, fab.hosts, int64(fab.rtoMin), canonCfg(cfg))
}

func patternDesc(p workload.Pattern) string { return fmt.Sprintf("%T%+v", p, p) }

// specDesc is the canonical descriptor of one execute() cell.
func specDesc(spec runSpec) string {
	cfg := spec.fab.cfg
	if spec.sc.tweak != nil {
		spec.sc.tweak(&cfg)
	}
	app := spec.app
	if app.Name == "" {
		// Zero value and explicit Bulk are the same execution.
		app = bufaware.Bulk
	}
	return fmt.Sprintf("kind=spec\n%s\nscheme=%s\ndist=%s\npattern=%s\nload=%s\nflows=%d\nseed=%d\nsendbuf=%d\napp=%s/p=%s/chunk=%d\n",
		fabDesc(spec.fab, cfg), spec.sc.name, spec.dist.Name, patternDesc(spec.pattern),
		f64(spec.load), spec.flows, spec.seed, spec.sendBuf,
		app.Name, f64(app.WholeMsgProb), app.ChunkBytes)
}

// oracleDesc describes a two-pass hypothetical-DCTCP cell (fig2/fig3):
// the oracle is parameterized by its fill fraction on top of the shared
// workload inputs.
func oracleDesc(fab fabric, dist *workload.Dist, pattern workload.Pattern, load float64, flows int, seed int64, frac float64) string {
	return fmt.Sprintf("kind=oracle\n%s\ndist=%s\npattern=%s\nload=%s\nflows=%d\nseed=%d\nfrac=%s\n",
		fabDesc(fab, fab.cfg), dist.Name, patternDesc(pattern), f64(load), flows, seed, f64(frac))
}

// utilDesc describes a fig1/fig20 utilization cell: one scheme (or the
// oracle) on the 2-sender dumbbell with the downlink sampler.
func utilDesc(fab fabric, load float64, flows int, seed int64, schemeName string, oracleFrac float64) string {
	return fmt.Sprintf("kind=util\n%s\nscheme=%s\noracleFrac=%s\nload=%s\nflows=%d\nseed=%d\n",
		fabDesc(fab, fab.cfg), schemeName, f64(oracleFrac), f64(load), flows, seed)
}

// bufStudyDesc describes a fig28/fig29 cell: scheme × shared-ECN
// threshold on the 2-sender dumbbell, with the occupancy sampler. The
// efficiency flag selects which extras the row reports, so it is part
// of the outcome.
func bufStudyDesc(name string, k int64, load float64, flows int, seed int64, efficiency bool) string {
	return fmt.Sprintf("kind=bufstudy\nscheme=%s\necnK=%d\nload=%s\nflows=%d\nseed=%d\nefficiency=%t\n",
		name, k, f64(load), flows, seed, efficiency)
}

// cachedCell answers one custom (non-submitSpec) cell through the
// result cache: compute runs only on a miss (or in verify mode), and
// its (summary, extras) pair is the cached value. With no cache
// configured it is a plain call. A verify-mode divergence comes back
// as an error — the caller fails the cell, and pptsim turns the
// mismatch count into a non-zero exit.
func (o Options) cachedCell(desc string, compute func() (stats.Summary, map[string]float64)) (stats.Summary, map[string]float64, error) {
	if o.Cache == nil {
		sum, extra := compute()
		return sum, extra, nil
	}
	key := o.Cache.NewKey(desc)
	v, out := o.Cache.Do(key, o.CacheVerify, func() cache.Value {
		sum, extra := compute()
		return cache.Value{Sum: sum, Extra: extra}
	})
	if out.Mismatch {
		return v.Sum, v.Extra, fmt.Errorf("cache verify mismatch: stored entry %s diverges from fresh execution (cell %q)", key, firstLine(desc))
	}
	return v.Sum, v.Extra, nil
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
