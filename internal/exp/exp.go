// Package exp contains one registered experiment per table and figure in
// the paper's evaluation, each reproducible from the pptsim CLI or the
// root bench harness. Experiments build a fresh fabric per scheme,
// generate a workload, run it to completion, and report the paper's FCT
// breakdown (overall average, small-flow average/p99, large-flow
// average) plus experiment-specific extras.
package exp

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ppt/internal/cache"
	"ppt/internal/sim"
	"ppt/internal/stats"
	"ppt/internal/transport"
)

// Options scale and filter an experiment run.
type Options struct {
	// Flows scales the workload (0 = experiment default).
	Flows int
	// Load overrides the network load where meaningful (0 = default).
	Load float64
	// Seed randomizes workloads (default 1).
	Seed int64
	// Schemes, when non-empty, restricts comparison experiments to the
	// named schemes.
	Schemes []string
	// Repeats, when > 1, averages each scheme's metrics over this many
	// independent seeds (seed, seed+1, ...). Percentiles are averaged
	// across repeats (a mean-of-p99s, not a pooled p99).
	Repeats int
	// Parallel caps how many simulation cells run concurrently
	// (0 = GOMAXPROCS, 1 = serial). Every cell builds a private fabric
	// and scheduler, and rows are assembled from index-addressed slots in
	// submission order, so results are identical at any setting.
	Parallel int
	// OnProgress, when set, observes each completed cell as (done,
	// total). Calls are serialized but may come from worker goroutines.
	OnProgress func(done, total int)
	// Sched selects the event-queue implementation every cell's
	// scheduler uses: "wheel" (default, also ""), or "heap". Results are
	// byte-identical either way (pinned by the golden tests); the knob
	// exists for perf A/Bs. Validated by RunByID.
	Sched string
	// Shards sets the logical shard count hint for partitionable
	// fabrics (0 = default 1). On leaf-spine fabrics running shardable
	// protocols it enables the conservative windowed engine and caps the
	// worker goroutines per cell at min(Shards, shards-in-topology);
	// results are byte-identical at every setting >= 1 (pinned by the
	// golden matrix). Star/dumbbell fabrics and non-shardable protocols
	// ignore it. Validated by RunByID.
	Shards int
	// Stream feeds every cell's workload through a lazy FlowSource —
	// flows are generated (and assigned their first-syscall size) one at
	// a time as the simulation consumes them — instead of materializing
	// the whole trace up front. Results are byte-identical to the
	// materialized path at every engine setting (pinned by the streamed
	// golden test); the knob exists so million-flow workloads cost one
	// flow of memory, not the trace.
	Stream bool
	// StrictShards makes a Shards > 1 request on a fabric that cannot
	// partition (single-switch star/dumbbell topologies) fail the cell
	// with a clear error instead of silently running monolithic. The
	// CLI sets it for explicit -shards requests; the API default stays
	// permissive so experiment matrices can sweep Shards uniformly.
	StrictShards bool
	// NoFastPath disables the fused cut-through port pipeline in every
	// cell (the -fastpath=off escape hatch). Results are byte-identical
	// either way (pinned by the fused differential); the knob exists so
	// regressions can be bisected to the fast path in one rerun.
	NoFastPath bool
	// Cache, when non-nil, answers cells content-addressed from the
	// result cache: each cell's canonical descriptor (outcome-relevant
	// inputs only — never the engine knobs above, which the golden
	// matrix pins as outcome-invisible) is hashed to a key, hits replay
	// the stored Summary+extras without simulating, and misses store
	// their result for the next run (DESIGN.md §7.8). Identical cells
	// inside one run are computed once and shared (singleflight).
	Cache *cache.Cache
	// CacheVerify makes every cache hit recompute the cell anyway and
	// byte-compare the stored entry against the fresh result — a
	// determinism tripwire. A divergence fails the cell (surfaced as a
	// note) and counts in the cache stats' Mismatches.
	CacheVerify bool

	// errs accumulates failed cells; RunByID surfaces them as notes.
	errs *errSink
	// events accumulates scheduler events executed across all cells
	// (atomically — cells run on worker goroutines); RunByID surfaces the
	// total as Result.Events for throughput (events/sec) reporting.
	events *uint64
	// sharding accumulates windowed-engine instrumentation across every
	// sharded cell; RunByID surfaces the sum as Result.Sharding.
	sharding *shardAgg
}

// shardAgg folds per-cell ShardStats under a lock (cells run on worker
// goroutines).
type shardAgg struct {
	mu sync.Mutex
	st *transport.ShardStats
}

func (a *shardAgg) add(st *transport.ShardStats) {
	if a == nil || st == nil {
		return
	}
	a.mu.Lock()
	if a.st == nil {
		a.st = &transport.ShardStats{}
	}
	a.st.Merge(st)
	a.mu.Unlock()
}

func (o Options) withDefaults(defFlows int) Options {
	if o.Flows == 0 {
		o.Flows = defFlows
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Repeats == 0 {
		o.Repeats = 1
	}
	if o.Shards == 0 {
		o.Shards = 1
	}
	if o.errs == nil {
		o.errs = &errSink{}
	}
	if o.events == nil {
		o.events = new(uint64)
	}
	if o.sharding == nil {
		o.sharding = &shardAgg{}
	}
	return o
}

// schedImpl maps the validated Sched option onto the engine selector.
func (o Options) schedImpl() sim.Impl {
	impl, err := sim.ParseImpl(o.Sched)
	if err != nil {
		// RunByID rejects bad values before any cell runs; reaching this
		// from elsewhere is a programming error.
		panic(err)
	}
	return impl
}

// addEvents folds one scheduler's executed-event count into the
// experiment-wide total. Safe from worker goroutines.
func (o Options) addEvents(n uint64) {
	if o.events != nil {
		atomic.AddUint64(o.events, n)
	}
}

func (o Options) wants(scheme string) bool {
	if len(o.Schemes) == 0 {
		return true
	}
	for _, s := range o.Schemes {
		if s == scheme {
			return true
		}
	}
	return false
}

// Row is one line of an experiment's table.
type Row struct {
	Label string
	Sum   stats.Summary
	// Extra carries experiment-specific metrics (utilization,
	// occupancy, efficiency, accuracy...).
	Extra map[string]float64
}

// Result is a completed experiment.
type Result struct {
	ID    string
	Title string
	Rows  []Row
	Notes []string

	// Events is the total number of scheduler events executed across
	// every simulation cell of this run — the engine-throughput
	// denominator for events/sec benchmarking. Deliberately excluded
	// from Render/CSV so golden outputs stay engine-agnostic.
	Events uint64 `json:",omitempty"`

	// Sharding is the windowed engine's instrumentation summed over
	// every sharded cell (nil when no cell ran windowed). Like Events
	// it is JSON-only — excluded from Render/CSV so golden outputs stay
	// engine-agnostic.
	Sharding *transport.ShardStats `json:",omitempty"`

	// Cache is this run's slice of the result-cache accounting (nil when
	// no cache was configured): hits/misses/stores/verifies are deltas
	// over the run, Bytes is the directory's absolute size. JSON-only
	// like Events/Sharding — cache state must never leak into Render/CSV,
	// whose bytes are compared against fresh output by the warm-cache CI
	// job.
	Cache *cache.Stats `json:",omitempty"`
}

// CSV renders the result rows as comma-separated values (times in
// microseconds) for external plotting.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString("experiment,scheme,overall_avg_us,small_avg_us,small_p99_us,large_avg_us,flows")
	extraKeys := map[string]bool{}
	for _, row := range r.Rows {
		for k := range row.Extra {
			extraKeys[k] = true
		}
	}
	keys := make([]string, 0, len(extraKeys))
	for k := range extraKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, ",%s", k)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%s,%.3f,%.3f,%.3f,%.3f,%d",
			r.ID, row.Label, row.Sum.OverallAvg.Micros(), row.Sum.SmallAvg.Micros(),
			row.Sum.SmallP99.Micros(), row.Sum.LargeAvg.Micros(), row.Sum.Flows)
		for _, k := range keys {
			if v, ok := row.Extra[k]; ok {
				fmt.Fprintf(&b, ",%g", v)
			} else {
				b.WriteByte(',')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Render formats the result as the paper-style text table.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	hasFCT := false
	for _, row := range r.Rows {
		if row.Sum.Flows > 0 {
			hasFCT = true
			break
		}
	}
	if hasFCT {
		fmt.Fprintf(&b, "%-22s %12s %12s %12s %12s %7s\n",
			"scheme", "overall-avg", "small-avg", "small-p99", "large-avg", "flows")
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "%-22s %12s %12s %12s %12s %7d",
				row.Label, fmtT(row.Sum.OverallAvg), fmtT(row.Sum.SmallAvg),
				fmtT(row.Sum.SmallP99), fmtT(row.Sum.LargeAvg), row.Sum.Flows)
			b.WriteString(extras(row.Extra))
			b.WriteByte('\n')
		}
	} else {
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "%-22s", row.Label)
			b.WriteString(extras(row.Extra))
			b.WriteByte('\n')
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func fmtT(t sim.Time) string {
	if t == 0 {
		return "-"
	}
	return t.String()
}

func extras(m map[string]float64) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "  %s=%.4g", k, m[k])
	}
	return b.String()
}

// Experiment is one registered table/figure reproduction.
type Experiment struct {
	ID    string
	Title string
	// DefFlows is the default workload size.
	DefFlows int
	Run      func(o Options) *Result
}

var registry = map[string]*Experiment{}

func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (*Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (try `pptsim -list`)", id)
	}
	return e, nil
}

// List returns all experiments sorted by id.
func List() []*Experiment {
	out := make([]*Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return natLess(out[i].ID, out[j].ID) })
	return out
}

// natLess orders fig2 before fig10.
func natLess(a, b string) bool {
	pa, na := splitNat(a)
	pb, nb := splitNat(b)
	if pa != pb {
		return pa < pb
	}
	if na != nb {
		return na < nb
	}
	return a < b
}

func splitNat(s string) (string, int) {
	i := 0
	for i < len(s) && (s[i] < '0' || s[i] > '9') {
		i++
	}
	n := 0
	for j := i; j < len(s) && s[j] >= '0' && s[j] <= '9'; j++ {
		n = n*10 + int(s[j]-'0')
	}
	return s[:i], n
}

// RunByID runs one experiment by id.
func RunByID(id string, o Options) (*Result, error) {
	e, err := Get(id)
	if err != nil {
		return nil, err
	}
	if _, err := sim.ParseImpl(o.Sched); err != nil {
		return nil, err
	}
	if o.Shards < 0 {
		return nil, fmt.Errorf("exp: invalid shard count %d (want >= 1, or 0 for the default)", o.Shards)
	}
	o = o.withDefaults(e.DefFlows)
	if o.CacheVerify && o.Cache == nil {
		return nil, fmt.Errorf("exp: CacheVerify requires a Cache")
	}
	var cacheBefore cache.Stats
	if o.Cache != nil {
		cacheBefore = o.Cache.Stats()
	}
	res := e.Run(o)
	for _, msg := range o.errs.drain() {
		res.Notes = append(res.Notes, "cell failed: "+msg)
	}
	res.Events = atomic.LoadUint64(o.events)
	res.Sharding = o.sharding.st
	if o.Cache != nil {
		d := o.Cache.Stats().Delta(cacheBefore)
		res.Cache = &d
	}
	return res, nil
}
