package exp

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Regenerate with: go test ./internal/exp -run TestGolden -update-golden
//
// Do NOT regenerate casually: these files pin the exact simulated
// outcomes (tables and CSV) of a representative experiment slice. Any
// engine or datapath optimization must keep them byte-identical; only a
// deliberate, reviewed behaviour change may refresh them. (The windowed
// sharded engine landed without a refresh: its deferred cross-shard
// teardown is outcome-invisible at these workloads because the
// lookahead window is far below RTO_min.)
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden experiment outputs")

// goldenCases covers every transport and every special port behaviour:
// fig8 (testbed star, shared buffer, dynamic thresholds; homa/rc3/dctcp/
// ppt with repeats), fig12 (leaf-spine ECMP; ndp trimming + aeolus
// selective drop), fig14 (delay-based swift pair), extb (HPCC INT
// telemetry pair), reactive (tcp10/halfback/pias + hpcc INT), proactive
// (expresspass + line-rate bursts).
var goldenCases = []struct {
	id   string
	opts Options
}{
	{"fig8", Options{Flows: 20, Seed: 3, Repeats: 2}},
	{"fig12", Options{Flows: 24, Seed: 1}},
	{"fig14", Options{Flows: 24, Seed: 2}},
	{"extb", Options{Flows: 20, Seed: 1}},
	{"reactive", Options{Flows: 20, Seed: 5}},
	{"proactive", Options{Flows: 20, Seed: 5}},
}

// TestGoldenOutputs is the engine-equivalence guarantee: optimizations
// to the scheduler, packet pooling, or queueing must not change a single
// simulated outcome. It renders each case's table and CSV across the
// full engine matrix — serially and on the 4-wide worker pool, under
// both the heap and the timing-wheel scheduler, at shard hints 1, 2 and
// 4 — and requires every run to match the checked-in golden output byte
// for byte. The goldens were generated on the original (pre-wheel) heap
// engine, so this matrix is also the proof that the wheel pops events
// in exactly the heap's (time, seq) order, and that the conservative
// windowed engine's worker count is invisible to simulated outcomes.
func TestGoldenOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several experiments")
	}
	for _, tc := range goldenCases {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			t.Parallel()
			render := func(parallel int, sched string, shards int) string {
				o := tc.opts
				o.Parallel = parallel
				o.Sched = sched
				o.Shards = shards
				res, err := RunByID(tc.id, o)
				if err != nil {
					t.Fatal(err)
				}
				return res.Render() + "\n--- csv ---\n" + res.CSV()
			}
			serial := render(1, "wheel", 1)
			for _, shards := range []int{1, 2, 4} {
				for _, sched := range []string{"wheel", "heap"} {
					for _, parallel := range []int{1, 4} {
						if shards == 1 && sched == "wheel" && parallel == 1 {
							continue // the base render above
						}
						name := sched + "/" + map[int]string{1: "serial", 4: "parallel"}[parallel]
						if got := render(parallel, sched, shards); got != serial {
							t.Fatalf("%s: %s shards=%d output differs from wheel/serial shards=1:\n--- base ---\n%s\n--- %s shards=%d ---\n%s",
								tc.id, name, shards, serial, name, shards, got)
						}
					}
				}
			}
			path := filepath.Join("testdata", "golden_"+tc.id+".txt")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(serial), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (generate with -update-golden): %v", err)
			}
			if serial != string(want) {
				t.Errorf("%s: output differs from golden %s.\nThe engine changed a simulated outcome.\n--- got ---\n%s\n--- want ---\n%s",
					tc.id, path, serial, string(want))
			}
		})
	}
}
