package exp

import (
	"os"
	"path/filepath"
	"testing"

	"ppt/internal/bufaware"
	"ppt/internal/workload"
)

// TestStreamedExecuteMatchesMaterialized is the exp-level streamed-vs-
// materialized differential: the same cell spec through the lazy
// FlowSource (with and without a spilling collector) must produce the
// byte-identical summary the materialized path does. This pins both
// halves of the streaming pipeline at once — the generator+classifier
// RNG consumption order, and the spill fold — through a real transport.
func TestStreamedExecuteMatchesMaterialized(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three full cells")
	}
	fab := simFabric(3, 2, 8)
	// The memcached app model draws the classifier RNG per flow with
	// a real chunking probability, so any divergence in draw order
	// between AssignFirstCalls and the stream shows up immediately.
	base := runSpec{
		fab: fab, sc: baseSchemes()["ppt"], dist: workload.MemcachedW1,
		pattern: workload.AllToAll{N: fab.hosts}, load: 0.5,
		flows: 1500, seed: 3, app: bufaware.Memcached, sendBuf: 1 << 20,
	}
	want, _ := execute(base)
	if want.Flows != 1500 || want.Truncated {
		t.Fatalf("reference cell did not complete: %+v", want)
	}

	st := base
	st.stream = true
	if got, _ := execute(st); got != want {
		t.Fatalf("streamed summary %+v != materialized %+v", got, want)
	}

	sp := st
	sp.spillChunk = 64
	got, env := execute(sp)
	if got != want {
		t.Fatalf("streamed+spilled summary %+v != materialized %+v", got, want)
	}
	if peak := env.Collector.ResidentPeak(); peak > 64 {
		t.Fatalf("resident peak %d exceeds spill chunk 64", peak)
	}
	if env.Collector.SpilledRecords() == 0 {
		t.Fatal("nothing spilled at chunk 64 with 1500 flows")
	}
}

// TestGoldenStreamed re-renders the golden experiment slice with
// Options.Stream set — serially on the monolithic/windowed single-
// worker path and 4-wide on the 4-shard windowed path — and requires
// byte-identical output to the checked-in goldens. Together with
// TestGoldenOutputs this proves streaming is invisible to simulated
// outcomes across the whole engine matrix.
func TestGoldenStreamed(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several experiments")
	}
	for _, tc := range goldenCases {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			t.Parallel()
			want, err := os.ReadFile(filepath.Join("testdata", "golden_"+tc.id+".txt"))
			if err != nil {
				t.Fatalf("missing golden file (generate with -update-golden): %v", err)
			}
			for _, m := range []struct {
				parallel, shards int
			}{{1, 1}, {4, 4}} {
				o := tc.opts
				o.Stream = true
				o.Parallel = m.parallel
				o.Shards = m.shards
				res, err := RunByID(tc.id, o)
				if err != nil {
					t.Fatal(err)
				}
				got := res.Render() + "\n--- csv ---\n" + res.CSV()
				if got != string(want) {
					t.Fatalf("streamed parallel=%d shards=%d output differs from golden:\n--- got ---\n%s\n--- want ---\n%s",
						m.parallel, m.shards, got, want)
				}
			}
		})
	}
}

// TestScale1MSpills smoke-runs the scale family's experiment just past
// its spill chunk and checks the bounded-memory contract surfaces in
// the result rows.
func TestScale1MSpills(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an 80k-flow cell")
	}
	res, err := RunByID("scale1M", Options{Flows: scale1MSpillChunk + 15_000, Schemes: []string{"dctcp"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %+v, want one dctcp row", res.Rows)
	}
	row := res.Rows[0]
	if row.Sum.Flows != scale1MSpillChunk+15_000 || row.Sum.Truncated {
		t.Fatalf("cell did not complete: %+v", row.Sum)
	}
	if peak := row.Extra["resident_peak"]; peak <= 0 || peak > scale1MSpillChunk {
		t.Fatalf("resident_peak = %g, want in (0, %d]", peak, scale1MSpillChunk)
	}
	if row.Extra["spilled_records"] == 0 {
		t.Fatal("no records spilled past the chunk boundary")
	}
}
