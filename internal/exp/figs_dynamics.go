package exp

import (
	"fmt"

	"ppt/internal/sim"
	"ppt/internal/transport"
	"ppt/internal/transport/ppt"
	"ppt/internal/workload"
)

func init() {
	register(&Experiment{
		ID:       "fig5",
		Title:    "Dual-loop dynamics trace: one large PPT flow under background traffic (Fig 5)",
		DefFlows: 120,
		Run:      runDynamics,
	})
	register(&Experiment{
		ID:       "loadsweep",
		Title:    "[Extension] load sweep 0.3-0.8 on the leaf-spine fabric",
		DefFlows: 300,
		Run: func(o Options) *Result {
			fab := simFabric(3, 2, 8)
			schemes := []string{"dctcp", "homa", "ppt"}
			p := newPool(o)
			type point struct {
				load   float64
				reduce func() []Row
			}
			var points []point
			for _, load := range []float64{0.3, 0.5, 0.8} {
				points = append(points, point{load,
					compareCells(p, o, fab, workload.WebSearch, workload.AllToAll{N: fab.hosts}, load, schemes)})
			}
			p.run()
			var rows []Row
			for _, pt := range points {
				for _, r := range pt.reduce() {
					r.Label = fmt.Sprintf("%s@%.1f", r.Label, pt.load)
					rows = append(rows, r)
				}
			}
			return &Result{ID: "loadsweep", Title: "FCT vs offered load",
				Rows:  rows,
				Notes: []string{"PPT's margin over DCTCP grows with load until the fabric saturates and the LCP finds no spare bandwidth"}}
		},
	})
}

// runDynamics drives one 8MB PPT flow against Poisson background traffic
// on the testbed fabric and reports the dual-loop state sampled at the
// flow's own α updates — the measured counterpart of the paper's Fig 5
// illustration.
func runDynamics(o Options) *Result {
	fab := testbedFabric()
	cfg := fab.cfg
	cfg.Sched = o.schedImpl()
	net := fab.build(cfg)
	env := transport.NewEnv(net)
	env.RTOMin = fab.rtoMin

	const watched = 1
	type sample struct {
		at sim.Time
		st ppt.FlowState
	}
	var series []sample
	pcfg := ppt.Config{OnFlowState: func(id uint32, now sim.Time, st ppt.FlowState) {
		if id == watched {
			series = append(series, sample{now, st})
		}
	}}

	// Background: web search at 0.5 toward random hosts; the watched
	// flow is an 8MB transfer from host 1 to host 0 starting at t=0.
	wf := workload.Generate(workload.GenConfig{
		Dist: workload.WebSearch, Pattern: workload.AllToAll{N: fab.hosts},
		Load: 0.5, HostRate: cfg.HostRate, NumFlows: o.Flows, Seed: o.Seed, StartID: 100,
	})
	flows := []transport.SimpleFlow{{ID: watched, Src: 1, Dst: 0, Size: 8_000_000, FirstCall: 8_000_000}}
	for _, f := range wf {
		flows = append(flows, transport.SimpleFlow{ID: f.ID, Src: f.Src, Dst: f.Dst,
			Size: f.Size, Arrive: f.Arrive, FirstCall: f.Size})
	}
	sum := transport.Run(env, ppt.Proto{Cfg: pcfg}, flows, transport.RunConfig{})
	o.addEvents(env.Sched().Executed)

	res := &Result{ID: "fig5", Title: "dual-loop rate control dynamics (watched 8MB flow)"}
	res.Rows = append(res.Rows, Row{Label: "workload", Sum: sum})
	// Summarize the trace: a row per ~10% of samples plus aggregates.
	var lcpOn int
	for _, s := range series {
		if s.st.LCPActive {
			lcpOn++
		}
	}
	step := len(series) / 8
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(series); i += step {
		s := series[i]
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("t=%v", s.at),
			Extra: map[string]float64{
				"cwnd-KB":    s.st.Cwnd / 1000,
				"alpha":      s.st.Alpha,
				"lcp-active": b2f(s.st.LCPActive),
				"opp-sentKB": float64(s.st.OppSent) / 1000,
				"tail-KB":    float64(s.st.TailNext) / 1000,
			},
		})
	}
	if len(series) > 0 {
		res.Notes = append(res.Notes,
			fmt.Sprintf("%d α updates observed; LCP open during %.0f%% of them; %.0fKB delivered opportunistically",
				len(series), 100*float64(lcpOn)/float64(len(series)),
				float64(series[len(series)-1].st.OppSent)/1000))
	}
	res.Notes = append(res.Notes, "the sawtooth in cwnd-KB with intermittent lcp-active spells is the measured Fig 5 behaviour")
	return res
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
