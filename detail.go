package ppt

import (
	"io"

	"ppt/internal/netsim"
	"ppt/internal/stats"
	"ppt/internal/transport"
	"ppt/internal/workload"
)

// Detail is the full measurement set of one simulation run, beyond the
// headline Summary: per-size-class breakdowns, slowdowns (FCT normalized
// by unloaded ideal, the Homa/pFabric metric), fairness indices,
// transfer efficiency, and the raw per-flow records.
type Detail struct {
	Summary   Summary
	Buckets   []stats.Bucket
	Slowdowns stats.SlowdownSummary
	// Jain is Jain's fairness index over per-flow throughput (1 = fair).
	Jain float64
	// TransferEfficiency is distinct delivered bytes / payload bytes
	// sent (1 = no waste).
	TransferEfficiency float64
	// LowLoopShare is the fraction of delivered bytes carried by the
	// low-priority loop (PPT/RC3-family transports; 0 otherwise).
	LowLoopShare float64

	collector *stats.Collector
}

// WriteFlowsCSV dumps the raw per-flow completions for external
// analysis.
func (d *Detail) WriteFlowsCSV(w io.Writer) error {
	return d.collector.WriteCSV(w)
}

// Records returns the raw completions.
func (d *Detail) Records() []stats.FCTRecord {
	return d.collector.Records()
}

// RunDetailed is Run with the full measurement set.
func RunDetailed(cfg Config) (*Detail, error) {
	if cfg.Transport == "" {
		cfg.Transport = TransportPPT
	}
	if cfg.Topology == "" {
		cfg.Topology = TopologySim
	}
	if cfg.Workload == "" {
		cfg.Workload = "websearch"
	}
	if cfg.Load == 0 {
		cfg.Load = 0.5
	}
	if cfg.Flows == 0 {
		cfg.Flows = 500
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	dist, err := workload.ByName(cfg.Workload)
	if err != nil {
		return nil, err
	}
	tcfg, build, rtoMin, err := topologyFor(cfg.Topology)
	if err != nil {
		return nil, err
	}
	protoFn, tweak, err := transportFor(cfg.Transport)
	if err != nil {
		return nil, err
	}
	if tweak != nil {
		tweak(&tcfg)
	}
	net := build(tcfg)
	env := transport.NewEnv(net)
	env.RTOMin = rtoMin
	flows := buildFlows(dist, tcfg.HostRate, len(net.Hosts), cfg)
	sum := transport.Run(env, protoFn(env), flows, transport.RunConfig{})

	d := &Detail{
		Summary:            sum,
		Buckets:            env.Collector.Buckets(stats.DefaultBucketBounds),
		Slowdowns:          env.Collector.Slowdowns(net.BottleneckRate, net.BaseRTT),
		Jain:               stats.JainIndex(env.Collector.Records()),
		TransferEfficiency: env.Eff.Overall(),
		collector:          env.Collector,
	}
	if env.Eff.UsefulDelivered > 0 {
		d.LowLoopShare = float64(env.Eff.UsefulLow) / float64(env.Eff.UsefulDelivered)
	}
	return d, nil
}

// buildFlows generates the workload for a fabric (shared by Run and
// RunDetailed).
func buildFlows(dist *workload.Dist, rate netsim.Rate, hosts int, cfg Config) []transport.SimpleFlow {
	var pattern workload.Pattern = workload.AllToAll{N: hosts}
	if cfg.Incast > 0 {
		pattern = workload.Incast{N: hosts, Target: 0, Senders: cfg.Incast}
	}
	wf := workload.Generate(workload.GenConfig{
		Dist: dist, Pattern: pattern, Load: cfg.Load,
		HostRate: rate, NumFlows: cfg.Flows, Seed: cfg.Seed,
	})
	flows := make([]transport.SimpleFlow, len(wf))
	for i, f := range wf {
		fc := f.Size
		if cfg.SendBuf > 0 && fc > cfg.SendBuf {
			fc = cfg.SendBuf
		}
		flows[i] = transport.SimpleFlow{ID: f.ID, Src: f.Src, Dst: f.Dst,
			Size: f.Size, Arrive: f.Arrive, FirstCall: fc}
	}
	return flows
}
