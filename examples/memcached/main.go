// Memcached: the paper's headline application result (§6.3.2, Fig 21)
// plus the §4.1 buffer-aware identification experiment. The Facebook
// Memcached W1 workload is entirely small flows (<100KB, >70% under
// 1KB), where PPT beats even the proactive transports because their
// line-rate first-RTT behaviour causes bursts.
package main

import (
	"fmt"
	"log"

	"ppt"
)

func main() {
	fmt.Println("Facebook Memcached W1 on the 40/100G leaf-spine fabric, load 0.5")
	fmt.Printf("%-10s %14s %14s %14s\n", "transport", "overall-avg", "small-avg", "small-p99")
	for _, tr := range []string{
		ppt.TransportNDP, ppt.TransportHoma, ppt.TransportDCTCP, ppt.TransportPPT,
	} {
		sum, err := ppt.Run(ppt.Config{
			Transport: tr,
			Topology:  ppt.TopologySim,
			Workload:  "memcached-w1",
			Load:      0.5,
			Flows:     800,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14s %14s %14s\n", tr, sum.OverallAvg, sum.SmallAvg, sum.SmallP99)
	}

	fmt.Println("\nBuffer-aware identification (§4.1): first-syscall size vs true flow size")
	recall, err := ppt.IdentificationAccuracy("memcached-etc", 1_000, 16_384, 50_000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("memcached ETC trace, 1KB threshold, 16KB sndbuf: recall %.1f%% (paper: 86.7%%)\n", recall*100)
	recall, err = ppt.IdentificationAccuracy("youtube-http", 10_000, 16_384, 50_000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("YouTube HTTP trace, 10KB threshold, 16KB sndbuf:  recall %.1f%% (paper: 84.3%%)\n", recall*100)
}
