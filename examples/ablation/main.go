// Ablation: regenerate the §6.3.1 deep-dive — what each of PPT's design
// components (ECN on the LCP, exponential window decreasing, flow
// scheduling, flow identification) contributes — via the experiment
// registry that backs `pptsim`.
package main

import (
	"fmt"
	"log"

	"ppt"
)

func main() {
	fmt.Println("PPT component ablations (web search, load 0.5, 40/100G leaf-spine)")
	fmt.Println()
	for _, id := range []string{"fig15", "fig16", "fig17", "fig18"} {
		res, err := ppt.RunExperiment(id, ppt.Options{Flows: 200})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res.Render())
		fmt.Println()
	}
}
