// Slowdown: compare transports by normalized FCT (actual FCT over the
// unloaded ideal — the metric the Homa and pFabric papers report) using
// the detailed-results API, including a per-size-class breakdown for
// PPT.
package main

import (
	"fmt"
	"log"

	"ppt"
	"ppt/internal/stats"
)

func main() {
	fmt.Println("Slowdown comparison: Web Search at load 0.6 on the 40/100G leaf-spine fabric")
	fmt.Printf("%-10s %10s %10s %10s %8s %8s\n",
		"transport", "mean", "p50", "p99", "jain", "eff")
	var pptDetail *ppt.Detail
	for _, tr := range []string{ppt.TransportDCTCP, ppt.TransportRC3, ppt.TransportHoma, ppt.TransportPPT} {
		d, err := ppt.RunDetailed(ppt.Config{
			Transport: tr,
			Workload:  "websearch",
			Load:      0.6,
			Flows:     300,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10.2f %10.2f %10.2f %8.3f %8.3f\n",
			tr, d.Slowdowns.Mean, d.Slowdowns.P50, d.Slowdowns.P99, d.Jain, d.TransferEfficiency)
		if tr == ppt.TransportPPT {
			pptDetail = d
		}
	}
	fmt.Println("\nPPT per-size-class breakdown:")
	fmt.Print(stats.BucketTable(pptDetail.Buckets))
	fmt.Printf("\n%.1f%% of delivered bytes rode PPT's low-priority loop.\n",
		pptDetail.LowLoopShare*100)
}
