// Quickstart: simulate PPT against plain DCTCP on the paper's testbed
// profile (15 hosts, 10G, 80µs RTT) under the Web Search workload and
// print the FCT breakdown — the smallest possible use of the public API.
package main

import (
	"fmt"
	"log"

	"ppt"
)

func main() {
	fmt.Println("PPT quickstart: Web Search at load 0.5 on the testbed fabric")
	fmt.Printf("%-10s %14s %14s %14s %14s\n",
		"transport", "overall-avg", "small-avg", "small-p99", "large-avg")
	for _, tr := range []string{ppt.TransportDCTCP, ppt.TransportPPT} {
		sum, err := ppt.Run(ppt.Config{
			Transport: tr,
			Topology:  ppt.TopologyTestbed,
			Workload:  "websearch",
			Load:      0.5,
			Flows:     300,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14s %14s %14s %14s\n",
			tr, sum.OverallAvg, sum.SmallAvg, sum.SmallP99, sum.LargeAvg)
	}
	fmt.Println("\nPPT keeps DCTCP's deployability but fills its spare bandwidth:")
	fmt.Println("expect a much lower small-flow average and tail, at equal or")
	fmt.Println("better overall average FCT.")
}
