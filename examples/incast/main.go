// Incast: the many-to-one pattern that dominates partition/aggregate
// workloads (§6.3.2). Sweeps the number of concurrent senders into one
// receiver and compares PPT with DCTCP and Homa — under heavy incast
// the paper expects PPT to gracefully fall back to DCTCP behaviour while
// Homa's line-rate pre-credit bursts hurt it.
package main

import (
	"fmt"
	"log"

	"ppt"
)

func main() {
	fmt.Println("N-to-1 incast on the 40/100G leaf-spine fabric, Web Search at load 0.6")
	transports := []string{ppt.TransportDCTCP, ppt.TransportHoma, ppt.TransportPPT}
	fmt.Printf("%-8s", "senders")
	for _, tr := range transports {
		fmt.Printf(" %22s", tr+" overall/small-avg")
	}
	fmt.Println()
	for _, n := range []int{4, 8, 16} {
		fmt.Printf("%-8d", n)
		for _, tr := range transports {
			sum, err := ppt.Run(ppt.Config{
				Transport: tr,
				Topology:  ppt.TopologySim,
				Workload:  "websearch",
				Load:      0.6,
				Flows:     150,
				Incast:    n,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %10s/%-11s", sum.OverallAvg, sum.SmallAvg)
		}
		fmt.Println()
	}
	fmt.Println("\nAs the fan-in grows, spare bandwidth vanishes: PPT converges to")
	fmt.Println("DCTCP (its high-priority loop) instead of collapsing.")
}
