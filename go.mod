module ppt

go 1.22
