// Package ppt's bench harness: one benchmark per table and figure of the
// paper's evaluation. Each benchmark runs a scaled-down version of the
// corresponding registered experiment and reports the headline metric(s)
// via b.ReportMetric, so `go test -bench=. -benchmem` regenerates the
// whole evaluation at smoke scale. For paper-scale runs use
// `go run ./cmd/pptsim -exp <id> -flows <n>`.
package ppt

import (
	"fmt"
	"testing"

	"ppt/internal/exp"
)

// benchFlows is the per-iteration workload size: enough to exercise
// steady-state behaviour, small enough that the full suite finishes in
// minutes.
const benchFlows = 120

// runExp executes one registered experiment per iteration and reports
// each row's overall average FCT (µs) as a benchmark metric, plus the
// engine throughput in millions of scheduler events per wall-clock
// second (summed across all simulation cells).
func runExp(b *testing.B, id string, flows int) {
	b.Helper()
	b.ReportAllocs()
	var last *exp.Result
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := exp.RunByID(id, exp.Options{Flows: flows, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		last = res
		events += res.Events
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs/1e6, "Mevents/s")
	}
	for _, row := range last.Rows {
		if row.Sum.Flows > 0 {
			b.ReportMetric(row.Sum.OverallAvg.Micros(), row.Label+"-avg-us")
		}
		for k, v := range row.Extra {
			b.ReportMetric(v, row.Label+"-"+k)
		}
	}
}

func BenchmarkFig01Utilization(b *testing.B)     { runExp(b, "fig1", benchFlows) }
func BenchmarkFig02Hypothetical(b *testing.B)    { runExp(b, "fig2", benchFlows) }
func BenchmarkFig03FillFraction(b *testing.B)    { runExp(b, "fig3", 80) }
func BenchmarkFig08Testbed15to15WS(b *testing.B) { runExp(b, "fig8", 80) }
func BenchmarkFig09Testbed15to15DM(b *testing.B) { runExp(b, "fig9", 60) }
func BenchmarkFig10Testbed14to1WS(b *testing.B)  { runExp(b, "fig10", benchFlows) }
func BenchmarkFig11Testbed14to1DM(b *testing.B)  { runExp(b, "fig11", 60) }
func BenchmarkFig12SimWebSearch(b *testing.B)    { runExp(b, "fig12", benchFlows) }
func BenchmarkFig13SimDataMining(b *testing.B)   { runExp(b, "fig13", 80) }
func BenchmarkFig14DelayBased(b *testing.B)      { runExp(b, "fig14", benchFlows) }
func BenchmarkFig15AblationECN(b *testing.B)     { runExp(b, "fig15", benchFlows) }
func BenchmarkFig16AblationEWD(b *testing.B)     { runExp(b, "fig16", benchFlows) }
func BenchmarkFig17AblationSched(b *testing.B)   { runExp(b, "fig17", benchFlows) }
func BenchmarkFig18AblationIdent(b *testing.B)   { runExp(b, "fig18", benchFlows) }
func BenchmarkFig20Utilization(b *testing.B)     { runExp(b, "fig20", benchFlows) }
func BenchmarkFig21Memcached(b *testing.B)       { runExp(b, "fig21", 400) }
func BenchmarkFig22Fast100400G(b *testing.B)     { runExp(b, "fig22", benchFlows) }
func BenchmarkFig23IncastSweep(b *testing.B)     { runExp(b, "fig23", 60) }
func BenchmarkFig24RC3BufferCaps(b *testing.B)   { runExp(b, "fig24", 80) }
func BenchmarkFig25PIASHPCC(b *testing.B)        { runExp(b, "fig25", benchFlows) }
func BenchmarkFig26NonOversub(b *testing.B)      { runExp(b, "fig26", benchFlows) }
func BenchmarkFig27SendBuffer(b *testing.B)      { runExp(b, "fig27", 80) }
func BenchmarkFig28BufferOccupancy(b *testing.B) { runExp(b, "fig28", benchFlows) }
func BenchmarkFig29TransferEff(b *testing.B)     { runExp(b, "fig29", benchFlows) }
func BenchmarkTable2Workloads(b *testing.B)      { runExp(b, "table2", 1) }
func BenchmarkIdentAccuracy(b *testing.B)        { runExp(b, "ident", 20_000) }

// BenchmarkFig19Datapath isolates per-packet datapath cost — the
// analogue of the paper's kernel CPU overhead measurement (Fig 19): the
// marginal cost of PPT's dual-loop bookkeeping over plain DCTCP, in
// wall-clock ns per simulated event.
func BenchmarkFig19Datapath(b *testing.B) {
	for _, tr := range []string{TransportDCTCP, TransportPPT} {
		b.Run(tr, func(b *testing.B) {
			b.ReportAllocs()
			var events float64
			for i := 0; i < b.N; i++ {
				sum, err := Run(Config{
					Transport: tr,
					Topology:  TopologyTestbed,
					Workload:  "websearch",
					Load:      0.5,
					Flows:     benchFlows,
					Seed:      int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				if sum.Flows != benchFlows {
					b.Fatalf("incomplete run: %d flows", sum.Flows)
				}
				events += float64(sum.Flows)
			}
			b.ReportMetric(events/float64(b.N), "flows-per-run")
		})
	}
}

// BenchmarkTransports gives per-transport wall-clock cost on an
// identical workload — the simulator's own performance envelope.
func BenchmarkTransports(b *testing.B) {
	for _, tr := range Transports() {
		b.Run(tr, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sum, err := Run(Config{
					Transport: tr,
					Topology:  TopologySim,
					Workload:  "websearch",
					Load:      0.5,
					Flows:     60,
					Seed:      int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				if sum.Flows == 0 {
					b.Fatal("no flows completed")
				}
			}
		})
	}
}

// Example documents the one-call experiment API.
func Example() {
	res, err := RunExperiment("table2", Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.ID)
	// Output: table2
}
