// Command benchcmp diffs a fresh pptsim -benchjson run against a
// checked-in BENCH_*.json baseline and fails (exit 1) when any
// experiment's ns/op regressed beyond the threshold.
//
// Because baselines are recorded on whatever machine cut the PR while
// CI runs on different hardware, the comparison normalizes by default:
// fresh timings are scaled by sum(base ns)/sum(fresh ns) before the
// per-entry check, so a uniform machine-speed difference cancels out
// and the gate triggers only when individual experiments regressed
// relative to the rest of the suite. Disable with -no-normalize when
// both files come from the same machine.
//
// Usage:
//
//	benchcmp -base BENCH_2026-08-06.json -fresh bench.json [-threshold 15] [-report-only] [-no-normalize]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ppt/internal/benchfmt"
)

func main() {
	var (
		basePath    = flag.String("base", "", "checked-in baseline BENCH_*.json")
		freshPath   = flag.String("fresh", "", "freshly generated bench json")
		threshold   = flag.Float64("threshold", 15, "max allowed ns/op regression, percent")
		reportOnly  = flag.Bool("report-only", false, "print the comparison but always exit 0 (PR mode)")
		noNormalize = flag.Bool("no-normalize", false, "compare raw ns/op without machine-speed normalization")
	)
	flag.Parse()
	if *basePath == "" || *freshPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	base, err := benchfmt.Read(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fresh, err := benchfmt.Read(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	freshBy := fresh.ByName()
	// Machine-speed factor over the entries both files share.
	var baseSum, freshSum float64
	type pair struct {
		name string
		b, f benchfmt.Entry
	}
	var pairs []pair
	var removed, added []string
	for _, b := range base.Entries {
		f, ok := freshBy[b.Name]
		if !ok {
			removed = append(removed, b.Name)
			continue
		}
		pairs = append(pairs, pair{b.Name, b, f})
		baseSum += float64(b.NsPerOp)
		freshSum += float64(f.NsPerOp)
	}
	baseBy := base.ByName()
	for _, f := range fresh.Entries {
		if _, ok := baseBy[f.Name]; !ok {
			added = append(added, f.Name)
		}
	}
	sort.Strings(removed)
	sort.Strings(added)

	scale := 1.0
	if !*noNormalize && freshSum > 0 {
		scale = baseSum / freshSum
	}
	fmt.Printf("benchcmp: base %s (%s, %d cpu) vs fresh %s (%s, %d cpu), threshold %.0f%%, scale %.3f\n",
		*basePath, base.Date, base.NumCPU, *freshPath, fresh.Date, fresh.NumCPU, *threshold, scale)
	fmt.Printf("%-10s %15s %15s %9s %9s\n", "name", "base-ns/op", "fresh-ns/op*", "delta", "Mev/s")

	failed := 0
	for _, p := range pairs {
		adj := float64(p.f.NsPerOp) * scale
		delta := 100 * (adj - float64(p.b.NsPerOp)) / float64(p.b.NsPerOp)
		mark := ""
		if delta > *threshold {
			mark = "  REGRESSION"
			failed++
		}
		fmt.Printf("%-10s %15d %15.0f %+8.1f%% %9.2f%s\n",
			p.name, p.b.NsPerOp, adj, delta, p.f.EventsPerSec/1e6, mark)
	}
	for _, n := range removed {
		fmt.Printf("%-10s only in baseline (entry removed?)\n", n)
	}
	for _, n := range added {
		fmt.Printf("%-10s new entry (no baseline)\n", n)
	}
	if failed > 0 {
		fmt.Printf("benchcmp: %d entr%s regressed more than %.0f%% ns/op\n",
			failed, map[bool]string{true: "y", false: "ies"}[failed == 1], *threshold)
		if !*reportOnly {
			os.Exit(1)
		}
		fmt.Println("benchcmp: report-only mode, not failing")
	} else {
		fmt.Println("benchcmp: no ns/op regressions beyond threshold")
	}
}
