// Command benchcmp diffs a fresh pptsim -benchjson run against a
// checked-in BENCH_*.json baseline and fails (exit 1) when any
// experiment regressed beyond its threshold: ns/op beyond -threshold
// AND beyond the -min-delta absolute floor, or allocs/op beyond
// -alloc-threshold.
//
// The -min-delta floor exists because percentage thresholds alone make
// short entries flip-flop: a run measured in hundreds of milliseconds
// swings past 15% from scheduler jitter alone on a busy CI machine,
// while the same absolute wobble is invisible on a two-minute entry.
// An ns/op regression therefore only gates when the normalized delta
// also exceeds -min-delta nanoseconds — small-entry noise is reported
// but never fails the gate, and real regressions on the entries big
// enough to measure still do.
//
// Because baselines are recorded on whatever machine cut the PR while
// CI runs on different hardware, the ns/op comparison normalizes by
// default: fresh timings are scaled by sum(base ns)/sum(fresh ns)
// before the per-entry check, so a uniform machine-speed difference
// cancels out and the gate triggers only when individual experiments
// regressed relative to the rest of the suite. Disable with
// -no-normalize when both files come from the same machine. Allocation
// counts are machine-independent, so the allocs/op gate always compares
// raw values.
//
// When the fresh file carries a scale family, the gate additionally
// checks allocation growth over each 10× pair — scale3k→scale30k
// (materialized workload, pooled flow/endpoint lifecycle) and
// scale100k→scale1M (streamed workload, spilling FCT collector): the
// big run must not allocate more than -scale-growth times its small
// partner. Exceeding the factor means per-flow allocation crept back
// in.
//
// Sharded entries (a name of the form X-s<k>, e.g. scale30k-s4) pair
// with their serial partner X within the fresh file and are reported as
// a wall-clock speedup column — both runs come from the same process on
// the same machine, so no normalization applies. The column is
// informational when the fresh machine has fewer CPUs than the entry's
// worker count (the workers just time-slice one core); with enough CPUs
// a -min-speedup bound turns it into a gate.
//
// Usage:
//
//	benchcmp -base BENCH_2026-08-06.json -fresh bench.json [-threshold 15]
//	         [-min-delta 500000000] [-alloc-threshold 20] [-scale-growth 10]
//	         [-min-speedup 0] [-report-only] [-no-normalize]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"ppt/internal/benchfmt"
)

func main() {
	var (
		basePath    = flag.String("base", "", "checked-in baseline BENCH_*.json")
		freshPath   = flag.String("fresh", "", "freshly generated bench json")
		threshold   = flag.Float64("threshold", 15, "max allowed ns/op regression, percent")
		minDelta    = flag.Float64("min-delta", 500_000_000, "noise floor: an ns/op regression only gates when the normalized delta also exceeds this many ns (0 disables)")
		allocThresh = flag.Float64("alloc-threshold", 20, "max allowed allocs/op regression, percent (0 disables)")
		scaleGrowth = flag.Float64("scale-growth", 10, "max allocs/op ratio of each 10x scale pair (scale30k/scale3k, scale1M/scale100k; 0 disables)")
		minSpeedup  = flag.Float64("min-speedup", 0, "min wall-clock speedup of each X-s<k> entry over its serial partner X; gates only when the fresh machine has >= k CPUs (0 disables)")
		reportOnly  = flag.Bool("report-only", false, "print the comparison but always exit 0 (PR mode)")
		noNormalize = flag.Bool("no-normalize", false, "compare raw ns/op without machine-speed normalization")
	)
	flag.Parse()
	if *basePath == "" || *freshPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	base, err := benchfmt.Read(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fresh, err := benchfmt.Read(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	freshBy := fresh.ByName()
	// Machine-speed factor over the entries both files share.
	var baseSum, freshSum float64
	type pair struct {
		name string
		b, f benchfmt.Entry
	}
	var pairs []pair
	var removed, added []string
	for _, b := range base.Entries {
		f, ok := freshBy[b.Name]
		if !ok {
			removed = append(removed, b.Name)
			continue
		}
		pairs = append(pairs, pair{b.Name, b, f})
		// Cache-hit-dominated entries measured replay latency, not the
		// engine: keeping their near-zero timings in the sums would skew
		// the machine-speed factor for every honest entry.
		if !cacheDominated(b) && !cacheDominated(f) {
			baseSum += float64(b.NsPerOp)
			freshSum += float64(f.NsPerOp)
		}
	}
	baseBy := base.ByName()
	for _, f := range fresh.Entries {
		if _, ok := baseBy[f.Name]; !ok {
			added = append(added, f.Name)
		}
	}
	sort.Strings(removed)
	sort.Strings(added)

	scale := 1.0
	if !*noNormalize && freshSum > 0 {
		scale = baseSum / freshSum
	}
	fmt.Printf("benchcmp: base %s (%s, %d cpu) vs fresh %s (%s, %d cpu), ns threshold %.0f%%, alloc threshold %.0f%%, scale %.3f\n",
		*basePath, base.Date, base.NumCPU, *freshPath, fresh.Date, fresh.NumCPU, *threshold, *allocThresh, scale)
	fmt.Printf("%-10s %15s %15s %9s %14s %9s %9s\n",
		"name", "base-ns/op", "fresh-ns/op*", "ns-delta", "allocs/op", "al-delta", "Mev/s")

	nsFailed, allocFailed := 0, 0
	var eventNotes []string
	for _, p := range pairs {
		adj := float64(p.f.NsPerOp) * scale
		delta := 100 * (adj - float64(p.b.NsPerOp)) / float64(p.b.NsPerOp)
		mark := ""
		if cacheDominated(p.f) || cacheDominated(p.b) {
			// A hit-dominated run measured cache replay, not the engine:
			// its ns/op is meaningless against (or as) an uncached
			// baseline, and would drown a real engine regression in an
			// apparent 100x "improvement". Report, never gate.
			fmt.Printf("%-10s %15d %15.0f %+8.1f%% %14d %9s %9s  (cache-hit dominated: excluded from ns/op gate)\n",
				p.name, p.b.NsPerOp, adj, delta, p.f.AllocsPerOp, "-", "-")
			continue
		}
		if delta > *threshold {
			if abs := adj - float64(p.b.NsPerOp); *minDelta > 0 && abs < *minDelta {
				// Over the percentage threshold but under the absolute
				// noise floor: a short entry wobbling, not a regression.
				mark = "  (ns noise: below min-delta floor)"
			} else {
				mark = "  NS-REGRESSION"
				nsFailed++
			}
		}
		// Allocation counts don't depend on machine speed: compare raw.
		allocDelta := 0.0
		if p.b.AllocsPerOp > 0 {
			allocDelta = 100 * (float64(p.f.AllocsPerOp) - float64(p.b.AllocsPerOp)) / float64(p.b.AllocsPerOp)
		}
		if *allocThresh > 0 && allocDelta > *allocThresh {
			mark += "  ALLOC-REGRESSION"
			allocFailed++
		}
		// Events/sec is informational; a run that recorded no events
		// (old writer, skipped entry) renders as "-" instead of 0.00.
		mevs := "-"
		if p.f.Events > 0 && p.f.EventsPerSec > 0 {
			mevs = fmt.Sprintf("%.2f", p.f.EventsPerSec/1e6)
		}
		fmt.Printf("%-10s %15d %15.0f %+8.1f%% %14d %+8.1f%% %9s%s\n",
			p.name, p.b.NsPerOp, adj, delta, p.f.AllocsPerOp, allocDelta, mevs, mark)
		if p.b.Events > 0 && p.f.Events > 0 && p.b.Events != p.f.Events {
			evDelta := 100 * (float64(p.f.Events) - float64(p.b.Events)) / float64(p.b.Events)
			eventNotes = append(eventNotes, fmt.Sprintf(
				"events-delta: %s executed %d events vs baseline %d (%+.1f%%) — an engine event-count change (e.g. the fused port pipeline), not a perf regression; the gate compares normalized ns/op and allocs/op only",
				p.name, p.f.Events, p.b.Events, evDelta))
		}
	}
	for _, n := range eventNotes {
		fmt.Println(n)
	}
	for _, n := range removed {
		fmt.Printf("%-10s only in baseline (entry removed?)\n", n)
	}
	for _, n := range added {
		fmt.Printf("%-10s new entry (no baseline)\n", n)
	}

	// Sub-linear allocation-growth gates over the fresh scale families:
	// the materialized pair (scale3k/scale30k) guards the pooled
	// flow/endpoint lifecycle, the streamed pair (scale100k/scale1M)
	// additionally guards the lazy-FlowSource + spilling-collector path.
	// Each big run spans 10× its small partner's flows, so staying under
	// the factor means per-flow allocation stays bounded.
	growthFailed := 0
	if *scaleGrowth > 0 {
		for _, gp := range []struct{ small, big string }{
			{"scale3k", "scale30k"},
			{"scale100k", "scale1M"},
		} {
			small, okS := freshBy[gp.small]
			big, okB := freshBy[gp.big]
			switch {
			case okS && okB && small.AllocsPerOp > 0:
				ratio := float64(big.AllocsPerOp) / float64(small.AllocsPerOp)
				verdict := "ok (sub-linear)"
				if ratio > *scaleGrowth {
					verdict = "GROWTH-REGRESSION"
					growthFailed++
				}
				fmt.Printf("scale-growth: %s/%s allocs/op = %.2fx (limit %.0fx): %s\n",
					gp.big, gp.small, ratio, *scaleGrowth, verdict)
			case okS || okB:
				fmt.Printf("scale-growth: incomplete %s/%s pair in fresh run, skipping\n", gp.small, gp.big)
			}
		}
	}

	// Wall-clock speedup of sharded entries over their serial partners.
	// Both halves of a pair come from the same fresh run, so the raw
	// ns/op ratio is a genuine same-machine measurement.
	speedupFailed := 0
	for _, f := range fresh.Entries {
		serialName, workers, ok := shardPartner(f.Name)
		if !ok {
			continue
		}
		serial, okS := freshBy[serialName]
		if !okS || f.NsPerOp <= 0 {
			continue
		}
		speedup := float64(serial.NsPerOp) / float64(f.NsPerOp)
		verdict := ""
		regressed := false
		switch {
		case fresh.NumCPU < workers:
			verdict = fmt.Sprintf(" (informational: %d workers on %d cpu)", workers, fresh.NumCPU)
		case *minSpeedup > 0 && speedup < *minSpeedup:
			verdict = fmt.Sprintf("  SPEEDUP-REGRESSION (want >= %.2fx)", *minSpeedup)
			regressed = true
			speedupFailed++
		}
		fmt.Printf("speedup: %s vs %s = %.2fx%s%s\n",
			f.Name, serialName, speedup, shardExtras(f), verdict)
		if regressed {
			// Say why: the windowed-engine extras localize a parallel
			// regression to barrier overhead, idle windows, or load
			// imbalance without a rerun under a profiler.
			fmt.Printf("speedup: %s diagnosis: %s\n", f.Name, diagnose(f))
		}
	}

	failed := nsFailed + allocFailed + growthFailed + speedupFailed
	if failed > 0 {
		fmt.Printf("benchcmp: %d regression%s (%d ns/op beyond %.0f%%, %d allocs/op beyond %.0f%%, %d scale growth, %d speedup)\n",
			failed, map[bool]string{true: "", false: "s"}[failed == 1],
			nsFailed, *threshold, allocFailed, *allocThresh, growthFailed, speedupFailed)
		if !*reportOnly {
			os.Exit(1)
		}
		fmt.Println("benchcmp: report-only mode, not failing")
	} else {
		fmt.Println("benchcmp: no regressions beyond thresholds")
	}
}

// cacheDominated reports whether an entry's timing mostly measured
// result-cache replay rather than engine execution: it saw at least one
// hit and no more misses than hits. An all-miss run through a cold
// cache still measured the engine (plus a <2% store overhead) and
// stays in the gate.
func cacheDominated(e benchfmt.Entry) bool {
	return e.CacheHits > 0 && e.CacheHits >= e.CacheMisses
}

// shardExtras renders the windowed-engine instrumentation carried by a
// sharded entry (empty when the entry predates the extras).
func shardExtras(e benchfmt.Entry) string {
	if e.Rounds == 0 {
		return ""
	}
	skipFrac := 0.0
	if t := e.WindowsRun + e.WindowsSkipped; t > 0 {
		skipFrac = float64(e.WindowsSkipped) / float64(t)
	}
	s := fmt.Sprintf(" [rounds %d, windows skipped %.0f%%, barrier %.0f%%, event share %.0f-%.0f%%",
		e.Rounds, 100*skipFrac, 100*e.BarrierFrac, 100*e.EventMinShare, 100*e.EventMaxShare)
	if e.Rebalances > 0 || e.WorkerSpread > 0 {
		s += fmt.Sprintf(", rebalances %d, worker spread %.0f%%", e.Rebalances, 100*e.WorkerSpread)
	}
	return s + "]"
}

// diagnose names the dominant windowed-engine cost of a sharded entry
// that missed its speedup bound.
func diagnose(e benchfmt.Entry) string {
	if e.Rounds == 0 {
		return "no windowed-engine extras recorded (old writer?); rerun pptsim -benchjson for diagnostics"
	}
	var reasons []string
	if e.BarrierFrac > 0.3 {
		reasons = append(reasons, fmt.Sprintf("barrier-bound (%.0f%% of engine wall-clock at barriers over %d rounds — lookahead too narrow or merge too slow)",
			100*e.BarrierFrac, e.Rounds))
	}
	if spread := e.EventMaxShare - e.EventMinShare; e.EventMaxShare > 0 && spread > 0.4 {
		reasons = append(reasons, fmt.Sprintf("load-imbalanced (per-shard event shares span %.0f%%-%.0f%% — partitioner concentrating the work on few shards)",
			100*e.EventMinShare, 100*e.EventMaxShare))
	}
	if t := e.WindowsRun + e.WindowsSkipped; t > 0 {
		if skip := float64(e.WindowsSkipped) / float64(t); skip > 0.6 {
			reasons = append(reasons, fmt.Sprintf("mostly idle windows (%.0f%% skipped — workload too sparse for this shard count)", 100*skip))
		}
	}
	if len(reasons) == 0 {
		return "extras look healthy (low barrier share, balanced shards); the regression is likely outside the windowed engine (machine load, allocator, workload change)"
	}
	return strings.Join(reasons, "; ")
}

// shardPartner splits a sharded bench name "X-s<k>" into its serial
// partner "X" and worker count k; ok is false for any other name.
func shardPartner(name string) (serial string, workers int, ok bool) {
	i := strings.LastIndex(name, "-s")
	if i <= 0 {
		return "", 0, false
	}
	k, err := strconv.Atoi(name[i+2:])
	if err != nil || k < 1 {
		return "", 0, false
	}
	return name[:i], k, true
}
