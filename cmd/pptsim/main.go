// Command pptsim regenerates the paper's tables and figures.
//
// Usage:
//
//	pptsim -list
//	pptsim -exp fig12
//	pptsim -exp fig8 -flows 1000 -seed 7 -repeats 3
//	pptsim -exp fig8 -repeats 8 -parallel 4 -progress
//	pptsim -exp fig12 -schemes ppt,dctcp -load 0.7
//	pptsim -exp fig12 -csv   > fig12.csv
//	pptsim -exp fig12 -json  > fig12.json
//	pptsim -all
//
// Simulation cells (each scheme × repeat × load point) run on a worker
// pool -parallel wide (default GOMAXPROCS); output is identical to a
// serial run (-parallel 1).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"ppt/internal/cache"
	"ppt/internal/exp"
	"ppt/internal/sim"
)

func main() {
	var (
		id       = flag.String("exp", "", "experiment id (e.g. fig12, table2, ident)")
		list     = flag.Bool("list", false, "list available experiments")
		all      = flag.Bool("all", false, "run every experiment")
		flows    = flag.Int("flows", 0, "override workload size (0 = experiment default)")
		load     = flag.Float64("load", 0, "override network load where applicable")
		seed     = flag.Int64("seed", 1, "workload RNG seed")
		repeats  = flag.Int("repeats", 1, "average metrics over this many seeds")
		parallel = flag.Int("parallel", 0, "simulation cells to run concurrently (0 = GOMAXPROCS, 1 = serial)")
		progress = flag.Bool("progress", false, "report per-cell progress on stderr")
		schemes  = flag.String("schemes", "", "comma-separated scheme filter (e.g. ppt,dctcp)")
		sched    = flag.String("sched", "wheel", "event-queue implementation: wheel (hierarchical timing wheel) or heap (4-ary min-heap); results are identical, speed is not")
		shards   = flag.Int("shards", 1, "worker-goroutine cap for the windowed sharded engine on leaf-spine fabrics (results are identical at any value >= 1)")
		fastpath = flag.String("fastpath", "on", "cut-through fused port pipeline: on (default) or off (classic two-event pipeline; results are identical, speed is not)")
		asCSV    = flag.Bool("csv", false, "emit results as CSV instead of tables")
		asJSON   = flag.Bool("json", false, "emit results as JSON instead of tables")

		cacheDir    = flag.String("cache", "off", "content-addressed result-cache directory, or off; hits replay cell results without simulating (keys exclude -sched/-shards/-parallel/-fastpath — outcomes are engine-invariant)")
		cacheVerify = flag.Bool("cache-verify", false, "recompute every cache hit and byte-compare against the stored result; any divergence fails the run (determinism tripwire; requires -cache DIR)")
		cacheMaxMB  = flag.Int("cache-max-mb", 0, "evict least-recently-modified cache entries at startup until the directory fits this many MB (0 = uncapped; requires -cache DIR)")

		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceFile   = flag.String("trace", "", "write a runtime execution trace to this file")
		benchjson   = flag.String("benchjson", "", "benchmark every experiment once and write ns/op, allocs/op and events/sec to this JSON file (e.g. BENCH_2026-08-06.json)")
		benchfilter = flag.String("benchfilter", "", "comma-separated entry-name prefixes restricting -benchjson (e.g. scale3k,scale30k runs only the sharded scale pairs); empty runs everything")
	)
	flag.Parse()

	// Validate engine knobs up front, before any (possibly long) run
	// starts, so a typo fails in milliseconds with a usable message.
	if _, err := sim.ParseImpl(*sched); err != nil {
		fmt.Fprintf(os.Stderr, "pptsim: invalid -sched %q: %v\n", *sched, err)
		os.Exit(2)
	}
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "pptsim: invalid -parallel %d: want 0 (= GOMAXPROCS) or a positive worker count\n", *parallel)
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "pptsim: invalid -shards %d: want a positive worker cap (1 = single-threaded windowed engine)\n", *shards)
		os.Exit(2)
	}
	if *repeats < 1 {
		fmt.Fprintf(os.Stderr, "pptsim: invalid -repeats %d: want a positive repeat count\n", *repeats)
		os.Exit(2)
	}
	if *fastpath != "on" && *fastpath != "off" {
		fmt.Fprintf(os.Stderr, "pptsim: invalid -fastpath %q: want on or off\n", *fastpath)
		os.Exit(2)
	}
	cacheOn := *cacheDir != "" && *cacheDir != "off"
	if *cacheVerify && !cacheOn {
		fmt.Fprintln(os.Stderr, "pptsim: -cache-verify has nothing to verify without a cache: pass -cache DIR")
		os.Exit(1)
	}
	if *cacheMaxMB < 0 {
		fmt.Fprintf(os.Stderr, "pptsim: invalid -cache-max-mb %d: want a size in MB (0 = uncapped)\n", *cacheMaxMB)
		os.Exit(1)
	}
	if *cacheMaxMB > 0 && !cacheOn {
		fmt.Fprintln(os.Stderr, "pptsim: -cache-max-mb has no cache to cap: pass -cache DIR")
		os.Exit(1)
	}
	var resultCache *cache.Cache
	if cacheOn {
		c, err := cache.Open(*cacheDir, int64(*cacheMaxMB)<<20)
		if err != nil {
			// Typically an unwritable or uncreatable directory — fail in
			// milliseconds, not after a long cold sweep.
			fmt.Fprintf(os.Stderr, "pptsim: %v\n", err)
			os.Exit(1)
		}
		resultCache = c
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := trace.Start(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer trace.Stop()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	opts := exp.Options{Flows: *flows, Load: *load, Seed: *seed, Repeats: *repeats, Parallel: *parallel, Sched: *sched, Shards: *shards,
		NoFastPath: *fastpath == "off",
		Cache:      resultCache, CacheVerify: *cacheVerify,
		// An explicit multi-shard request from the CLI should fail
		// loudly on topologies that can't partition instead of
		// silently running monolithic.
		StrictShards: *shards > 1}
	if *schemes != "" {
		opts.Schemes = strings.Split(*schemes, ",")
	}
	if *progress {
		progressOn = true
		opts.OnProgress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d cells", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	format = formatTable
	if *asCSV {
		format = formatCSV
	}
	if *asJSON {
		format = formatJSON
	}

	switch {
	case *list:
		fmt.Printf("%-8s %s\n", "ID", "TITLE")
		for _, e := range exp.List() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
	case *benchjson != "":
		if err := writeBenchJSON(*benchjson, *benchfilter, opts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *all:
		ok := true
		for _, e := range exp.List() {
			ok = run(e.ID, opts) && ok
		}
		if resultCache != nil {
			ok = cacheEpilogue(resultCache) && ok
		}
		if !ok {
			os.Exit(1)
		}
	case *id != "":
		ok := run(*id, opts)
		if resultCache != nil {
			ok = cacheEpilogue(resultCache) && ok
		}
		if !ok {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// cacheEpilogue reports the whole-process cache accounting (under
// -progress) and turns any -cache-verify divergence into a failing
// exit: a mismatch means a stored entry and a fresh execution of the
// same cell disagree byte-for-byte, i.e. the determinism contract the
// cache banks on is broken somewhere. That must never pass silently.
func cacheEpilogue(c *cache.Cache) bool {
	st := c.Stats()
	if progressOn {
		fmt.Fprintf(os.Stderr, "cache: %s\n", st.String())
	}
	if st.Mismatches > 0 {
		fmt.Fprintf(os.Stderr, "pptsim: -cache-verify found %d cell(s) whose stored result diverges from fresh execution\n", st.Mismatches)
		return false
	}
	return true
}

// progressOn mirrors the -progress flag for helpers outside main.
var progressOn bool

type outputFormat int

const (
	formatTable outputFormat = iota
	formatCSV
	formatJSON
)

var format outputFormat

// run executes one experiment and prints it. It returns false when
// every cell failed (e.g. a strict -shards request on a topology that
// cannot partition), after echoing the per-cell errors to stderr.
func run(id string, opts exp.Options) bool {
	start := time.Now()
	res, err := exp.RunByID(id, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, row := range res.Rows {
		if row.Sum.Truncated {
			fmt.Fprintf(os.Stderr, "warning: %s/%s hit its event/deadline bound with %d flows unfinished; FCT stats are biased toward fast flows\n",
				id, row.Label, row.Sum.Unfinished)
		}
	}
	failed, produced := 0, false
	for _, n := range res.Notes {
		if strings.HasPrefix(n, "cell failed: ") {
			failed++
		}
	}
	for _, row := range res.Rows {
		if row.Sum.Flows > 0 || len(row.Extra) > 0 {
			produced = true
		}
	}
	allFailed := failed > 0 && !produced && len(res.Rows) > 0
	if allFailed {
		for _, n := range res.Notes {
			if strings.HasPrefix(n, "cell failed: ") {
				fmt.Fprintf(os.Stderr, "pptsim: %s: %s\n", id, n)
			}
		}
	}
	switch format {
	case formatCSV:
		fmt.Print(res.CSV())
	case formatJSON:
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(out))
	default:
		fmt.Print(res.Render())
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	return !allFailed
}
