package main

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"ppt/internal/benchfmt"
	"ppt/internal/exp"
)

// benchFlows is the per-experiment workload size used by -benchjson:
// the same smoke scale as the repo's bench_test.go figure benchmarks,
// so the recorded trajectory stays comparable across engine changes.
const benchFlows = 60

// scaleCases is the flow-scaling family appended after the figure
// sweep: the fig12 workload at 3k and 30k flows, restricted to the two
// hot pooled schemes so a run stays tractable. The pair feeds
// benchcmp's growth gate — with pooled flows/endpoints a 10× flow count
// must cost no more than ~10× the allocations (sub-linear per-flow
// growth), where the pre-pool engine scaled superlinearly.
var scaleCases = []struct {
	name  string
	flows int
}{
	{"scale3k", 3_000},
	{"scale30k", 30_000},
}

// scaleSchemes restricts the scale family's comparison cells.
var scaleSchemes = []string{"ppt", "dctcp"}

// streamScaleCases is the streamed scale family: the scale1M experiment
// (lazy FlowSource + spilling FCT collector, Memcached W1) at 100k and
// 1M flows. The pair feeds benchcmp's second growth gate — with the
// workload streamed and the completion log spilled, a 10× flow count
// must cost no more than ~10× the allocations.
var streamScaleCases = []struct {
	name  string
	flows int
}{
	{"scale100k", 100_000},
	{"scale1M", 1_000_000},
}

// webScaleFlows sizes the scale1M-websearch bench pair. It matches the
// experiment's default and — deliberately — exceeds the experiment's
// 16Ki-record spill chunk, so the pair measures the windowed spill fold
// (per-shard logs folding into a spilling collector at barriers), not
// just the streamed path. ~15k scheduler events per websearch flow make
// this the entry where sharded workers earn their keep, so the pair
// also feeds benchcmp's speedup gate with a genuinely spilled cell.
const webScaleFlows = 20_000

// scaleShardWorkers is the worker cap of the sharded scale entries
// (scale3k-s4 / scale30k-s4): the same workloads as their serial
// partners but with up to 4 worker goroutines executing the windowed
// engine's shards, so benchcmp can report per-pair wall-clock speedup.
// On machines with fewer than 4 CPUs the pair still runs (results are
// identical by construction) but measures oversubscribed goroutines;
// benchcmp treats the speedup column as informational there.
const scaleShardWorkers = 4

// benchOne runs one experiment serially and measures wall time and the
// process-wide allocation delta around it.
func benchOne(name, id string, o exp.Options) (benchfmt.Entry, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := exp.RunByID(id, o)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return benchfmt.Entry{}, fmt.Errorf("bench %s: %w", name, err)
	}
	entry := benchfmt.Entry{
		Name:        name,
		NsPerOp:     elapsed.Nanoseconds(),
		AllocsPerOp: after.Mallocs - before.Mallocs,
		BytesPerOp:  after.TotalAlloc - before.TotalAlloc,
		Events:      res.Events,
	}
	if s := elapsed.Seconds(); s > 0 {
		entry.EventsPerSec = float64(res.Events) / s
	}
	if st := res.Sharding; st != nil {
		entry.Rounds = st.Rounds
		entry.WindowsRun = st.WindowsRun
		entry.WindowsSkipped = st.WindowsSkipped
		entry.CrossPackets = st.CrossPackets
		entry.BarrierFrac = st.BarrierFrac()
		entry.EventMinShare, entry.EventMaxShare = st.EventShareBounds()
		entry.Rebalances = st.Rebalances
		entry.WorkerSpread = st.WorkerSpread
	}
	if cs := res.Cache; cs != nil {
		entry.CacheHits = cs.Hits + cs.Shared
		entry.CacheMisses = cs.Misses
	}
	return entry, nil
}

// writeBenchJSON benchmarks every registered simulation experiment once
// (at smoke scale, serial cells so the measurement is of the engine
// rather than the worker pool), then the scale family, and writes the
// results to path. Experiments that execute no scheduler events (static
// tables, the identification study) are skipped: they finish in
// microseconds, so their timings are pure noise to the benchcmp
// regression gate, and events/sec is undefined for them.
//
// A non-empty filter (comma-separated entry-name prefixes) restricts
// the run to matching entries — CI's multi-core speedup gate uses
// "scale3k,scale30k" to record just the sharded scale pairs without
// paying for the full figure sweep.
func writeBenchJSON(path, filter string, opts exp.Options) error {
	var prefixes []string
	if filter != "" {
		prefixes = strings.Split(filter, ",")
	}
	wanted := func(name string) bool {
		if len(prefixes) == 0 {
			return true
		}
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	flows := opts.Flows
	if flows == 0 {
		flows = benchFlows
	}
	out := benchfmt.File{
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Flows:     flows,
		Sched:     opts.Sched,
	}
	for _, e := range exp.List() {
		if e.ID == "scale1M" || e.ID == "scale1M-websearch" {
			// Measured by the streamed scale families below at their real
			// flow counts; a smoke-scale run here would collide with the
			// entry names.
			continue
		}
		if !wanted(e.ID) {
			continue
		}
		o := exp.Options{Flows: flows, Seed: opts.Seed, Parallel: 1, Sched: opts.Sched, NoFastPath: opts.NoFastPath,
			Cache: opts.Cache, CacheVerify: opts.CacheVerify}
		entry, err := benchOne(e.ID, e.ID, o)
		if err != nil {
			return err
		}
		// A warm-cache entry also executes zero events, but it measured
		// something (replay latency) and carries the hit counts benchcmp
		// needs to exclude it from the ns/op gate — keep it.
		if entry.Events == 0 && entry.CacheHits == 0 {
			fmt.Fprintf(os.Stderr, "%-8s skipped (no scheduler events)\n", e.ID)
			continue
		}
		out.Entries = append(out.Entries, entry)
		fmt.Fprintf(os.Stderr, "%-8s %12d ns/op %10d allocs/op %8.2f Mevents/s\n",
			e.ID, entry.NsPerOp, entry.AllocsPerOp, entry.EventsPerSec/1e6)
	}
	for _, sc := range scaleCases {
		for _, shards := range []int{1, scaleShardWorkers} {
			name := sc.name
			if shards > 1 {
				name = fmt.Sprintf("%s-s%d", sc.name, shards)
			}
			if !wanted(name) {
				continue
			}
			o := exp.Options{Flows: sc.flows, Seed: opts.Seed, Parallel: 1, Sched: opts.Sched,
				Schemes: scaleSchemes, Shards: shards, NoFastPath: opts.NoFastPath,
				Cache: opts.Cache, CacheVerify: opts.CacheVerify}
			entry, err := benchOne(name, "fig12", o)
			if err != nil {
				return err
			}
			out.Entries = append(out.Entries, entry)
			fmt.Fprintf(os.Stderr, "%-12s %12d ns/op %10d allocs/op %8.2f Mevents/s\n",
				name, entry.NsPerOp, entry.AllocsPerOp, entry.EventsPerSec/1e6)
		}
	}
	for _, sc := range streamScaleCases {
		if !wanted(sc.name) {
			continue
		}
		o := exp.Options{Flows: sc.flows, Seed: opts.Seed, Parallel: 1, Sched: opts.Sched,
			Schemes: scaleSchemes, NoFastPath: opts.NoFastPath,
			Cache: opts.Cache, CacheVerify: opts.CacheVerify}
		entry, err := benchOne(sc.name, "scale1M", o)
		if err != nil {
			return err
		}
		out.Entries = append(out.Entries, entry)
		fmt.Fprintf(os.Stderr, "%-12s %12d ns/op %10d allocs/op %8.2f Mevents/s\n",
			sc.name, entry.NsPerOp, entry.AllocsPerOp, entry.EventsPerSec/1e6)
	}
	for _, shards := range []int{1, scaleShardWorkers} {
		name := "scale1M-websearch"
		if shards > 1 {
			name = fmt.Sprintf("scale1M-websearch-s%d", shards)
		}
		if !wanted(name) {
			continue
		}
		o := exp.Options{Flows: webScaleFlows, Seed: opts.Seed, Parallel: 1, Sched: opts.Sched,
			Schemes: scaleSchemes, Shards: shards, NoFastPath: opts.NoFastPath,
			Cache: opts.Cache, CacheVerify: opts.CacheVerify}
		entry, err := benchOne(name, "scale1M-websearch", o)
		if err != nil {
			return err
		}
		out.Entries = append(out.Entries, entry)
		fmt.Fprintf(os.Stderr, "%-20s %12d ns/op %10d allocs/op %8.2f Mevents/s\n",
			name, entry.NsPerOp, entry.AllocsPerOp, entry.EventsPerSec/1e6)
	}
	return out.Write(path)
}
