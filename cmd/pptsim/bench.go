package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"ppt/internal/benchfmt"
	"ppt/internal/exp"
)

// benchFlows is the per-experiment workload size used by -benchjson:
// the same smoke scale as the repo's bench_test.go figure benchmarks,
// so the recorded trajectory stays comparable across engine changes.
const benchFlows = 60

// writeBenchJSON benchmarks every registered simulation experiment once
// (at smoke scale, serial cells so the measurement is of the engine
// rather than the worker pool) and writes the results to path.
// Experiments that execute no scheduler events (static tables, the
// identification study) are skipped: they finish in microseconds, so
// their timings are pure noise to the benchcmp regression gate, and
// events/sec is undefined for them.
func writeBenchJSON(path string, opts exp.Options) error {
	flows := opts.Flows
	if flows == 0 {
		flows = benchFlows
	}
	out := benchfmt.File{
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Flows:     flows,
		Sched:     opts.Sched,
	}
	for _, e := range exp.List() {
		o := exp.Options{Flows: flows, Seed: opts.Seed, Parallel: 1, Sched: opts.Sched}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		res, err := exp.RunByID(e.ID, o)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return fmt.Errorf("bench %s: %w", e.ID, err)
		}
		if res.Events == 0 {
			fmt.Fprintf(os.Stderr, "%-8s skipped (no scheduler events)\n", e.ID)
			continue
		}
		entry := benchfmt.Entry{
			Name:        e.ID,
			NsPerOp:     elapsed.Nanoseconds(),
			AllocsPerOp: after.Mallocs - before.Mallocs,
			BytesPerOp:  after.TotalAlloc - before.TotalAlloc,
			Events:      res.Events,
		}
		if s := elapsed.Seconds(); s > 0 {
			entry.EventsPerSec = float64(res.Events) / s
		}
		out.Entries = append(out.Entries, entry)
		fmt.Fprintf(os.Stderr, "%-8s %12d ns/op %10d allocs/op %8.2f Mevents/s\n",
			e.ID, entry.NsPerOp, entry.AllocsPerOp, entry.EventsPerSec/1e6)
	}
	return out.Write(path)
}
