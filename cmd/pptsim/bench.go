package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"ppt/internal/exp"
)

// benchFlows is the per-experiment workload size used by -benchjson:
// the same smoke scale as the repo's bench_test.go figure benchmarks,
// so the recorded trajectory stays comparable across engine changes.
const benchFlows = 60

// benchEntry is one experiment's measurement in a BENCH_*.json file.
type benchEntry struct {
	Name         string  // experiment id
	NsPerOp      int64   // wall-clock ns for one full experiment run
	AllocsPerOp  uint64  // heap allocations during the run
	BytesPerOp   uint64  // heap bytes allocated during the run
	Events       uint64  // scheduler events executed across all cells
	EventsPerSec float64 // Events / wall-clock seconds
}

// benchFile is the schema of a checked-in BENCH_<date>.json: machine
// identification plus one entry per registered experiment, recorded so
// the repo's perf trajectory is diffable across PRs.
type benchFile struct {
	Date      string
	GoVersion string
	GOOS      string
	GOARCH    string
	NumCPU    int
	Flows     int // workload size every entry ran with
	Entries   []benchEntry
}

// writeBenchJSON benchmarks every registered experiment once (at smoke
// scale, serial cells so the measurement is of the engine rather than
// the worker pool) and writes the results to path.
func writeBenchJSON(path string, opts exp.Options) error {
	flows := opts.Flows
	if flows == 0 {
		flows = benchFlows
	}
	out := benchFile{
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Flows:     flows,
	}
	for _, e := range exp.List() {
		o := exp.Options{Flows: flows, Seed: opts.Seed, Parallel: 1}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		res, err := exp.RunByID(e.ID, o)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return fmt.Errorf("bench %s: %w", e.ID, err)
		}
		entry := benchEntry{
			Name:        e.ID,
			NsPerOp:     elapsed.Nanoseconds(),
			AllocsPerOp: after.Mallocs - before.Mallocs,
			BytesPerOp:  after.TotalAlloc - before.TotalAlloc,
			Events:      res.Events,
		}
		if s := elapsed.Seconds(); s > 0 {
			entry.EventsPerSec = float64(res.Events) / s
		}
		out.Entries = append(out.Entries, entry)
		fmt.Fprintf(os.Stderr, "%-8s %12d ns/op %10d allocs/op %8.2f Mevents/s\n",
			e.ID, entry.NsPerOp, entry.AllocsPerOp, entry.EventsPerSec/1e6)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
