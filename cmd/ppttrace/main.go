// Command ppttrace runs one transport over one workload and dumps the
// detailed measurements: per-size-class FCT breakdown, slowdowns,
// fairness, efficiency, and (optionally) the raw per-flow CSV.
//
// Usage:
//
//	ppttrace -transport ppt -workload websearch -load 0.5 -flows 500
//	ppttrace -transport dctcp -topology testbed -out flows.csv
//	ppttrace -transport homa -incast 16 -load 0.8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ppt"
	"ppt/internal/stats"
	pptproto "ppt/internal/transport/ppt"
)

func main() {
	var (
		tr    = flag.String("transport", "ppt", "transport: "+strings.Join(ppt.Transports(), ", "))
		topo  = flag.String("topology", "sim", "topology: testbed, sim, sim-full, fast, non-oversubscribed")
		wl    = flag.String("workload", "websearch", "workload: "+strings.Join(ppt.Workloads(), ", "))
		load  = flag.Float64("load", 0.5, "network load")
		flows = flag.Int("flows", 500, "number of flows")
		seed  = flag.Int64("seed", 1, "workload seed")
		inc   = flag.Int("incast", 0, "N-to-1 pattern with this many senders (0 = all-to-all)")
		out   = flag.String("out", "", "write raw per-flow CSV to this file")
		lcpDb = flag.Bool("lcpdebug", false, "print PPT dual-loop diagnostic counters after the run")
	)
	flag.Parse()

	// This is a single serial run, so the package-level compatibility view
	// of the per-run counters is exact.
	pptproto.Debug.Reset()

	d, err := ppt.RunDetailed(ppt.Config{
		Transport: *tr, Topology: *topo, Workload: *wl,
		Load: *load, Flows: *flows, Seed: *seed, Incast: *inc,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%s on %s, %s at load %.2f, %d flows\n\n", *tr, *topo, *wl, *load, *flows)
	s := d.Summary
	if s.Truncated {
		fmt.Fprintf(os.Stderr, "warning: run hit its event/deadline bound with %d flows unfinished; stats are biased toward fast flows\n",
			s.Unfinished)
	}
	fmt.Printf("overall avg FCT   %v\n", s.OverallAvg)
	fmt.Printf("small  (0,100KB]  avg %v  p99 %v  (%d flows)\n", s.SmallAvg, s.SmallP99, s.SmallCount)
	if s.LargeCount > 0 {
		fmt.Printf("large  (>100KB)   avg %v  (%d flows)\n", s.LargeAvg, s.LargeCount)
	}
	fmt.Printf("slowdown          mean %.2f  p50 %.2f  p99 %.2f  max %.2f\n",
		d.Slowdowns.Mean, d.Slowdowns.P50, d.Slowdowns.P99, d.Slowdowns.Max)
	fmt.Printf("jain fairness     %.3f\n", d.Jain)
	fmt.Printf("transfer eff.     %.3f\n", d.TransferEfficiency)
	if d.LowLoopShare > 0 {
		fmt.Printf("low-loop share    %.1f%% of delivered bytes\n", d.LowLoopShare*100)
	}
	fmt.Println()
	fmt.Print(stats.BucketTable(d.Buckets))
	if *lcpDb {
		c := pptproto.Debug.Snapshot()
		fmt.Println()
		fmt.Printf("lcp loops opened  case1 %d  case2 %d\n", c.Case1Opens, c.Case2Opens)
		fmt.Printf("lcp packets       paced %d  ack-clocked %d\n", c.PacedPkts, c.ClockedPkts)
		fmt.Printf("low-loop bytes    new %d  dup %d\n", c.NewLowBytes, c.DupLowBytes)
		fmt.Printf("high-loop bytes   new %d  dup %d\n", c.NewHighBytes, c.DupHighBytes)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := d.WriteFlowsCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d flow records to %s\n", len(d.Records()), *out)
	}
}
