package ppt

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDetailed(t *testing.T) {
	d, err := RunDetailed(Config{Transport: TransportPPT, Flows: 80, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d.Summary.Flows != 80 {
		t.Fatalf("flows = %d", d.Summary.Flows)
	}
	if d.Slowdowns.Mean < 1.0 {
		t.Fatalf("mean slowdown %v < 1 under load", d.Slowdowns.Mean)
	}
	if d.Jain <= 0 || d.Jain > 1 {
		t.Fatalf("jain = %v", d.Jain)
	}
	if d.TransferEfficiency <= 0.5 || d.TransferEfficiency > 1.0 {
		t.Fatalf("efficiency = %v", d.TransferEfficiency)
	}
	var total int
	for _, b := range d.Buckets {
		total += b.Count
	}
	if total != 80 {
		t.Fatalf("buckets cover %d flows", total)
	}
	if len(d.Records()) != 80 {
		t.Fatalf("records = %d", len(d.Records()))
	}
}

func TestRunDetailedCSVExport(t *testing.T) {
	d, err := RunDetailed(Config{Transport: TransportDCTCP, Flows: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteFlowsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 31 { // header + 30 flows
		t.Fatalf("csv lines = %d", lines)
	}
}

func TestRunDetailedLowLoopShare(t *testing.T) {
	// DCTCP has no low loop; PPT does.
	plain, err := RunDetailed(Config{Transport: TransportDCTCP, Topology: TopologyTestbed, Flows: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if plain.LowLoopShare != 0 {
		t.Fatalf("dctcp low-loop share = %v", plain.LowLoopShare)
	}
	dual, err := RunDetailed(Config{Transport: TransportPPT, Topology: TopologyTestbed, Flows: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if dual.LowLoopShare <= 0 {
		t.Fatal("ppt low-loop share = 0: LCP inert")
	}
}

func TestRunDetailedRejectsBadConfig(t *testing.T) {
	if _, err := RunDetailed(Config{Transport: "nope"}); err == nil {
		t.Fatal("bad transport accepted")
	}
	if _, err := RunDetailed(Config{Workload: "nope"}); err == nil {
		t.Fatal("bad workload accepted")
	}
}
