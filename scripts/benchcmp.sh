#!/usr/bin/env bash
# Bench regression gate: compares a fresh per-experiment bench run
# against the newest checked-in BENCH_*.json and fails when any
# experiment's ns/op regressed more than 15% (after normalizing away
# uniform machine-speed differences; short entries are additionally
# shielded by a 500ms absolute noise floor, -min-delta), any
# experiment's allocs/op regressed more than 20% (raw — allocation
# counts are machine-independent), or the scale family's 30k-flow run
# allocates more than 10x its 3k-flow run (see cmd/benchcmp).
#
#   scripts/benchcmp.sh                  # run a fresh bench, then gate
#   scripts/benchcmp.sh bench.json       # gate an already-recorded run
#   scripts/benchcmp.sh -report [file]   # print the diff, never fail
#                                        # (used by CI on pull requests)
#
# Extra flags for cmd/benchcmp (e.g. -threshold 25 -no-normalize) can be
# passed via BENCHCMP_FLAGS.
set -euo pipefail
cd "$(dirname "$0")/.."

report=""
if [ "${1:-}" = "-report" ]; then
    report="-report-only"
    shift
fi

base="$(ls BENCH_*.json 2>/dev/null | sort | tail -1)"
if [ -z "$base" ]; then
    echo "benchcmp.sh: no checked-in BENCH_*.json baseline found" >&2
    exit 1
fi

fresh="${1:-}"
if [ -z "$fresh" ]; then
    fresh="$(mktemp -t bench.XXXXXX.json)"
    trap 'rm -f "$fresh"' EXIT
    echo "benchcmp.sh: recording fresh bench run..." >&2
    go run ./cmd/pptsim -benchjson "$fresh"
fi

# shellcheck disable=SC2086  # BENCHCMP_FLAGS is intentionally word-split
exec go run ./cmd/benchcmp -base "$base" -fresh "$fresh" $report ${BENCHCMP_FLAGS:-}
