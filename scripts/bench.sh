#!/usr/bin/env bash
# Benchmark harness: records the engine's perf trajectory.
#
#   scripts/bench.sh            # quick: 1 iteration per figure benchmark
#   BENCHTIME=2s scripts/bench.sh   # steadier numbers
#
# Produces two artifacts in the repo root:
#   - bench_figures.txt       `go test -bench` output (ns/op, allocs/op,
#                             Mevents/s per figure benchmark)
#   - BENCH_<date>.json       machine-readable per-experiment numbers
#                             from `pptsim -benchjson`, meant to be
#                             checked in so perf deltas are diffable
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
DATE="$(date +%F)"

echo "== go test -bench (benchtime=$BENCHTIME) =="
go test -bench 'BenchmarkFig|BenchmarkTable|BenchmarkTransports' \
    -benchmem -benchtime "$BENCHTIME" -run '^$' . | tee bench_figures.txt

echo
echo "== pptsim -benchjson -> BENCH_${DATE}.json =="
go run ./cmd/pptsim -benchjson "BENCH_${DATE}.json"
echo "wrote BENCH_${DATE}.json"
