// Package ppt is the public API of this repository: a packet-level
// reproduction of "PPT: A Pragmatic Transport for Datacenters"
// (SIGCOMM 2024), including the PPT transport itself (dual-loop rate
// control + buffer-aware flow scheduling), every baseline the paper
// compares against (DCTCP, RC3, PIAS, HPCC, Homa, Aeolus, NDP, and a
// Swift-like delay-based transport), the leaf-spine/testbed fabrics, the
// published workloads, and one registered experiment per table and
// figure of the paper's evaluation.
//
// Two entry points:
//
//   - Comparison: Run simulates one transport over one workload/fabric
//     and returns the paper's FCT breakdown.
//   - Reproduction: RunExperiment regenerates a specific table or
//     figure (see ListExperiments, or `pptsim -list`).
package ppt

import (
	"fmt"

	"ppt/internal/bufaware"
	"ppt/internal/exp"
	"ppt/internal/netsim"
	"ppt/internal/sim"
	"ppt/internal/stats"
	"ppt/internal/topo"
	"ppt/internal/transport"
	"ppt/internal/transport/aeolus"
	"ppt/internal/transport/dctcp"
	"ppt/internal/transport/expresspass"
	"ppt/internal/transport/halfback"
	"ppt/internal/transport/homa"
	"ppt/internal/transport/hpcc"
	"ppt/internal/transport/ndp"
	"ppt/internal/transport/pias"
	pptproto "ppt/internal/transport/ppt"
	"ppt/internal/transport/rc3"
	"ppt/internal/transport/swift"
	"ppt/internal/workload"
)

// Transport names accepted by Config.Transport.
const (
	TransportPPT      = "ppt"
	TransportDCTCP    = "dctcp"
	TransportRC3      = "rc3"
	TransportPIAS     = "pias"
	TransportHPCC     = "hpcc"
	TransportHoma     = "homa"
	TransportAeolus   = "aeolus"
	TransportNDP      = "ndp"
	TransportSwift    = "swift"
	TransportSwiftPPT = "swift+ppt"
	// Extensions beyond the paper's evaluation:
	TransportHPCCPPT     = "hpcc+ppt"    // appendix B: HPCC + PPT's low loop
	TransportTCP10       = "tcp10"       // Table 1: TCP with initial window 10
	TransportHalfback    = "halfback"    // Table 1: Halfback [23]
	TransportExpressPass = "expresspass" // Table 1: ExpressPass [11]
)

// Transports lists every supported transport name.
func Transports() []string {
	return []string{
		TransportPPT, TransportDCTCP, TransportRC3, TransportPIAS,
		TransportHPCC, TransportHoma, TransportAeolus, TransportNDP,
		TransportSwift, TransportSwiftPPT, TransportHPCCPPT,
		TransportTCP10, TransportHalfback, TransportExpressPass,
	}
}

// Topology names accepted by Config.Topology.
const (
	// TopologyTestbed is the paper's CloudLab profile: 15 hosts on one
	// 10G switch, 80µs RTT, 50MB shared buffer (Table 3).
	TopologyTestbed = "testbed"
	// TopologySim is a 3-leaf/2-spine 40/100G oversubscribed leaf-spine
	// slice of the paper's §6.2 fabric (48 hosts).
	TopologySim = "sim"
	// TopologySimFull is the paper's full 144-host, 9-leaf, 4-spine
	// fabric.
	TopologySimFull = "sim-full"
	// TopologyFast is the 100/400G variant (Fig 22).
	TopologyFast = "fast"
	// TopologyNonOversubscribed is the 1:1 10/40G fabric (appendix E).
	TopologyNonOversubscribed = "non-oversubscribed"
)

// Workload names accepted by Config.Workload: "websearch",
// "datamining", "memcached-w1", "memcached-etc", "youtube-http".
func Workloads() []string {
	return []string{"websearch", "datamining", "memcached-w1", "memcached-etc", "youtube-http"}
}

// Config describes one simulation run.
type Config struct {
	Transport string  // one of Transports(); default "ppt"
	Topology  string  // one of the Topology* names; default TopologySim
	Workload  string  // one of Workloads(); default "websearch"
	Load      float64 // fraction of receiver bandwidth; default 0.5
	Flows     int     // number of flows; default 500
	Seed      int64   // workload seed; default 1

	// Incast, when > 0, uses an N-to-1 pattern with this many senders
	// instead of all-to-all.
	Incast int

	// SendBuf models the TCP send buffer in bytes for PPT's
	// identification and LCP reach (0 = unbounded, the paper's 2GB).
	SendBuf int64
}

// Summary re-exports the FCT breakdown every experiment reports.
type Summary = stats.Summary

// Result re-exports a rendered experiment result.
type Result = exp.Result

// Options re-exports experiment options.
type Options = exp.Options

// Run simulates cfg to completion and returns the FCT summary.
func Run(cfg Config) (Summary, error) {
	if cfg.Transport == "" {
		cfg.Transport = TransportPPT
	}
	if cfg.Topology == "" {
		cfg.Topology = TopologySim
	}
	if cfg.Workload == "" {
		cfg.Workload = "websearch"
	}
	if cfg.Load == 0 {
		cfg.Load = 0.5
	}
	if cfg.Flows == 0 {
		cfg.Flows = 500
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}

	dist, err := workload.ByName(cfg.Workload)
	if err != nil {
		return Summary{}, err
	}
	tcfg, build, rtoMin, err := topologyFor(cfg.Topology)
	if err != nil {
		return Summary{}, err
	}
	proto, tweak, err := transportFor(cfg.Transport)
	if err != nil {
		return Summary{}, err
	}
	if tweak != nil {
		tweak(&tcfg)
	}
	net := build(tcfg)
	env := transport.NewEnv(net)
	env.RTOMin = rtoMin

	flows := buildFlows(dist, tcfg.HostRate, len(net.Hosts), cfg)
	return transport.Run(env, proto(env), flows, transport.RunConfig{}), nil
}

func topologyFor(name string) (topo.Config, func(topo.Config) *topo.Network, sim.Time, error) {
	leafSpine := func(leaves, spines, perLeaf int) func(topo.Config) *topo.Network {
		return func(c topo.Config) *topo.Network { return topo.LeafSpine(leaves, spines, perLeaf, c) }
	}
	switch name {
	case TopologyTestbed:
		return topo.Config{
			HostRate: 10 * netsim.Gbps, LinkDelay: 20 * sim.Microsecond,
			SharedBuffer: 50 << 20, ECNHighK: 100_000, ECNLowK: 80_000,
			DynamicLowThreshold: true,
		}, func(c topo.Config) *topo.Network { return topo.Star(15, c) }, 10 * sim.Millisecond, nil
	case TopologySim:
		return topo.Config{
			HostRate: 40 * netsim.Gbps, CoreRate: 100 * netsim.Gbps,
			PerPortBuffer: 120_000, ECNHighK: 96_000, ECNLowK: 86_000,
		}, leafSpine(3, 2, 8), 1 * sim.Millisecond, nil
	case TopologySimFull:
		return topo.Config{
			HostRate: 40 * netsim.Gbps, CoreRate: 100 * netsim.Gbps,
			PerPortBuffer: 120_000, ECNHighK: 96_000, ECNLowK: 86_000,
		}, leafSpine(9, 4, 16), 1 * sim.Millisecond, nil
	case TopologyFast:
		return topo.Config{
			HostRate: 100 * netsim.Gbps, CoreRate: 400 * netsim.Gbps,
			PerPortBuffer: 300_000, ECNHighK: 240_000, ECNLowK: 215_000,
		}, leafSpine(3, 2, 8), 1 * sim.Millisecond, nil
	case TopologyNonOversubscribed:
		return topo.Config{
			HostRate: 10 * netsim.Gbps, CoreRate: 40 * netsim.Gbps,
			PerPortBuffer: 120_000, ECNHighK: 30_000, ECNLowK: 25_000,
		}, leafSpine(3, 2, 8), 1 * sim.Millisecond, nil
	default:
		return topo.Config{}, nil, 0, fmt.Errorf("ppt: unknown topology %q", name)
	}
}

func transportFor(name string) (func(*transport.Env) transport.Protocol, func(*topo.Config), error) {
	switch name {
	case TransportPPT:
		return func(*transport.Env) transport.Protocol { return pptproto.Proto{} }, nil, nil
	case TransportDCTCP:
		return func(*transport.Env) transport.Protocol { return dctcp.Proto{} }, nil, nil
	case TransportRC3:
		return func(*transport.Env) transport.Protocol { return rc3.Proto{} }, nil, nil
	case TransportPIAS:
		return func(*transport.Env) transport.Protocol { return pias.Proto{} },
			func(c *topo.Config) { c.ECNLowK = c.ECNHighK }, nil
	case TransportHPCC:
		return func(*transport.Env) transport.Protocol { return hpcc.Proto{} },
			func(c *topo.Config) { c.EnableINT = true }, nil
	case TransportHoma:
		return func(*transport.Env) transport.Protocol { return homa.New(homa.Config{}) }, nil, nil
	case TransportAeolus:
		return func(*transport.Env) transport.Protocol { return aeolus.New(aeolus.Config{}) },
			func(c *topo.Config) {
				if c.PerPortBuffer > 0 {
					c.DroppableThresh = c.PerPortBuffer / 8
				} else {
					c.DroppableThresh = 24_000
				}
			}, nil
	case TransportNDP:
		return func(*transport.Env) transport.Protocol { return ndp.New(ndp.Config{}) },
			func(c *topo.Config) { c.TrimToHeader = true }, nil
	case TransportSwift:
		return func(*transport.Env) transport.Protocol { return swift.Proto{} }, nil, nil
	case TransportSwiftPPT:
		return func(*transport.Env) transport.Protocol {
			return swift.Proto{Cfg: swift.Config{WithPPT: true}}
		}, nil, nil
	case TransportHPCCPPT:
		return func(*transport.Env) transport.Protocol { return hpcc.PPTVariant{} },
			func(c *topo.Config) { c.EnableINT = true }, nil
	case TransportTCP10:
		return func(*transport.Env) transport.Protocol {
			return dctcp.Proto{Cfg: dctcp.Config{NoECN: true}}
		}, nil, nil
	case TransportHalfback:
		return func(*transport.Env) transport.Protocol { return halfback.Proto{} }, nil, nil
	case TransportExpressPass:
		return func(*transport.Env) transport.Protocol { return expresspass.New(expresspass.Config{}) }, nil, nil
	default:
		return nil, nil, fmt.Errorf("ppt: unknown transport %q (see Transports())", name)
	}
}

// RunExperiment regenerates one of the paper's tables or figures by id
// (e.g. "fig12", "table2", "ident").
func RunExperiment(id string, opts Options) (*Result, error) {
	return exp.RunByID(id, opts)
}

// ListExperiments returns the registered experiment ids and titles.
func ListExperiments() []struct{ ID, Title string } {
	var out []struct{ ID, Title string }
	for _, e := range exp.List() {
		out = append(out, struct{ ID, Title string }{e.ID, e.Title})
	}
	return out
}

// IdentificationAccuracy runs the §4.1 buffer-aware identification
// experiment for the given workload/application pair and returns the
// recall among truly-large flows.
func IdentificationAccuracy(workloadName string, threshold, sendBuf int64, flows int, seed int64) (float64, error) {
	dist, err := workload.ByName(workloadName)
	if err != nil {
		return 0, err
	}
	app := bufaware.Memcached
	if workloadName == "youtube-http" {
		app = bufaware.WebServer
	}
	res := bufaware.Experiment(dist, app, threshold, sendBuf, flows, seed)
	return res.Recall, nil
}
